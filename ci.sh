#!/usr/bin/env bash
# Tier-1 CI gate. Run from anywhere; everything happens in the repo root.
#
# Offline-friendly by construction: every external dependency is vendored
# as a path crate under vendor/ (see Cargo.toml [workspace.dependencies]),
# so no step below touches a registry or the network. Do not add
# registry-resolved dependencies; extend vendor/ instead.

set -euo pipefail
cd "$(dirname "$0")"

echo "== format check =="
cargo fmt --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (broken links and missing docs are errors) =="
# First-party crates only: the vendored path crates under vendor/ are
# workspace members too, and their upstream docs are not ours to fix.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p sthreads -p mta-sim -p smp-sim -p autopar -p c3i -p c3i-fuzz \
  -p eval-core -p bench -p repro -p tera-c3i

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== full workspace tests =="
cargo test -q --workspace

echo "== simd feature: build + tests + corpus replay =="
# The `simd` feature swaps the LOS row sweeps onto explicit 4-wide lanes;
# it is off by default so the pinned baselines stay scalar, and gated
# here on producing bit-identical grids through the whole test suite and
# the regression corpus.
cargo test -q -p c3i -p c3i-fuzz --features c3i/simd
cargo test -q --test corpus_replay --features c3i/simd

echo "== kernels bench smoke (quick scale) =="
# One pass over the per-kernel Criterion group at reduced sizes: proves
# the bench target builds and runs; the paper-scale numbers live in
# EXPERIMENTS.md and the BENCH_harness.json kernels phase.
KERNELS_BENCH_QUICK=1 cargo bench -p bench --bench kernels > /dev/null

echo "== harness self-timing (4 threads) =="
# The tier-1 release build above only covers the root package (the
# workspace root is itself a package), so build the harness CLI
# explicitly before invoking it.
cargo build --release -p repro
# Regenerates BENCH_harness.json at reduced scale with the per-phase
# dispatch/imbalance/useful-work breakdown.
./target/release/repro --reduced --timing --threads 4 timing > /dev/null

echo "== differential fuzz smoke (fixed seed) =="
# A short fixed-seed campaign: 25 reduced-size generated scenarios, each
# run sequential-oracle × {coarse,fine,chunked} × {Static,Dynamic,
# Stealing} × {1,2,8} workers with bit-identical comparison. The fixed
# seed makes this a deterministic regression check, not a flaky lottery;
# broaden locally with `repro --fuzz 200 --fuzz-seed $RANDOM`.
./target/release/repro --reduced --fuzz 25 --fuzz-seed 1

echo "== autopar oracle + soundness suites =="
# The dataflow pass's contract, by name (see docs/AUTOPAR.md): the
# parallel SCC-DAG solve is bit-identical to the sequential worklist
# solver on random graphs and random loop nests at 1/2/8 workers
# (dataflow_oracle); every PARALLEL verdict also *executes*
# bit-identically — random loop bodies interpreted sequentially vs
# uneven workers under adversarial iteration orders, privatized temps
# poisoned (exec_soundness); brute-force soundness plus
# dataflow-subsumes-conservative on random affine loops (soundness);
# and the pinned provenance-carrying report text (report_snapshot).
# All also part of `cargo test`; explicit so a verdict regression is
# named in CI output.
cargo test -q -p autopar --test soundness --test dataflow_oracle \
  --test exec_soundness --test report_snapshot

echo "== table-auto smoke (auto-vs-manual comparison, pinned CSV) =="
# Regenerates the living comparison table behind docs/AUTOPAR.md:
# verdicts for both passes, cleared obstacles, residual blockers,
# emitted schedules, and the execution checks (the auto-parallelized
# Threat Analysis structure run through the real c3i chunked kernel,
# bit-identical to sequential). Every cell is deterministic text — no
# timings — so the CSV must match the pinned copy byte for byte.
TABLE_AUTO_DIR=$(mktemp -d)
./target/release/repro --reduced table-auto --csv "$TABLE_AUTO_DIR" > /dev/null
diff -u results/table_auto.csv "$TABLE_AUTO_DIR/table_auto.csv"
rm -rf "$TABLE_AUTO_DIR"

echo "== simulator parallel-tick oracle (fixed-seed) =="
# The mta-sim determinism gate: Machine::run_parallel must be
# bit-identical to the sequential interpreter (RunResult, SimStats, fault
# order, final memory words and full/empty bits) at 1/2/8 workers across
# the kernel corpus, a deadlock/fault matrix, and a fixed-seed
# random-program fuzz smoke. Also part of `cargo test`; kept explicit so
# a parallel-tick divergence is named in CI output.
cargo test -q -p mta-sim --test par_oracle

echo "== pinned regression corpus replay =="
# Every minimized failure ever pinned under tests/corpus/ replays through
# the same differential matrix (also part of `cargo test`; kept explicit
# here so a corpus regression is named in CI output).
cargo test -q --test corpus_replay

echo "== harness regression gate (schema + identity + speedups) =="
# `repro --gate` parses the report against the extended schema (every
# phase must carry a breakdown, and the report must carry the kernels
# phase), fails if any phase's parallel output diverged from sequential,
# fails if the table-generation phase fell below the 0.95x speedup gate,
# fails if the mta_par phase is missing, non-identical, or shows the
# windowed two-phase tick costing more than 5% over the sequential
# interpreter, and fails if the run-based arena kernels fell below 1.5x
# over the pinned scalar baseline on the terrain pipeline. The table-gen
# check is
# robust on throttled or single-core CI hosts *because* of par_map's
# measured sequential cutoff: when parallelism cannot pay for its own
# dispatch, the phase runs sequentially and the ratio sits at ~1.0
# instead of regressing. The kernels check compares two sequential runs,
# so core count does not affect it.
./target/release/repro --gate BENCH_harness.json

echo "== service smoke (serve + load replay + gate) =="
# Starts the scenario-evaluation server on a unix socket, replays a
# fixed-seed fuzzer-generated request mix through it over 4 concurrent
# connections, and verifies every served response is bit-identical to a
# direct sequential evaluation. The replay writes BENCH_service.json
# (p50/p99 latency, throughput, identity flag) which the gate then
# parses against the service schema.
SERVICE_SOCK=target/c3i-serve.sock
rm -f "$SERVICE_SOCK"
./target/release/repro --serve "$SERVICE_SOCK" --reduced &
SERVICE_PID=$!
trap 'kill "$SERVICE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 150); do
  [ -S "$SERVICE_SOCK" ] && break
  sleep 0.2
done
if ! [ -S "$SERVICE_SOCK" ]; then
  echo "service smoke: server never bound $SERVICE_SOCK" >&2
  exit 1
fi
./target/release/repro --load "$SERVICE_SOCK" --reduced \
  --requests 40 --mix-seed 1 --conns 4 --stop-server
wait "$SERVICE_PID"
trap - EXIT
./target/release/repro --gate BENCH_service.json

echo "CI OK"
