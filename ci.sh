#!/usr/bin/env bash
# Tier-1 CI gate. Run from anywhere; everything happens in the repo root.
#
# Offline-friendly by construction: every external dependency is vendored
# as a path crate under vendor/ (see Cargo.toml [workspace.dependencies]),
# so no step below touches a registry or the network. Do not add
# registry-resolved dependencies; extend vendor/ instead.

set -euo pipefail
cd "$(dirname "$0")"

echo "== format check =="
cargo fmt --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== full workspace tests =="
cargo test -q --workspace

echo "CI OK"
