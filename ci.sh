#!/usr/bin/env bash
# Tier-1 CI gate. Run from anywhere; everything happens in the repo root.
#
# Offline-friendly by construction: every external dependency is vendored
# as a path crate under vendor/ (see Cargo.toml [workspace.dependencies]),
# so no step below touches a registry or the network. Do not add
# registry-resolved dependencies; extend vendor/ instead.

set -euo pipefail
cd "$(dirname "$0")"

echo "== format check =="
cargo fmt --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== full workspace tests =="
cargo test -q --workspace

echo "== harness self-timing (4 threads, output-identity gate) =="
# Regenerates BENCH_harness.json at reduced scale. The gate is output
# identity only: a phase reporting identical_output=false means the
# parallel harness changed program output, which is a correctness bug.
# Speedups are reported but not gated — CI hosts are often throttled or
# single-core, where wall-clock speedup is noise.
./target/release/repro --reduced --timing --threads 4 timing > /dev/null
if grep -q '"identical_output": false' BENCH_harness.json; then
  echo "FAIL: a parallel harness phase diverged from its sequential output" >&2
  grep -B4 '"identical_output": false' BENCH_harness.json >&2
  exit 1
fi
echo "all phases identical_output=true"

echo "CI OK"
