//! The §8 outlook experiment the paper could not run: how would the two
//! benchmarks scale on the large Tera MTA configurations that were never
//! installed? Extrapolates the calibrated model from 1 to 256 processors
//! and contrasts it with the Exemplar, illustrating the paper's closing
//! argument about thread supply.
//!
//! ```text
//! cargo run --release --example scalability
//! ```

use tera_c3i::eval_core::{Experiments, Workload, WorkloadScale};

fn main() {
    println!("calibrating on the reduced workload...\n");
    let exps = Experiments::new(Workload::build(WorkloadScale::Reduced));

    let table = exps.scalability_projection(&[1, 2, 4, 8, 16, 32, 64, 128, 256]);
    println!("{}", table.render());

    println!(
        "reading the projection:\n\
         * Threat Analysis has exactly 1000 threads to offer (one per threat).\n\
           A Tera processor wants ~35 resident streams just to cover its own\n\
           latency, so ~32 processors exhaust the program's parallelism; beyond\n\
           that the model goes flat. \"Not all programs have the potential for\n\
           hundreds of threads of control\" (paper, Section 8) — and even 1000\n\
           is not enough at 256 processors.\n\
         * Fine-grained Terrain Masking is limited by its *serial* outer thread\n\
           spawning the inner-loop futures: an Amdahl wall just above 2x, no\n\
           matter how many processors arrive. The coarse-grained alternative\n\
           cannot be used because its per-thread temp arrays would need\n\
           hundreds of copies of 5% of the terrain.\n"
    );

    // Contrast: the Exemplar curve over its real range, same model family.
    println!("Exemplar (16 processors max), same workloads:");
    println!("  procs   Threat Analysis (s)   Terrain Masking (s)");
    for p in [1usize, 2, 4, 8, 16] {
        println!(
            "  {p:>5}   {:>19.1}   {:>19.1}",
            exps.ta_conv_parallel(&exps.cal.exemplar, p),
            exps.tm_conv_parallel(&exps.cal.exemplar, p)
        );
    }
    println!(
        "\ncrossover: one Tera processor ~ four Exemplar processors on Threat\n\
         Analysis ({:.0}s vs {:.0}s); the dual Tera ~ eight Exemplar processors\n\
         on Terrain Masking ({:.0}s vs {:.0}s) — the paper's Section 7 summary.",
        exps.ta_tera(256, 1),
        exps.ta_conv_parallel(&exps.cal.exemplar, 4),
        exps.tm_tera(2),
        exps.tm_conv_parallel(&exps.cal.exemplar, 8),
    );
}
