//! Mission planning on top of both benchmarks: compute the masking field
//! (Terrain Masking), plan a minimum-exposure penetration route at
//! several altitudes, and schedule interceptor engagements against the
//! inbound raid (Threat Analysis + engagement assignment) — the C3I
//! application chain the benchmark suite abstracts.
//!
//! ```text
//! cargo run --release --example route_planning
//! ```

use tera_c3i::c3i::terrain::{self, TerrainScenarioParams};
use tera_c3i::c3i::threat::{self, engagement, ThreatScenarioParams};

fn main() {
    // ── 1. The defended terrain ─────────────────────────────────────────
    let scenario = terrain::generate(TerrainScenarioParams {
        grid_size: 160,
        n_threats: 9,
        seed: 23,
        ..Default::default()
    });
    let masking = terrain::terrain_masking_host(&scenario);
    terrain::verify_masking(&scenario, &masking).expect("masking verifies");
    println!(
        "terrain {}x{}, {} radars",
        scenario.terrain.x_size(),
        scenario.terrain.y_size(),
        scenario.threats.len()
    );

    // ── 2. Penetration routes at different altitudes ────────────────────
    let start = (0usize, 80usize);
    let goal = (159usize, 80usize);
    println!("\naltitude trade (west->east penetration, best route):");
    println!("  altitude   terrain exposed   route exposed cells   route length");
    for alt in [200.0, 500.0, 1000.0, 2000.0, 4000.0] {
        let frac = terrain::exposed_fraction(&masking, alt);
        let route = terrain::plan_route(&masking, alt, start, goal).expect("route");
        println!(
            "  {alt:>7.0}m   {:>14.1}%   {:>19}   {:>12.1}",
            100.0 * frac,
            route.exposed_cells,
            route.length
        );
    }

    // Render the 500 m route.
    let alt = 500.0;
    let route = terrain::plan_route(&masking, alt, start, goal).unwrap();
    println!(
        "\nroute at {alt:.0} m ({} exposed cells):  '.'=shadowed, 'x'=exposed, 'o'=route, 'X'=route+exposed",
        route.exposed_cells
    );
    let on_route: std::collections::HashSet<(usize, usize)> = route.cells.iter().copied().collect();
    let step = 160 / 80;
    for gy in 0..40 {
        let mut line = String::new();
        for gx in 0..80 {
            let (x, y) = (gx * step, gy * 4);
            let exposed = terrain::is_exposed(&masking, x, y, alt);
            let near_route = (0..step).any(|dx| {
                (0..4).any(|dy| on_route.contains(&((x + dx).min(159), (y + dy).min(159))))
            });
            line.push(match (near_route, exposed) {
                (true, true) => 'X',
                (true, false) => 'o',
                (false, true) => 'x',
                (false, false) => '.',
            });
        }
        println!("  {line}");
    }

    // ── 3. The defensive side: schedule interceptors against a raid ────
    let raid = threat::generate(ThreatScenarioParams {
        n_threats: 120,
        n_weapons: 8,
        seed: 23,
        ..Default::default()
    });
    let intervals = threat::threat_analysis_host(&raid);
    let plan = engagement::schedule_greedy(&intervals);
    plan.validate(&intervals).expect("plan validates");
    let interceptable: std::collections::BTreeSet<u32> =
        intervals.iter().map(|iv| iv.threat).collect();
    println!(
        "\nengagement scheduling: {} inbound threats, {} interceptable, {} engaged \
         (coverage {:.0}%), {} leakers",
        raid.threats.len(),
        interceptable.len(),
        plan.threats_engaged(),
        100.0 * engagement::coverage(&plan, &intervals),
        interceptable.len() - plan.threats_engaged(),
    );
    let busiest = plan.engagements.iter().fold(
        std::collections::BTreeMap::<u32, usize>::new(),
        |mut m, e| {
            *m.entry(e.weapon).or_default() += 1;
            m
        },
    );
    if let Some((w, n)) = busiest.iter().max_by_key(|&(_, n)| n) {
        println!("busiest battery: weapon {w} with {n} engagements");
    }
}
