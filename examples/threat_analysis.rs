//! Threat Analysis, end to end: generate a benchmark-style scenario,
//! inspect the interception geometry, compare parallelization strategies
//! on the host, and sweep the Tera chunk count as in Table 6.
//!
//! ```text
//! cargo run --release --example threat_analysis
//! ```

use tera_c3i::c3i::threat::{self, ThreatScenarioParams};
use tera_c3i::eval_core::{Experiments, Workload, WorkloadScale};

fn main() {
    // A benchmark-sized scenario (1000 threats, as in the paper).
    let scenario = threat::generate(ThreatScenarioParams {
        n_threats: 1000,
        n_weapons: 25,
        seed: 7,
        ..Default::default()
    });

    let intervals = threat::threat_analysis_host(&scenario);
    threat::verify_intervals(&scenario, &intervals).expect("correctness test");

    // Interception statistics.
    let mut per_threat = vec![0usize; scenario.threats.len()];
    for iv in &intervals {
        per_threat[iv.threat as usize] += 1;
    }
    let undefended = per_threat.iter().filter(|&&n| n == 0).count();
    let max_windows = per_threat.iter().max().copied().unwrap_or(0);
    let longest = intervals
        .iter()
        .map(|iv| iv.t_end - iv.t_start + 1)
        .max()
        .unwrap_or(0);
    println!(
        "scenario: {} threats, {} weapons",
        scenario.threats.len(),
        scenario.weapons.len()
    );
    println!("  {} interception intervals found", intervals.len());
    println!(
        "  {} threats have no interception option (leakers)",
        undefended
    );
    println!("  busiest threat has {max_windows} interception windows");
    println!("  longest window lasts {longest} time steps");

    // Host-parallel scaling of Program 2 (real wall clock on this
    // machine — speedup is bounded by the cores actually available).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\nhost scaling of the chunked program (Program 2) on {cores} available core(s):");
    let t_seq = {
        let t = std::time::Instant::now();
        let _ = threat::threat_analysis_host(&scenario);
        t.elapsed()
    };
    println!("  sequential: {t_seq:?}");
    for threads in [1, 2, 4, 8] {
        let t = std::time::Instant::now();
        let r = threat::threat_analysis_chunked_host(&scenario, threads, threads);
        let dt = t.elapsed();
        assert_eq!(r.flatten(), intervals);
        println!(
            "  {threads} threads: {dt:?} (speedup {:.2})",
            t_seq.as_secs_f64() / dt.as_secs_f64()
        );
    }

    // The Table 6 experiment: the Tera needs *hundreds* of chunks.
    println!("\nTera MTA chunk sweep (modeled, 2 processors; paper Table 6):");
    let exps = Experiments::new(Workload::build(WorkloadScale::Reduced));
    for chunks in [8, 16, 32, 64, 128, 256] {
        println!("  {chunks:>4} chunks -> {:6.1} s", exps.ta_tera(chunks, 2));
    }
    println!(
        "\noversized-output cost of chunking (paper Section 5): 256 chunks reserve {} words\n\
         for this scenario vs {} words actually used",
        threat::threat_analysis_chunked_host(&scenario, 256, 4).reserved_words,
        threat::threat_analysis_chunked_host(&scenario, 256, 4).used_words()
    );
}
