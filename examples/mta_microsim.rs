//! Drive the cycle-level Tera MTA simulator directly: write a small
//! multithreaded program in the simulator IR, run it, and reproduce the
//! paper's microarchitectural observations (5% single-stream utilization,
//! ~80 streams to saturate, one-cycle synchronization, hot banks).
//!
//! ```text
//! cargo run --release --example mta_microsim
//! ```

use tera_c3i::mta_sim::kernels::{self, measure_utilization};
use tera_c3i::mta_sim::{Assembler, Machine, MtaConfig};

fn main() {
    // ── 1. A hand-written kernel: parallel dot-product via fetch-add ───
    // Workers claim elements with a fetch-add on word 512 and accumulate
    // the integer dot product into word 513 with another fetch-add.
    const N: usize = 500;
    let mut a = Assembler::new();
    // main: fork 32 workers, then halt.
    a.li(2, 0);
    a.li(3, 32);
    a.label("spawn");
    a.bge_l(2, 3, "done_spawn");
    a.fork_l("worker", 2);
    a.addi(2, 2, 1);
    a.jmp_l("spawn");
    a.label("done_spawn");
    a.halt();
    // worker: loop { i = fetch_add(claim); if i >= N halt; sum += x[i]*y[i] }
    a.label("worker");
    a.li(4, 512); // claim counter
    a.li(5, 513); // accumulator
    a.li(6, N as i64);
    a.li(7, 1);
    a.label("claim");
    a.fetch_add(9, 4, 0, 7);
    a.bge_l(9, 6, "out");
    a.li(10, 1024);
    a.add(10, 10, 9);
    a.load(11, 10, 0); // x[i]
    a.li(12, 1024 + N as i64);
    a.add(12, 12, 9);
    a.load(13, 12, 0); // y[i]
    a.mul(14, 11, 13);
    a.fetch_add(15, 5, 0, 14); // sum += x[i]*y[i]
    a.jmp_l("claim");
    a.label("out");
    a.halt();
    let program = a.assemble().expect("assemble");

    let mut m = Machine::new(
        MtaConfig {
            mem_words: 1 << 16,
            ..MtaConfig::tera(1)
        },
        program,
    )
    .expect("machine");
    for i in 0..N {
        m.memory_mut().store(1024 + i, (i % 7) as u64);
        m.memory_mut().store(1024 + N + i, (i % 5) as u64);
    }
    m.spawn(0, 0).expect("spawn");
    let r = m.run(100_000_000);
    let expected: u64 = (0..N as u64).map(|i| (i % 7) * (i % 5)).sum();
    assert!(r.completed);
    assert_eq!(m.memory().load(513), expected);
    println!("fetch-add dot product: {} (correct)", m.memory().load(513));
    println!(
        "  {} instructions in {} cycles on 32 streams -> {:.1}% utilization, {} sync blocks",
        r.stats.instructions(),
        r.cycles,
        100.0 * r.utilization(),
        r.stats.sync.blocked
    );

    // ── 2. The utilization curve (paper Sections 5 and 7) ──────────────
    println!("\nutilization vs streams (25% memory mix):");
    let cfg = || MtaConfig {
        mem_words: 1 << 20,
        ..MtaConfig::tera(1)
    };
    for s in [1usize, 4, 16, 32, 64, 80, 128] {
        let u = measure_utilization(cfg(), s, 300, 3);
        let bar = "#".repeat((u * 50.0) as usize);
        println!("  {s:>3} streams |{bar:<50}| {:.1}%", u * 100.0);
    }
    println!("  -> a single stream gets ~5% of the machine; saturation needs dozens of streams");

    // ── 3. Hot banks: why interleaving matters ──────────────────────────
    let big = || MtaConfig {
        mem_words: 1 << 23,
        ..MtaConfig::tera(1)
    };
    let (_, cold) = kernels::run_kernel(big(), kernels::mem_kernel(64, 150, 1, 4096), &[]);
    let (_, hot) = kernels::run_kernel(big(), kernels::mem_kernel(64, 150, 64, 4096), &[]);
    println!(
        "\nbank interleaving: unit stride {} cycles vs stride-64 (one bank) {} cycles ({:.2}x slower)",
        cold.cycles,
        hot.cycles,
        hot.cycles as f64 / cold.cycles as f64
    );

    // ── 4. Pipeline of streams through full/empty words ────────────────
    let (program, layout) = kernels::pipeline_kernel(8, 50);
    let empties: Vec<usize> = (0..=8).map(|k| layout.chan_base + k).collect();
    let (m, r) = kernels::run_kernel(
        MtaConfig {
            mem_words: 1 << 16,
            ..MtaConfig::tera(2)
        },
        program,
        &empties,
    );
    println!(
        "\n8-stage producer/consumer pipeline over full/empty words: sum {}, {} wakeups, {} cycles",
        m.memory().load(layout.sink_addr),
        r.stats.sync.wakes,
        r.cycles
    );
}
