//! Quickstart: run both C3I benchmarks sequentially and in parallel on
//! the host, verify the outputs, and ask the calibrated models what the
//! same programs would cost on the paper's four machines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tera_c3i::c3i::{terrain, threat};
use tera_c3i::eval_core::{Experiments, Workload, WorkloadScale};
use tera_c3i::sthreads;

fn main() {
    // ── 1. Threat Analysis ──────────────────────────────────────────────
    let scenario = threat::small_scenario(42);
    println!(
        "Threat Analysis: {} threats x {} weapons",
        scenario.threats.len(),
        scenario.weapons.len()
    );

    let t0 = std::time::Instant::now();
    let sequential = threat::threat_analysis_host(&scenario);
    println!(
        "  sequential (Program 1): {} intervals in {:?}",
        sequential.len(),
        t0.elapsed()
    );

    let t0 = std::time::Instant::now();
    let chunked = threat::threat_analysis_chunked_host(&scenario, 16, 4);
    println!(
        "  chunked (Program 2, 16 chunks / 4 threads): {} intervals in {:?}",
        chunked.n_intervals(),
        t0.elapsed()
    );
    assert_eq!(
        chunked.flatten(),
        sequential,
        "parallel must equal sequential"
    );

    let fine = threat::threat_analysis_fine_host(&scenario, 4);
    assert_eq!(
        threat::canonical(fine.intervals),
        threat::canonical(sequential.clone()),
        "fine-grained (sync-variable) variant must match as a set"
    );
    threat::verify_intervals(&scenario, &sequential).expect("C3IPBS correctness test");
    println!("  all three variants agree; correctness test passed");

    // ── 2. Terrain Masking ──────────────────────────────────────────────
    let scenario = terrain::small_scenario(42);
    println!(
        "\nTerrain Masking: {}x{} terrain, {} threats",
        scenario.terrain.x_size(),
        scenario.terrain.y_size(),
        scenario.threats.len()
    );
    let masking = terrain::terrain_masking_host(&scenario);
    let coarse = terrain::terrain_masking_coarse_host(&scenario, 4, 10);
    let fine = terrain::terrain_masking_fine_host(&scenario, 4);
    assert_eq!(
        coarse, masking,
        "coarse (block-locked) variant must be bit-identical"
    );
    assert_eq!(
        fine, masking,
        "fine (ring-parallel) variant must be bit-identical"
    );
    terrain::verify_masking(&scenario, &masking).expect("C3IPBS correctness test");
    let covered = masking.as_slice().iter().filter(|v| v.is_finite()).count();
    println!(
        "  masking computed; {}% of terrain under threat influence; all variants bit-identical",
        100 * covered / masking.len()
    );

    // ── 3. Full/empty synchronization (the Tera's signature feature) ───
    let channel = sthreads::SyncVar::new_empty();
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..5 {
                channel.write(i); // waits for the consumer each round
            }
        });
        let got: Vec<i32> = (0..5).map(|_| channel.take()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    });
    println!("\nfull/empty SyncVar handoff: ok");

    // ── 4. What would this cost on the paper's machines? ───────────────
    println!("\nCalibrating machine models on the reduced workload...");
    let exps = Experiments::new(Workload::build(WorkloadScale::Reduced));
    let ta = exps.ta_seq_secs();
    println!("  sequential Threat Analysis (modeled, benchmark scale):");
    println!(
        "    Alpha {:.0}s | Pentium Pro {:.0}s | Exemplar {:.0}s | Tera MTA {:.0}s",
        ta[0], ta[1], ta[2], ta[3]
    );
    println!(
        "  the Tera runs one stream at ~5% utilization — {:.0}x slower than the Alpha,",
        ta[3] / ta[0]
    );
    println!(
        "  but multithreaded (256 chunks) it needs only {:.0}s on one processor.",
        exps.ta_tera(256, 1)
    );
}
