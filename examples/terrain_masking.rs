//! Terrain Masking, end to end: synthesize terrain, place radar threats,
//! compute the maximum-safe-altitude map with all three program variants,
//! and render an ASCII picture of the masking field.
//!
//! ```text
//! cargo run --release --example terrain_masking
//! ```

use tera_c3i::c3i::terrain::{self, TerrainScenarioParams};
use tera_c3i::eval_core::{Experiments, Workload, WorkloadScale};

fn main() {
    let scenario = terrain::generate(TerrainScenarioParams {
        grid_size: 192,
        n_threats: 10,
        seed: 11,
        ..Default::default()
    });
    println!(
        "terrain {}x{} ({}m cells, relief up to {:.0}m), {} radar threats",
        scenario.terrain.x_size(),
        scenario.terrain.y_size(),
        scenario.cell_size_m,
        scenario
            .terrain
            .as_slice()
            .iter()
            .cloned()
            .fold(0.0, f64::max),
        scenario.threats.len()
    );

    // All three variants, bit-identical.
    let t = std::time::Instant::now();
    let masking = terrain::terrain_masking_host(&scenario);
    let t_seq = t.elapsed();
    let t = std::time::Instant::now();
    let coarse = terrain::terrain_masking_coarse_host(&scenario, 4, 10);
    let t_coarse = t.elapsed();
    let fine = terrain::terrain_masking_fine_host(&scenario, 4);
    assert_eq!(coarse, masking);
    assert_eq!(fine, masking);
    terrain::verify_masking(&scenario, &masking).expect("correctness test");
    println!("sequential {t_seq:?}; coarse (4 threads, 10x10 block locks) {t_coarse:?}; all bit-identical");

    // ASCII rendering: how high can you safely fly, relative to ground?
    // '.' = uncovered (fly at any altitude), digits = safe ceiling above
    // ground in units of 200 m (9 = 1800 m+), '#' = hugging the ground.
    println!("\nterrain relief:");
    print!("{}", terrain::render_terrain(&scenario.terrain, 72, 36));
    println!("\nmasking field ('.'=no threat, '#'=ground level only, 1-9=ceiling/200m):");
    print!(
        "{}",
        terrain::render_masking(&masking, &scenario.terrain, 200.0, 72, 36)
    );

    // The paper's Section 6 punchline: the memory-per-thread problem.
    let region_cells: usize = scenario
        .threats
        .iter()
        .map(|t| {
            let r = terrain::Region::of_checked(
                t,
                scenario.terrain.x_size(),
                scenario.terrain.y_size(),
            );
            r.n_cells()
        })
        .max()
        .unwrap_or(0);
    println!(
        "\nlargest region of influence: {} cells ({:.1}% of the terrain)",
        region_cells,
        100.0 * region_cells as f64 / scenario.terrain.len() as f64
    );
    println!(
        "coarse-grained parallelization needs one such temp array PER THREAD:\n\
         fine for 16 Exemplar threads, hopeless for the hundreds of streams a Tera wants\n\
         -> the Tera version parallelizes the inner ring loops instead (one temp total)."
    );

    // Modeled platform comparison (Table 12's manual rows).
    let exps = Experiments::new(Workload::build(WorkloadScale::Reduced));
    println!("\nmodeled benchmark-scale times (paper Table 12, manual parallelization):");
    println!(
        "  Pentium Pro (4 proc, coarse): {:6.1} s",
        exps.tm_conv_parallel(&exps.cal.ppro, 4)
    );
    println!(
        "  Exemplar   (16 proc, coarse): {:6.1} s",
        exps.tm_conv_parallel(&exps.cal.exemplar, 16)
    );
    println!("  Tera MTA    (2 proc, fine):   {:6.1} s", exps.tm_tera(2));
}
