//! The automatic-parallelization experiment: run the modeled
//! Tera/Exemplar compiler over the paper's four benchmark loop nests and
//! over loops it *can* handle, print canal-style feedback, then run the
//! dataflow pass (reduction recognition, privatization, compaction,
//! purity summaries) over the same loops and show what it clears — the
//! living comparison lives in `docs/AUTOPAR.md`.
//!
//! ```text
//! cargo run --example autopar_report
//! ```

use tera_c3i::autopar::programs;
use tera_c3i::autopar::{analyze_loop, emit_plan, Expr, LoopNest, Stmt};

fn main() {
    println!("== the paper's benchmark loop nests (no pragmas) ==\n");
    let report = programs::benchmark_report();
    print!("{report}");
    println!(
        "\n-> as in the paper: no practical opportunity for parallelization found in\n\
         either benchmark; only the dense affine control loop parallelizes.\n"
    );

    println!("== the manually transformed programs still need the pragma ==\n");
    for (name, without, with) in [
        (
            "Program 2 (chunked Threat Analysis)",
            analyze_loop(&programs::program2_threat_chunked(false)),
            analyze_loop(&programs::program2_threat_chunked(true)),
        ),
        (
            "Program 4 (coarse Terrain Masking)",
            analyze_loop(&programs::program4_terrain_coarse(false)),
            analyze_loop(&programs::program4_terrain_coarse(true)),
        ),
    ] {
        println!("{name}:");
        print!("  without pragma: {without}");
        print!("  with pragma:    {with}");
    }

    println!("\n== what the analyzer CAN prove (so the rejections are not vacuous) ==\n");
    // A stencil with a distance-2 dependence — rejected with a precise
    // reason.
    let stencil = LoopNest::new("for i (a[i] = a[i-2] + b[i])", "i").stmt(
        Stmt::new("a[i]=a[i-2]+b[i]")
            .array("a", vec![Expr::var("i")], true)
            .array(
                "a",
                vec![Expr::Affine {
                    var: "i".into(),
                    scale: 1,
                    offset: -2,
                }],
                false,
            )
            .array("b", vec![Expr::var("i")], false),
    );
    print!("{}", analyze_loop(&stencil));

    // Odd/even split — the GCD test proves independence.
    let odd_even = LoopNest::new("for i (a[2i] = a[2i+1])", "i").stmt(
        Stmt::new("a[2i]=a[2i+1]")
            .array(
                "a",
                vec![Expr::Affine {
                    var: "i".into(),
                    scale: 2,
                    offset: 0,
                }],
                true,
            )
            .array(
                "a",
                vec![Expr::Affine {
                    var: "i".into(),
                    scale: 2,
                    offset: 1,
                }],
                false,
            ),
    );
    print!("{}", analyze_loop(&odd_even));

    // Privatizable temporary — fine.
    let private_tmp = LoopNest::new("for i (t = f(b[i]); a[i] = t)", "i")
        .private(&["t"])
        .stmt(
            Stmt::new("t=...; a[i]=t")
                .writes(&["t"])
                .reads(&["t"])
                .array("a", vec![Expr::var("i")], true)
                .array("b", vec![Expr::var("i")], false),
        );
    print!("{}", analyze_loop(&private_tmp));

    println!("\n== the dataflow pass: what a stronger compiler clears ==\n");
    let df = programs::dataflow_report(1);
    print!("{df}");
    println!("\n-> emitted sthreads annotations for the loops it proved parallel:\n");
    for (l, v) in programs::benchmark_loops().iter().zip(&df.verdicts) {
        if let Some(p) = emit_plan(l, v) {
            println!("  {}\n    {}", l.label, p.annotation());
        }
    }
}
