//! The paper's experiments: one generator per table and figure.
//!
//! Every generator returns a [`Table`] whose value cells carry both the
//! model's number and the paper's published number, so the rendered output
//! *is* the paper-vs-reproduction comparison. Figures 1–4 are the speedup
//! curves of Tables 3, 4, 9, 10; [`Experiments::figure`] renders them as
//! ASCII plots and exposes the raw series for the benchmark harness.

use crate::calibrate::{calibrate, Calibration};
use crate::models::ConventionalModel;
use crate::tables::{ascii_speedup_figure, Cell, Table};
use crate::workload::Workload;
use c3i::Profile;
use sthreads::{par_map, Schedule, ThreadPool};

/// The paper's published numbers, verbatim from the tables.
pub mod paper {
    /// Table 2: sequential Threat Analysis seconds
    /// (Alpha, Pentium Pro, Exemplar, Tera).
    pub const TABLE2: [(&str, f64); 4] = [
        ("Alpha", 187.0),
        ("Pentium Pro", 458.0),
        ("Exemplar", 343.0),
        ("Tera", 2584.0),
    ];

    /// Table 3: chunked Threat Analysis on the quad Pentium Pro.
    /// `(processors, seconds)`; the sequential program took 458 s.
    pub const TABLE3: [(usize, f64); 4] = [(1, 466.0), (2, 233.0), (3, 157.0), (4, 117.0)];
    /// Sequential reference for Table 3.
    pub const TABLE3_SEQ: f64 = 458.0;

    /// Table 4: chunked Threat Analysis on the 16-processor Exemplar.
    pub const TABLE4: [(usize, f64); 16] = [
        (1, 343.0),
        (2, 172.0),
        (3, 115.0),
        (4, 87.0),
        (5, 69.0),
        (6, 58.0),
        (7, 50.0),
        (8, 43.0),
        (9, 39.0),
        (10, 35.0),
        (11, 32.0),
        (12, 29.0),
        (13, 27.0),
        (14, 26.0),
        (15, 24.0),
        (16, 22.0),
    ];
    /// Sequential reference for Table 4.
    pub const TABLE4_SEQ: f64 = 343.0;

    /// Table 5: chunked Threat Analysis on the Tera MTA (256 chunks).
    pub const TABLE5: [(usize, f64); 2] = [(1, 82.0), (2, 46.0)];

    /// Table 6: Threat Analysis chunk sweep on the 2-processor Tera.
    pub const TABLE6: [(usize, f64); 6] = [
        (8, 386.0),
        (16, 197.0),
        (32, 104.0),
        (64, 61.0),
        (128, 46.0),
        (256, 46.0),
    ];

    /// Table 8: sequential Terrain Masking seconds.
    pub const TABLE8: [(&str, f64); 4] = [
        ("Alpha", 158.0),
        ("Pentium Pro", 197.0),
        ("Exemplar", 228.0),
        ("Tera", 978.0),
    ];

    /// Table 9: coarse Terrain Masking on the quad Pentium Pro.
    pub const TABLE9: [(usize, f64); 4] = [(1, 172.0), (2, 97.0), (3, 74.0), (4, 65.0)];
    /// Sequential reference for Table 9.
    pub const TABLE9_SEQ: f64 = 197.0;

    /// Table 10: coarse Terrain Masking on the 16-processor Exemplar.
    pub const TABLE10: [(usize, f64); 16] = [
        (1, 228.0),
        (2, 102.0),
        (3, 90.0),
        (4, 59.0),
        (5, 62.0),
        (6, 43.0),
        (7, 51.0),
        (8, 37.0),
        (9, 49.0),
        (10, 34.0),
        (11, 41.0),
        (12, 34.0),
        (13, 32.0),
        (14, 40.0),
        (15, 41.0),
        (16, 37.0),
    ];
    /// Sequential reference for Table 10.
    pub const TABLE10_SEQ: f64 = 228.0;

    /// Table 11: fine-grained Terrain Masking on the Tera MTA.
    pub const TABLE11: [(usize, f64); 2] = [(1, 48.0), (2, 34.0)];
}

/// Which figure to render/extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Figure 1: Threat Analysis speedup on the Pentium Pro.
    ThreatPPro,
    /// Figure 2: Threat Analysis speedup on the Exemplar.
    ThreatExemplar,
    /// Figure 3: Terrain Masking speedup on the Pentium Pro.
    TerrainPPro,
    /// Figure 4: Terrain Masking speedup on the Exemplar.
    TerrainExemplar,
}

/// The full experiment harness: a measured workload plus calibrated
/// models.
pub struct Experiments {
    /// The measured workload profiles.
    pub workload: Workload,
    /// The calibrated models.
    pub cal: Calibration,
}

impl Experiments {
    /// Calibrate models against `workload` and wrap both.
    pub fn new(workload: Workload) -> Self {
        let cal = calibrate(&workload);
        Self { workload, cal }
    }

    /// Build the harness for `scale` via the snapshot cache
    /// ([`crate::cache::load_or_measure`]): measurement and calibration
    /// run only when no fresh snapshot exists.
    pub fn load_or_measure(scale: crate::workload::WorkloadScale) -> (Self, crate::CacheStatus) {
        let (workload, cal, status) = crate::cache::load_or_measure(scale);
        (Self { workload, cal }, status)
    }

    // ── shared helpers ───────────────────────────────────────────────────

    fn sum_seq(&self, model: &ConventionalModel, profiles: &[Profile], scale: f64) -> f64 {
        profiles.iter().map(|p| model.seq_seconds(p, scale)).sum()
    }

    fn sum_par(
        &self,
        model: &ConventionalModel,
        profiles: &[Profile],
        n: usize,
        scale: f64,
    ) -> f64 {
        profiles
            .iter()
            .map(|p| model.parallel_seconds(p, n, scale))
            .sum()
    }

    /// Modeled sequential Threat Analysis seconds on each platform.
    pub fn ta_seq_secs(&self) -> [f64; 4] {
        let w = &self.workload;
        let c = &self.cal;
        [
            self.sum_seq(&c.alpha, &w.ta_seq, c.s_ta),
            self.sum_seq(&c.ppro, &w.ta_seq, c.s_ta),
            self.sum_seq(&c.exemplar, &w.ta_seq, c.s_ta),
            w.ta_seq.iter().map(|p| c.tera.seq_seconds(p, c.s_ta)).sum(),
        ]
    }

    /// Modeled sequential Terrain Masking seconds on each platform.
    pub fn tm_seq_secs(&self) -> [f64; 4] {
        let w = &self.workload;
        let c = &self.cal;
        [
            self.sum_seq(&c.alpha, &w.tm_seq, c.s_tm),
            self.sum_seq(&c.ppro, &w.tm_seq, c.s_tm),
            self.sum_seq(&c.exemplar, &w.tm_seq, c.s_tm),
            w.tm_seq.iter().map(|p| c.tera.seq_seconds(p, c.s_tm)).sum(),
        ]
    }

    /// Modeled chunked Threat Analysis seconds on a conventional SMP with
    /// one chunk/thread per processor (the paper's configuration).
    pub fn ta_conv_parallel(&self, model: &ConventionalModel, n_procs: usize) -> f64 {
        self.sum_par(
            model,
            &self.workload.ta_chunked(n_procs),
            n_procs,
            self.cal.s_ta,
        )
    }

    /// Modeled chunked Threat Analysis seconds on the Tera.
    pub fn ta_tera(&self, n_chunks: usize, n_procs: usize) -> f64 {
        self.workload
            .ta_chunked(n_chunks)
            .iter()
            .map(|p| self.cal.tera.chunked_seconds(p, n_procs, self.cal.s_ta))
            .sum()
    }

    /// Modeled coarse Terrain Masking seconds on a conventional SMP.
    pub fn tm_conv_parallel(&self, model: &ConventionalModel, n_procs: usize) -> f64 {
        self.sum_par(
            model,
            &self.workload.tm_coarse(n_procs),
            n_procs,
            self.cal.s_tm,
        )
    }

    /// Modeled fine-grained Terrain Masking seconds on the Tera.
    pub fn tm_tera(&self, n_procs: usize) -> f64 {
        self.workload
            .tm_fine
            .iter()
            .map(|p| self.cal.tera.phased_seconds(p, n_procs, self.cal.s_tm))
            .sum()
    }

    // ── tables ───────────────────────────────────────────────────────────

    /// Table 1: the platforms (static — from the paper, annotated with
    /// what stands in for each here).
    pub fn table1(&self) -> Table {
        let row = |machine: &str, procs: &str, os: &str, sub: &str| {
            vec![
                Cell::text(machine),
                Cell::text(procs),
                Cell::text(os),
                Cell::text(sub),
            ]
        };
        Table {
            id: "Table 1".into(),
            title: "Platforms used in the performance comparison".into(),
            headers: vec![
                "Machine".into(),
                "Processors".into(),
                "Operating System".into(),
                "Reproduced by".into(),
            ],
            rows: vec![
                row(
                    "Digital AlphaStation",
                    "1 x 500 MHz Alpha 21164A",
                    "Digital Unix 4.0C",
                    "calibrated uniprocessor cache model",
                ),
                row(
                    "NeTpower Sparta",
                    "4 x 200 MHz Pentium Pro",
                    "Windows NT 4.0",
                    "calibrated SMP model + smp-sim bus",
                ),
                row(
                    "Hewlett-Packard Exemplar",
                    "16 x 180 MHz PA-8000",
                    "SPP-UX 5.3",
                    "calibrated SMP model + smp-sim bus",
                ),
                row(
                    "Tera MTA",
                    "2 x 255 MHz MTA-1",
                    "Carlos",
                    "mta-sim + calibrated stream model",
                ),
            ],
        }
    }

    /// Table 2: sequential Threat Analysis times.
    pub fn table2(&self) -> Table {
        let secs = self.ta_seq_secs();
        Table {
            id: "Table 2".into(),
            title: "Execution time of sequential Threat Analysis without parallelization".into(),
            headers: vec!["Platform".into(), "Time (seconds)".into()],
            rows: paper::TABLE2
                .iter()
                .zip(secs)
                .map(|(&(name, p), m)| vec![Cell::text(name), Cell::val(m, p)])
                .collect(),
        }
    }

    fn conv_scaling_table(
        &self,
        id: &str,
        title: &str,
        seq_model: f64,
        seq_paper: f64,
        rows: &[(usize, f64)],
        time: impl Fn(usize) -> f64,
    ) -> Table {
        let mut out_rows = vec![vec![
            Cell::text("Sequential"),
            Cell::val(seq_model, seq_paper),
            Cell::text("N.A."),
        ]];
        for &(n, p_secs) in rows {
            let m_secs = time(n);
            out_rows.push(vec![
                Cell::text(n.to_string()),
                Cell::val(m_secs, p_secs),
                Cell::val(seq_model / m_secs, seq_paper / p_secs),
            ]);
        }
        Table {
            id: id.into(),
            title: title.into(),
            headers: vec![
                "Number of processors".into(),
                "Time (seconds)".into(),
                "Speedup".into(),
            ],
            rows: out_rows,
        }
    }

    /// Table 3: chunked Threat Analysis on the quad Pentium Pro.
    pub fn table3(&self) -> Table {
        let seq = self.ta_seq_secs()[1];
        let ppro = self.cal.ppro.clone();
        self.conv_scaling_table(
            "Table 3",
            "Multithreaded Threat Analysis on quad-processor Pentium Pro",
            seq,
            paper::TABLE3_SEQ,
            &paper::TABLE3,
            |n| self.ta_conv_parallel(&ppro, n),
        )
    }

    /// Table 4: chunked Threat Analysis on the 16-processor Exemplar.
    pub fn table4(&self) -> Table {
        let seq = self.ta_seq_secs()[2];
        let exemplar = self.cal.exemplar.clone();
        self.conv_scaling_table(
            "Table 4",
            "Multithreaded Threat Analysis on 16-processor Exemplar",
            seq,
            paper::TABLE4_SEQ,
            &paper::TABLE4,
            |n| self.ta_conv_parallel(&exemplar, n),
        )
    }

    /// Table 5: chunked Threat Analysis on the Tera MTA (256 chunks).
    pub fn table5(&self) -> Table {
        let t1 = self.ta_tera(256, 1);
        let rows = paper::TABLE5
            .iter()
            .map(|&(n, p)| {
                let m = self.ta_tera(256, n);
                let p1 = paper::TABLE5[0].1;
                vec![
                    Cell::text(n.to_string()),
                    Cell::val(m, p),
                    Cell::val(t1 / m, p1 / p),
                ]
            })
            .collect();
        Table {
            id: "Table 5".into(),
            title: "Multithreaded Threat Analysis on dual-processor Tera MTA (256 chunks)".into(),
            headers: vec![
                "Number of Processors".into(),
                "Time (seconds)".into(),
                "Speedup".into(),
            ],
            rows,
        }
    }

    /// Table 6: Threat Analysis chunk-count sweep on the 2-processor Tera.
    pub fn table6(&self) -> Table {
        let rows = paper::TABLE6
            .iter()
            .map(|&(chunks, p)| {
                let m = self.ta_tera(chunks, 2);
                vec![Cell::text(chunks.to_string()), Cell::val(m, p)]
            })
            .collect();
        Table {
            id: "Table 6".into(),
            title: "Multithreaded Threat Analysis with varying number of chunks on Tera MTA".into(),
            headers: vec!["Number of Chunks".into(), "Time (seconds)".into()],
            rows,
        }
    }

    /// Table 7: Threat Analysis summary. The "Automatic" rows equal the
    /// sequential rows because the modeled compiler (like the real ones)
    /// rejects every loop — see [`Experiments::autopar_report`].
    pub fn table7(&self) -> Table {
        let seq = self.ta_seq_secs();
        let auto_failed = self.autopar_report().all_rejected_for_benchmarks();
        assert!(
            auto_failed,
            "the autopar model must reject the benchmark loops"
        );
        let rows = vec![
            vec![
                Cell::text("None"),
                Cell::text("Alpha"),
                Cell::val(seq[0], 187.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Pentium Pro"),
                Cell::val(seq[1], 458.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Exemplar"),
                Cell::val(seq[2], 343.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Tera"),
                Cell::val(seq[3], 2584.0),
            ],
            vec![
                Cell::text("Automatic"),
                Cell::text("Exemplar"),
                Cell::val(seq[2], 343.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Tera"),
                Cell::val(seq[3], 2584.0),
            ],
            vec![
                Cell::text("Manual"),
                Cell::text("Pentium Pro (4 processors)"),
                Cell::val(self.ta_conv_parallel(&self.cal.ppro, 4), 117.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Exemplar (4 processors)"),
                Cell::val(self.ta_conv_parallel(&self.cal.exemplar, 4), 87.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Exemplar (8 processors)"),
                Cell::val(self.ta_conv_parallel(&self.cal.exemplar, 8), 43.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Exemplar (16 processors)"),
                Cell::val(self.ta_conv_parallel(&self.cal.exemplar, 16), 22.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Tera MTA (1 processor)"),
                Cell::val(self.ta_tera(256, 1), 82.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Tera MTA (2 processors)"),
                Cell::val(self.ta_tera(256, 2), 46.0),
            ],
        ];
        Table {
            id: "Table 7".into(),
            title: "Performance comparison for execution times of Threat Analysis".into(),
            headers: vec![
                "Parallelization".into(),
                "Platform".into(),
                "Time (seconds)".into(),
            ],
            rows,
        }
    }

    /// Table 8: sequential Terrain Masking times.
    pub fn table8(&self) -> Table {
        let secs = self.tm_seq_secs();
        Table {
            id: "Table 8".into(),
            title: "Execution time of sequential Terrain Masking without parallelization".into(),
            headers: vec!["Platform".into(), "Time (seconds)".into()],
            rows: paper::TABLE8
                .iter()
                .zip(secs)
                .map(|(&(name, p), m)| vec![Cell::text(name), Cell::val(m, p)])
                .collect(),
        }
    }

    /// Table 9: coarse Terrain Masking on the quad Pentium Pro.
    pub fn table9(&self) -> Table {
        let seq = self.tm_seq_secs()[1];
        let ppro = self.cal.ppro.clone();
        self.conv_scaling_table(
            "Table 9",
            "Multithreaded Terrain Masking on quad-processor Pentium Pro (10x10 blocking)",
            seq,
            paper::TABLE9_SEQ,
            &paper::TABLE9,
            |n| self.tm_conv_parallel(&ppro, n),
        )
    }

    /// Table 10: coarse Terrain Masking on the 16-processor Exemplar.
    pub fn table10(&self) -> Table {
        let seq = self.tm_seq_secs()[2];
        let exemplar = self.cal.exemplar.clone();
        self.conv_scaling_table(
            "Table 10",
            "Multithreaded Terrain Masking on 16-processor Exemplar (10x10 blocking)",
            seq,
            paper::TABLE10_SEQ,
            &paper::TABLE10,
            |n| self.tm_conv_parallel(&exemplar, n),
        )
    }

    /// Table 11: fine-grained Terrain Masking on the Tera MTA.
    pub fn table11(&self) -> Table {
        let t1 = self.tm_tera(1);
        let rows = paper::TABLE11
            .iter()
            .map(|&(n, p)| {
                let m = self.tm_tera(n);
                let p1 = paper::TABLE11[0].1;
                vec![
                    Cell::text(n.to_string()),
                    Cell::val(m, p),
                    Cell::val(t1 / m, p1 / p),
                ]
            })
            .collect();
        Table {
            id: "Table 11".into(),
            title: "Multithreaded (fine-grained) Terrain Masking on dual-processor Tera MTA".into(),
            headers: vec![
                "Number of Processors".into(),
                "Time (seconds)".into(),
                "Speedup".into(),
            ],
            rows,
        }
    }

    /// Table 12: Terrain Masking summary.
    pub fn table12(&self) -> Table {
        let seq = self.tm_seq_secs();
        let rows = vec![
            vec![
                Cell::text("None"),
                Cell::text("Alpha"),
                Cell::val(seq[0], 158.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Pentium Pro"),
                Cell::val(seq[1], 197.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Exemplar"),
                Cell::val(seq[2], 228.0),
            ],
            vec![Cell::text(""), Cell::text("Tera"), Cell::val(seq[3], 978.0)],
            vec![
                Cell::text("Automatic"),
                Cell::text("Exemplar"),
                Cell::val(seq[2], 228.0),
            ],
            vec![Cell::text(""), Cell::text("Tera"), Cell::val(seq[3], 978.0)],
            vec![
                Cell::text("Manual"),
                Cell::text("Pentium Pro (4 processors)"),
                Cell::val(self.tm_conv_parallel(&self.cal.ppro, 4), 65.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Exemplar (4 processors)"),
                Cell::val(self.tm_conv_parallel(&self.cal.exemplar, 4), 59.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Exemplar (8 processors)"),
                Cell::val(self.tm_conv_parallel(&self.cal.exemplar, 8), 37.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Exemplar (16 processors)"),
                Cell::val(self.tm_conv_parallel(&self.cal.exemplar, 16), 37.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Tera MTA (1 processor)"),
                Cell::val(self.tm_tera(1), 48.0),
            ],
            vec![
                Cell::text(""),
                Cell::text("Tera MTA (2 processors)"),
                Cell::val(self.tm_tera(2), 34.0),
            ],
        ];
        Table {
            id: "Table 12".into(),
            title: "Performance comparison for execution times of Terrain Masking".into(),
            headers: vec![
                "Parallelization".into(),
                "Platform".into(),
                "Time (seconds)".into(),
            ],
            rows,
        }
    }

    /// Every table, in paper order. Generated across all host processors
    /// (on the persistent worker pool — table generation is far too short
    /// to amortize per-region thread spawns); identical output to
    /// generating them one at a time.
    pub fn all_tables(&self) -> Vec<Table> {
        self.all_tables_with_threads(ThreadPool::global().n_threads())
    }

    /// [`Experiments::all_tables`] with an explicit worker count.
    ///
    /// Each table is a pure function of `&self`, so the generators run as a
    /// static `multithreaded_for` over the fixed row of 12 (Program 2's
    /// schedule: table costs are uniform enough that self-scheduling buys
    /// nothing). [`par_map`] preserves paper order regardless of thread
    /// interleaving.
    pub fn all_tables_with_threads(&self, n_threads: usize) -> Vec<Table> {
        const GENERATORS: [fn(&Experiments) -> Table; 12] = [
            Experiments::table1,
            Experiments::table2,
            Experiments::table3,
            Experiments::table4,
            Experiments::table5,
            Experiments::table6,
            Experiments::table7,
            Experiments::table8,
            Experiments::table9,
            Experiments::table10,
            Experiments::table11,
            Experiments::table12,
        ];
        par_map(GENERATORS.len(), n_threads, Schedule::Static, |i| {
            GENERATORS[i](self)
        })
    }

    // ── figures ──────────────────────────────────────────────────────────

    /// Model and paper speedup series for a figure.
    #[allow(clippy::type_complexity)] // (model series, paper series), both (procs, speedup)
    pub fn figure_series(&self, f: Figure) -> (Vec<(usize, f64)>, Vec<(usize, f64)>) {
        let (seq_m, seq_p, rows, time): (f64, f64, &[(usize, f64)], Box<dyn Fn(usize) -> f64>) =
            match f {
                Figure::ThreatPPro => (
                    self.ta_seq_secs()[1],
                    paper::TABLE3_SEQ,
                    &paper::TABLE3,
                    Box::new(|n| self.ta_conv_parallel(&self.cal.ppro, n)),
                ),
                Figure::ThreatExemplar => (
                    self.ta_seq_secs()[2],
                    paper::TABLE4_SEQ,
                    &paper::TABLE4,
                    Box::new(|n| self.ta_conv_parallel(&self.cal.exemplar, n)),
                ),
                Figure::TerrainPPro => (
                    self.tm_seq_secs()[1],
                    paper::TABLE9_SEQ,
                    &paper::TABLE9,
                    Box::new(|n| self.tm_conv_parallel(&self.cal.ppro, n)),
                ),
                Figure::TerrainExemplar => (
                    self.tm_seq_secs()[2],
                    paper::TABLE10_SEQ,
                    &paper::TABLE10,
                    Box::new(|n| self.tm_conv_parallel(&self.cal.exemplar, n)),
                ),
            };
        let model = rows.iter().map(|&(n, _)| (n, seq_m / time(n))).collect();
        let paper_pts = rows.iter().map(|&(n, p)| (n, seq_p / p)).collect();
        (model, paper_pts)
    }

    /// Render a figure as an ASCII plot.
    pub fn figure(&self, f: Figure) -> String {
        let (id, title) = match f {
            Figure::ThreatPPro => (
                "Figure 1",
                "Speedup of multithreaded Threat Analysis on quad Pentium Pro",
            ),
            Figure::ThreatExemplar => (
                "Figure 2",
                "Speedup of multithreaded Threat Analysis on 16-processor Exemplar",
            ),
            Figure::TerrainPPro => (
                "Figure 3",
                "Speedup of coarse-grained Terrain Masking on quad Pentium Pro",
            ),
            Figure::TerrainExemplar => (
                "Figure 4",
                "Speedup of multithreaded Terrain Masking on 16-processor Exemplar",
            ),
        };
        let (model, paper_pts) = self.figure_series(f);
        ascii_speedup_figure(id, title, &model, &paper_pts)
    }

    // ── supporting experiments ───────────────────────────────────────────

    /// The automatic-parallelization experiment (§5/§6/§7): run the
    /// modeled 1998 compiler AND the dataflow pass over the benchmark
    /// loop nests.
    pub fn autopar_report(&self) -> AutoparSummary {
        AutoparSummary {
            report: autopar::programs::benchmark_report(),
            dataflow: autopar::programs::dataflow_report(1),
        }
    }

    /// "Table Auto" — the living auto-vs-manual comparison (ISSUE 10):
    /// Programs 1–4 (plus the affine control loop) × {paper compilers,
    /// conservative pass, dataflow pass}, with the cleared obstacles,
    /// residual blockers (statement provenance included), the emitted
    /// `sthreads` schedule, and an execution check: every loop the
    /// dataflow pass newly parallelizes is run through the corresponding
    /// `c3i` kernel and its output asserted bit-identical to the
    /// sequential program (and hence to the paper's manual
    /// transformation, which computes the same sections).
    ///
    /// Every cell is deterministic text — no timings — so the CSV is
    /// scale-independent and diffable against the pinned
    /// `results/table_auto.csv` in CI. `n_threads` drives the SCC-DAG
    /// dataflow solve and the execution checks, never the verdicts
    /// (which are bit-identical at any worker count).
    pub fn table_auto(n_threads: usize) -> Table {
        let n_threads = n_threads.max(1);
        let loops = autopar::programs::benchmark_loops();
        let conservative = autopar::programs::benchmark_report();
        let dataflow = autopar::programs::dataflow_report(n_threads);
        assert!(
            dataflow.strictly_improves(&conservative),
            "the dataflow pass must parallelize strictly more loops"
        );

        // Display names and paper-column verdicts (no commas: cells go
        // through the naive CSV writer).
        let programs = [
            "Program 1: Threat Analysis (sequential)",
            "Program 2: Threat Analysis (chunked; pragma removed)",
            "Program 3: Terrain Masking (sequential)",
            "Program 4: Terrain Masking (coarse; pragma removed)",
            "Control: dense affine vector loop",
        ];
        let paper_verdicts = [
            "rejected",
            "pragma required",
            "rejected",
            "pragma required",
            "parallelized",
        ];

        let mut rows = Vec::new();
        for (i, (l, dv)) in loops.iter().zip(&dataflow.verdicts).enumerate() {
            let plan = autopar::emit_plan(l, dv);
            let exec = match i {
                0 => {
                    // Program 1's emitted transformation is per-iteration
                    // compaction: one output section per threat,
                    // concatenated in iteration order == the sequential
                    // interval list, element for element.
                    let schedule = plan.as_ref().expect("P1 parallel").schedule;
                    exec_check_threat(schedule, true, n_threads);
                    "bit-identical to sequential (2 scenarios; per-threat sections)"
                }
                1 => {
                    // Program 2 is the manual transformation minus the
                    // pragma: 8 chunks, exactly the paper's structure.
                    let schedule = plan.as_ref().expect("P2 parallel").schedule;
                    exec_check_threat(schedule, false, n_threads);
                    "bit-identical to sequential and manual (2 scenarios; 8 chunks)"
                }
                2 | 3 => "not executed (loop rejected)",
                _ => "parallel under both passes (no kernel twin)",
            };
            rows.push(vec![
                Cell::text(programs[i]),
                Cell::text(paper_verdicts[i]),
                Cell::text(if conservative.verdicts[i].parallel {
                    "parallel"
                } else {
                    "rejected"
                }),
                Cell::text(if dv.verdict.parallel {
                    "PARALLEL (auto)"
                } else {
                    "rejected"
                }),
                Cell::text(cleared_summary(dv)),
                Cell::text(residual_summary(&dv.verdict)),
                Cell::text(
                    plan.map(|p| p.schedule.to_string())
                        .unwrap_or_else(|| "-".into()),
                ),
                Cell::text(exec),
            ]);
        }
        Table {
            id: "Table Auto".into(),
            title: "Automatic parallelization: paper compilers vs conservative vs dataflow pass"
                .into(),
            headers: vec![
                "Program".into(),
                "Paper compilers".into(),
                "Conservative pass".into(),
                "Dataflow pass".into(),
                "Cleared obstacles".into(),
                "Residual blockers".into(),
                "Schedule".into(),
                "Execution check".into(),
            ],
            rows,
        }
    }

    /// Robustness analysis: perturb each calibrated constant by ±20% and
    /// recompute the paper's headline comparisons. The evaluation's
    /// *conclusions* (orderings and rough factors) should not hinge on
    /// exact calibration values; this experiment quantifies that. Each row
    /// reports a headline metric at the low/baseline/high setting of one
    /// constant.
    pub fn sensitivity(&self) -> Table {
        // Headline metrics, computed against a given calibration.
        let metrics = |cal: &Calibration| -> [f64; 3] {
            let with = Experiments {
                workload: self.workload.clone(),
                cal: cal.clone(),
            };
            let tera_seq_ta: f64 = with
                .workload
                .ta_seq
                .iter()
                .map(|p| cal.tera.seq_seconds(p, cal.s_ta))
                .sum();
            let alpha_ta = with.sum_seq(&cal.alpha, &with.workload.ta_seq, cal.s_ta);
            [
                tera_seq_ta / alpha_ta, // Tera-vs-Alpha sequential slowdown
                with.ta_tera(256, 1) / with.ta_conv_parallel(&cal.exemplar, 4), // Tera(1)/Exemplar(4)
                with.tm_tera(1) / with.tm_tera(2),                              // TM 2-proc speedup
            ]
        };
        let base = metrics(&self.cal);

        let mut rows = Vec::new();
        let mut push = |name: &str, lo: Calibration, hi: Calibration| {
            let l = metrics(&lo);
            let h = metrics(&hi);
            for (i, label) in [
                "Tera/Alpha seq slowdown",
                "Tera(1)/Exemplar(4) TA",
                "TM 2-proc speedup",
            ]
            .iter()
            .enumerate()
            {
                rows.push(vec![
                    Cell::text(name.to_string()),
                    Cell::text((*label).to_string()),
                    Cell::bare(l[i]),
                    Cell::bare(base[i]),
                    Cell::bare(h[i]),
                ]);
            }
        };

        let scale_tera = |f: f64| -> Calibration {
            let mut c = self.cal.clone();
            c.tera.mem_latency *= f;
            c
        };
        push("MTA memory latency ±20%", scale_tera(0.8), scale_tera(1.2));

        let scale_eta = |f: f64| -> Calibration {
            let mut c = self.cal.clone();
            c.tera.eta2 = (c.tera.eta2 * f).min(1.0);
            c
        };
        push("MTA network eta2 ±20%", scale_eta(0.8), scale_eta(1.2));

        let scale_stream = |f: f64| -> Calibration {
            let mut c = self.cal.clone();
            c.exemplar.stream_cost *= f;
            c.ppro.stream_cost *= f;
            c.alpha.stream_cost *= f;
            c
        };
        push(
            "SMP streaming-op cost ±20%",
            scale_stream(0.8),
            scale_stream(1.2),
        );

        let scale_kappa = |f: f64| -> Calibration {
            let mut c = self.cal.clone();
            c.tera.spawn_cycles_per_task *= f;
            c
        };
        push(
            "fine-grain spawn cost ±20%",
            scale_kappa(0.8),
            scale_kappa(1.2),
        );

        Table {
            id: "Sensitivity".into(),
            title: "Headline metrics under ±20% perturbation of each calibrated constant".into(),
            headers: vec![
                "Perturbed constant".into(),
                "Metric".into(),
                "-20%".into(),
                "baseline".into(),
                "+20%".into(),
            ],
            rows,
        }
    }

    /// §8 outlook: the paper could not study scalability beyond two
    /// processors ("We look forward to investigating this issue when Tera
    /// MTAs with large numbers of processors are installed"). This
    /// projection extends the calibrated model to larger configurations,
    /// under two explicit assumptions: network efficiency stays at the
    /// calibrated 2-processor value, and the programs are used exactly as
    /// published (Threat Analysis with one chunk per threat — its maximum
    /// parallelism of 1000 logical threads; Terrain Masking with the
    /// fine-grained inner-loop structure and its serial future-spawning
    /// thread).
    ///
    /// The projection surfaces both §8 predictions: Threat Analysis keeps
    /// scaling until its 1000 threads spread too thin (128 streams per
    /// processor want ~L streams each), while fine-grained Terrain
    /// Masking hits an Amdahl wall at the serial spawner.
    pub fn scalability_projection(&self, procs: &[usize]) -> Table {
        let max_chunks = self
            .workload
            .ta_per_threat
            .iter()
            .map(Vec::len)
            .min()
            .unwrap_or(1000);
        let ta1 = self.ta_tera(max_chunks, 1);
        let tm1 = self.tm_tera(1);
        let rows = procs
            .iter()
            .map(|&p| {
                let ta = self.ta_tera(max_chunks, p);
                let tm = self.tm_tera(p);
                vec![
                    Cell::text(p.to_string()),
                    Cell::bare(ta),
                    Cell::bare(ta1 / ta),
                    Cell::bare(tm),
                    Cell::bare(tm1 / tm),
                ]
            })
            .collect();
        Table {
            id: "Projection".into(),
            title: format!(
                "Tera MTA scalability outlook (Section 8; model extrapolation, \
                 eta={:.2} held constant, TA parallelized over all {} threats)",
                self.cal.tera.eta2, max_chunks
            ),
            headers: vec![
                "Processors".into(),
                "Threat Analysis (s)".into(),
                "TA speedup".into(),
                "Terrain Masking (s)".into(),
                "TM speedup".into(),
            ],
            rows,
        }
    }
}

/// The modeled compilers' outcomes on the benchmark programs: the
/// conservative 1998 pass (paper-faithful, rejects everything) and the
/// dataflow pass (reductions, privatization, compaction, purity
/// summaries) side by side.
pub struct AutoparSummary {
    /// Conservative-pass verdicts for Programs 1–4 (no pragmas) plus the
    /// affine control loop.
    pub report: autopar::Report,
    /// Dataflow-pass verdicts over the same loops, in the same order.
    pub dataflow: autopar::DataflowReport,
}

impl AutoparSummary {
    /// Whether all four benchmark loop nests were rejected (the control
    /// loop is index 4).
    pub fn all_rejected_for_benchmarks(&self) -> bool {
        self.report.verdicts[..4].iter().all(|v| !v.parallel) && self.report.verdicts[4].parallel
    }

    /// Whether the dataflow pass parallelizes strictly more loops than
    /// the conservative pass (it must — ISSUE 10's acceptance bar).
    pub fn dataflow_improves(&self) -> bool {
        self.dataflow.strictly_improves(&self.report)
    }
}

/// One-line summary of what the dataflow pass cleared on a loop, for the
/// "Table Auto" cells (semicolon-joined — cells must stay comma-free for
/// the naive CSV writer).
fn cleared_summary(v: &autopar::DataflowVerdict) -> String {
    let mut parts = Vec::new();
    for r in &v.reductions {
        parts.push(format!("{} reduction `{}`", r.op, r.name));
    }
    for s in &v.privatized_scalars {
        parts.push(format!("privatized scalar `{s}`"));
    }
    for a in &v.privatized_arrays {
        parts.push(format!("privatized array `{a}`"));
    }
    for (arr, ctr) in &v.compactions {
        parts.push(format!("compaction `{arr}[{ctr}]`"));
    }
    if !v.cleared_calls.is_empty() {
        parts.push(format!("pure calls: {}", v.cleared_calls.join(" ")));
    }
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join("; ")
    }
}

/// One-line summary of the residual blockers (with line provenance) the
/// dataflow pass could NOT clear — empty for parallel loops.
fn residual_summary(v: &autopar::LoopVerdict) -> String {
    if v.parallel {
        return "-".into();
    }
    v.reasons
        .iter()
        .map(|r| {
            let what = match &r.kind {
                autopar::ReasonKind::ScalarDependence { name } => {
                    format!("carried scalar `{name}`")
                }
                autopar::ReasonKind::DataDependentSubscript { array } => {
                    format!("data-dependent store `{array}`")
                }
                autopar::ReasonKind::ArrayConflict { array, .. } => {
                    format!("array conflict `{array}`")
                }
                autopar::ReasonKind::OpaqueCall { name } => format!("opaque call `{name}`"),
            };
            if r.line > 0 {
                format!("{what} (line {})", r.line)
            } else {
                what
            }
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// Execution check behind the "Table Auto" rows: run the auto-parallelized
/// Threat Analysis structure through the real `c3i` chunked kernel under
/// the emitted schedule and assert the flattened output is bit-identical
/// to the sequential kernel, on two small scenarios. `per_threat` chooses
/// Program 1's shape (one chunk per threat — per-iteration compaction
/// sections) versus Program 2's (the paper's 8 chunks).
fn exec_check_threat(schedule: Schedule, per_threat: bool, n_threads: usize) {
    for seed in [1u64, 7] {
        let sc = c3i::threat::small_scenario(seed);
        let seq = c3i::threat::threat_analysis_host(&sc);
        let n_chunks = if per_threat { sc.threats.len() } else { 8 };
        let run =
            c3i::threat::threat_analysis_chunked_host_sched(&sc, n_chunks, n_threads, schedule);
        let flat: Vec<_> = run.per_chunk.into_iter().flatten().collect();
        assert_eq!(
            flat, seq,
            "auto-parallelized Threat Analysis diverged from sequential (seed {seed})"
        );
    }
}

// ── harness self-timing (the BENCH_harness.json report) ──────────────────

/// Stream counts exercised by the utilization sweep phase (and by
/// `repro`'s utilization section).
pub const UTIL_STREAMS: [usize; 11] = [1, 2, 4, 8, 16, 32, 48, 64, 80, 100, 128];

/// The simulator configuration used for utilization measurements.
pub fn util_cfg() -> mta_sim::MtaConfig {
    mta_sim::MtaConfig {
        mem_words: 1 << 20,
        ..mta_sim::MtaConfig::tera(1)
    }
}

/// Minimum acceptable parallel speedup for the table-generation phase.
/// The phase's work is tiny (~1 ms), so the only way to fail this gate is
/// to pay dispatch overhead for parallelism that cannot help — exactly the
/// regression the overhead-aware sequential cutoff in `par_map` exists to
/// prevent.
pub const TABLE_GEN_SPEEDUP_GATE: f64 = 0.95;

/// Minimum acceptable ratio of shared-queue time to work-stealing time on
/// the `fine_grain` task storm. The phase compares the two *dispatch
/// mechanisms* at the same thread count, so the gate asserts stealing is
/// never slower than the central queue it replaced; on multi-core hosts
/// the storm additionally reports the real contention gap between them.
pub const FINE_GRAIN_SPEEDUP_GATE: f64 = 0.95;

/// Number of tasks in the `fine_grain` storm.
pub const FINE_GRAIN_TASKS: usize = 10_000;

/// Minimum acceptable ratio of sequential-interpreter time to
/// parallel-tick time for the `mta_par` phase. The phase runs the same
/// simulation through `Machine::run` and through the barriered two-phase
/// `Machine::run_parallel` (at [`mta_par_workers`] host workers) and
/// demands bit-identical output; the gate then asserts the deterministic
/// windowed tick never costs more than a few percent over the sequential
/// interpreter on this host. On a single-core host that is the whole
/// claim; on multi-core hosts the recorded speedup additionally shows
/// what the parallel tick buys.
pub const MTA_PAR_SPEEDUP_GATE: f64 = 0.95;

/// Minimum acceptable speedup of the run-based arena kernels over the
/// pinned scalar baseline on the terrain pipeline. The data-layout pass
/// (edge-run ring iteration, row-sweep recurrence, hoisted distance
/// tables, arena-backed scratch) must pay for its complexity; anything
/// below this on the LOS recurrence means the kernels regressed.
pub const KERNELS_SPEEDUP_GATE: f64 = 1.5;

/// One ~1µs task of the fine-grain storm: a short LCG spin returning a
/// checksum both dispatch arms must reproduce exactly.
fn storm_task(i: usize) -> u64 {
    let mut x = i as u64 | 1;
    for _ in 0..500 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

/// The `fine_grain` storm: [`FINE_GRAIN_TASKS`] × ~1µs tasks through
/// [`par_map`] under the given schedule. This is the regime the paper's §6
/// inner-loop parallelism lives in — tasks far too short for per-claim
/// synchronization on a shared structure — and the workload where the
/// stealing scheduler must beat (or at least match) the shared queue.
pub fn fine_grain_storm(n_threads: usize, schedule: Schedule) -> Vec<u64> {
    par_map(FINE_GRAIN_TASKS, n_threads, schedule, storm_task)
}

/// The `mta_par` simulation programs: the mixed ALU/memory kernel from
/// the utilization experiments plus the chunked-scan kernel (the paper's
/// §6 chunked self-scheduling shape), both sized for the paper's
/// two-processor SDSC machine. Two kernels with different
/// memory-to-ALU ratios keep the phase's ratio a property of the tick
/// rather than of one instruction mix. `Reduced` shrinks the stream and
/// iteration counts so the measurement pair stays within CI budget — but
/// not below the point where per-window overhead stops being amortized
/// and the ratio measures fixed costs instead of the tick itself.
fn mta_par_programs(scale: crate::workload::WorkloadScale) -> Vec<mta_sim::Program> {
    match scale {
        crate::workload::WorkloadScale::Paper => vec![
            mta_sim::kernels::mixed_kernel(256, 2000, 4, 100_000),
            mta_sim::kernels::chunked_scan_kernel(800, 300, 256).0,
        ],
        crate::workload::WorkloadScale::Reduced => vec![
            mta_sim::kernels::mixed_kernel(128, 1000, 4, 100_000),
            mta_sim::kernels::chunked_scan_kernel(400, 200, 256).0,
        ],
    }
}

/// Worker count for the `mta_par` parallel arm: the host's available
/// parallelism, capped at the harness thread count. A single worker still
/// drives the full windowed two-phase tick — `Machine::run_parallel` only
/// falls back to the sequential interpreter for single-processor machines
/// — so the phase's identity check is meaningful even on a one-core host,
/// where the gate reduces to "deterministic windowing costs under 5%".
pub fn mta_par_workers(n_threads: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, n_threads.max(1))
}

/// Run the `mta_par` workload through one of its two arms — `workers == 0`
/// is the sequential interpreter, otherwise the barriered two-phase tick
/// with that many host workers — on the two-processor Tera configuration.
/// Returns, per kernel, the full [`mta_sim::RunResult`] plus an FNV-1a
/// digest of the final memory image (every word and its full/empty bit),
/// so the phase's `identical_output` check covers simulated data, not
/// just statistics.
pub fn mta_par_outcome(
    scale: crate::workload::WorkloadScale,
    workers: usize,
) -> Vec<(mta_sim::RunResult, u64)> {
    mta_par_programs(scale)
        .into_iter()
        .map(|program| {
            let cfg = mta_sim::MtaConfig {
                mem_words: 1 << 17,
                ..mta_sim::MtaConfig::tera(2)
            };
            let mut m = mta_sim::Machine::new(cfg, program).expect("mta_par kernel must validate");
            m.spawn(0, 0).expect("spawn main stream");
            let r = if workers == 0 {
                m.run(2_000_000_000)
            } else {
                m.run_parallel(2_000_000_000, workers)
            };
            let mut h: u64 = 0xcbf29ce484222325;
            for addr in 0..m.memory().len() {
                for v in [m.memory().load(addr), m.memory().is_full(addr) as u64] {
                    h ^= v;
                    h = h.wrapping_mul(0x100000001b3);
                }
            }
            (r, h)
        })
        .collect()
}

/// Where a phase's parallel wall-clock went, from `sthreads::stats`
/// snapshot deltas taken around the phase with nano-timing enabled.
///
/// The three components are *worker-side* accounting, not a partition of
/// wall-clock: `useful_work_s` sums body execution across all workers, so
/// with perfect N-way scaling it is ≈ N × the phase's wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseBreakdown {
    /// Seconds between a region's publication and each worker's pickup,
    /// summed over workers — the price of waking the pool.
    pub dispatch_overhead_s: f64,
    /// Seconds separating the busiest worker from the mean — time the
    /// region's barrier spent waiting on stragglers.
    pub imbalance_s: f64,
    /// Seconds of loop-body execution summed across workers (including
    /// work kept inline by the sequential cutoff).
    pub useful_work_s: f64,
}

impl PhaseBreakdown {
    fn from_delta(d: &sthreads::StatsSnapshot) -> Self {
        Self {
            dispatch_overhead_s: d.dispatch_ns as f64 / 1e9,
            imbalance_s: d.imbalance_ns as f64 / 1e9,
            useful_work_s: d.busy_ns as f64 / 1e9,
        }
    }
}

/// One row of the harness self-timing report: the same phase run two
/// ways, producing identical output. For most phases the two arms are one
/// host thread vs all of them; for `fine_grain` both arms use all host
/// threads and the comparison is shared-queue dispatch (`seq_seconds`)
/// vs work-stealing dispatch (`par_seconds`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseTiming {
    /// Phase name (stable — `ci.sh` gates on "table generation").
    pub phase: String,
    /// Wall-clock seconds on one host thread.
    pub seq_seconds: f64,
    /// Wall-clock seconds on `host_threads` threads.
    pub par_seconds: f64,
    /// Robust speedup estimate: the median of per-repeat paired
    /// `seq/par` ratios (each repeat times the two arms back-to-back).
    /// For single-repeat phases this equals
    /// `seq_seconds / par_seconds`; with repeats the paired median
    /// resists host-load spikes that the ratio of minima would not.
    pub speedup: f64,
    /// Whether the parallel run's output was bit-identical to the
    /// sequential run's.
    pub identical_output: bool,
    /// Where the parallel run's time went.
    pub breakdown: PhaseBreakdown,
}

/// The `kernels` phase: the full terrain pipeline (Program 3) run through
/// the pinned scalar baseline (`terrain_masking_reference`: fresh
/// per-threat allocations, cell-at-a-time recurrence) and through the
/// run-based arena kernels, on one thread each. Unlike [`PhaseTiming`],
/// both arms are sequential — the comparison is data layout, not
/// scheduling.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelsPhase {
    /// Wall-clock seconds of the pinned scalar baseline.
    pub baseline_scalar_s: f64,
    /// Wall-clock seconds of the optimized kernels.
    pub optimized_s: f64,
    /// `baseline_scalar_s / optimized_s`.
    pub speedup: f64,
    /// Whether the optimized masking grid was bit-identical to the
    /// baseline's.
    pub identical_output: bool,
}

/// The `BENCH_harness.json` document.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HarnessReport {
    /// Workload scale the phases ran at (`"Paper"` or `"Reduced"`).
    pub scale: String,
    /// Host threads used for the parallel runs.
    pub host_threads: usize,
    /// Measured cost of waking the pool for an empty region, used by the
    /// sequential cutoff (see `sthreads::stats::dispatch_floor_ns`).
    pub dispatch_floor_ns: u64,
    /// One entry per parallelized harness phase.
    pub phases: Vec<PhaseTiming>,
    /// The kernel data-layout comparison (deliberately not optional: a
    /// report without it predates the extended schema and must not pass
    /// the gate).
    pub kernels: KernelsPhase,
}

impl HarnessReport {
    /// Check the report against the harness's invariants: every phase
    /// present and bit-identical, every number finite and positive, and
    /// the table-generation phase at or above
    /// [`TABLE_GEN_SPEEDUP_GATE`]. Returns every violation, not just the
    /// first — this is the `ci.sh` regression gate.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        if self.host_threads == 0 {
            errs.push("host_threads is zero".to_string());
        }
        if self.phases.is_empty() {
            errs.push("report has no phases".to_string());
        }
        for p in &self.phases {
            if !p.identical_output {
                errs.push(format!(
                    "phase '{}': parallel output differs from sequential",
                    p.phase
                ));
            }
            for (name, v) in [
                ("seq_seconds", p.seq_seconds),
                ("par_seconds", p.par_seconds),
                ("speedup", p.speedup),
            ] {
                if !(v.is_finite() && v > 0.0) {
                    errs.push(format!("phase '{}': {name} = {v} is not positive", p.phase));
                }
            }
            for (name, v) in [
                ("dispatch_overhead_s", p.breakdown.dispatch_overhead_s),
                ("imbalance_s", p.breakdown.imbalance_s),
                ("useful_work_s", p.breakdown.useful_work_s),
            ] {
                if !(v.is_finite() && v >= 0.0) {
                    errs.push(format!(
                        "phase '{}': breakdown.{name} = {v} is invalid",
                        p.phase
                    ));
                }
            }
        }
        match self.phases.iter().find(|p| p.phase == "table generation") {
            Some(tg) if tg.speedup < TABLE_GEN_SPEEDUP_GATE => errs.push(format!(
                "table generation speedup {:.2}x is below the {TABLE_GEN_SPEEDUP_GATE} gate \
                 (seq {:.6} s, par {:.6} s) — parallel dispatch is costing more than it saves",
                tg.speedup, tg.seq_seconds, tg.par_seconds
            )),
            Some(_) => {}
            None => errs.push("missing 'table generation' phase".to_string()),
        }
        match self.phases.iter().find(|p| p.phase == "fine_grain") {
            Some(fg) if fg.speedup < FINE_GRAIN_SPEEDUP_GATE => errs.push(format!(
                "fine_grain speedup {:.2}x is below the {FINE_GRAIN_SPEEDUP_GATE} gate \
                 (shared queue {:.6} s, stealing {:.6} s) — the stealing scheduler is \
                 slower than the shared queue it replaced",
                fg.speedup, fg.seq_seconds, fg.par_seconds
            )),
            Some(_) => {}
            None => errs.push("missing 'fine_grain' phase".to_string()),
        }
        match self.phases.iter().find(|p| p.phase == "mta_par") {
            Some(mp) if mp.speedup < MTA_PAR_SPEEDUP_GATE => errs.push(format!(
                "mta_par speedup {:.2}x is below the {MTA_PAR_SPEEDUP_GATE} gate \
                 (sequential interpreter {:.6} s, parallel tick {:.6} s) — the \
                 windowed two-phase tick is costing more than it saves",
                mp.speedup, mp.seq_seconds, mp.par_seconds
            )),
            Some(_) => {}
            None => errs.push("missing 'mta_par' phase".to_string()),
        }
        let k = &self.kernels;
        if !k.identical_output {
            errs.push(
                "kernels: optimized masking grid differs bitwise from the scalar baseline"
                    .to_string(),
            );
        }
        for (name, v) in [
            ("baseline_scalar_s", k.baseline_scalar_s),
            ("optimized_s", k.optimized_s),
            ("speedup", k.speedup),
        ] {
            if !(v.is_finite() && v > 0.0) {
                errs.push(format!("kernels: {name} = {v} is not positive"));
            }
        }
        if k.speedup.is_finite() && k.speedup < KERNELS_SPEEDUP_GATE {
            errs.push(format!(
                "kernels speedup {:.2}x is below the {KERNELS_SPEEDUP_GATE} gate \
                 (scalar baseline {:.6} s, optimized {:.6} s) — the run-based arena \
                 kernels are not paying for themselves",
                k.speedup, k.baseline_scalar_s, k.optimized_s
            ));
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Human-readable rendition of the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Harness self-timing ({} scale, {} host threads; pool dispatch floor {} ns)\n",
            self.scale, self.host_threads, self.dispatch_floor_ns
        ));
        out.push_str(
            "  phase                  1 thread      parallel   speedup  identical   \
             dispatch  imbalance     useful\n",
        );
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<20} {:>8.3} s   {:>8.3} s   {:>6.2}x  {:<9} {:>8.1} ms {:>7.1} ms {:>7.1} ms\n",
                p.phase,
                p.seq_seconds,
                p.par_seconds,
                p.speedup,
                p.identical_output,
                p.breakdown.dispatch_overhead_s * 1e3,
                p.breakdown.imbalance_s * 1e3,
                p.breakdown.useful_work_s * 1e3,
            ));
        }
        let k = &self.kernels;
        out.push_str(&format!(
            "  kernels (data layout): scalar baseline {:.3} s, optimized {:.3} s, \
             {:.2}x, identical {}\n",
            k.baseline_scalar_s, k.optimized_s, k.speedup, k.identical_output,
        ));
        out
    }
}

/// Run `f` `repeats` times; return the fastest run's seconds, value, and
/// stats delta. Repeats exist for sub-millisecond phases, where a single
/// scheduler hiccup would dominate the measurement and flap the ci gate.
fn best_of<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T, sthreads::StatsSnapshot) {
    assert!(repeats > 0);
    let mut best: Option<(f64, T, sthreads::StatsSnapshot)> = None;
    for _ in 0..repeats {
        let before = sthreads::stats::snapshot();
        let start = std::time::Instant::now();
        let v = f();
        let secs = start.elapsed().as_secs_f64();
        let delta = sthreads::stats::snapshot() - before;
        if best.as_ref().is_none_or(|(b, _, _)| secs < *b) {
            best = Some((secs, v, delta));
        }
    }
    best.unwrap()
}

fn measure_phase<T>(
    name: &str,
    repeats: usize,
    mut seq: impl FnMut() -> T,
    mut par: impl FnMut() -> T,
    same: impl Fn(&T, &T) -> bool,
) -> PhaseTiming {
    assert!(repeats > 0);
    // The arms alternate rather than running as back-to-back blocks, and
    // the gated `speedup` is the *median of per-repeat paired ratios*
    // rather than the ratio of the per-arm minima. Pairing means a
    // sustained host-load spike inflates both halves of the repeat it
    // lands on (the ratio survives); the median then discards the
    // repeats a short spike hit asymmetrically. On a noisy shared CI
    // host this is the difference between a gate that measures the code
    // and one that measures the neighbours. `seq_seconds`/`par_seconds`
    // still report the per-arm minima (noise only ever inflates a run,
    // so the minimum estimates the true cost).
    let mut best_seq: Option<(f64, T)> = None;
    let mut best_par: Option<(f64, T, sthreads::StatsSnapshot)> = None;
    let mut ratios = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let start = std::time::Instant::now();
        let v = seq();
        let secs_seq = start.elapsed().as_secs_f64();
        if best_seq.as_ref().is_none_or(|(b, _)| secs_seq < *b) {
            best_seq = Some((secs_seq, v));
        }
        let before = sthreads::stats::snapshot();
        let start = std::time::Instant::now();
        let v = par();
        let secs_par = start.elapsed().as_secs_f64();
        let delta = sthreads::stats::snapshot() - before;
        if best_par.as_ref().is_none_or(|(b, _, _)| secs_par < *b) {
            best_par = Some((secs_par, v, delta));
        }
        ratios.push(secs_seq / secs_par);
    }
    ratios.sort_unstable_by(f64::total_cmp);
    let speedup = ratios[ratios.len() / 2];
    let (t_seq, v_seq) = best_seq.unwrap();
    let (t_par, v_par, delta) = best_par.unwrap();
    PhaseTiming {
        phase: name.to_string(),
        seq_seconds: t_seq,
        par_seconds: t_par,
        speedup,
        identical_output: same(&v_seq, &v_par),
        breakdown: PhaseBreakdown::from_delta(&delta),
    }
}

/// Measure the `kernels` phase: the terrain pipeline through the pinned
/// scalar baseline vs the run-based arena kernels, one thread each,
/// best-of-3, with a bitwise output comparison. The scenario matches the
/// workload scale's terrain configuration so the numbers describe the
/// pipeline the tables actually time.
pub fn measure_kernels(scale: crate::workload::WorkloadScale) -> KernelsPhase {
    use c3i::terrain::{
        generate, terrain_masking_into, terrain_masking_reference, TerrainScenarioParams,
    };
    let params = match scale {
        crate::workload::WorkloadScale::Paper => TerrainScenarioParams {
            seed: 1,
            ..TerrainScenarioParams::default()
        },
        crate::workload::WorkloadScale::Reduced => TerrainScenarioParams {
            grid_size: 512,
            n_threats: 30,
            seed: 1,
            ..TerrainScenarioParams::default()
        },
    };
    let scenario = generate(params);
    let (t_base, baseline, _) = best_of(3, || terrain_masking_reference(&scenario));
    let mut optimized = c3i::Grid::new(0, 0, f64::INFINITY);
    // One warm-up sizes the thread's arena; the timed runs then measure
    // the allocation-free steady state the pipeline actually runs in.
    terrain_masking_into(&scenario, &mut optimized, &mut c3i::NoRec);
    let (t_opt, _, _) = best_of(3, || {
        terrain_masking_into(&scenario, &mut optimized, &mut c3i::NoRec)
    });
    let identical = baseline.x_size() == optimized.x_size()
        && baseline.y_size() == optimized.y_size()
        && baseline
            .as_slice()
            .iter()
            .zip(optimized.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    KernelsPhase {
        baseline_scalar_s: t_base,
        optimized_s: t_opt,
        speedup: t_base / t_opt,
        identical_output: identical,
    }
}

/// Time every parallelized harness phase sequentially and on `n_threads`
/// host threads, verify the outputs are bit-identical, and attribute the
/// parallel time via `sthreads::stats`. This is `repro --timing`'s
/// engine; the caller serializes the result to `BENCH_harness.json`.
///
/// The pool is pre-warmed so parallel timings measure steady-state
/// dispatch (condvar wakeups), not one-time thread creation — the paper's
/// own distinction between stream creation and `CreateThread` (§7).
pub fn harness_timing(scale: crate::workload::WorkloadScale, n_threads: usize) -> HarnessReport {
    ThreadPool::global().warm(n_threads);
    let floor = sthreads::stats::dispatch_floor_ns();
    let was_timing = sthreads::stats::timing_enabled();
    sthreads::stats::set_timing(true);

    let mut phases = Vec::new();
    phases.push(measure_phase(
        "workload measurement",
        1,
        || Workload::build_with(scale, 1, Schedule::Dynamic),
        || Workload::build_with(scale, n_threads, Schedule::Dynamic),
        |a, b| a == b,
    ));

    let exps = Experiments::new(Workload::build_with(scale, n_threads, Schedule::Dynamic));
    let csv = |tables: &[Table]| -> String {
        tables
            .iter()
            .map(|t| t.to_csv())
            .collect::<Vec<_>>()
            .join("\n")
    };
    // Table generation takes ~1 ms; best-of-3 keeps one preempted run
    // from deciding the ci gate.
    phases.push(measure_phase(
        "table generation",
        3,
        || exps.all_tables_with_threads(1),
        || exps.all_tables_with_threads(n_threads),
        |a, b| csv(a) == csv(b),
    ));

    phases.push(measure_phase(
        "utilization sweep",
        1,
        || mta_sim::kernels::measure_utilization_sweep(&util_cfg(), &UTIL_STREAMS, 400, 3, 1),
        || {
            mta_sim::kernels::measure_utilization_sweep(
                &util_cfg(),
                &UTIL_STREAMS,
                400,
                3,
                n_threads,
            )
        },
        |a, b| a == b,
    ));

    // Both arms run at n_threads; the row compares the shared-queue and
    // work-stealing dispatchers on the 10k×1µs storm. Best-of-5 because
    // the whole phase is ~10 ms and one preemption would flap the gate.
    phases.push(measure_phase(
        "fine_grain",
        5,
        || fine_grain_storm(n_threads, Schedule::Dynamic),
        || fine_grain_storm(n_threads, Schedule::Stealing),
        |a, b| a == b,
    ));

    // The simulator determinism gate: the same two-processor simulation
    // through the sequential interpreter and through the barriered
    // two-phase parallel tick, compared bit-for-bit (RunResult + final
    // memory digest). Both arms are ~40 ms of pure simulation on a
    // shared CI host whose load swings several percent between repeats,
    // so this phase takes more repeats than the others: the gated value
    // is the median of the per-repeat paired ratios, and eleven repeats
    // keep that median within ~1-2% of the true ratio even when a few
    // repeats land on a load spike.
    let par_workers = mta_par_workers(n_threads);
    phases.push(measure_phase(
        "mta_par",
        11,
        || mta_par_outcome(scale, 0),
        || mta_par_outcome(scale, par_workers),
        |a, b| a == b,
    ));

    sthreads::stats::set_timing(was_timing);
    let kernels = measure_kernels(scale);
    HarnessReport {
        scale: format!("{scale:?}"),
        host_threads: n_threads,
        dispatch_floor_ns: floor,
        phases,
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadScale;
    use std::sync::OnceLock;

    fn exps() -> &'static Experiments {
        static E: OnceLock<Experiments> = OnceLock::new();
        E.get_or_init(|| Experiments::new(Workload::build(WorkloadScale::Reduced)))
    }

    /// Geometric-mean relative error of a table's referenced cells.
    fn max_rel_error(t: &Table) -> f64 {
        t.referenced_values()
            .iter()
            .map(|&(m, p)| ((m - p) / p).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn anchor_tables_are_tight() {
        let e = exps();
        assert!(max_rel_error(&e.table2()) < 0.01, "{}", e.table2().render());
        assert!(max_rel_error(&e.table8()) < 0.01, "{}", e.table8().render());
    }

    #[test]
    fn table3_ppro_threat_scaling_is_close() {
        let e = exps();
        let err = max_rel_error(&e.table3());
        assert!(
            err < 0.15,
            "Table 3 worst error {err}:\n{}",
            e.table3().render()
        );
    }

    #[test]
    fn table4_exemplar_threat_scaling_is_close() {
        let e = exps();
        let err = max_rel_error(&e.table4());
        assert!(
            err < 0.20,
            "Table 4 worst error {err}:\n{}",
            e.table4().render()
        );
    }

    #[test]
    fn table5_tera_threat_matches_shape() {
        let e = exps();
        let err = max_rel_error(&e.table5());
        assert!(
            err < 0.20,
            "Table 5 worst error {err}:\n{}",
            e.table5().render()
        );
    }

    #[test]
    fn table6_chunk_sweep_matches_shape() {
        let e = exps();
        let t = e.table6();
        // Monotone non-increasing in chunk count, saturating at the end.
        let times: Vec<f64> = paper::TABLE6
            .iter()
            .map(|&(c, _)| e.ta_tera(c, 2))
            .collect();
        for w in times.windows(2) {
            assert!(w[1] <= w[0] * 1.02, "sweep must not regress: {times:?}");
        }
        let err = max_rel_error(&t);
        assert!(err < 0.35, "Table 6 worst error {err}:\n{}", t.render());
        // 8 chunks must be several times slower than 256 (hundreds of
        // threads needed — the paper's core point).
        assert!(times[0] / times[5] > 4.0, "{times:?}");
    }

    #[test]
    fn table9_ppro_terrain_saturates() {
        let e = exps();
        let err = max_rel_error(&e.table9());
        assert!(
            err < 0.25,
            "Table 9 worst error {err}:\n{}",
            e.table9().render()
        );
        // Speedup at 4 processors must be well below 4 (memory-bound).
        let seq = e.tm_seq_secs()[1];
        let s4 = seq / e.tm_conv_parallel(&e.cal.ppro, 4);
        assert!(s4 < 3.6, "PPro TM speedup must saturate: {s4}");
    }

    #[test]
    fn table10_exemplar_terrain_saturates() {
        let e = exps();
        let seq = e.tm_seq_secs()[2];
        let s16 = seq / e.tm_conv_parallel(&e.cal.exemplar, 16);
        assert!(s16 < 9.0, "Exemplar TM speedup must saturate: {s16}");
        assert!(s16 > 4.0, "but still speed up: {s16}");
        // Mid-range rows within a loose band (the paper's own data is
        // noisy and non-monotonic there).
        let err = max_rel_error(&e.table10());
        assert!(
            err < 0.45,
            "Table 10 worst error {err}:\n{}",
            e.table10().render()
        );
    }

    #[test]
    fn table11_tera_terrain_two_proc_prediction() {
        // P=1 is the κ anchor; P=2 is a genuine prediction: the paper saw
        // 34 s (1.4× speedup).
        let e = exps();
        let t2 = e.tm_tera(2);
        assert!((t2 - 34.0).abs() / 34.0 < 0.15, "Table 11 P=2: {t2}");
        let speedup = e.tm_tera(1) / t2;
        assert!(
            (1.2..1.7).contains(&speedup),
            "fine-grained 2-proc speedup {speedup}"
        );
    }

    #[test]
    fn summary_tables_are_consistent_with_detail_tables() {
        let e = exps();
        let t7 = e.table7();
        let t12 = e.table12();
        assert_eq!(t7.rows.len(), 12);
        assert_eq!(t12.rows.len(), 12);
        // Spot-check: Table 7 Tera(1) equals Table 5 P=1.
        let t5_p1 = e.ta_tera(256, 1);
        if let Cell::Value { model, .. } = &t7.rows[10][2] {
            assert!((model - t5_p1).abs() < 1e-9);
        } else {
            panic!("unexpected cell");
        }
    }

    #[test]
    fn headline_findings_hold() {
        let e = exps();
        // §7: one Tera processor ≈ four Exemplar processors on TA.
        let tera1 = e.ta_tera(256, 1);
        let ex4 = e.ta_conv_parallel(&e.cal.exemplar, 4);
        let ratio = tera1 / ex4;
        assert!(
            (0.6..1.6).contains(&ratio),
            "Tera(1) vs Exemplar(4): {ratio}"
        );
        // §7: dual Tera ≈ eight Exemplar processors on TM.
        let tera2 = e.tm_tera(2);
        let ex8 = e.tm_conv_parallel(&e.cal.exemplar, 8);
        let ratio = tera2 / ex8;
        assert!(
            (0.6..1.6).contains(&ratio),
            "Tera(2) vs Exemplar(8): {ratio}"
        );
        // Sequential Tera is dramatically slower than everything.
        let ta = e.ta_seq_secs();
        assert!(ta[3] > 5.0 * ta[1]);
    }

    #[test]
    fn figures_render_and_match_monotonicity() {
        let e = exps();
        for f in [
            Figure::ThreatPPro,
            Figure::ThreatExemplar,
            Figure::TerrainPPro,
            Figure::TerrainExemplar,
        ] {
            let plot = e.figure(f);
            assert!(plot.contains("Figure"));
            let (model, _) = e.figure_series(f);
            assert!(model.len() >= 4);
        }
        // Figure 2 (TA Exemplar): near-linear model speedups.
        let (model, _) = e.figure_series(Figure::ThreatExemplar);
        let s16 = model.last().unwrap().1;
        assert!(s16 > 12.0, "TA must scale near-linearly on Exemplar: {s16}");
    }

    #[test]
    fn automatic_parallelization_fails_like_the_paper() {
        let summary = exps().autopar_report();
        assert!(summary.all_rejected_for_benchmarks());
        // ...while the dataflow pass (ISSUE 10) clears strictly more.
        assert!(summary.dataflow_improves());
    }

    /// Table Auto is thread-count independent (the verdicts are
    /// bit-identical at any worker count and the cells carry no timings),
    /// runs its execution checks without diverging, and shows the
    /// headline improvement: P1 and P2 flip to PARALLEL, P3 and P4 stay
    /// honestly rejected.
    #[test]
    fn table_auto_is_deterministic_and_improving() {
        let t1 = Experiments::table_auto(1);
        let t4 = Experiments::table_auto(4);
        assert_eq!(t1.to_csv(), t4.to_csv());
        assert_eq!(t1.rows.len(), 5);
        let dataflow_col: Vec<&str> = t1
            .rows
            .iter()
            .map(|r| match &r[3] {
                Cell::Text(s) => s.as_str(),
                _ => panic!("table-auto cells are text"),
            })
            .collect();
        assert_eq!(
            dataflow_col,
            [
                "PARALLEL (auto)",
                "PARALLEL (auto)",
                "rejected",
                "rejected",
                "PARALLEL (auto)"
            ]
        );
    }

    #[test]
    fn conclusions_survive_calibration_perturbation() {
        let e = exps();
        let t = e.sensitivity();
        assert_eq!(t.rows.len(), 12);
        // Every perturbed value of each metric stays within its
        // conclusion-preserving band.
        for row in &t.rows {
            let metric = match &row[1] {
                Cell::Text(s) => s.clone(),
                _ => panic!(),
            };
            let vals: Vec<f64> = row[2..]
                .iter()
                .map(|c| match c {
                    Cell::Value { model, .. } => *model,
                    _ => panic!(),
                })
                .collect();
            for &v in &vals {
                match metric.as_str() {
                    // "dramatically slower sequentially": stays way above 5x.
                    "Tera/Alpha seq slowdown" => assert!(v > 8.0, "{metric}: {v}"),
                    // "approximately equivalent to four Exemplar procs":
                    // stays within a factor of 2 of parity.
                    "Tera(1)/Exemplar(4) TA" => {
                        assert!((0.5..2.0).contains(&v), "{metric}: {v}")
                    }
                    // sub-linear 2-proc TM speedup survives.
                    "TM 2-proc speedup" => assert!((1.05..1.9).contains(&v), "{metric}: {v}"),
                    other => panic!("unknown metric {other}"),
                }
            }
        }
    }

    #[test]
    fn scalability_projection_shows_the_section8_contrast() {
        let e = exps();
        let procs = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
        let t = e.scalability_projection(&procs);
        assert_eq!(t.rows.len(), procs.len());
        let times = |col: usize| -> Vec<f64> {
            t.rows
                .iter()
                .map(|r| match r[col] {
                    Cell::Value { model, .. } => model,
                    _ => panic!("expected value"),
                })
                .collect()
        };
        // Times are non-increasing while parallelism lasts (up to 32
        // processors); beyond that the 1000 available threads spread too
        // thin and the projection flattens (with chunk-placement jitter),
        // which is exactly the paper's "not all programs have the
        // potential for hundreds of threads" warning writ large.
        for col in [1usize, 3] {
            let v = times(col);
            for w in v[..6].windows(2) {
                assert!(w[1] <= w[0] * 1.001, "non-monotone projection: {w:?}");
            }
            let flat = v[5..].iter().cloned().fold(0.0f64, f64::max)
                / v[5..].iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(flat < 1.5, "tail should be flat-ish: {v:?}");
        }
        // Threat Analysis scales much further than fine Terrain Masking:
        // the serial future-spawner is an Amdahl wall.
        let ta = times(1);
        let tm = times(3);
        let ta_speedup_32 = ta[0] / ta[5];
        let tm_speedup_256 = tm[0] / tm[procs.len() - 1];
        assert!(ta_speedup_32 > 10.0, "TA projection: {ta_speedup_32}");
        assert!(
            tm_speedup_256 < 3.0,
            "TM must hit the spawn wall: {tm_speedup_256}"
        );
        assert!(ta_speedup_32 > 3.0 * tm_speedup_256);
    }

    #[test]
    fn all_tables_render_without_panic() {
        let e = exps();
        for t in e.all_tables() {
            let text = t.render();
            assert!(text.contains(&t.id));
            let _ = t.to_csv();
        }
    }

    fn good_report() -> HarnessReport {
        let phase = |name: &str, seq: f64, par: f64| PhaseTiming {
            phase: name.to_string(),
            seq_seconds: seq,
            par_seconds: par,
            speedup: seq / par,
            identical_output: true,
            breakdown: PhaseBreakdown {
                dispatch_overhead_s: 1e-5,
                imbalance_s: 2e-5,
                useful_work_s: seq,
            },
        };
        HarnessReport {
            scale: "Reduced".to_string(),
            host_threads: 4,
            dispatch_floor_ns: 4000,
            phases: vec![
                phase("workload measurement", 2.0, 0.6),
                phase("table generation", 0.001, 0.001),
                phase("utilization sweep", 1.0, 0.3),
                phase("fine_grain", 0.012, 0.010),
                phase("mta_par", 0.030, 0.029),
            ],
            kernels: KernelsPhase {
                baseline_scalar_s: 0.9,
                optimized_s: 0.4,
                speedup: 0.9 / 0.4,
                identical_output: true,
            },
        }
    }

    #[test]
    fn valid_harness_report_passes_validation() {
        good_report().validate().expect("valid report must pass");
    }

    #[test]
    fn table_generation_slowdown_fails_the_gate() {
        let mut r = good_report();
        let tg = r
            .phases
            .iter_mut()
            .find(|p| p.phase == "table generation")
            .unwrap();
        tg.par_seconds = tg.seq_seconds / 0.63; // the regression this PR fixes
        tg.speedup = 0.63;
        let errs = r.validate().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("below the 0.95 gate")),
            "{errs:?}"
        );
    }

    #[test]
    fn nonidentical_output_and_bad_numbers_are_reported_together() {
        let mut r = good_report();
        r.phases[0].identical_output = false;
        r.phases[2].breakdown.useful_work_s = f64::NAN;
        let errs = r.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("differs from sequential")));
        assert!(errs.iter().any(|e| e.contains("useful_work_s")));
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn missing_table_generation_phase_is_an_error() {
        let mut r = good_report();
        r.phases.retain(|p| p.phase != "table generation");
        let errs = r.validate().unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("missing 'table generation'")),
            "{errs:?}"
        );
    }

    #[test]
    fn fine_grain_slowdown_fails_the_gate() {
        // Stealing slower than the shared queue it replaced is exactly the
        // regression the fine_grain phase exists to catch.
        let mut r = good_report();
        let fg = r
            .phases
            .iter_mut()
            .find(|p| p.phase == "fine_grain")
            .unwrap();
        fg.par_seconds = fg.seq_seconds / 0.7;
        fg.speedup = 0.7;
        let errs = r.validate().unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("slower than the shared queue")),
            "{errs:?}"
        );
    }

    #[test]
    fn missing_fine_grain_phase_is_an_error() {
        let mut r = good_report();
        r.phases.retain(|p| p.phase != "fine_grain");
        let errs = r.validate().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("missing 'fine_grain'")),
            "{errs:?}"
        );
    }

    #[test]
    fn mta_par_slowdown_fails_the_gate() {
        // The parallel tick costing materially more than the sequential
        // interpreter is exactly the regression this phase exists to catch.
        let mut r = good_report();
        let mp = r.phases.iter_mut().find(|p| p.phase == "mta_par").unwrap();
        mp.par_seconds = mp.seq_seconds / 0.8;
        mp.speedup = 0.8;
        let errs = r.validate().unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("windowed two-phase tick is costing more")),
            "{errs:?}"
        );
    }

    #[test]
    fn missing_mta_par_phase_is_an_error() {
        let mut r = good_report();
        r.phases.retain(|p| p.phase != "mta_par");
        let errs = r.validate().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("missing 'mta_par'")),
            "{errs:?}"
        );
    }

    #[test]
    fn mta_par_nonidentical_output_fails_validation() {
        let mut r = good_report();
        let mp = r.phases.iter_mut().find(|p| p.phase == "mta_par").unwrap();
        mp.identical_output = false;
        let errs = r.validate().unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("'mta_par': parallel output differs")),
            "{errs:?}"
        );
    }

    #[test]
    fn mta_par_outcome_is_identical_across_worker_counts() {
        // The in-crate rendition of the par_oracle determinism gate, on
        // the exact workload the mta_par harness phase measures.
        let expected = mta_par_outcome(WorkloadScale::Reduced, 0);
        assert!(expected.iter().all(|(r, _)| r.completed), "{expected:?}");
        for workers in [1, 2, mta_par_workers(4)] {
            assert_eq!(
                mta_par_outcome(WorkloadScale::Reduced, workers),
                expected,
                "parallel tick diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn mta_par_workers_is_positive_and_capped() {
        for n_threads in [1, 2, 4, 64] {
            let w = mta_par_workers(n_threads);
            assert!(w >= 1);
            assert!(w <= n_threads);
        }
        assert_eq!(mta_par_workers(0), 1);
    }

    #[test]
    fn fine_grain_storm_is_identical_across_schedules_and_thread_counts() {
        let expected = fine_grain_storm(1, Schedule::Static);
        assert_eq!(expected.len(), FINE_GRAIN_TASKS);
        for schedule in [Schedule::Dynamic, Schedule::Stealing] {
            for threads in [1, 2, 8] {
                assert_eq!(
                    fine_grain_storm(threads, schedule),
                    expected,
                    "{schedule:?} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn kernels_slowdown_fails_the_gate() {
        let mut r = good_report();
        r.kernels.optimized_s = r.kernels.baseline_scalar_s / 1.2;
        r.kernels.speedup = 1.2;
        let errs = r.validate().unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("below the 1.5 gate")),
            "{errs:?}"
        );
    }

    #[test]
    fn kernels_nonidentical_output_fails_validation() {
        let mut r = good_report();
        r.kernels.identical_output = false;
        let errs = r.validate().unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("differs bitwise from the scalar baseline")),
            "{errs:?}"
        );
    }

    #[test]
    fn harness_report_rejects_json_missing_kernels() {
        // A pre-extension report without the kernels phase must not parse:
        // the ≥1.5x data-layout gate cannot be skipped by feeding the ci
        // gate a stale file.
        let legacy = r#"{
            "scale": "Reduced",
            "host_threads": 4,
            "dispatch_floor_ns": 4000,
            "phases": [{
                "phase": "table generation",
                "seq_seconds": 0.001,
                "par_seconds": 0.001,
                "speedup": 1.0,
                "identical_output": true,
                "breakdown": {
                    "dispatch_overhead_s": 0.0,
                    "imbalance_s": 0.0,
                    "useful_work_s": 0.001
                }
            }]
        }"#;
        assert!(serde_json::from_str::<HarnessReport>(legacy).is_err());
    }

    #[test]
    fn measured_kernels_phase_clears_the_gate() {
        // The real measurement on the reduced scenario: bit-identical
        // output in every profile, and a speedup at or above the ci gate
        // when optimizations are on. Debug builds pay bounds checks and
        // no inlining, which flattens the data-layout win to ~1.1x, so
        // the perf half of the assertion is release-only — `repro --gate`
        // (always release in ci.sh) enforces it on every CI run anyway.
        let k = measure_kernels(WorkloadScale::Reduced);
        assert!(k.identical_output, "{k:?}");
        assert!(k.speedup.is_finite() && k.speedup > 0.0, "{k:?}");
        #[cfg(not(debug_assertions))]
        assert!(
            k.speedup >= KERNELS_SPEEDUP_GATE,
            "kernels speedup below gate: {k:?}"
        );
    }

    #[test]
    fn empty_report_fails_validation() {
        let r = HarnessReport {
            scale: "Reduced".to_string(),
            host_threads: 0,
            dispatch_floor_ns: 0,
            phases: Vec::new(),
            kernels: good_report().kernels,
        };
        let errs = r.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no phases")));
        assert!(errs.iter().any(|e| e.contains("host_threads")));
    }

    #[test]
    fn harness_report_round_trips_through_json() {
        let r = good_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: HarnessReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // The extended schema's keys must actually be present in the JSON.
        assert!(json.contains("\"breakdown\""));
        assert!(json.contains("\"dispatch_overhead_s\""));
        assert!(json.contains("\"kernels\""));
        assert!(json.contains("\"baseline_scalar_s\""));
    }

    #[test]
    fn harness_report_rejects_json_missing_breakdown() {
        // A pre-extension BENCH_harness.json (no breakdown key) must not
        // silently parse — the ci gate relies on the schema being current.
        let legacy = r#"{
            "scale": "Reduced",
            "host_threads": 4,
            "phases": [{
                "phase": "table generation",
                "seq_seconds": 0.001,
                "par_seconds": 0.001,
                "speedup": 1.0,
                "identical_output": true
            }]
        }"#;
        assert!(serde_json::from_str::<HarnessReport>(legacy).is_err());
    }
}
