//! Analytic machine models: operation profiles → predicted seconds.
//!
//! Two model families cover the four platforms of Table 1:
//!
//! * [`ConventionalModel`] — cache-based uniprocessors and SMPs (Alpha,
//!   Pentium Pro, Exemplar). Cache-resident operations cost
//!   `resident_cost` cycles each; streaming operations cost `stream_cost`
//!   cycles (amortized miss service); all misses cross a shared
//!   interconnect with finite bandwidth, which caps memory-bound speedup
//!   (the mechanism `smp-sim` demonstrates in its bus-saturation tests);
//!   OS threads cost tens of thousands of cycles to create and hundreds
//!   per synchronization (§7 of the paper).
//!
//! * [`TeraModel`] — the MTA. No cache: every memory operation costs the
//!   full `mem_latency`; every instruction occupies its stream for
//!   `issue_latency` = 21 cycles; a processor issues at most one
//!   instruction per cycle from its ready streams, so utilization with
//!   `s` streams of average instruction latency `L` is `min(1, s/L)` —
//!   the mechanism `mta-sim` demonstrates with its utilization-curve
//!   tests. Thread creation costs a few cycles, synchronization is one
//!   memory operation.

use c3i::{PhasedProfile, Profile};
use sthreads::OpCounts;

/// A cache-based conventional platform.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConventionalModel {
    /// Platform name as in Table 1.
    pub name: String,
    /// Clock rate (MHz).
    pub clock_mhz: f64,
    /// Processors available.
    pub n_processors: usize,
    /// Cycles per cache-resident operation (int, fp, resident load/store).
    pub resident_cost: f64,
    /// Cycles per streaming memory operation (amortized line-miss cost).
    pub stream_cost: f64,
    /// Cycles per synchronization operation (lock/unlock, atomic).
    pub sync_cost: f64,
    /// Cycles per OS thread creation.
    pub spawn_cost: f64,
    /// Shared-interconnect cycles consumed per streaming operation (every
    /// miss crosses the bus; this bounds aggregate memory throughput).
    pub bus_cost_per_stream_op: f64,
}

impl ConventionalModel {
    /// CPU cycles to execute the *workload-proportional* part of `ops` on
    /// one processor (everything except thread creation — spawn counts are
    /// configuration constants, not workload, so the calibration's
    /// workload-size factor must not multiply them).
    pub fn cpu_cycles(&self, ops: &OpCounts) -> f64 {
        let resident = (ops.int_ops + ops.fp_ops + ops.loads + ops.stores) as f64;
        resident * self.resident_cost
            + ops.stream_ops() as f64 * self.stream_cost
            + ops.sync_ops as f64 * self.sync_cost
    }

    /// Unscaled overhead cycles (OS thread creation).
    pub fn overhead_cycles(&self, ops: &OpCounts) -> f64 {
        ops.spawns as f64 * self.spawn_cost
    }

    /// Seconds for a sequential run of `profile`, scaled by the workload
    /// factor `scale` (see `calibrate`).
    pub fn seq_seconds(&self, profile: &Profile, scale: f64) -> f64 {
        let total = profile.total();
        (scale * self.cpu_cycles(&total) + self.overhead_cycles(&total)) / (self.clock_mhz * 1e6)
    }

    /// Seconds for a parallel run: logical threads of the profile's
    /// region are assigned round-robin to `n_procs` processors; the
    /// critical path is the most-loaded processor, and aggregate
    /// streaming traffic cannot exceed the interconnect's bandwidth.
    pub fn parallel_seconds(&self, profile: &Profile, n_procs: usize, scale: f64) -> f64 {
        assert!(
            n_procs >= 1 && n_procs <= self.n_processors,
            "{} has {} processors",
            self.name,
            self.n_processors
        );
        let serial =
            scale * self.cpu_cycles(&profile.serial) + self.overhead_cycles(&profile.total());
        let per_worker = self.worker_cycles(profile, n_procs);
        let makespan = per_worker.iter().copied().fold(0.0f64, f64::max);
        let total_stream: f64 = profile
            .parallel
            .per_thread()
            .iter()
            .map(|c| c.stream_ops() as f64)
            .sum();
        let bus = total_stream * self.bus_cost_per_stream_op;
        let cycles = serial + scale * makespan.max(bus);
        cycles / (self.clock_mhz * 1e6)
    }

    /// Per-processor CPU cycles after round-robin assignment of logical
    /// threads.
    fn worker_cycles(&self, profile: &Profile, n_procs: usize) -> Vec<f64> {
        let mut w = vec![0.0f64; n_procs];
        for (i, ops) in profile.parallel.per_thread().iter().enumerate() {
            w[i % n_procs] += self.cpu_cycles(ops);
        }
        w
    }
}

/// The Tera MTA analytic model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TeraModel {
    /// Clock rate (MHz): 255.
    pub clock_mhz: f64,
    /// Pipeline depth: cycles between issues of one stream (21).
    pub issue_latency: f64,
    /// Memory-operation latency (cycles, uncontended): ≈70.
    pub mem_latency: f64,
    /// Hardware stream contexts per processor: 128.
    pub streams_per_processor: usize,
    /// Network efficiency at 2 processors (the paper's
    /// "development status of the current Tera MTA network"); 1.0 at one
    /// processor. Calibrated from Table 5's 2-processor row.
    pub eta2: f64,
    /// Aggregate memory words per cycle the prototype network sustains
    /// (bandwidth ceiling for memory-bound code). Calibrated from
    /// Table 11's 2-processor row.
    pub network_words_per_cycle: f64,
    /// Serial spawn cycles per fine-grained task (future creation —
    /// §2 lists 50–100 cycles per software thread; the fork instruction
    /// itself also occupies the spawning stream). Calibrated from
    /// Table 11's 1-processor row.
    pub spawn_cycles_per_task: f64,
}

impl TeraModel {
    /// Mean instruction latency (cycles) of an operation mix: compute ops
    /// hold a stream for the pipeline depth; every memory or
    /// synchronization operation holds it for the full memory latency
    /// (no cache to hide it).
    pub fn avg_latency(&self, ops: &OpCounts) -> f64 {
        let n = ops.instructions();
        if n == 0 {
            return self.issue_latency;
        }
        let mem = (ops.mem_ops() + ops.spawns) as f64;
        let compute = n as f64 - mem;
        (compute * self.issue_latency + mem * self.mem_latency) / n as f64
    }

    /// Seconds for a single-threaded run: one stream, every instruction
    /// waits out its own latency (the paper's "one instruction every 21
    /// cycles", worse when memory-bound).
    pub fn seq_seconds(&self, profile: &Profile, scale: f64) -> f64 {
        let ops = profile.total();
        let cycles = ops.instructions() as f64 * self.avg_latency(&ops);
        scale * cycles / (self.clock_mhz * 1e6)
    }

    /// Network efficiency at `n_procs` (interpolating the calibrated
    /// 2-processor point; the paper never ran more).
    pub fn eta(&self, n_procs: usize) -> f64 {
        if n_procs <= 1 {
            1.0
        } else {
            self.eta2
        }
    }

    /// Cycles a single stream needs for `ops` (serial-phase cost).
    pub fn serial_cycles_of(&self, ops: &OpCounts) -> f64 {
        ops.instructions() as f64 * self.avg_latency(ops)
    }

    /// Issue-side makespan (cycles, before network efficiency) of a
    /// chunked parallel region on `n_procs` processors: chunks spread
    /// round-robin; each processor's utilization is `min(1, s/L)` with
    /// `s` resident streams.
    pub fn chunked_issue_cycles(&self, profile: &Profile, n_procs: usize) -> f64 {
        let mut per_proc: Vec<Vec<&OpCounts>> = vec![Vec::new(); n_procs];
        for (i, ops) in profile.parallel.per_thread().iter().enumerate() {
            // Empty chunks (possible when chunks outnumber threats) halt
            // immediately and contribute no resident stream.
            if ops.instructions() > 0 {
                per_proc[i % n_procs].push(ops);
            }
        }
        let mut issue_makespan = 0.0f64;
        for chunks in &per_proc {
            if chunks.is_empty() {
                continue;
            }
            let total: OpCounts = chunks.iter().map(|c| **c).sum();
            let instr = total.instructions() as f64;
            let latency = self.avg_latency(&total);
            let s = chunks.len().min(self.streams_per_processor) as f64;
            // Issue-limited (s >= L) or latency-limited (s < L):
            // cycles = max(instr, instr*L/s).
            let cycles = instr.max(instr * latency / s);
            issue_makespan = issue_makespan.max(cycles);
        }
        issue_makespan
    }

    /// Network-bandwidth-bound cycles of a region's memory traffic.
    pub fn mem_cycles(&self, total: &OpCounts) -> f64 {
        total.mem_ops() as f64 / self.network_words_per_cycle
    }

    /// Seconds for the chunked program: logical threads (chunks) spread
    /// round-robin over processors; each processor's utilization is
    /// `min(1, s/L)` with `s` resident streams; aggregate memory traffic
    /// is capped by the network.
    pub fn chunked_seconds(&self, profile: &Profile, n_procs: usize, scale: f64) -> f64 {
        let serial_cycles = self.serial_cycles_of(&profile.serial);
        let issue_makespan = self.chunked_issue_cycles(profile, n_procs);
        let mem_cycles = self.mem_cycles(&profile.parallel.total());
        let cycles = serial_cycles + (issue_makespan / self.eta(n_procs)).max(mem_cycles);
        scale * cycles / (self.clock_mhz * 1e6)
    }

    /// Seconds for a fine-grained (inner-loop) program: a sequence of
    /// barrier-separated phases. Each phase's concurrency is its width;
    /// each task spawn costs `spawn_cycles_per_task` on the *sequential
    /// outer thread* (the fine Terrain Masking program keeps the threat
    /// loop serial and creates futures from it, so spawning does not
    /// parallelize — this is what limits its 2-processor speedup to the
    /// paper's 1.4×); memory traffic is network-capped.
    pub fn phased_seconds(&self, profile: &PhasedProfile, n_procs: usize, scale: f64) -> f64 {
        let serial_cycles = self.serial_cycles_of(&profile.serial);
        let issue_cycles = self.phased_issue_cycles(profile, n_procs);
        let spawn_cycles = Self::phased_task_count(profile) * self.spawn_cycles_per_task;
        let mem_cycles = self.mem_cycles(&profile.total());
        let cycles =
            serial_cycles + (issue_cycles / self.eta(n_procs) + spawn_cycles).max(mem_cycles);
        scale * cycles / (self.clock_mhz * 1e6)
    }

    /// Issue-side cycles (before network efficiency, excluding spawn
    /// overhead) of a phased profile on `n_procs` processors.
    pub fn phased_issue_cycles(&self, profile: &PhasedProfile, n_procs: usize) -> f64 {
        let p = n_procs as f64;
        let mut issue_cycles = 0.0f64;
        for ph in &profile.phases {
            let instr = ph.ops.instructions() as f64;
            let latency = self.avg_latency(&ph.ops);
            // Streams available per processor for this phase.
            let s = (ph.width as f64 / p)
                .min(self.streams_per_processor as f64)
                .max(1.0);
            let per_proc_instr = instr / p;
            issue_cycles += per_proc_instr.max(per_proc_instr * latency / s);
        }
        issue_cycles
    }

    /// Total fine-grained tasks (futures) a phased profile spawns.
    pub fn phased_task_count(profile: &PhasedProfile) -> f64 {
        profile.phases.iter().map(|ph| ph.width as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3i::ParallelPhase;
    use sthreads::ThreadCounts;

    fn ops(compute: u64, stream: u64) -> OpCounts {
        OpCounts {
            int_ops: compute,
            stream_loads: stream,
            ..OpCounts::default()
        }
    }

    fn conv() -> ConventionalModel {
        ConventionalModel {
            name: "test".into(),
            clock_mhz: 100.0,
            n_processors: 8,
            resident_cost: 1.0,
            stream_cost: 10.0,
            sync_cost: 100.0,
            spawn_cost: 10_000.0,
            bus_cost_per_stream_op: 4.0,
        }
    }

    fn tera() -> TeraModel {
        TeraModel {
            clock_mhz: 255.0,
            issue_latency: 21.0,
            mem_latency: 70.0,
            streams_per_processor: 128,
            eta2: 0.9,
            network_words_per_cycle: 0.8,
            spawn_cycles_per_task: 20.0,
        }
    }

    #[test]
    fn conventional_seq_time_is_cycle_sum_over_clock() {
        let p = Profile::sequential(OpCounts::default(), ops(1_000_000, 0));
        let t = conv().seq_seconds(&p, 1.0);
        assert!((t - 0.01).abs() < 1e-9, "{t}");
    }

    #[test]
    fn conventional_compute_bound_scales_linearly() {
        let m = conv();
        let p = Profile {
            serial: OpCounts::default(),
            parallel: ThreadCounts::new(vec![ops(1_000_000, 0); 8]),
        };
        let t1 = m.parallel_seconds(&p, 1, 1.0);
        let t8 = m.parallel_seconds(&p, 8, 1.0);
        assert!((t1 / t8 - 8.0).abs() < 0.01, "speedup {}", t1 / t8);
    }

    #[test]
    fn conventional_memory_bound_hits_the_bus_ceiling() {
        let m = conv();
        // Stream-dominated: per-thread 100k stream ops at cost 10 = 1M
        // CPU cycles; bus cost 4 × 800k total = 3.2M cycles.
        let p = Profile {
            serial: OpCounts::default(),
            parallel: ThreadCounts::new(vec![ops(0, 100_000); 8]),
        };
        let t1 = m.parallel_seconds(&p, 1, 1.0);
        let t8 = m.parallel_seconds(&p, 8, 1.0);
        let speedup = t1 / t8;
        assert!(
            speedup < 3.0,
            "bus must cap memory-bound speedup: {speedup}"
        );
    }

    #[test]
    fn conventional_imbalance_lengthens_makespan() {
        let m = conv();
        let balanced = Profile {
            serial: OpCounts::default(),
            parallel: ThreadCounts::new(vec![ops(100, 0); 4]),
        };
        let mut threads = vec![ops(10, 0); 3];
        threads.push(ops(370, 0));
        let skewed = Profile {
            serial: OpCounts::default(),
            parallel: ThreadCounts::new(threads),
        };
        // Same total work; the skewed decomposition must be slower on 4.
        assert!(m.parallel_seconds(&skewed, 4, 1.0) > 2.0 * m.parallel_seconds(&balanced, 4, 1.0));
    }

    #[test]
    fn tera_single_stream_pays_full_latency() {
        let m = tera();
        // Pure compute: 1 instr / 21 cycles.
        let p = Profile::sequential(OpCounts::default(), ops(1_000_000, 0));
        let t = m.seq_seconds(&p, 1.0);
        assert!((t - 21e6 / 255e6).abs() < 1e-9);
        // Memory-heavy sequential code is even slower per instruction.
        let pm = Profile::sequential(OpCounts::default(), ops(500_000, 500_000));
        assert!(m.seq_seconds(&pm, 1.0) > t);
    }

    #[test]
    fn tera_needs_many_chunks_to_saturate() {
        let m = tera();
        // A 50% memory mix: L = (21 + 70)/2 = 45.5, so saturation needs
        // ≈46 streams — the Table 6 regime.
        let mk = |chunks: usize| Profile {
            serial: OpCounts::default(),
            parallel: ThreadCounts::new(vec![
                ops(
                    5_000_000 / chunks as u64,
                    5_000_000 / chunks as u64
                );
                chunks
            ]),
        };
        let t4 = m.chunked_seconds(&mk(4), 1, 1.0);
        let t32 = m.chunked_seconds(&mk(32), 1, 1.0);
        let t128 = m.chunked_seconds(&mk(128), 1, 1.0);
        assert!(
            t4 > 4.0 * t32,
            "4 chunks must be far from saturation: {t4} vs {t32}"
        );
        assert!(
            t32 > 1.2 * t128,
            "32 streams cannot cover L=45.5: {t32} vs {t128}"
        );
        // At 128 chunks utilization is 1: issue time = instr/clock.
        assert!((t128 - 10e6 / 255e6).abs() / t128 < 0.01, "{t128}");
    }

    #[test]
    fn tera_seq_to_saturated_ratio_is_avg_latency() {
        // The paper's 32× (§5): seq/saturated == L for the mix.
        let m = tera();
        let mix = ops(770_000, 230_000);
        let seq = m.seq_seconds(&Profile::sequential(OpCounts::default(), mix), 1.0);
        let chunks = 256;
        let per = OpCounts {
            int_ops: mix.int_ops / chunks,
            stream_loads: mix.stream_loads / chunks,
            ..OpCounts::default()
        };
        let par = Profile {
            serial: OpCounts::default(),
            parallel: ThreadCounts::new(vec![per; chunks as usize]),
        };
        let sat = m.chunked_seconds(&par, 1, 1.0);
        let ratio = seq / sat;
        let expected_l = m.avg_latency(&mix);
        assert!(
            (ratio - expected_l).abs() / expected_l < 0.05,
            "{ratio} vs {expected_l}"
        );
    }

    #[test]
    fn tera_two_processors_apply_network_efficiency() {
        let m = tera();
        let par = Profile {
            serial: OpCounts::default(),
            parallel: ThreadCounts::new(vec![ops(100_000, 0); 256]),
        };
        let t1 = m.chunked_seconds(&par, 1, 1.0);
        let t2 = m.chunked_seconds(&par, 2, 1.0);
        let speedup = t1 / t2;
        assert!((speedup - 2.0 * m.eta2).abs() < 0.05, "{speedup}");
    }

    #[test]
    fn tera_memory_bound_work_hits_the_network_ceiling() {
        let m = tera();
        let par = Profile {
            serial: OpCounts::default(),
            parallel: ThreadCounts::new(vec![ops(1_000, 99_000); 256]),
        };
        let t1 = m.chunked_seconds(&par, 1, 1.0);
        let t2 = m.chunked_seconds(&par, 2, 1.0);
        assert!(
            t1 / t2 < 1.1,
            "network-capped work must not scale: {}",
            t1 / t2
        );
    }

    #[test]
    fn phased_narrow_rings_limit_utilization() {
        let m = tera();
        let wide = PhasedProfile {
            serial: OpCounts::default(),
            phases: vec![ParallelPhase {
                width: 1000,
                ops: ops(1_000_000, 0),
            }],
        };
        let narrow = PhasedProfile {
            serial: OpCounts::default(),
            phases: (0..100)
                .map(|_| ParallelPhase {
                    width: 10,
                    ops: ops(10_000, 0),
                })
                .collect(),
        };
        // Same total instructions, same spawn totals — narrow phases must
        // be slower because 10 streams cannot cover L = 21.
        let tw = m.phased_seconds(&wide, 1, 1.0);
        let tn = m.phased_seconds(&narrow, 1, 1.0);
        assert!(tn > 1.5 * tw, "narrow {tn} vs wide {tw}");
    }

    #[test]
    fn phased_spawn_overhead_scales_with_width() {
        let m = tera();
        let few_tasks = PhasedProfile {
            serial: OpCounts::default(),
            phases: vec![ParallelPhase {
                width: 128,
                ops: ops(1_000_000, 0),
            }],
        };
        let many_tasks = PhasedProfile {
            serial: OpCounts::default(),
            phases: vec![ParallelPhase {
                width: 1_000_000,
                ops: ops(1_000_000, 0),
            }],
        };
        assert!(m.phased_seconds(&many_tasks, 1, 1.0) > m.phased_seconds(&few_tasks, 1, 1.0));
    }

    #[test]
    fn scale_factor_is_linear() {
        let m = conv();
        let p = Profile::sequential(OpCounts::default(), ops(1000, 100));
        assert!((m.seq_seconds(&p, 2.0) - 2.0 * m.seq_seconds(&p, 1.0)).abs() < 1e-12);
    }
}
