//! Length-prefixed JSON framing and the `repro --serve` socket server.
//!
//! The protocol is deliberately minimal and std-only (vendored-offline
//! policy): each frame is a 4-byte **big-endian** `u32` byte length
//! followed by exactly that many bytes of UTF-8 JSON. Frames are capped
//! at [`MAX_FRAME_BYTES`]; a peer announcing more is answered with a
//! typed `frame_too_large` error and the connection is closed (the
//! stream is desynchronized past that point). Malformed input is never
//! zero-filled or guessed at — the same precedent as the `load_masking`
//! truncated-file fix:
//!
//! * clean EOF between frames → normal connection close,
//! * truncated length prefix or truncated body → connection close
//!   (nothing trustworthy to respond to),
//! * oversized length prefix → `frame_too_large` error frame, close,
//! * syntactically invalid JSON / wrong shape → `malformed_request`
//!   error frame, connection **keeps serving**,
//! * semantically invalid request → typed [`EvalError`] response via the
//!   service's admission validation, connection keeps serving.
//!
//! Request/response bodies are externally-tagged vendored-serde values:
//!
//! ```json
//! {"Eval": {"id": 7, "request": {"Table": {"n": 3}}}}
//! {"id": 7, "ok": "<rendered table>", "error": null}
//! ```
//!
//! The server accepts either a TCP address (`127.0.0.1:9311`) or — when
//! the address contains a `/` — a Unix socket path. One OS thread per
//! connection; evaluation order and batching are owned by the bounded
//! [`Service`] queue behind it.

use crate::service::{EvalError, EvalRequest, Service};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Hard cap on a frame body, in bytes. Every real response (a rendered
/// table is a few KiB) fits with orders of magnitude to spare; anything
/// larger is a protocol error, not a bigger buffer.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Framing-layer failures. [`read_frame`] distinguishes them so the
/// server can choose between answering (oversized) and closing
/// (truncated — there is no intact peer to answer).
#[derive(Debug)]
pub enum FrameError {
    /// EOF in the middle of the 4-byte length prefix.
    TruncatedPrefix {
        /// Prefix bytes actually received (1–3).
        got: usize,
    },
    /// EOF before the announced body length arrived.
    TruncatedBody {
        /// Announced body length.
        expected: u32,
    },
    /// The announced length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// Announced body length.
        announced: u32,
    },
    /// Underlying socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TruncatedPrefix { got } => {
                write!(f, "truncated length prefix ({got} of 4 bytes)")
            }
            FrameError::TruncatedBody { expected } => {
                write!(f, "truncated frame body (announced {expected} bytes)")
            }
            FrameError::Oversized { announced } => write!(
                f,
                "frame of {announced} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            ),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Read one frame. `Ok(None)` is a clean close (EOF exactly on a frame
/// boundary); every partial read is a typed [`FrameError`], never a
/// zero-filled or short buffer.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::TruncatedPrefix { got })
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { announced: len });
    }
    let mut body = vec![0u8; len as usize];
    match r.read_exact(&mut body) {
        Ok(()) => Ok(Some(body)),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(FrameError::TruncatedBody { expected: len })
        }
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Write one frame (4-byte big-endian length, then the body).
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> std::io::Result<()> {
    assert!(
        body.len() <= MAX_FRAME_BYTES as usize,
        "frame body of {} bytes exceeds MAX_FRAME_BYTES",
        body.len()
    );
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

// ── wire message shapes ──────────────────────────────────────────────────

/// A client→server frame body.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WireRequest {
    /// Evaluate one scenario request; the response echoes `id`.
    Eval {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// The scenario evaluation to run.
        request: EvalRequest,
    },
    /// Ask the server to stop accepting connections and exit after
    /// draining in-flight work. Acknowledged before shutdown proceeds.
    Shutdown {
        /// Client-chosen correlation id, echoed in the acknowledgement.
        id: u64,
    },
}

/// A server→client frame body. Exactly one of `ok`/`error` is set.
/// Protocol-level errors that cannot be correlated to a request (the
/// frame never parsed) carry `id: 0`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireResponse {
    /// Correlation id echoed from the request (0 for uncorrelatable
    /// protocol errors).
    pub id: u64,
    /// The successful response body.
    pub ok: Option<String>,
    /// The typed error, when the request failed.
    pub error: Option<WireError>,
}

/// A typed error crossing the wire.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireError {
    /// Machine-readable kind: `bad_request`, `overloaded`,
    /// `shutting_down`, `internal`, `frame_too_large`, or
    /// `malformed_request`.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
    /// For `overloaded` only: suggested client back-off in milliseconds.
    pub retry_after_ms: Option<u64>,
}

impl WireResponse {
    /// A success response.
    pub fn success(id: u64, body: String) -> Self {
        Self {
            id,
            ok: Some(body),
            error: None,
        }
    }

    /// An error response with the given kind/message.
    pub fn failure(id: u64, kind: &str, message: String, retry_after_ms: Option<u64>) -> Self {
        Self {
            id,
            ok: None,
            error: Some(WireError {
                kind: kind.to_string(),
                message,
                retry_after_ms,
            }),
        }
    }

    /// Map a service-layer [`EvalError`] onto the wire.
    pub fn from_eval_error(id: u64, err: &EvalError) -> Self {
        match err {
            EvalError::BadRequest(msg) => Self::failure(id, "bad_request", msg.clone(), None),
            EvalError::Overloaded { retry_after_ms } => Self::failure(
                id,
                "overloaded",
                format!("queue full; retry after ~{retry_after_ms} ms"),
                Some(*retry_after_ms),
            ),
            EvalError::ShuttingDown => {
                Self::failure(id, "shutting_down", "service is shutting down".into(), None)
            }
            EvalError::Internal(msg) => Self::failure(id, "internal", msg.clone(), None),
        }
    }
}

// ── transport ────────────────────────────────────────────────────────────

/// A connected byte stream over either transport. An address containing
/// a `/` is a Unix socket path; anything else is a TCP address.
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Connect to `addr` (Unix path if it contains `/`, else TCP).
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        if addr.contains('/') {
            Ok(Stream::Unix(UnixStream::connect(addr)?))
        } else {
            Ok(Stream::Tcp(TcpStream::connect(addr)?))
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

// ── server ───────────────────────────────────────────────────────────────

/// The `repro --serve` socket server: accepts connections, one OS thread
/// each, and forwards parsed requests into the bounded [`Service`] queue.
pub struct Server {
    listener: Listener,
    local_addr: String,
    unix_path: Option<std::path::PathBuf>,
    service: Service,
}

impl Server {
    /// Bind `addr` (Unix socket path if it contains `/`, else TCP — use
    /// port 0 for an OS-assigned port) and attach `service`. A stale
    /// Unix socket file at the path is removed first.
    pub fn bind(addr: &str, service: Service) -> std::io::Result<Self> {
        if addr.contains('/') {
            let path = std::path::PathBuf::from(addr);
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            Ok(Self {
                listener: Listener::Unix(listener),
                local_addr: addr.to_string(),
                unix_path: Some(path),
                service,
            })
        } else {
            let listener = TcpListener::bind(addr)?;
            let local_addr = listener.local_addr()?.to_string();
            Ok(Self {
                listener: Listener::Tcp(listener),
                local_addr,
                unix_path: None,
                service,
            })
        }
    }

    /// The bound address (with the OS-assigned port resolved for TCP).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Accept and serve connections until a `Shutdown` request arrives,
    /// then drain and return. Blocks the calling thread.
    pub fn run(self) -> std::io::Result<()> {
        let service = Arc::new(self.service);
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        loop {
            let stream = self.listener.accept()?;
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let wake_addr = self.local_addr.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("c3i-serve-conn".into())
                    .spawn(move || {
                        if serve_connection(stream, &service) == ConnOutcome::ShutdownRequested {
                            stop.store(true, Ordering::SeqCst);
                            // Unblock the accept loop so it observes the flag.
                            let _ = Stream::connect(&wake_addr);
                        }
                    })
                    .expect("spawn connection thread"),
            );
        }
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

#[derive(PartialEq, Eq)]
enum ConnOutcome {
    Closed,
    ShutdownRequested,
}

/// Serve one connection until it closes, errors, or requests shutdown.
/// Framing errors follow the module-level policy; a client that vanishes
/// mid-request (write failure) just closes this connection — the request
/// itself still completes inside the service and is dropped.
fn serve_connection(mut stream: Stream, service: &Service) -> ConnOutcome {
    loop {
        let body = match read_frame(&mut stream) {
            Ok(None) => return ConnOutcome::Closed,
            Ok(Some(body)) => body,
            Err(FrameError::Oversized { announced }) => {
                let resp = WireResponse::failure(
                    0,
                    "frame_too_large",
                    format!("frame of {announced} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
                    None,
                );
                let _ = send_response(&mut stream, &resp);
                return ConnOutcome::Closed; // stream is desynchronized
            }
            // Truncated or broken input: no intact peer to answer.
            Err(_) => return ConnOutcome::Closed,
        };
        let parsed = std::str::from_utf8(&body)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str::<WireRequest>(text).map_err(|e| e.to_string()));
        let req = match parsed {
            Ok(req) => req,
            Err(msg) => {
                let resp = WireResponse::failure(0, "malformed_request", msg, None);
                if send_response(&mut stream, &resp).is_err() {
                    return ConnOutcome::Closed;
                }
                continue; // the frame itself was intact: keep serving
            }
        };
        match req {
            WireRequest::Shutdown { id } => {
                let resp = WireResponse::success(id, "shutting down".to_string());
                let _ = send_response(&mut stream, &resp);
                return ConnOutcome::ShutdownRequested;
            }
            WireRequest::Eval { id, request } => {
                let result = match service.submit(request) {
                    Ok(pending) => pending.wait(),
                    Err(err) => Err(err),
                };
                let resp = match result {
                    Ok(body) => WireResponse::success(id, body),
                    Err(err) => WireResponse::from_eval_error(id, &err),
                };
                if send_response(&mut stream, &resp).is_err() {
                    return ConnOutcome::Closed;
                }
            }
        }
    }
}

fn send_response(stream: &mut Stream, resp: &WireResponse) -> std::io::Result<()> {
    let json = serde_json::to_string(resp).expect("serialize response");
    write_frame(stream, json.as_bytes())
}

// ── client ───────────────────────────────────────────────────────────────

/// Client-side failures for [`Client::call`].
#[derive(Debug)]
pub enum ClientError {
    /// Framing or socket failure.
    Frame(FrameError),
    /// The server answered with bytes that are not a [`WireResponse`],
    /// or closed before answering.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::BadResponse(msg) => write!(f, "bad response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking protocol client (used by `repro --load` and the protocol
/// tests). One request in flight at a time per connection.
pub struct Client {
    stream: Stream,
    next_id: u64,
}

impl Client {
    /// Connect to a server at `addr` (same address grammar as
    /// [`Server::bind`]).
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Ok(Self {
            stream: Stream::connect(addr)?,
            next_id: 1,
        })
    }

    /// Send one evaluation request and block for its response.
    pub fn call(&mut self, request: EvalRequest) -> Result<WireResponse, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.roundtrip(&WireRequest::Eval { id, request })
    }

    /// Ask the server to shut down; returns its acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<WireResponse, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.roundtrip(&WireRequest::Shutdown { id })
    }

    fn roundtrip(&mut self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        let json = serde_json::to_string(req).expect("serialize request");
        write_frame(&mut self.stream, json.as_bytes()).map_err(FrameError::Io)?;
        let body = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::BadResponse("server closed before answering".into()))?;
        let text =
            std::str::from_utf8(&body).map_err(|e| ClientError::BadResponse(e.to_string()))?;
        serde_json::from_str::<WireResponse>(text)
            .map_err(|e| ClientError::BadResponse(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"x\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"x\":1}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_prefix_and_body_are_typed() {
        let mut r: &[u8] = &[0, 0];
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::TruncatedPrefix { got: 2 })
        ));

        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::TruncatedBody { expected: 5 })
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let announced = MAX_FRAME_BYTES + 1;
        let mut r = &announced.to_be_bytes()[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Oversized { announced: a }) if a == announced
        ));
    }

    #[test]
    fn wire_messages_round_trip() {
        let req = WireRequest::Eval {
            id: 42,
            request: EvalRequest::Table { n: 3 },
        };
        let back: WireRequest =
            serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back, req);

        let resp = WireResponse::failure(0, "overloaded", "queue full".into(), Some(12));
        let back: WireResponse =
            serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
    }
}
