//! Benchmark-derived trace validation: the conventional machine model
//! rests on a two-class memory-cost split (cache-resident vs streaming).
//! This module derives *actual address traces* from the benchmark
//! programs' loop structure and plays them through the `smp-sim` cache
//! simulator, confirming that:
//!
//! * Threat Analysis touches a per-pair working set of a few dozen words
//!   over and over — its trace hits in any realistic cache (the paper's
//!   "execute mostly within cache");
//! * Terrain Masking's copy/reset/compute/merge loops sweep megabyte
//!   arrays with line-level reuse only — its trace misses at the
//!   line-size rate, which is exactly what `stream_cost` charges.

use c3i::terrain::TerrainScenario;
use c3i::threat::ThreatScenario;
use smp_sim::{CacheConfig, CpuConfig, Op, SmpConfig, SmpMachine, SmpResult};

/// Memory layout used by the trace builders (word addresses).
mod layout {
    /// Threat records start here; 8 words per threat.
    pub const THREATS: usize = 0x1000;
    /// Weapon records; 8 words per weapon.
    pub const WEAPONS: usize = 0x9000;
    /// Interval output array.
    pub const INTERVALS: usize = 0xA000;
    /// Terrain elevations (row-major).
    pub const TERRAIN: usize = 0x10_0000;
    /// The shared masking array.
    pub const MASKING: usize = 0x40_0000;
    /// The temp array.
    pub const TEMP: usize = 0x70_0000;
}

/// The memory trace of sequential Threat Analysis over the first
/// `max_pairs` (threat, weapon) pairs: per time step the predicate
/// re-reads the threat and weapon records and does a fixed amount of
/// arithmetic; each emitted interval appends to the output array.
pub fn threat_analysis_trace(scenario: &ThreatScenario, max_pairs: usize) -> Vec<Op> {
    let mut trace = Vec::new();
    let mut out_ptr = layout::INTERVALS;
    let mut pairs = 0usize;
    'outer: for (ti, threat) in scenario.threats.iter().enumerate() {
        for wi in 0..scenario.weapons.len() {
            if pairs >= max_pairs {
                break 'outer;
            }
            pairs += 1;
            let t_addr = layout::THREATS + 8 * ti;
            let w_addr = layout::WEAPONS + 8 * wi;
            let steps = (threat.last_step().saturating_sub(threat.first_step())) as usize;
            for s in 0..steps {
                // The predicate touches a handful of record words...
                for k in 0..3 {
                    trace.push(Op::Mem {
                        addr: t_addr + k,
                        write: false,
                    });
                }
                for k in 0..2 {
                    trace.push(Op::Mem {
                        addr: w_addr + k,
                        write: false,
                    });
                }
                // ...and computes (trajectory + envelope + flyout).
                trace.push(Op::Compute(25));
                // Occasionally an interval is written out (streaming).
                if s % 97 == 96 {
                    for k in 0..4 {
                        trace.push(Op::Mem {
                            addr: out_ptr + k,
                            write: true,
                        });
                    }
                    out_ptr += 4;
                }
            }
        }
    }
    trace
}

/// The memory trace of sequential Terrain Masking over the first
/// `max_threats` threats: the four bulk loops of Program 3 with their
/// real row-major address patterns over the full-size arrays.
pub fn terrain_masking_trace(scenario: &TerrainScenario, max_threats: usize) -> Vec<Op> {
    let mut trace = Vec::new();
    let terrain = &scenario.terrain;
    let xs = terrain.x_size();
    for threat in scenario.threats.iter().take(max_threats) {
        let region = c3i::terrain::Region::of_checked(threat, xs, terrain.y_size());
        let cell = |x: usize, y: usize| y * xs + x;
        // temp[c] = masking[c]
        for (x, y) in region.cells() {
            trace.push(Op::Mem {
                addr: layout::MASKING + cell(x, y),
                write: false,
            });
            trace.push(Op::Mem {
                addr: layout::TEMP + cell(x, y),
                write: true,
            });
        }
        // masking[c] = INF
        for (x, y) in region.cells() {
            trace.push(Op::Mem {
                addr: layout::MASKING + cell(x, y),
                write: true,
            });
        }
        // recurrence: read parents (nearby ring cells) + terrain, write cell
        for (x, y) in region.cells() {
            trace.push(Op::Compute(12));
            trace.push(Op::Mem {
                addr: layout::MASKING + cell(x, y),
                write: false,
            });
            trace.push(Op::Mem {
                addr: layout::TERRAIN + cell(x, y),
                write: false,
            });
            trace.push(Op::Mem {
                addr: layout::MASKING + cell(x, y),
                write: true,
            });
        }
        // masking[c] = min(masking[c], temp[c])
        for (x, y) in region.cells() {
            trace.push(Op::Mem {
                addr: layout::MASKING + cell(x, y),
                write: false,
            });
            trace.push(Op::Mem {
                addr: layout::TEMP + cell(x, y),
                write: false,
            });
            trace.push(Op::Compute(2));
            trace.push(Op::Mem {
                addr: layout::MASKING + cell(x, y),
                write: true,
            });
        }
    }
    trace
}

/// A 1998-class processor cache for the validation runs: 1 MB (128 K
/// words), 32-byte (4-word) lines, 4-way.
pub fn validation_cpu() -> CpuConfig {
    CpuConfig {
        cache: CacheConfig {
            words: 128 * 1024,
            line_words: 4,
            ways: 4,
        },
        hit_cycles: 1,
        miss_extra_cycles: 40,
    }
}

/// Run a single-processor trace through `smp-sim`.
pub fn run_trace(trace: Vec<Op>) -> SmpResult {
    let mut m = SmpMachine::new(SmpConfig {
        n_cpus: 1,
        cpu: validation_cpu(),
        bus_per_transaction: 6,
    });
    m.run(&[trace])
}

/// The parallel coarse-grained Terrain Masking traces: threats dealt
/// round-robin over `n_cpus` processors, each processor running the
/// Program 4 loops (private temp compute, shared-masking merge) over its
/// threats. Shared-array writes produce real coherence traffic in the
/// simulator.
pub fn terrain_masking_parallel_traces(
    scenario: &TerrainScenario,
    n_cpus: usize,
    max_threats: usize,
) -> Vec<Vec<Op>> {
    let terrain = &scenario.terrain;
    let xs = terrain.x_size();
    let mut traces: Vec<Vec<Op>> = vec![Vec::new(); n_cpus];
    for (ti, threat) in scenario.threats.iter().take(max_threats).enumerate() {
        let trace = &mut traces[ti % n_cpus];
        let region = c3i::terrain::Region::of_checked(threat, xs, terrain.y_size());
        let cell = |x: usize, y: usize| y * xs + x;
        // Private temp arrays per cpu (disjoint address ranges).
        let temp_base = layout::TEMP + (ti % n_cpus) * 0x8_0000;
        // temp = INF; temp = recurrence(terrain)
        for (x, y) in region.cells() {
            trace.push(Op::Mem {
                addr: temp_base + cell(x, y),
                write: true,
            });
        }
        for (x, y) in region.cells() {
            trace.push(Op::Compute(12));
            trace.push(Op::Mem {
                addr: temp_base + cell(x, y),
                write: false,
            });
            trace.push(Op::Mem {
                addr: layout::TERRAIN + cell(x, y),
                write: false,
            });
            trace.push(Op::Mem {
                addr: temp_base + cell(x, y),
                write: true,
            });
        }
        // masking = min(masking, temp) under block locks (lock cost folded
        // into compute).
        for (x, y) in region.cells() {
            trace.push(Op::Mem {
                addr: layout::MASKING + cell(x, y),
                write: false,
            });
            trace.push(Op::Mem {
                addr: temp_base + cell(x, y),
                write: false,
            });
            trace.push(Op::Compute(2));
            trace.push(Op::Mem {
                addr: layout::MASKING + cell(x, y),
                write: true,
            });
        }
    }
    traces
}

/// Run parallel traces and return the result.
pub fn run_parallel_traces(traces: Vec<Vec<Op>>) -> SmpResult {
    let n = traces.len();
    let mut m = SmpMachine::new(SmpConfig {
        n_cpus: n,
        cpu: validation_cpu(),
        bus_per_transaction: 6,
    });
    m.run(&traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c3i::terrain::TerrainScenarioParams;
    use c3i::threat::ThreatScenarioParams;

    #[test]
    fn threat_analysis_trace_is_cache_resident() {
        let scenario = c3i::threat::generate(ThreatScenarioParams {
            n_threats: 20,
            n_weapons: 4,
            seed: 1,
            ..Default::default()
        });
        let trace = threat_analysis_trace(&scenario, 40);
        assert!(trace.len() > 10_000, "trace too small: {}", trace.len());
        let r = run_trace(trace);
        assert!(
            r.hit_rate() > 0.97,
            "Threat Analysis must run in cache: hit rate {}",
            r.hit_rate()
        );
    }

    #[test]
    fn terrain_masking_trace_streams_at_the_line_rate() {
        let scenario = c3i::terrain::generate(TerrainScenarioParams {
            grid_size: 512,
            n_threats: 4,
            seed: 1,
            ..Default::default()
        });
        let trace = terrain_masking_trace(&scenario, 4);
        assert!(trace.len() > 100_000);
        let r = run_trace(trace);
        // The four loops re-touch each cell several times within a short
        // window (temporal reuse inside one loop body) but each *loop*
        // re-streams the arrays. Expect a hit rate well below the
        // resident case and mem stalls dominating.
        assert!(
            r.hit_rate() < 0.95,
            "Terrain Masking must miss substantially: hit rate {}",
            r.hit_rate()
        );
        let stalls = r.mem_stalls[0] as f64;
        let total = r.finish[0] as f64;
        assert!(
            stalls / total > 0.3,
            "memory stalls must dominate the memory-bound trace: {}",
            stalls / total
        );
    }

    #[test]
    fn parallel_terrain_traces_saturate_like_figure_4() {
        // Fixed total work split over 1/4/16 CPUs in the cache/bus
        // simulator: speedup must saturate well below linear — the shape
        // the analytic Exemplar model predicts for Table 10.
        let scenario = c3i::terrain::generate(TerrainScenarioParams {
            grid_size: 512,
            n_threats: 16,
            seed: 9,
            ..Default::default()
        });
        let time = |n: usize| {
            run_parallel_traces(terrain_masking_parallel_traces(&scenario, n, 16)).makespan()
        };
        let t1 = time(1);
        let t4 = time(4);
        let t16 = time(16);
        let s4 = t1 as f64 / t4 as f64;
        let s16 = t1 as f64 / t16 as f64;
        assert!(s4 > 1.8, "some speedup at 4 CPUs: {s4}");
        assert!(s16 < 10.0, "16-CPU speedup must saturate: {s16}");
        assert!(s16 < 16.0 * 0.65, "well below linear: {s16}");
        // And the coherence traffic on the shared masking array is real.
        let r16 = run_parallel_traces(terrain_masking_parallel_traces(&scenario, 16, 16));
        assert!(r16.invalidations > 0, "shared-array writes must invalidate");
    }

    #[test]
    fn the_two_traces_separate_cleanly() {
        let ts = c3i::threat::generate(ThreatScenarioParams {
            n_threats: 10,
            n_weapons: 4,
            seed: 2,
            ..Default::default()
        });
        let tm = c3i::terrain::generate(TerrainScenarioParams {
            grid_size: 384,
            n_threats: 3,
            seed: 2,
            ..Default::default()
        });
        let ta_run = run_trace(threat_analysis_trace(&ts, 30));
        let tm_run = run_trace(terrain_masking_trace(&tm, 3));
        let ta_stall = ta_run.mem_stalls[0] as f64 / ta_run.finish[0] as f64;
        let tm_stall = tm_run.mem_stalls[0] as f64 / tm_run.finish[0] as f64;
        assert!(
            tm_stall > 3.0 * ta_stall,
            "stall fractions must separate: TA {ta_stall:.3} vs TM {tm_stall:.3}"
        );
    }
}
