//! Serde-backed snapshot cache for the measured workload + calibration.
//!
//! Measuring the workload (running every benchmark variant under the
//! op-counting backend) dominates harness start-up — seconds at Paper
//! scale — and its result is a pure function of the measurement code and
//! the [`WorkloadScale`]. This module memoizes that function on disk:
//! `repro`, the integration tests, and the criterion benches all call
//! [`load_or_measure`] and only the first of them pays for measurement.
//!
//! Correctness comes from the *code fingerprint*: a snapshot stores a hash
//! of every source file the measured numbers depend on (benchmark
//! algorithms, counting backend, workload/calibration definitions,
//! embedded via `include_str!` at compile time). Any edit to those files
//! changes the fingerprint of the running binary, so stale snapshots are
//! silently re-measured, never trusted. Unreadable or corrupt snapshots
//! are likewise treated as misses.
//!
//! Knobs (environment variables):
//! * `C3I_CACHE_DIR` — override the snapshot directory (default:
//!   `target/c3i-cache` in the workspace).
//! * `C3I_NO_CACHE` — when set (to anything non-empty), neither read nor
//!   write snapshots.

use crate::calibrate::{calibrate, Calibration};
use crate::workload::{Workload, WorkloadScale};
use std::path::{Path, PathBuf};

/// Everything [`load_or_measure`] persists: the fingerprint that guards
/// staleness plus the two expensive-to-recompute values.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// [`code_fingerprint`] of the binary that wrote the snapshot.
    pub fingerprint: String,
    /// The measured workload profiles.
    pub workload: Workload,
    /// Models calibrated against `workload`.
    pub cal: Calibration,
}

/// How [`load_or_measure`] obtained its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// A valid snapshot with a matching fingerprint was loaded.
    Hit,
    /// No usable snapshot; measured and wrote a fresh one.
    Miss,
    /// `C3I_NO_CACHE` was set; measured without touching the disk.
    Disabled,
}

/// Sources the measured numbers depend on, embedded at compile time as
/// `(crates-relative path, content)` pairs. The path is hashed with the
/// content (so moves invalidate too) and lets the coverage test map each
/// entry back to the file on disk. The whole `c3i` crate is included —
/// over-inclusion only re-measures, under-inclusion trusts stale numbers.
const MEASUREMENT_SOURCES: &[(&str, &str)] = &[
    ("core/src/workload.rs", include_str!("workload.rs")),
    ("core/src/calibrate.rs", include_str!("calibrate.rs")),
    ("core/src/models.rs", include_str!("models.rs")),
    ("c3i/src/lib.rs", include_str!("../../c3i/src/lib.rs")),
    ("c3i/src/io.rs", include_str!("../../c3i/src/io.rs")),
    ("c3i/src/grid.rs", include_str!("../../c3i/src/grid.rs")),
    ("c3i/src/counts.rs", include_str!("../../c3i/src/counts.rs")),
    (
        "c3i/src/threat/mod.rs",
        include_str!("../../c3i/src/threat/mod.rs"),
    ),
    (
        "c3i/src/threat/model.rs",
        include_str!("../../c3i/src/threat/model.rs"),
    ),
    (
        "c3i/src/threat/scenario.rs",
        include_str!("../../c3i/src/threat/scenario.rs"),
    ),
    (
        "c3i/src/threat/engagement.rs",
        include_str!("../../c3i/src/threat/engagement.rs"),
    ),
    (
        "c3i/src/threat/sequential.rs",
        include_str!("../../c3i/src/threat/sequential.rs"),
    ),
    (
        "c3i/src/threat/chunked.rs",
        include_str!("../../c3i/src/threat/chunked.rs"),
    ),
    (
        "c3i/src/threat/fine.rs",
        include_str!("../../c3i/src/threat/fine.rs"),
    ),
    (
        "c3i/src/threat/verify.rs",
        include_str!("../../c3i/src/threat/verify.rs"),
    ),
    (
        "c3i/src/terrain/mod.rs",
        include_str!("../../c3i/src/terrain/mod.rs"),
    ),
    (
        "c3i/src/terrain/scenario.rs",
        include_str!("../../c3i/src/terrain/scenario.rs"),
    ),
    (
        "c3i/src/terrain/los.rs",
        include_str!("../../c3i/src/terrain/los.rs"),
    ),
    (
        "c3i/src/terrain/exact.rs",
        include_str!("../../c3i/src/terrain/exact.rs"),
    ),
    (
        "c3i/src/terrain/sequential.rs",
        include_str!("../../c3i/src/terrain/sequential.rs"),
    ),
    (
        "c3i/src/terrain/coarse.rs",
        include_str!("../../c3i/src/terrain/coarse.rs"),
    ),
    (
        "c3i/src/terrain/fine.rs",
        include_str!("../../c3i/src/terrain/fine.rs"),
    ),
    (
        "c3i/src/terrain/route.rs",
        include_str!("../../c3i/src/terrain/route.rs"),
    ),
    (
        "c3i/src/terrain/render.rs",
        include_str!("../../c3i/src/terrain/render.rs"),
    ),
    (
        "c3i/src/terrain/verify.rs",
        include_str!("../../c3i/src/terrain/verify.rs"),
    ),
    (
        "sthreads/src/counting.rs",
        include_str!("../../sthreads/src/counting.rs"),
    ),
];

/// FNV-1a hash (64-bit, hex) over every measurement-defining source file.
/// Two binaries agree on this string iff they agree on the measurement
/// code, which is exactly the condition for sharing snapshots.
pub fn code_fingerprint() -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (path, src) in MEASUREMENT_SOURCES {
        for b in path.bytes().chain(src.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separate files so content cannot shift between them unnoticed.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The snapshot directory: `C3I_CACHE_DIR` if set, else `target/c3i-cache`
/// next to the workspace's build artifacts.
pub fn cache_dir() -> PathBuf {
    match std::env::var_os("C3I_CACHE_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/c3i-cache"),
    }
}

fn snapshot_path(dir: &Path, scale: WorkloadScale) -> PathBuf {
    let slug = match scale {
        WorkloadScale::Paper => "paper",
        WorkloadScale::Reduced => "reduced",
    };
    dir.join(format!("workload_{slug}.json"))
}

fn cache_disabled() -> bool {
    std::env::var_os("C3I_NO_CACHE").is_some_and(|v| !v.is_empty())
}

/// Load a usable snapshot from `dir`, or `None` on any problem (missing
/// file, parse error, fingerprint or scale mismatch).
fn try_load(dir: &Path, scale: WorkloadScale, fingerprint: &str) -> Option<Snapshot> {
    let text = std::fs::read_to_string(snapshot_path(dir, scale)).ok()?;
    let snap: Snapshot = serde_json::from_str(&text).ok()?;
    (snap.fingerprint == fingerprint && snap.workload.scale == scale).then_some(snap)
}

/// Write `snap` to `dir` atomically (temp file + rename), so a concurrent
/// reader never sees a torn snapshot. Errors are swallowed: the cache is
/// an optimization and must never fail the harness.
fn try_store(dir: &Path, snap: &Snapshot) {
    let Ok(text) = serde_json::to_string(snap) else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let final_path = snapshot_path(dir, snap.workload.scale);
    let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
    // The temp file must not outlive this call on *either* failure path:
    // a failed write can still leave a partial file (or a dangling link
    // target) behind, not just a failed rename.
    if std::fs::write(&tmp_path, text).is_err() || std::fs::rename(&tmp_path, &final_path).is_err()
    {
        let _ = std::fs::remove_file(&tmp_path);
    }
}

/// [`load_or_measure`] against an explicit directory (the testable core;
/// the public entry point resolves the directory from the environment).
pub fn load_or_measure_in(
    dir: &Path,
    scale: WorkloadScale,
    use_cache: bool,
) -> (Workload, Calibration, CacheStatus) {
    let fingerprint = code_fingerprint();
    if use_cache {
        if let Some(snap) = try_load(dir, scale, &fingerprint) {
            return (snap.workload, snap.cal, CacheStatus::Hit);
        }
    }
    let workload = Workload::build(scale);
    let cal = calibrate(&workload);
    if !use_cache {
        return (workload, cal, CacheStatus::Disabled);
    }
    try_store(
        dir,
        &Snapshot {
            fingerprint,
            workload: workload.clone(),
            cal: cal.clone(),
        },
    );
    (workload, cal, CacheStatus::Miss)
}

/// Return the measured workload and calibration for `scale`, from the
/// snapshot cache when possible (see the module docs for the staleness
/// guarantee and the `C3I_CACHE_DIR` / `C3I_NO_CACHE` knobs).
pub fn load_or_measure(scale: WorkloadScale) -> (Workload, Calibration, CacheStatus) {
    load_or_measure_in(&cache_dir(), scale, !cache_disabled())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A unique throwaway directory per test (no temp-dir crate; pid +
    /// counter keeps concurrent test binaries apart).
    fn scratch_dir() -> PathBuf {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("c3i-cache-test-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(code_fingerprint(), code_fingerprint());
        assert_eq!(code_fingerprint().len(), 16);
    }

    #[test]
    fn miss_then_hit_round_trips_identical_values() {
        let dir = scratch_dir();
        let (w1, c1, s1) = load_or_measure_in(&dir, WorkloadScale::Reduced, true);
        assert_eq!(s1, CacheStatus::Miss);
        let (w2, c2, s2) = load_or_measure_in(&dir, WorkloadScale::Reduced, true);
        assert_eq!(s2, CacheStatus::Hit);
        assert_eq!(w1, w2, "cached workload must round-trip exactly");
        assert_eq!(c1, c2, "cached calibration must round-trip exactly");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_remeasured() {
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(snapshot_path(&dir, WorkloadScale::Reduced), "{ not json").unwrap();
        let (_, _, status) = load_or_measure_in(&dir, WorkloadScale::Reduced, true);
        assert_eq!(status, CacheStatus::Miss);
        // And the bad file was replaced by a loadable one.
        let (_, _, status) = load_or_measure_in(&dir, WorkloadScale::Reduced, true);
        assert_eq!(status, CacheStatus::Hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_is_remeasured() {
        // A crash (or full disk) mid-write outside the atomic-rename path
        // leaves a prefix of valid JSON; it must read as a miss, never a
        // panic.
        let dir = scratch_dir();
        let (_, _, status) = load_or_measure_in(&dir, WorkloadScale::Reduced, true);
        assert_eq!(status, CacheStatus::Miss);
        let path = snapshot_path(&dir, WorkloadScale::Reduced);
        let text = std::fs::read(&path).unwrap();
        for keep in [0, 1, text.len() / 2, text.len() - 1] {
            std::fs::write(&path, &text[..keep]).unwrap();
            let (_, _, status) = load_or_measure_in(&dir, WorkloadScale::Reduced, true);
            assert_eq!(status, CacheStatus::Miss, "truncated at {keep} bytes");
        }
        // Each miss rewrote the snapshot, so the cache self-heals.
        let (_, _, status) = load_or_measure_in(&dir, WorkloadScale::Reduced, true);
        assert_eq!(status, CacheStatus::Hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_tmp_write_leaves_no_tmp_file() {
        // The PR-8 satellite bug: when `fs::write` itself failed,
        // `try_store` only cleaned the temp path up after a *rename*
        // failure, leaking `.tmp.<pid>` entries into the cache dir.
        let dir = scratch_dir();
        let (workload, cal, _) = load_or_measure_in(&dir, WorkloadScale::Reduced, true);
        let final_path = snapshot_path(&dir, WorkloadScale::Reduced);
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        // Force the write itself to fail: point the deterministic temp
        // path at a target inside a directory that does not exist, so
        // `fs::write`'s open(2) follows the link and gets ENOENT while a
        // directory entry for the temp path already exists.
        std::os::unix::fs::symlink(dir.join("missing-subdir/target"), &tmp_path).unwrap();
        try_store(
            &dir,
            &Snapshot {
                fingerprint: code_fingerprint(),
                workload,
                cal,
            },
        );
        assert!(
            std::fs::symlink_metadata(&tmp_path).is_err(),
            "the temp path must be cleaned up when the write itself fails"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_covers_every_measurement_source_on_disk() {
        // The measurement chain is workload.rs -> c3i benchmarks ->
        // sthreads counting backend. Walk the benchmark crate on disk and
        // require every source file to be embedded, byte-identical — a new
        // c3i file that silently isn't fingerprinted would let stale
        // snapshots survive edits to it.
        let crates_root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
        let c3i_src = crates_root.join("c3i/src");
        let mut walk = vec![c3i_src.clone()];
        let mut checked = 0usize;
        while let Some(dir) = walk.pop() {
            for entry in std::fs::read_dir(&dir).unwrap() {
                let p = entry.unwrap().path();
                if p.is_dir() {
                    walk.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    let rel = format!("c3i/src/{}", p.strip_prefix(&c3i_src).unwrap().display());
                    let embedded = MEASUREMENT_SOURCES
                        .iter()
                        .find(|(path, _)| *path == rel)
                        .unwrap_or_else(|| {
                            panic!("{rel} is not fingerprinted — add it to MEASUREMENT_SOURCES")
                        })
                        .1;
                    let on_disk = std::fs::read_to_string(&p).unwrap();
                    assert_eq!(embedded, on_disk, "{rel}: embedded copy differs from disk");
                    checked += 1;
                }
            }
        }
        assert!(checked >= 18, "walked only {checked} c3i sources");
        // The measurement-side singletons outside c3i.
        for must in [
            "core/src/workload.rs",
            "core/src/calibrate.rs",
            "core/src/models.rs",
            "sthreads/src/counting.rs",
        ] {
            assert!(
                MEASUREMENT_SOURCES.iter().any(|(p, _)| *p == must),
                "{must} missing from MEASUREMENT_SOURCES"
            );
        }
    }

    #[test]
    fn stale_fingerprint_is_remeasured() {
        let dir = scratch_dir();
        let (_, _, status) = load_or_measure_in(&dir, WorkloadScale::Reduced, true);
        assert_eq!(status, CacheStatus::Miss);
        // Forge a snapshot from a "different build".
        let path = snapshot_path(&dir, WorkloadScale::Reduced);
        let text = std::fs::read_to_string(&path).unwrap();
        let forged = text.replacen(&code_fingerprint(), "deadbeefdeadbeef", 1);
        std::fs::write(&path, forged).unwrap();
        let (_, _, status) = load_or_measure_in(&dir, WorkloadScale::Reduced, true);
        assert_eq!(
            status,
            CacheStatus::Miss,
            "foreign fingerprints must not be trusted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_neither_reads_nor_writes() {
        let dir = scratch_dir();
        let (_, _, status) = load_or_measure_in(&dir, WorkloadScale::Reduced, false);
        assert_eq!(status, CacheStatus::Disabled);
        assert!(!dir.exists(), "disabled cache must not create {dir:?}");
    }
}
