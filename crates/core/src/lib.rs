//! # eval-core — the paper's primary contribution, rebuilt
//!
//! The SC'98 paper's contribution is a cross-platform *evaluation*: the
//! same two C3I benchmarks timed on a DEC Alpha, a quad Pentium Pro, a
//! 16-processor HP Exemplar, and the 2-processor Tera MTA, under
//! sequential execution, automatic parallelization, and manual
//! parallelization. None of those machines exist for us, so this crate
//! implements the evaluation as a *modeling pipeline*:
//!
//! 1. [`workload`] runs the benchmarks from the `c3i` crate under the
//!    op-counting backend, producing per-logical-thread operation
//!    profiles for every program variant;
//! 2. [`models`] turns profiles into predicted wall-clock seconds via
//!    per-platform analytic machine models (cache-based conventional
//!    machines; the latency-per-stream Tera MTA model), whose mechanisms
//!    are validated against the cycle-level simulators (`mta-sim`,
//!    `smp-sim`);
//! 3. [`mod@calibrate`] pins the models' free constants to the paper's
//!    *sequential* rows (Tables 2 and 8) and the three prototype-network /
//!    overhead anchors the paper itself could not decompose — every other
//!    table entry is then a prediction;
//! 4. [`experiments`] regenerates every table and figure of the paper,
//!    rendered by [`tables`];
//! 5. [`service`] wraps the harness in a long-lived [`Evaluator`] behind
//!    a bounded batching queue, and [`wire`] serves it over a socket
//!    (`repro --serve`) with responses bit-identical to direct calls.
//!
//! See EXPERIMENTS.md at the repository root for paper-vs-model numbers
//! for every row.

pub mod cache;
pub mod calibrate;
pub mod experiments;
pub mod models;
pub mod service;
pub mod tables;
pub mod validate;
pub mod wire;
pub mod workload;

pub use cache::{load_or_measure, CacheStatus, Snapshot};
pub use calibrate::{calibrate, Calibration, PaperAnchors};
pub use experiments::{Experiments, Figure, HarnessReport, PhaseBreakdown, PhaseTiming};
pub use models::{ConventionalModel, TeraModel};
pub use service::{
    EvalError, EvalRequest, Evaluator, Platform, Service, ServiceConfig, ServiceReport,
};
pub use tables::Table;
pub use wire::{Client, Server};
pub use workload::{Workload, WorkloadScale};
