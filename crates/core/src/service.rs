//! The batched scenario-evaluation service: [`Experiments`] refactored
//! into a long-lived [`Evaluator`] behind a bounded request queue.
//!
//! The paper's core claim is that the Tera MTA hides latency by
//! saturating the machine with *many independent threads* rather than
//! making one thread fast. The serving analogue of that claim is this
//! module: instead of one monolithic `repro` run, the harness accepts
//! many independent scenario-evaluation requests, admits them through a
//! queue with explicit backpressure, batches whatever is waiting, and
//! shards each batch across the `sthreads` worker pool. Throughput comes
//! from concurrency across requests — exactly the throughput-vs-latency
//! trade the TLP literature frames for multithreaded machines.
//!
//! The pieces, in request order:
//!
//! 1. [`EvalRequest`] — one scenario evaluation (a paper table, a figure,
//!    a modeled benchmark configuration, a scalability projection...).
//!    Every request is a pure function of the loaded workload snapshot,
//!    so served responses are *bit-identical* to calling the
//!    corresponding [`Experiments`] method directly — the property the
//!    load generator and CI verify end to end.
//! 2. [`Evaluator`] — the service object: workload measurement and model
//!    calibration loaded **once** (through the fingerprint snapshot
//!    cache), then shared immutably by every request.
//! 3. [`Service`] — the admission queue and batch worker. The queue is
//!    bounded: when `capacity` requests are already waiting, submission
//!    fails *immediately* with [`EvalError::Overloaded`] carrying a
//!    retry hint — the queue never grows without bound and never blocks
//!    the submitting connection thread. A dedicated worker drains up to
//!    `batch_max` requests at a time and evaluates the batch with
//!    [`sthreads::par_map`], one shard per pool worker. Per-request
//!    latency (admission to response) feeds the percentile tier in
//!    [`sthreads::stats`].
//! 4. [`ServiceReport`] — the `BENCH_service.json` schema written by the
//!    `repro --load` generator and enforced by `repro --gate`.
//!
//! The socket layer (length-prefixed JSON frames, the `repro --serve`
//! server and `--load` client) lives in [`crate::wire`].

use crate::experiments::{Experiments, Figure};
use crate::workload::WorkloadScale;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use sthreads::{par_map, Schedule, ThreadPool};

/// Platforms a modeled-benchmark request can target. Mirrors Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Platform {
    /// Digital AlphaStation (uniprocessor cache model).
    Alpha,
    /// NeTpower Sparta quad Pentium Pro (SMP model).
    PentiumPro,
    /// HP Exemplar, 16 processors (SMP model).
    Exemplar,
    /// Tera MTA (latency-per-stream model).
    Tera,
}

/// One scenario-evaluation request. Every variant is a pure, sequential,
/// deterministic function of the [`Evaluator`]'s loaded snapshot; the
/// response body for a given request is therefore byte-stable across
/// serving, batching, and sharding.
///
/// Wire shape (vendored-serde externally tagged): unit variants are JSON
/// strings (`"Ping"`), struct variants are one-key objects
/// (`{"Table": {"n": 3}}`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum EvalRequest {
    /// Liveness probe; evaluates to `"pong"` without touching the models.
    Ping,
    /// Render paper table `n` (1–12).
    Table {
        /// Table number, 1–12.
        n: u8,
    },
    /// Render paper figure `n` (1–4) as an ASCII plot.
    FigurePlot {
        /// Figure number, 1–4.
        n: u8,
    },
    /// Modeled Threat Analysis seconds for one configuration: chunked on
    /// a conventional SMP (where `n_chunks` is tied to `n_procs`, the
    /// paper's setup) or `n_chunks`-way on the Tera.
    ThreatModel {
        /// Target platform.
        platform: Platform,
        /// Processor count (1–1024).
        n_procs: usize,
        /// Chunk count on the Tera (1–100000; ignored for conventional
        /// platforms, which chunk one-per-processor as the paper did).
        n_chunks: usize,
    },
    /// Modeled Terrain Masking seconds: coarse-grained on a conventional
    /// SMP, fine-grained on the Tera.
    TerrainModel {
        /// Target platform.
        platform: Platform,
        /// Processor count (1–1024).
        n_procs: usize,
    },
    /// §8 scalability projection over an explicit processor list.
    Scalability {
        /// Processor counts (1–64 entries, each 1–65536).
        procs: Vec<usize>,
    },
    /// The ±20% calibration-perturbation sensitivity table.
    Sensitivity,
    /// Testing/load-shaping aid: hold a worker slot for `ms` milliseconds
    /// (capped at 10 s). This is how the backpressure tests make the
    /// batch worker provably busy without racing on real work.
    Sleep {
        /// Milliseconds to sleep (0–10000).
        ms: u64,
    },
}

/// Typed evaluation/service errors. These cross the wire as structured
/// error responses — a malformed or oversubscribed request must never
/// panic the service or silently drop output.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum EvalError {
    /// The request itself is invalid (out-of-range table number, empty
    /// processor list...). Retrying the same request cannot succeed.
    BadRequest(String),
    /// The bounded queue is full. The request was **not** admitted;
    /// retry after roughly the hinted delay.
    Overloaded {
        /// Suggested client back-off before retrying, in milliseconds
        /// (derived from the live p50 of the latency percentile tier).
        retry_after_ms: u64,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// The evaluation panicked. The panic is contained to the one
    /// request — the batch worker and every other queued request keep
    /// going (an uncontained panic would silently wedge the queue:
    /// admitted requests would wait forever on a dead worker).
    Internal(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            EvalError::Overloaded { retry_after_ms } => {
                write!(f, "queue full; retry after ~{retry_after_ms} ms")
            }
            EvalError::ShuttingDown => write!(f, "service is shutting down"),
            EvalError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The long-lived service object: a measured workload snapshot and
/// calibrated models, loaded once and shared by every request.
pub struct Evaluator {
    exps: Experiments,
    scale: WorkloadScale,
}

impl Evaluator {
    /// Wrap an already-built harness.
    pub fn new(exps: Experiments, scale: WorkloadScale) -> Self {
        Self { exps, scale }
    }

    /// Load the workload snapshot for `scale` through the fingerprint
    /// cache (measuring only on a cache miss) and calibrate the models —
    /// the "load once" half of the service contract.
    pub fn load(scale: WorkloadScale, use_cache: bool) -> (Self, crate::CacheStatus) {
        let (workload, cal, status) =
            crate::cache::load_or_measure_in(&crate::cache::cache_dir(), scale, use_cache);
        (Self::new(Experiments { workload, cal }, scale), status)
    }

    /// The wrapped harness (for the non-serving `repro` sections).
    pub fn experiments(&self) -> &Experiments {
        &self.exps
    }

    /// The workload scale this evaluator was loaded at.
    pub fn scale(&self) -> WorkloadScale {
        self.scale
    }

    /// The calibrated conventional model for `platform`, with `n_procs`
    /// checked against the machine's actual processor count — the
    /// model's own out-of-range assertion must surface as a typed error,
    /// not a panic inside the batch worker.
    fn checked_model(
        &self,
        platform: Platform,
        n_procs: usize,
    ) -> Result<&crate::models::ConventionalModel, EvalError> {
        let model = match platform {
            Platform::Alpha => &self.exps.cal.alpha,
            Platform::PentiumPro => &self.exps.cal.ppro,
            Platform::Exemplar => &self.exps.cal.exemplar,
            Platform::Tera => unreachable!("Tera is not a conventional model"),
        };
        if n_procs > model.n_processors {
            return Err(EvalError::BadRequest(format!(
                "{platform:?} has {} processor(s); n_procs {n_procs} exceeds it",
                model.n_processors
            )));
        }
        Ok(model)
    }

    /// Evaluate one request **sequentially and deterministically**. This
    /// is both the direct-call reference path and the body the batch
    /// worker shards across the pool — served results are bit-identical
    /// to direct calls because they *are* the same call.
    pub fn evaluate(&self, req: &EvalRequest) -> Result<String, EvalError> {
        let bad = |msg: String| Err(EvalError::BadRequest(msg));
        match req {
            EvalRequest::Ping => Ok("pong".to_string()),
            EvalRequest::Table { n } => {
                let e = &self.exps;
                let table = match n {
                    1 => e.table1(),
                    2 => e.table2(),
                    3 => e.table3(),
                    4 => e.table4(),
                    5 => e.table5(),
                    6 => e.table6(),
                    7 => e.table7(),
                    8 => e.table8(),
                    9 => e.table9(),
                    10 => e.table10(),
                    11 => e.table11(),
                    12 => e.table12(),
                    _ => return bad(format!("table number {n} not in 1..=12")),
                };
                Ok(table.render())
            }
            EvalRequest::FigurePlot { n } => {
                let fig = match n {
                    1 => Figure::ThreatPPro,
                    2 => Figure::ThreatExemplar,
                    3 => Figure::TerrainPPro,
                    4 => Figure::TerrainExemplar,
                    _ => return bad(format!("figure number {n} not in 1..=4")),
                };
                Ok(self.exps.figure(fig))
            }
            EvalRequest::ThreatModel {
                platform,
                n_procs,
                n_chunks,
            } => {
                if !(1..=1024).contains(n_procs) {
                    return bad(format!("n_procs {n_procs} not in 1..=1024"));
                }
                if !(1..=100_000).contains(n_chunks) {
                    return bad(format!("n_chunks {n_chunks} not in 1..=100000"));
                }
                let secs = match platform {
                    Platform::Tera => self.exps.ta_tera(*n_chunks, *n_procs),
                    _ => {
                        let model = self.checked_model(*platform, *n_procs)?;
                        self.exps.ta_conv_parallel(model, *n_procs)
                    }
                };
                Ok(seconds_body(secs))
            }
            EvalRequest::TerrainModel { platform, n_procs } => {
                if !(1..=1024).contains(n_procs) {
                    return bad(format!("n_procs {n_procs} not in 1..=1024"));
                }
                let secs = match platform {
                    Platform::Tera => self.exps.tm_tera(*n_procs),
                    _ => {
                        let model = self.checked_model(*platform, *n_procs)?;
                        self.exps.tm_conv_parallel(model, *n_procs)
                    }
                };
                Ok(seconds_body(secs))
            }
            EvalRequest::Scalability { procs } => {
                if procs.is_empty() || procs.len() > 64 {
                    return bad(format!("procs list length {} not in 1..=64", procs.len()));
                }
                if let Some(&p) = procs.iter().find(|&&p| !(1..=65_536).contains(&p)) {
                    return bad(format!("processor count {p} not in 1..=65536"));
                }
                Ok(self.exps.scalability_projection(procs).render())
            }
            EvalRequest::Sensitivity => Ok(self.exps.sensitivity().render()),
            EvalRequest::Sleep { ms } => {
                if *ms > 10_000 {
                    return bad(format!("sleep {ms} ms exceeds the 10000 ms cap"));
                }
                std::thread::sleep(std::time::Duration::from_millis(*ms));
                Ok(format!("slept {ms} ms"))
            }
        }
    }
}

/// Exact-round-trip JSON body for a modeled-seconds response: the f64 is
/// serialized through the vendored float-roundtrip writer, so comparing
/// response *strings* compares the f64 bit patterns.
fn seconds_body(secs: f64) -> String {
    #[derive(serde::Serialize)]
    struct Seconds {
        seconds: f64,
    }
    serde_json::to_string(&Seconds { seconds: secs }).expect("serialize seconds")
}

/// Tuning knobs for [`Service::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Maximum requests waiting for the batch worker. A submission that
    /// would exceed this is rejected with [`EvalError::Overloaded`] —
    /// never buffered.
    pub capacity: usize,
    /// Maximum requests the worker drains into one batch.
    pub batch_max: usize,
    /// Worker threads the batch is sharded across via [`par_map`].
    pub n_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            batch_max: 32,
            n_threads: ThreadPool::global().n_threads(),
        }
    }
}

/// One admitted request waiting for the batch worker.
struct Job {
    req: EvalRequest,
    admitted: Instant,
    reply: mpsc::Sender<Result<String, EvalError>>,
}

struct ServiceInner {
    evaluator: Evaluator,
    config: ServiceConfig,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// A ticket for a submitted request; [`Pending::wait`] blocks until the
/// batch worker has evaluated it.
pub struct Pending {
    rx: mpsc::Receiver<Result<String, EvalError>>,
}

impl Pending {
    /// Block until the response is ready. A worker that disappeared
    /// (service dropped mid-request) reads as [`EvalError::ShuttingDown`].
    pub fn wait(self) -> Result<String, EvalError> {
        self.rx.recv().unwrap_or(Err(EvalError::ShuttingDown))
    }
}

/// The running service: bounded admission queue + batch worker thread.
/// Dropping the service drains the queue gracefully and joins the worker.
pub struct Service {
    inner: Arc<ServiceInner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Start the batch worker for `evaluator` under `config`.
    pub fn start(evaluator: Evaluator, config: ServiceConfig) -> Self {
        assert!(config.capacity >= 1, "service capacity must be >= 1");
        assert!(config.batch_max >= 1, "service batch_max must be >= 1");
        let inner = Arc::new(ServiceInner {
            evaluator,
            config,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("c3i-evaluator".into())
            .spawn(move || worker_loop(&worker_inner))
            .expect("spawn evaluator worker");
        Self {
            inner,
            worker: Some(worker),
        }
    }

    /// Submit a request. Validation failures and a full queue reject
    /// *immediately* — the queue depth provably never exceeds
    /// `config.capacity` (`tests/service_protocol.rs` pins this at
    /// capacity 1).
    pub fn submit(&self, req: EvalRequest) -> Result<Pending, EvalError> {
        // Reject malformed requests before they occupy queue space; the
        // evaluation itself would fail identically (same validation).
        if let Some(err) = validate_request(&req) {
            return Err(err);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.inner.queue.lock().expect("service queue poisoned");
            if q.shutdown {
                return Err(EvalError::ShuttingDown);
            }
            if q.jobs.len() >= self.inner.config.capacity {
                return Err(EvalError::Overloaded {
                    retry_after_ms: retry_hint_ms(),
                });
            }
            q.jobs.push_back(Job {
                req,
                admitted: Instant::now(),
                reply: tx,
            });
        }
        self.inner.not_empty.notify_one();
        Ok(Pending { rx })
    }

    /// Requests currently waiting for the batch worker (excludes the
    /// batch being evaluated right now). For tests and observability.
    pub fn queue_len(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("service queue poisoned")
            .jobs
            .len()
    }

    /// The evaluator behind the queue (for direct reference evaluations
    /// in tests and the load generator).
    pub fn evaluator(&self) -> &Evaluator {
        &self.inner.evaluator
    }

    /// Stop admitting requests, let the worker drain what was already
    /// admitted, and join it. Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("service queue poisoned");
            q.shutdown = true;
        }
        self.inner.not_empty.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Pre-admission request validation: the same bounds `evaluate` enforces,
/// checked before the request can occupy a queue slot. Returns the error
/// a doomed request would produce, or `None` for admissible ones.
fn validate_request(req: &EvalRequest) -> Option<EvalError> {
    match req {
        EvalRequest::Table { n } if !(1..=12).contains(n) => Some(EvalError::BadRequest(format!(
            "table number {n} not in 1..=12"
        ))),
        EvalRequest::FigurePlot { n } if !(1..=4).contains(n) => Some(EvalError::BadRequest(
            format!("figure number {n} not in 1..=4"),
        )),
        EvalRequest::ThreatModel {
            n_procs, n_chunks, ..
        } if !(1..=1024).contains(n_procs) || !(1..=100_000).contains(n_chunks) => {
            Some(EvalError::BadRequest(format!(
                "threat model bounds: n_procs {n_procs}, n_chunks {n_chunks}"
            )))
        }
        EvalRequest::TerrainModel { n_procs, .. } if !(1..=1024).contains(n_procs) => Some(
            EvalError::BadRequest(format!("n_procs {n_procs} not in 1..=1024")),
        ),
        EvalRequest::Scalability { procs }
            if procs.is_empty()
                || procs.len() > 64
                || procs.iter().any(|p| !(1..=65_536).contains(p)) =>
        {
            Some(EvalError::BadRequest("scalability bounds violated".into()))
        }
        EvalRequest::Sleep { ms } if *ms > 10_000 => Some(EvalError::BadRequest(format!(
            "sleep {ms} ms exceeds the 10000 ms cap"
        ))),
        _ => None,
    }
}

/// Client back-off hint when the queue rejects: the live p50 of served
/// request latency (rounded up to ms), clamped to [1, 1000]. Before any
/// request has completed there is no signal; suggest 10 ms.
fn retry_hint_ms() -> u64 {
    let p50_ns = sthreads::stats::service_latency().quantile_ns(0.5);
    if p50_ns == 0 {
        10
    } else {
        p50_ns.div_ceil(1_000_000).clamp(1, 1_000)
    }
}

/// The batch worker: sleep until jobs exist, drain up to `batch_max`,
/// shard the batch across the pool, reply, repeat. On shutdown the queue
/// is drained to empty before exiting, so every admitted request is
/// answered.
fn worker_loop(inner: &ServiceInner) {
    loop {
        let batch: Vec<Job> = {
            let mut q = inner.queue.lock().expect("service queue poisoned");
            loop {
                if !q.jobs.is_empty() {
                    let take = q.jobs.len().min(inner.config.batch_max);
                    break q.jobs.drain(..take).collect();
                }
                if q.shutdown {
                    return;
                }
                q = inner.not_empty.wait(q).expect("service queue poisoned");
            }
        };
        // Shard the batch across the pool. `evaluate` is the sequential
        // reference path, so ordering and sharding cannot change any
        // response byte; `par_map` preserves index order. Each
        // evaluation is panic-contained: an escaped panic would kill
        // this worker thread and leave every queued request waiting on
        // a reply that can never come.
        let results = par_map(
            batch.len(),
            inner.config.n_threads,
            Schedule::Dynamic,
            |i| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    inner.evaluator.evaluate(&batch[i].req)
                }))
                .unwrap_or_else(|payload| Err(EvalError::Internal(panic_message(&payload))))
            },
        );
        for (job, result) in batch.into_iter().zip(results) {
            sthreads::stats::record_service_latency_ns(job.admitted.elapsed().as_nanos() as u64);
            // A receiver that hung up (client disconnected mid-request)
            // is not an error; drop the response.
            let _ = job.reply.send(result);
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "evaluation panicked".to_string()
    }
}

// ── the BENCH_service.json report ────────────────────────────────────────

/// Schema tag identifying a [`ServiceReport`] document; `repro --gate`
/// dispatches on it.
pub const SERVICE_SCHEMA: &str = "c3i.service-bench.v1";

/// Minimum requests a gateable load run must have completed. A report
/// over a handful of requests says nothing about percentiles.
pub const SERVICE_MIN_REQUESTS: usize = 20;

/// The `BENCH_service.json` document: one `repro --load` run's measured
/// service-level objectives, gated in CI by `repro --gate`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceReport {
    /// Must be [`SERVICE_SCHEMA`]; identifies the document type.
    pub schema: String,
    /// Workload scale the server evaluated at (`"Paper"`/`"Reduced"`).
    pub scale: String,
    /// Requests in the replayed mix.
    pub requests: usize,
    /// Requests that completed with a response (must equal `requests`).
    pub completed: usize,
    /// Overload rejections observed (each was retried until admitted).
    pub rejected: usize,
    /// Concurrent client connections used by the generator.
    pub connections: usize,
    /// Seed of the fuzzer-generated request mix.
    pub mix_seed: u64,
    /// Median request latency, milliseconds (client-measured).
    pub p50_ms: f64,
    /// 90th-percentile request latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed request latency, milliseconds.
    pub max_ms: f64,
    /// Completed requests per second of load-run wall-clock.
    pub throughput_rps: f64,
    /// Whether **every** served response was byte-identical to the
    /// direct sequential [`Evaluator::evaluate`] reference.
    pub identical_output: bool,
}

impl ServiceReport {
    /// Check the report against the service gate: schema tag, full
    /// completion, bit-identical responses, sane ordered percentiles,
    /// positive throughput. Returns every violation, not just the first.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut errs = Vec::new();
        if self.schema != SERVICE_SCHEMA {
            errs.push(format!(
                "schema '{}' is not '{SERVICE_SCHEMA}'",
                self.schema
            ));
        }
        if self.requests < SERVICE_MIN_REQUESTS {
            errs.push(format!(
                "only {} requests; the gate needs >= {SERVICE_MIN_REQUESTS} for meaningful percentiles",
                self.requests
            ));
        }
        if self.completed != self.requests {
            errs.push(format!(
                "{} of {} requests completed — the service dropped requests",
                self.completed, self.requests
            ));
        }
        if !self.identical_output {
            errs.push(
                "identical_output is false: a served response differed from the direct \
                 sequential evaluation"
                    .to_string(),
            );
        }
        if self.connections == 0 {
            errs.push("connections is zero".to_string());
        }
        for (name, v) in [
            ("p50_ms", self.p50_ms),
            ("p90_ms", self.p90_ms),
            ("p99_ms", self.p99_ms),
            ("max_ms", self.max_ms),
            ("throughput_rps", self.throughput_rps),
        ] {
            if !(v.is_finite() && v > 0.0) {
                errs.push(format!("{name} = {v} is not positive"));
            }
        }
        if !(self.p50_ms <= self.p90_ms && self.p90_ms <= self.p99_ms && self.p99_ms <= self.max_ms)
        {
            errs.push(format!(
                "percentiles are not ordered: p50 {} <= p90 {} <= p99 {} <= max {}",
                self.p50_ms, self.p90_ms, self.p99_ms, self.max_ms
            ));
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Human-readable rendition of the report.
    pub fn render(&self) -> String {
        format!(
            "Service load report ({} scale, {} connections, mix seed {})\n\
             \x20 requests             {:>8}  ({} completed, {} overload rejections retried)\n\
             \x20 latency p50/p90/p99  {:>8.3} / {:.3} / {:.3} ms  (max {:.3} ms)\n\
             \x20 throughput           {:>8.1} requests/s\n\
             \x20 identical to direct  {:>8}\n",
            self.scale,
            self.connections,
            self.mix_seed,
            self.requests,
            self.completed,
            self.rejected,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.max_ms,
            self.throughput_rps,
            self.identical_output,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServiceReport {
        ServiceReport {
            schema: SERVICE_SCHEMA.to_string(),
            scale: "Reduced".to_string(),
            requests: 64,
            completed: 64,
            rejected: 3,
            connections: 4,
            mix_seed: 1,
            p50_ms: 1.5,
            p90_ms: 3.0,
            p99_ms: 9.0,
            max_ms: 12.0,
            throughput_rps: 800.0,
            identical_output: true,
        }
    }

    #[test]
    fn valid_report_passes_and_round_trips() {
        let r = report();
        r.validate().expect("valid report");
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: ServiceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn gate_rejects_each_violation() {
        let mut r = report();
        r.schema = "bogus".into();
        assert!(r.validate().is_err());

        let mut r = report();
        r.completed = 63;
        assert!(r.validate().is_err());

        let mut r = report();
        r.identical_output = false;
        let errs = r.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("identical_output")));

        let mut r = report();
        r.p99_ms = 0.5; // below p90: unordered
        assert!(r.validate().is_err());

        let mut r = report();
        r.requests = 5;
        r.completed = 5;
        assert!(r.validate().is_err());

        let mut r = report();
        r.throughput_rps = f64::NAN;
        assert!(r.validate().is_err());
    }

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            EvalRequest::Ping,
            EvalRequest::Table { n: 7 },
            EvalRequest::FigurePlot { n: 2 },
            EvalRequest::ThreatModel {
                platform: Platform::Tera,
                n_procs: 2,
                n_chunks: 256,
            },
            EvalRequest::TerrainModel {
                platform: Platform::Exemplar,
                n_procs: 16,
            },
            EvalRequest::Scalability {
                procs: vec![1, 2, 4],
            },
            EvalRequest::Sensitivity,
            EvalRequest::Sleep { ms: 0 },
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            let back: EvalRequest = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "{json}");
        }
    }

    #[test]
    fn validate_request_matches_evaluate_bounds() {
        for bad in [
            EvalRequest::Table { n: 0 },
            EvalRequest::Table { n: 13 },
            EvalRequest::FigurePlot { n: 5 },
            EvalRequest::ThreatModel {
                platform: Platform::Tera,
                n_procs: 0,
                n_chunks: 1,
            },
            EvalRequest::TerrainModel {
                platform: Platform::Alpha,
                n_procs: 2000,
            },
            EvalRequest::Scalability { procs: vec![] },
            EvalRequest::Scalability { procs: vec![0] },
            EvalRequest::Sleep { ms: 60_000 },
        ] {
            assert!(
                matches!(validate_request(&bad), Some(EvalError::BadRequest(_))),
                "{bad:?} must be rejected at admission"
            );
        }
        assert!(validate_request(&EvalRequest::Ping).is_none());
        assert!(validate_request(&EvalRequest::Table { n: 12 }).is_none());
    }
}
