//! Calibration: pinning the models' free constants to the paper.
//!
//! Everything the models need falls into three groups:
//!
//! 1. **Hardware constants** taken from Table 1 and §2 of the paper:
//!    clock rates, processor counts, the MTA's 21-cycle pipeline,
//!    ≈70-cycle memory latency, 128 streams/processor, thread costs.
//!
//! 2. **Workload-size factors** `S_TA`, `S_TM`: the C3IPBS inputs are not
//!    public, so our synthetic scenarios do a different absolute amount of
//!    work. One scalar per benchmark maps our abstract operation counts to
//!    the original workload, fit to the *Tera sequential* rows (Tables 2
//!    and 8) — chosen because the MTA's sequential time is the entry the
//!    architecture determines most directly (instruction count × average
//!    latency, no cache behaviour to argue about).
//!
//! 3. **Platform efficiency constants**, each fit to exactly one paper
//!    row and documented here:
//!    * per-platform cycles-per-resident-op `c` and cycles-per-streaming-op
//!      `m`: solved from that platform's two sequential rows (Tables 2, 8);
//!    * MTA 2-processor network efficiency `η₂` (the paper itself
//!      attributes the sub-linear 2-processor scaling to the "development
//!      status of the current Tera MTA network"): fit to Table 5's
//!      2-processor row;
//!    * MTA fine-grained spawn cost per future `κ`: fit to Table 11's
//!      1-processor row;
//!    * shared-bus cycles per streaming op: Pentium Pro fit to Table 9's
//!      4-processor row, Exemplar fit to Table 10's 16-processor row.
//!
//! Every other row of every table — 40+ entries, all speedup curves, the
//! chunk sweep of Table 6, and Table 11's 2-processor row — is a
//! *prediction*. EXPERIMENTS.md tabulates paper-vs-model for all of them.

use crate::models::{ConventionalModel, TeraModel};
use crate::workload::Workload;
use sthreads::OpCounts;

/// The paper's measured numbers used as calibration anchors (a subset of
/// the full tables in [`crate::experiments::paper`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperAnchors {
    /// Table 2: sequential Threat Analysis (Alpha, PPro, Exemplar, Tera).
    pub ta_seq: [f64; 4],
    /// Table 8: sequential Terrain Masking (Alpha, PPro, Exemplar, Tera).
    pub tm_seq: [f64; 4],
    /// Table 5: chunked Threat Analysis on the Tera, 2 processors.
    pub ta_tera_p2: f64,
    /// Table 11: fine-grained Terrain Masking on the Tera, 1 processor.
    pub tm_tera_p1: f64,
    /// Table 9: coarse Terrain Masking on the Pentium Pro, 4 processors.
    pub tm_ppro_p4: f64,
    /// Table 10: coarse Terrain Masking on the Exemplar, 16 processors.
    pub tm_exemplar_p16: f64,
}

impl Default for PaperAnchors {
    fn default() -> Self {
        Self {
            ta_seq: [187.0, 458.0, 343.0, 2584.0],
            tm_seq: [158.0, 197.0, 228.0, 978.0],
            ta_tera_p2: 46.0,
            tm_tera_p1: 48.0,
            tm_ppro_p4: 65.0,
            tm_exemplar_p16: 37.0,
        }
    }
}

/// Fixed (non-fit) cost constants, from §2/§7 of the paper.
mod constants {
    /// Lock/unlock or atomic on a conventional SMP: "hundreds to
    /// thousands of cycles" — we use the low end.
    pub const CONV_SYNC_CYCLES: f64 = 300.0;
    /// OS thread creation: "tens of thousands to hundreds of thousands of
    /// cycles".
    pub const CONV_SPAWN_CYCLES: f64 = 50_000.0;
    /// MTA memory-operation latency in cycles (uncontended; matches the
    /// `mta-sim` default of bank service + network).
    pub const TERA_MEM_LATENCY: f64 = 70.0;
    /// The MTA's 64 banks at one access per 4 cycles: 16 words/cycle —
    /// far above what two processors can demand, so the prototype's
    /// bandwidth never binds in these workloads.
    pub const TERA_NETWORK_WORDS_PER_CYCLE: f64 = 16.0;
}

/// The calibrated model set.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Calibration {
    /// DEC AlphaStation 500 MHz (1 processor).
    pub alpha: ConventionalModel,
    /// NeTpower Sparta: 4 × 200 MHz Pentium Pro.
    pub ppro: ConventionalModel,
    /// HP Exemplar: 16 × 180 MHz PA-8000.
    pub exemplar: ConventionalModel,
    /// Tera MTA: 2 × 255 MHz.
    pub tera: TeraModel,
    /// Workload-size factor for Threat Analysis.
    pub s_ta: f64,
    /// Workload-size factor for Terrain Masking.
    pub s_tm: f64,
}

fn resident_ops(ops: &OpCounts) -> f64 {
    (ops.int_ops + ops.fp_ops + ops.loads + ops.stores) as f64
}

/// Solve the 2×2 system for one conventional platform's per-op costs from
/// its two sequential anchors.
#[allow(clippy::too_many_arguments)] // one anchor row per argument; a struct would obscure the system
fn fit_conventional(
    name: &str,
    clock_mhz: f64,
    n_processors: usize,
    ta_ops: &OpCounts,
    tm_ops: &OpCounts,
    ta_secs: f64,
    tm_secs: f64,
    s_ta: f64,
    s_tm: f64,
) -> ConventionalModel {
    // s_ta*(Rta*c + Sta*m) = ta_secs*clock ; s_tm*(Rtm*c + Stm*m) = tm_secs*clock
    let a11 = s_ta * resident_ops(ta_ops);
    let a12 = s_ta * ta_ops.stream_ops() as f64;
    let a21 = s_tm * resident_ops(tm_ops);
    let a22 = s_tm * tm_ops.stream_ops() as f64;
    let b1 = ta_secs * clock_mhz * 1e6;
    let b2 = tm_secs * clock_mhz * 1e6;
    let det = a11 * a22 - a12 * a21;
    assert!(det.abs() > 1e-6, "degenerate calibration system for {name}");
    let c = (b1 * a22 - b2 * a12) / det;
    let m = (a11 * b2 - a21 * b1) / det;
    assert!(c > 0.0, "{name}: negative resident cost {c}");
    assert!(m > 0.0, "{name}: negative stream cost {m}");
    ConventionalModel {
        name: name.to_string(),
        clock_mhz,
        n_processors,
        resident_cost: c,
        stream_cost: m,
        sync_cost: constants::CONV_SYNC_CYCLES,
        spawn_cost: constants::CONV_SPAWN_CYCLES,
        bus_cost_per_stream_op: 0.0, // fit below for the SMPs
    }
}

/// Calibrate all models against `workload` (see module docs for exactly
/// which paper rows are anchors).
pub fn calibrate(workload: &Workload) -> Calibration {
    let anchors = PaperAnchors::default();
    let mut tera = TeraModel {
        clock_mhz: 255.0,
        issue_latency: 21.0,
        mem_latency: constants::TERA_MEM_LATENCY,
        streams_per_processor: 128,
        eta2: 1.0,
        network_words_per_cycle: constants::TERA_NETWORK_WORDS_PER_CYCLE,
        spawn_cycles_per_task: 0.0,
    };
    let clock = tera.clock_mhz * 1e6;

    // ── workload-size factors from the Tera sequential rows ────────────
    let t0_ta: f64 = workload
        .ta_seq
        .iter()
        .map(|p| tera.seq_seconds(p, 1.0))
        .sum();
    let s_ta = anchors.ta_seq[3] / t0_ta;
    let t0_tm: f64 = workload
        .tm_seq
        .iter()
        .map(|p| tera.seq_seconds(p, 1.0))
        .sum();
    let s_tm = anchors.tm_seq[3] / t0_tm;

    // ── conventional per-op costs from Tables 2 and 8 ───────────────────
    let ta_ops = workload.ta_total();
    let tm_ops = workload.tm_total();
    let alpha = fit_conventional(
        "Alpha",
        500.0,
        1,
        &ta_ops,
        &tm_ops,
        anchors.ta_seq[0],
        anchors.tm_seq[0],
        s_ta,
        s_tm,
    );
    let mut ppro = fit_conventional(
        "Pentium Pro",
        200.0,
        4,
        &ta_ops,
        &tm_ops,
        anchors.ta_seq[1],
        anchors.tm_seq[1],
        s_ta,
        s_tm,
    );
    let mut exemplar = fit_conventional(
        "Exemplar",
        180.0,
        16,
        &ta_ops,
        &tm_ops,
        anchors.ta_seq[2],
        anchors.tm_seq[2],
        s_ta,
        s_tm,
    );

    // ── MTA network efficiency η₂ from Table 5's 2-processor row ───────
    // T = s_ta * (serial + issue₂/η) / clock  (memory term non-binding for
    // the compute-bound Threat Analysis; asserted in tests).
    let chunked = workload.ta_chunked(256);
    let serial2: f64 = chunked
        .iter()
        .map(|p| tera.serial_cycles_of(&p.serial))
        .sum();
    let issue2: f64 = chunked
        .iter()
        .map(|p| tera.chunked_issue_cycles(p, 2))
        .sum();
    let target_cycles = anchors.ta_tera_p2 * clock / s_ta - serial2;
    assert!(target_cycles > 0.0, "eta2 calibration target underflow");
    tera.eta2 = (issue2 / target_cycles).min(1.0);

    // ── MTA fine-grained spawn cost κ from Table 11's 1-processor row ───
    let serial_fine: f64 = workload
        .tm_fine
        .iter()
        .map(|p| tera.serial_cycles_of(&p.serial))
        .sum();
    let issue_fine1: f64 = workload
        .tm_fine
        .iter()
        .map(|p| tera.phased_issue_cycles(p, 1))
        .sum();
    let tasks: f64 = workload
        .tm_fine
        .iter()
        .map(TeraModel::phased_task_count)
        .sum();
    let spawn_budget = anchors.tm_tera_p1 * clock / s_tm - serial_fine - issue_fine1;
    assert!(
        spawn_budget > 0.0,
        "fine-grained issue model already exceeds Table 11's 1-processor time"
    );
    tera.spawn_cycles_per_task = spawn_budget / tasks;

    // ── SMP bus costs from Table 9 (P=4) and Table 10 (P=16) ───────────
    // At those points the memory-bound program is interconnect-limited:
    // T = s_tm * (serial + stream_total × bus_cost) / clock.
    let fit_bus = |model: &ConventionalModel, n_procs: usize, t_secs: f64, w: &Workload| -> f64 {
        let coarse = w.tm_coarse(n_procs);
        let serial_cycles: f64 = coarse.iter().map(|p| model.cpu_cycles(&p.serial)).sum();
        let stream_total: f64 = coarse
            .iter()
            .map(|p| p.parallel.total().stream_ops() as f64)
            .sum();
        let budget = t_secs * model.clock_mhz * 1e6 / s_tm - serial_cycles;
        assert!(budget > 0.0, "{}: bus calibration underflow", model.name);
        budget / stream_total
    };
    ppro.bus_cost_per_stream_op = fit_bus(&ppro, 4, anchors.tm_ppro_p4, workload);
    exemplar.bus_cost_per_stream_op = fit_bus(&exemplar, 16, anchors.tm_exemplar_p16, workload);

    Calibration {
        alpha,
        ppro,
        exemplar,
        tera,
        s_ta,
        s_tm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadScale;
    use std::sync::OnceLock;

    fn cal() -> &'static (Workload, Calibration) {
        static C: OnceLock<(Workload, Calibration)> = OnceLock::new();
        C.get_or_init(|| {
            let w = Workload::build(WorkloadScale::Reduced);
            let c = calibrate(&w);
            (w, c)
        })
    }

    #[test]
    fn anchors_are_reproduced_exactly() {
        let (w, c) = cal();
        let t = |models: &ConventionalModel, profs: &[c3i::Profile], s: f64| -> f64 {
            profs.iter().map(|p| models.seq_seconds(p, s)).sum()
        };
        // Table 2.
        assert!((t(&c.alpha, &w.ta_seq, c.s_ta) - 187.0).abs() < 0.5);
        assert!((t(&c.ppro, &w.ta_seq, c.s_ta) - 458.0).abs() < 0.5);
        assert!((t(&c.exemplar, &w.ta_seq, c.s_ta) - 343.0).abs() < 0.5);
        let tera_ta: f64 = w.ta_seq.iter().map(|p| c.tera.seq_seconds(p, c.s_ta)).sum();
        assert!((tera_ta - 2584.0).abs() < 1.0);
        // Table 8.
        assert!((t(&c.alpha, &w.tm_seq, c.s_tm) - 158.0).abs() < 0.5);
        assert!((t(&c.ppro, &w.tm_seq, c.s_tm) - 197.0).abs() < 0.5);
        assert!((t(&c.exemplar, &w.tm_seq, c.s_tm) - 228.0).abs() < 0.5);
        let tera_tm: f64 = w.tm_seq.iter().map(|p| c.tera.seq_seconds(p, c.s_tm)).sum();
        assert!((tera_tm - 978.0).abs() < 1.0);
    }

    #[test]
    fn calibrated_constants_are_physical() {
        let (_, c) = cal();
        for m in [&c.alpha, &c.ppro, &c.exemplar] {
            assert!(
                m.resident_cost > 0.1 && m.resident_cost < 50.0,
                "{}: c={}",
                m.name,
                m.resident_cost
            );
            assert!(
                m.stream_cost > m.resident_cost,
                "{}: streaming must cost more than resident",
                m.name
            );
            assert!(m.stream_cost < 500.0, "{}: m={}", m.name, m.stream_cost);
        }
        assert!(
            c.tera.eta2 > 0.5 && c.tera.eta2 <= 1.0,
            "eta2={}",
            c.tera.eta2
        );
        assert!(
            c.tera.spawn_cycles_per_task > 0.0 && c.tera.spawn_cycles_per_task < 500.0,
            "kappa={}",
            c.tera.spawn_cycles_per_task
        );
        assert!(c.ppro.bus_cost_per_stream_op > 0.0);
        assert!(c.exemplar.bus_cost_per_stream_op > 0.0);
        // The Exemplar crossbar has more bandwidth than the PPro FSB
        // relative to its demand... at least both are bounded.
        assert!(c.ppro.bus_cost_per_stream_op < 1000.0);
    }

    #[test]
    fn anchor_rows_for_parallel_fits_are_met() {
        let (w, c) = cal();
        // Table 5 P=2 (η₂ fit).
        let t5: f64 = w
            .ta_chunked(256)
            .iter()
            .map(|p| c.tera.chunked_seconds(p, 2, c.s_ta))
            .sum();
        assert!((t5 - 46.0).abs() < 1.0, "Table5 P2: {t5}");
        // Table 11 P=1 (κ fit).
        let t11: f64 = w
            .tm_fine
            .iter()
            .map(|p| c.tera.phased_seconds(p, 1, c.s_tm))
            .sum();
        assert!((t11 - 48.0).abs() < 1.0, "Table11 P1: {t11}");
        // Table 9 P=4 (PPro bus fit) — bus-bound by assumption; allow the
        // makespan to have been the binding term instead (then the fit is
        // an upper bound).
        let t9: f64 = w
            .tm_coarse(4)
            .iter()
            .map(|p| c.ppro.parallel_seconds(p, 4, c.s_tm))
            .sum();
        assert!((t9 - 65.0).abs() < 5.0, "Table9 P4: {t9}");
        // Table 10 P=16 (Exemplar bus fit).
        let t10: f64 = w
            .tm_coarse(16)
            .iter()
            .map(|p| c.exemplar.parallel_seconds(p, 16, c.s_tm))
            .sum();
        assert!((t10 - 37.0).abs() < 5.0, "Table10 P16: {t10}");
    }

    #[test]
    fn ta_memory_term_does_not_bind_on_the_tera() {
        // The η₂ fit assumed Threat Analysis is issue-bound at 2
        // processors; verify.
        let (w, c) = cal();
        for p in &w.ta_chunked(256) {
            let issue = c.tera.chunked_issue_cycles(p, 2) / c.tera.eta(2);
            let mem = c.tera.mem_cycles(&p.parallel.total());
            assert!(issue > mem, "memory term binding: issue={issue} mem={mem}");
        }
    }
}
