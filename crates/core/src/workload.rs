//! Benchmark operation profiles, measured once per workload and reused by
//! every experiment configuration.
//!
//! The expensive part of the pipeline is running the benchmarks under the
//! counting backend. Everything the tables sweep — chunk counts (Table 6),
//! processor counts (Tables 3, 4, 9, 10), scheduling — is an *aggregation*
//! of per-threat operation counts, so the workload measures per-threat
//! counts once per scenario and the sweep configurations are assembled in
//! microseconds.
//!
//! Two scales exist: [`WorkloadScale::Paper`] is the benchmark scale the
//! paper states (5 scenarios, 1000 threats for Threat Analysis, 60 threats
//! on a 1024² terrain for Terrain Masking); [`WorkloadScale::Reduced`] is
//! a proportionally smaller workload for tests and quick runs. Because
//! the calibration fits the workload-size factor to the paper's sequential
//! rows (see `calibrate`), both scales reproduce the same tables — the
//! Paper scale is the honest default for the `repro` binary.

use c3i::terrain::{self, TerrainScenario, TerrainScenarioParams};
use c3i::threat::{self, ThreatScenario, ThreatScenarioParams};
use c3i::{PhasedProfile, Profile};
use sthreads::{chunk_range, par_map, OpCounts, OpRecorder, Schedule, ThreadCounts, ThreadPool};

/// Workload size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WorkloadScale {
    /// The paper's stated benchmark scale.
    Paper,
    /// A smaller, faster workload with the same structure.
    Reduced,
}

/// The block decomposition the paper uses for coarse-grained Terrain
/// Masking ("ten-by-ten blocking").
pub const TM_BLOCKS: usize = 10;

/// Measured operation profiles for the full benchmark suite (all
/// scenarios of both problems).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    /// Which scale was measured.
    pub scale: WorkloadScale,
    /// Per-scenario, per-threat Threat Analysis counts.
    pub ta_per_threat: Vec<Vec<OpCounts>>,
    /// Per-scenario sequential Threat Analysis profiles (Program 1).
    pub ta_seq: Vec<Profile>,
    /// Per-scenario, per-threat coarse Terrain Masking counts (Program 4
    /// work items, 10×10 blocking).
    pub tm_per_threat: Vec<Vec<OpCounts>>,
    /// Per-scenario sequential Terrain Masking profiles (Program 3).
    pub tm_seq: Vec<Profile>,
    /// Per-scenario fine-grained Terrain Masking phased profiles.
    pub tm_fine: Vec<PhasedProfile>,
    /// Serial (init) op counts per Terrain Masking scenario — the masking
    /// initialization Program 4 performs before its parallel region.
    pub tm_serial: Vec<OpCounts>,
}

fn ta_scenarios(scale: WorkloadScale) -> Vec<ThreatScenario> {
    match scale {
        WorkloadScale::Paper => threat::benchmark_suite(),
        // Reduced keeps the paper's 1000 threats per scenario (the
        // chunk-balance statistics of Tables 3-6 depend on it) and saves
        // time on the weapon count instead.
        WorkloadScale::Reduced => (1..=5)
            .map(|seed| {
                threat::generate(ThreatScenarioParams {
                    n_threats: 1000,
                    n_weapons: 3,
                    seed,
                    theater_m: 400_000.0,
                    launch_window_s: 900.0,
                })
            })
            .collect(),
    }
}

fn tm_scenarios(scale: WorkloadScale) -> Vec<TerrainScenario> {
    match scale {
        WorkloadScale::Paper => terrain::benchmark_suite(),
        // Reduced keeps the paper's *shape*: threat density relative to
        // grid area stays at the paper's level (so the serial-init share
        // of the traffic is representative), and regions of influence
        // still span hundreds of cells (so the fine-grained ring widths
        // remain wide relative to the MTA's latency).
        WorkloadScale::Reduced => (1..=5)
            .map(|seed| {
                terrain::generate(TerrainScenarioParams {
                    grid_size: 512,
                    n_threats: 30,
                    seed,
                    ..Default::default()
                })
            })
            .collect(),
    }
}

/// One measurement task's output in [`Workload::build_with`]: the five
/// expensive per-scenario measurements, tagged by kind.
enum Measured {
    TaPerThreat(Vec<OpCounts>),
    TaSeq(Profile),
    TmPerThreat(Vec<OpCounts>),
    TmSeq(Profile),
    TmFine(PhasedProfile),
}

impl Workload {
    /// Measure the workload at `scale` (runs every benchmark variant under
    /// the counting backend; seconds of host time at Paper scale).
    /// Measurement tasks run across all host processors — on the
    /// process-wide persistent pool, so back-to-back builds pay condvar
    /// wakeups rather than thread spawns — with dynamic self-scheduling;
    /// results are identical to the sequential path.
    pub fn build(scale: WorkloadScale) -> Self {
        Self::build_with(scale, ThreadPool::global().n_threads(), Schedule::Dynamic)
    }

    /// [`Workload::build`] with an explicit worker count and schedule.
    ///
    /// The counting backend is deterministic and every measurement task
    /// writes into its own slot ([`par_map`]), so the result is
    /// **bit-identical** for every `(n_threads, schedule)` — the paper's
    /// own requirement that parallelization must not change program
    /// output, applied to our harness. `n_threads == 1` is the sequential
    /// oracle the regression tests compare against.
    pub fn build_with(scale: WorkloadScale, n_threads: usize, schedule: Schedule) -> Self {
        let ta = ta_scenarios(scale);
        let tm = tm_scenarios(scale);
        let (n_ta, n_tm) = (ta.len(), tm.len());

        // One task per (measurement kind, scenario). Scenario sizes vary
        // (irregular work — the paper's case for self-scheduling), so the
        // default schedule is Dynamic.
        let tasks = 2 * n_ta + 3 * n_tm;
        let mut results = par_map(tasks, n_threads, schedule, |t| {
            if t < n_ta {
                Measured::TaPerThreat(threat::per_threat_counts(&ta[t]))
            } else if t < 2 * n_ta {
                Measured::TaSeq(threat::threat_analysis_profile(&ta[t - n_ta]).1)
            } else if t < 2 * n_ta + n_tm {
                Measured::TmPerThreat(terrain::per_threat_counts(&tm[t - 2 * n_ta], TM_BLOCKS))
            } else if t < 2 * n_ta + 2 * n_tm {
                Measured::TmSeq(terrain::terrain_masking_profile(&tm[t - 2 * n_ta - n_tm]).1)
            } else {
                Measured::TmFine(terrain::terrain_masking_fine(&tm[t - 2 * n_ta - 2 * n_tm]).1)
            }
        })
        .into_iter();

        // `par_map` returns task outputs in task order, so each vector
        // assembles in scenario order exactly as the sequential maps did.
        let ta_per_threat: Vec<Vec<OpCounts>> = results
            .by_ref()
            .take(n_ta)
            .map(|m| match m {
                Measured::TaPerThreat(v) => v,
                _ => unreachable!("task layout: TA per-threat block"),
            })
            .collect();
        let ta_seq: Vec<Profile> = results
            .by_ref()
            .take(n_ta)
            .map(|m| match m {
                Measured::TaSeq(p) => p,
                _ => unreachable!("task layout: TA sequential block"),
            })
            .collect();
        let tm_per_threat: Vec<Vec<OpCounts>> = results
            .by_ref()
            .take(n_tm)
            .map(|m| match m {
                Measured::TmPerThreat(v) => v,
                _ => unreachable!("task layout: TM per-threat block"),
            })
            .collect();
        let tm_seq: Vec<Profile> = results
            .by_ref()
            .take(n_tm)
            .map(|m| match m {
                Measured::TmSeq(p) => p,
                _ => unreachable!("task layout: TM sequential block"),
            })
            .collect();
        let tm_fine: Vec<PhasedProfile> = results
            .map(|m| match m {
                Measured::TmFine(p) => p,
                _ => unreachable!("task layout: TM fine block"),
            })
            .collect();

        let tm_serial: Vec<OpCounts> = tm
            .iter()
            .map(|s| {
                let mut r = OpRecorder::new();
                r.sstore(s.terrain.len() as u64);
                r.int(2 * (TM_BLOCKS * TM_BLOCKS) as u64);
                r.counts()
            })
            .collect();

        Self {
            scale,
            ta_per_threat,
            ta_seq,
            tm_per_threat,
            tm_seq,
            tm_fine,
            tm_serial,
        }
    }

    /// Number of scenarios in the suite.
    pub fn n_scenarios(&self) -> usize {
        self.ta_per_threat.len()
    }

    /// Per-scenario chunked Threat Analysis profiles (Program 2) with
    /// `n_chunks` chunks: per-threat counts grouped by the paper's
    /// blocking expression, plus the spawn prologue.
    pub fn ta_chunked(&self, n_chunks: usize) -> Vec<Profile> {
        self.ta_per_threat
            .iter()
            .map(|per_threat| {
                let n = per_threat.len();
                let chunks: Vec<OpCounts> = (0..n_chunks)
                    .map(|c| {
                        let r = chunk_range(c, n, n_chunks);
                        per_threat[r].iter().copied().sum()
                    })
                    .collect();
                let mut serial = OpRecorder::new();
                serial.int(2 * n_chunks as u64);
                serial.spawn(n_chunks as u64);
                Profile {
                    serial: serial.counts(),
                    parallel: ThreadCounts::new(chunks),
                }
            })
            .collect()
    }

    /// Per-scenario coarse Terrain Masking profiles (Program 4) with
    /// `n_threads` self-scheduled workers over 10×10 blocks.
    pub fn tm_coarse(&self, n_threads: usize) -> Vec<Profile> {
        self.tm_per_threat
            .iter()
            .zip(&self.tm_serial)
            .map(|(per_threat, &init)| {
                let mut serial = OpRecorder::new();
                serial.spawn(n_threads as u64);
                Profile {
                    serial: init.merged(&serial.counts()),
                    parallel: terrain::greedy_bins(per_threat, n_threads),
                }
            })
            .collect()
    }

    /// Suite-total Threat Analysis sequential operation counts.
    pub fn ta_total(&self) -> OpCounts {
        self.ta_seq.iter().map(|p| p.total()).sum()
    }

    /// Suite-total Terrain Masking sequential operation counts.
    pub fn tm_total(&self) -> OpCounts {
        self.tm_seq.iter().map(|p| p.total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Build the reduced workload once for every test in this module.
    pub(crate) fn reduced() -> &'static Workload {
        static W: OnceLock<Workload> = OnceLock::new();
        W.get_or_init(|| Workload::build(WorkloadScale::Reduced))
    }

    #[test]
    fn suite_has_five_scenarios() {
        assert_eq!(reduced().n_scenarios(), 5);
    }

    #[test]
    fn chunked_profiles_conserve_work() {
        let w = reduced();
        for n_chunks in [1usize, 4, 16, 256] {
            let chunked = w.ta_chunked(n_chunks);
            for (s, profile) in chunked.iter().enumerate() {
                let direct: OpCounts = w.ta_per_threat[s].iter().copied().sum();
                assert_eq!(
                    profile.parallel.total().instructions(),
                    direct.instructions(),
                    "scenario {s}, {n_chunks} chunks"
                );
                assert_eq!(profile.n_logical_threads(), n_chunks);
            }
        }
    }

    #[test]
    fn per_threat_counts_sum_close_to_sequential_profile() {
        // Program 1 and the per-threat decomposition differ only in loop
        // bookkeeping.
        let w = reduced();
        for s in 0..w.n_scenarios() {
            let per: u64 = w.ta_per_threat[s].iter().map(|c| c.instructions()).sum();
            let seq = w.ta_seq[s].total().instructions();
            let rel = (per as f64 - seq as f64).abs() / seq as f64;
            assert!(rel < 0.01, "scenario {s}: per-threat {per} vs seq {seq}");
        }
    }

    #[test]
    fn coarse_bins_balance_reasonably() {
        let w = reduced();
        for profile in w.tm_coarse(4) {
            let imb = profile.parallel.imbalance();
            assert!((1.0..2.0).contains(&imb), "imbalance {imb}");
        }
    }

    #[test]
    fn ta_is_compute_bound_and_tm_memory_bound() {
        let w = reduced();
        assert!(w.ta_total().stream_fraction() < 0.02);
        assert!(w.tm_total().stream_fraction() > 0.15);
    }

    #[test]
    fn fine_profiles_have_many_phases() {
        let w = reduced();
        for p in &w.tm_fine {
            assert!(p.n_phases() > 50, "phases: {}", p.n_phases());
            assert!(p.weighted_width() > 50.0);
        }
    }
}
