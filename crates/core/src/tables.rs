//! Result tables: the shape the paper reports in, rendered as text, CSV,
//! and (for the figures) ASCII speedup plots.

use serde::Serialize;

/// One reproduced table: headers plus rows of labelled values, with the
/// paper's published value carried alongside the model's for every cell
/// that has one.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table identifier ("Table 5").
    pub id: String,
    /// Caption, as in the paper.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<Cell>>,
}

/// One table cell.
#[derive(Debug, Clone, Serialize)]
pub enum Cell {
    /// A label (platform name, chunk count...).
    Text(String),
    /// A modeled value with the paper's published value for comparison.
    Value {
        /// The model's prediction (or reproduction).
        model: f64,
        /// The paper's measurement, when published.
        paper: Option<f64>,
    },
}

impl Cell {
    /// Text cell.
    pub fn text(s: impl Into<String>) -> Self {
        Cell::Text(s.into())
    }

    /// Modeled value with a paper reference.
    pub fn val(model: f64, paper: f64) -> Self {
        Cell::Value {
            model,
            paper: Some(paper),
        }
    }

    /// Modeled value without a published reference.
    pub fn bare(model: f64) -> Self {
        Cell::Value { model, paper: None }
    }
}

impl Table {
    /// Render as aligned text, showing `model (paper)` for referenced
    /// cells.
    pub fn render(&self) -> String {
        let mut grid: Vec<Vec<String>> = vec![self.headers.clone()];
        for row in &self.rows {
            grid.push(
                row.iter()
                    .map(|c| match c {
                        Cell::Text(s) => s.clone(),
                        Cell::Value {
                            model,
                            paper: Some(p),
                        } => {
                            format!("{model:.1} (paper {p:.1})")
                        }
                        Cell::Value { model, paper: None } => format!("{model:.1}"),
                    })
                    .collect(),
            );
        }
        let cols = grid.iter().map(Vec::len).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in &grid {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("{}: {}\n", self.id, self.title);
        for (ri, row) in grid.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{cell:<width$}", width = widths[i]))
                .collect();
            out.push_str("  ");
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if ri == 0 {
                out.push_str("  ");
                out.push_str(
                    &widths
                        .iter()
                        .map(|w| "-".repeat(*w))
                        .collect::<Vec<_>>()
                        .join("  "),
                );
                out.push('\n');
            }
        }
        out
    }

    /// Render as CSV (`model` and `paper` in separate columns).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header_cells = Vec::new();
        for h in &self.headers {
            header_cells.push(h.clone());
            header_cells.push(format!("{h} (paper)"));
        }
        out.push_str(&header_cells.join(","));
        out.push('\n');
        for row in &self.rows {
            let mut cells = Vec::new();
            for c in row {
                match c {
                    Cell::Text(s) => {
                        cells.push(s.clone());
                        cells.push(String::new());
                    }
                    Cell::Value { model, paper } => {
                        cells.push(format!("{model:.3}"));
                        cells.push(paper.map(|p| format!("{p:.3}")).unwrap_or_default());
                    }
                }
            }
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Extract `(model, paper)` pairs from every referenced value cell.
    pub fn referenced_values(&self) -> Vec<(f64, f64)> {
        self.rows
            .iter()
            .flatten()
            .filter_map(|c| match c {
                Cell::Value {
                    model,
                    paper: Some(p),
                } => Some((*model, *p)),
                _ => None,
            })
            .collect()
    }
}

/// An ASCII rendition of a speedup figure: processor count on x, speedup
/// on y, model curve drawn with `*`, the paper's points with `o`.
pub fn ascii_speedup_figure(
    id: &str,
    title: &str,
    model: &[(usize, f64)],
    paper: &[(usize, f64)],
) -> String {
    let max_x = model
        .iter()
        .chain(paper)
        .map(|&(x, _)| x)
        .max()
        .unwrap_or(1);
    let max_y = model
        .iter()
        .chain(paper)
        .map(|&(_, y)| y)
        .fold(1.0f64, f64::max)
        .ceil();
    let height = 16usize;
    let width = max_x.max(2);
    let mut canvas = vec![vec![' '; width + 1]; height + 1];
    let plot = |canvas: &mut Vec<Vec<char>>, pts: &[(usize, f64)], ch: char| {
        for &(x, y) in pts {
            let row = height - ((y / max_y) * height as f64).round().min(height as f64) as usize;
            if x <= width {
                let cell = &mut canvas[row][x];
                *cell = if *cell == ' ' || *cell == ch { ch } else { '#' };
            }
        }
    };
    plot(&mut canvas, model, '*');
    plot(&mut canvas, paper, 'o');
    let mut out = format!("{id}: {title}  (*=model, o=paper, #=both)\n");
    for (i, row) in canvas.iter().enumerate() {
        let yval = max_y * (height - i) as f64 / height as f64;
        out.push_str(&format!("{yval:5.1} |"));
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"-".repeat(width + 1));
    out.push('\n');
    out.push_str(&format!("       processors 1..{max_x}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table {
            id: "Table 0".into(),
            title: "test".into(),
            headers: vec!["Platform".into(), "Time (s)".into()],
            rows: vec![
                vec![Cell::text("Alpha"), Cell::val(185.0, 187.0)],
                vec![Cell::text("Tera"), Cell::bare(99.5)],
            ],
        }
    }

    #[test]
    fn render_contains_model_and_paper_values() {
        let s = sample().render();
        assert!(s.contains("Table 0"));
        assert!(s.contains("185.0 (paper 187.0)"));
        assert!(s.contains("99.5"));
        assert!(s.contains("Platform"));
    }

    #[test]
    fn csv_has_paired_columns() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "Platform,Platform (paper),Time (s),Time (s) (paper)"
        );
        assert!(lines.next().unwrap().starts_with("Alpha,,185.000,187.000"));
    }

    #[test]
    fn referenced_values_extracts_pairs() {
        assert_eq!(sample().referenced_values(), vec![(185.0, 187.0)]);
    }

    #[test]
    fn ascii_figure_draws_both_series() {
        let fig = ascii_speedup_figure(
            "Figure 1",
            "speedup",
            &[(1, 1.0), (2, 2.0), (4, 3.9)],
            &[(1, 1.0), (2, 2.0), (4, 3.9)],
        );
        assert!(fig.contains("Figure 1"));
        assert!(fig.contains('#'), "coincident points should merge: {fig}");
    }

    #[test]
    fn ascii_figure_distinct_points_use_own_glyphs() {
        let fig = ascii_speedup_figure("F", "t", &[(1, 1.0), (4, 4.0)], &[(1, 1.0), (4, 2.0)]);
        assert!(fig.contains('*'));
        assert!(fig.contains('o'));
    }
}
