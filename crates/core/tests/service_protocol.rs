//! Integration tests for the scenario-evaluation service: the framed
//! wire protocol's failure handling (truncated prefix, oversized frame,
//! malformed JSON, mid-request disconnect — each a typed error or a
//! clean close, with the server still serving afterwards), the bounded
//! queue's reject-not-buffer contract at depth 1, and bit-identity of
//! served responses against direct sequential evaluation.

use eval_core::service::{EvalError, EvalRequest, Evaluator, Platform, Service, ServiceConfig};
use eval_core::wire::{
    read_frame, write_frame, Client, Server, WireRequest, WireResponse, MAX_FRAME_BYTES,
};
use eval_core::workload::WorkloadScale;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn reduced_evaluator() -> Evaluator {
    let (evaluator, _) = Evaluator::load(WorkloadScale::Reduced, true);
    evaluator
}

/// Bind a server on an OS-assigned TCP port and run it on a background
/// thread; returns the resolved address and the accept-loop handle.
fn start_server(config: ServiceConfig) -> (String, std::thread::JoinHandle<()>) {
    let service = Service::start(reduced_evaluator(), config);
    let server = Server::bind("127.0.0.1:0", service).expect("bind test server");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server accept loop"));
    (addr, handle)
}

fn stop_server(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let resp = client.shutdown_server().expect("shutdown ack");
    assert!(resp.ok.is_some(), "shutdown must be acknowledged");
    handle.join().expect("server thread");
}

fn send_eval_frame(stream: &mut TcpStream, id: u64, request: EvalRequest) {
    let json = serde_json::to_string(&WireRequest::Eval { id, request }).unwrap();
    write_frame(stream, json.as_bytes()).expect("send frame");
}

fn recv_response(stream: &mut TcpStream) -> WireResponse {
    let body = read_frame(stream)
        .expect("read response frame")
        .expect("server closed instead of answering");
    serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("parse response")
}

fn assert_ping_works(addr: &str) {
    let mut client = Client::connect(addr).expect("connect");
    let resp = client.call(EvalRequest::Ping).expect("ping");
    assert_eq!(resp.ok.as_deref(), Some("pong"), "{:?}", resp.error);
}

#[test]
fn protocol_errors_are_typed_and_the_server_keeps_serving() {
    let (addr, handle) = start_server(ServiceConfig {
        capacity: 16,
        batch_max: 4,
        n_threads: 1,
    });

    // 1. Truncated length prefix: two bytes then EOF. No response frame
    //    is owed (there is no intact request); the connection closes.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&[0u8, 0]).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        match read_frame(&mut s) {
            Ok(None) => {}
            other => panic!("expected clean close after truncated prefix, got {other:?}"),
        }
    }
    assert_ping_works(&addr);

    // 2. Oversized frame: the announced length alone is the violation —
    //    a typed `frame_too_large` error comes back, then the connection
    //    closes (the stream is desynchronized).
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&(MAX_FRAME_BYTES + 1).to_be_bytes()).unwrap();
        let resp = recv_response(&mut s);
        let err = resp.error.expect("oversized frame must be an error");
        assert_eq!(err.kind, "frame_too_large");
        assert_eq!(resp.id, 0, "uncorrelatable protocol errors use id 0");
        match read_frame(&mut s) {
            Ok(None) => {}
            other => panic!("connection must close after oversized frame, got {other:?}"),
        }
    }
    assert_ping_works(&addr);

    // 3. Malformed JSON body: a typed `malformed_request` error, and the
    //    SAME connection keeps serving (the framing stayed intact).
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        write_frame(&mut s, b"{ this is not json").unwrap();
        let resp = recv_response(&mut s);
        assert_eq!(
            resp.error.expect("malformed body must be an error").kind,
            "malformed_request"
        );
        send_eval_frame(&mut s, 5, EvalRequest::Ping);
        let resp = recv_response(&mut s);
        assert_eq!(resp.id, 5);
        assert_eq!(resp.ok.as_deref(), Some("pong"));
    }

    // 4. Semantically invalid request: typed bad_request, connection
    //    keeps serving.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        send_eval_frame(&mut s, 9, EvalRequest::Table { n: 13 });
        let resp = recv_response(&mut s);
        assert_eq!(resp.id, 9);
        assert_eq!(resp.error.expect("out-of-range table").kind, "bad_request");
        send_eval_frame(&mut s, 10, EvalRequest::Ping);
        assert_eq!(recv_response(&mut s).ok.as_deref(), Some("pong"));
    }

    // 4b. A processor count past the platform's machine size would trip
    //     an assertion inside the conventional model; it must come back
    //     as a typed bad_request, never kill the batch worker (which
    //     would leave every later request waiting forever).
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        send_eval_frame(
            &mut s,
            11,
            EvalRequest::ThreatModel {
                platform: Platform::Alpha,
                n_procs: 4,
                n_chunks: 4,
            },
        );
        let resp = recv_response(&mut s);
        assert_eq!(resp.id, 11);
        assert_eq!(
            resp.error.expect("over-cap n_procs on Alpha").kind,
            "bad_request"
        );
        send_eval_frame(&mut s, 12, EvalRequest::Ping);
        assert_eq!(recv_response(&mut s).ok.as_deref(), Some("pong"));
    }

    // 5. Mid-request client disconnect: send a valid request, vanish
    //    before the response. The server must shrug and serve the next
    //    connection.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        send_eval_frame(&mut s, 1, EvalRequest::Sleep { ms: 50 });
        drop(s);
    }
    assert_ping_works(&addr);

    stop_server(&addr, handle);
}

#[test]
fn queue_depth_one_rejects_rather_than_buffers() {
    let service = Service::start(
        reduced_evaluator(),
        ServiceConfig {
            capacity: 1,
            batch_max: 1,
            n_threads: 1,
        },
    );

    // Occupy the worker: wait until it has drained the queue and is
    // sleeping inside the request.
    let busy = service
        .submit(EvalRequest::Sleep { ms: 400 })
        .expect("first request admitted");
    let t0 = Instant::now();
    while service.queue_len() != 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "worker never started"
        );
        std::thread::yield_now();
    }

    // Fill the single queue slot.
    let queued = service
        .submit(EvalRequest::Sleep { ms: 0 })
        .expect("second request fills the queue");
    assert_eq!(service.queue_len(), 1);

    // Oversubscribed: the third submission must be REJECTED, not
    // buffered — the queue provably never grows past its capacity.
    match service.submit(EvalRequest::Ping) {
        Err(EvalError::Overloaded { retry_after_ms }) => {
            assert!(retry_after_ms >= 1, "retry hint must be usable");
        }
        Err(other) => panic!("expected Overloaded, got {other:?}"),
        Ok(_) => panic!("expected Overloaded, got an admitted request"),
    }
    assert_eq!(service.queue_len(), 1, "rejection must not enqueue");

    // Both admitted requests still complete, and the queue drains.
    assert_eq!(busy.wait().unwrap(), "slept 400 ms");
    assert_eq!(queued.wait().unwrap(), "slept 0 ms");
    let resp = service.submit(EvalRequest::Ping).expect("queue drained");
    assert_eq!(resp.wait().unwrap(), "pong");
}

#[test]
fn served_responses_are_bit_identical_to_direct_evaluation() {
    let (addr, handle) = start_server(ServiceConfig::default());
    let reference = reduced_evaluator();

    // One of every request kind, plus boundary model configurations.
    let mut requests = vec![
        EvalRequest::Ping,
        EvalRequest::Sensitivity,
        EvalRequest::Scalability {
            procs: vec![1, 2, 4, 8, 256],
        },
    ];
    requests.extend((1..=12).map(|n| EvalRequest::Table { n }));
    requests.extend((1..=4).map(|n| EvalRequest::FigurePlot { n }));
    // Each platform at its Table 1 machine size.
    for (platform, n_procs) in [
        (Platform::Alpha, 1),
        (Platform::PentiumPro, 4),
        (Platform::Exemplar, 16),
        (Platform::Tera, 256),
    ] {
        requests.push(EvalRequest::ThreatModel {
            platform,
            n_procs,
            n_chunks: 45,
        });
        requests.push(EvalRequest::TerrainModel { platform, n_procs });
    }

    // Two concurrent connections interleave their requests so responses
    // really go through admission, batching, and pool sharding.
    std::thread::scope(|s| {
        for conn in 0..2usize {
            let addr = &addr;
            let reference = &reference;
            let requests = &requests;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (i, req) in requests.iter().enumerate().skip(conn).step_by(2) {
                    let resp = client.call(req.clone()).expect("call");
                    let served = resp.ok.unwrap_or_else(|| {
                        panic!("request {i} failed on the wire: {:?}", resp.error)
                    });
                    let direct = reference.evaluate(req).expect("direct evaluation");
                    assert_eq!(
                        served, direct,
                        "request {i} ({req:?}): served response differs from direct evaluation"
                    );
                }
            });
        }
    });

    // The percentile tier saw every completed request.
    assert!(sthreads::stats::service_latency().count() >= requests.len() as u64);

    stop_server(&addr, handle);
}
