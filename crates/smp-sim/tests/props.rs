//! Property tests for the SMP simulator: the set-associative LRU cache is
//! compared against an independently implemented reference model (an
//! explicit recency list per set), and the bus/trace invariants are
//! checked on random inputs.

use proptest::prelude::*;
use smp_sim::{AccessResult, Bus, Cache, CacheConfig, Op, TracePattern};
use std::collections::VecDeque;

/// Reference cache: per set, a recency-ordered list of (tag, owned);
/// front = most recent. Structurally different from the production
/// implementation (which uses timestamps over a flat array).
struct RefCache {
    sets: Vec<VecDeque<(usize, bool)>>,
    line_words: usize,
    ways: usize,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        Self {
            sets: (0..cfg.sets()).map(|_| VecDeque::new()).collect(),
            line_words: cfg.line_words,
            ways: cfg.ways,
        }
    }

    fn access(&mut self, addr: usize, write: bool) -> AccessResult {
        let line = addr / self.line_words;
        let n_sets = self.sets.len();
        let set = &mut self.sets[line % n_sets];
        if let Some(pos) = set.iter().position(|&(t, _)| t == line) {
            let (t, owned) = set.remove(pos).unwrap();
            if write && !owned {
                set.push_front((t, true));
                return AccessResult::Upgrade;
            }
            set.push_front((t, owned));
            return AccessResult::Hit;
        }
        if set.len() == self.ways {
            set.pop_back();
        }
        set.push_front((line, write));
        AccessResult::Miss
    }

    fn invalidate(&mut self, addr: usize) -> bool {
        let line = addr / self.line_words;
        let n_sets = self.sets.len();
        let set = &mut self.sets[line % n_sets];
        if let Some(pos) = set.iter().position(|&(t, _)| t == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone)]
enum Action {
    Access { addr: usize, write: bool },
    Invalidate { addr: usize },
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            8 => (0usize..512, any::<bool>())
                .prop_map(|(addr, write)| Action::Access { addr, write }),
            1 => (0usize..512).prop_map(|addr| Action::Invalidate { addr }),
        ],
        1..400,
    )
}

proptest! {
    /// The production cache agrees with the reference model on every
    /// access classification, for random geometries and action streams.
    #[test]
    fn cache_matches_reference_model(
        actions in arb_actions(),
        line_pow in 0u32..3,
        ways in 1usize..5,
        sets_pow in 0u32..4,
    ) {
        let line_words = 1usize << line_pow;
        let sets = 1usize << sets_pow;
        let cfg = CacheConfig { words: line_words * ways * sets, line_words, ways };
        let mut real = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (i, a) in actions.iter().enumerate() {
            match *a {
                Action::Access { addr, write } => {
                    let r = real.access(addr, write);
                    let e = reference.access(addr, write);
                    prop_assert_eq!(r, e, "step {}: access {:?}", i, a);
                }
                Action::Invalidate { addr } => {
                    let r = real.invalidate(addr);
                    let e = reference.invalidate(addr);
                    prop_assert_eq!(r, e, "step {}: invalidate {:?}", i, a);
                }
            }
        }
    }

    /// Bus completions are monotone and conserve service time.
    #[test]
    fn bus_conserves_service_time(
        arrivals in proptest::collection::vec(0u64..10_000, 1..100),
        per in 1u64..50,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut bus = Bus::new(per);
        let mut last_done = 0u64;
        for &t in &sorted {
            let done = bus.transact(t);
            prop_assert!(done >= t + per);
            prop_assert!(done >= last_done + per, "bus served two at once");
            last_done = done;
        }
        prop_assert_eq!(bus.transactions(), sorted.len() as u64);
        // Total busy time == n * per; completion of the last transaction
        // is at least first arrival + n*per when all arrive together.
        let n = sorted.len() as u64;
        prop_assert!(last_done >= sorted[0] + n * per || sorted.len() == 1);
    }

    /// Trace generators emit exactly the advertised number of memory ops,
    /// all within the stated address range.
    #[test]
    fn trace_pattern_contract(
        base in 0usize..10_000,
        words in 1usize..500,
        stride in 1usize..8,
        compute in 0u64..4,
        write in any::<bool>(),
    ) {
        let p = TracePattern::Stream { base, words, stride, compute_per_access: compute, write };
        let trace = p.generate();
        let mems: Vec<&Op> = trace.iter().filter(|o| matches!(o, Op::Mem { .. })).collect();
        prop_assert_eq!(mems.len(), p.mem_ops());
        for op in mems {
            if let Op::Mem { addr, write: w } = op {
                prop_assert!(*addr >= base && *addr < base + words * stride);
                prop_assert_eq!(*w, write);
            }
        }
    }
}
