//! An in-order processor executing a trace against its private cache.

use crate::cache::{AccessResult, Cache, CacheConfig};

/// Processor timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Cycles for a cache hit.
    pub hit_cycles: u64,
    /// Memory cycles for a miss *beyond* the bus transaction (DRAM access
    /// time).
    pub miss_extra_cycles: u64,
}

/// One processor: a cursor over its trace plus its cache and clock.
#[derive(Debug)]
pub struct Cpu {
    /// The processor's private cache (public for coherence snooping by the
    /// machine).
    pub cache: Cache,
    /// Local time (cycles).
    pub now: u64,
    /// Compute cycles spent.
    pub compute_cycles: u64,
    /// Cycles spent waiting on memory (miss service + bus queueing).
    pub mem_stall_cycles: u64,
}

impl Cpu {
    /// A fresh processor with an empty cache at time 0.
    pub fn new(config: &CpuConfig) -> Self {
        Self {
            cache: Cache::new(config.cache),
            now: 0,
            compute_cycles: 0,
            mem_stall_cycles: 0,
        }
    }

    /// Run `cycles` of computation.
    pub fn compute(&mut self, cycles: u64) {
        self.now += cycles;
        self.compute_cycles += cycles;
    }

    /// Classify a memory access against the private cache and charge the
    /// hit cost; returns the classification so the machine can charge
    /// interconnect costs for misses/upgrades.
    pub fn access(&mut self, cfg: &CpuConfig, addr: usize, write: bool) -> AccessResult {
        let r = self.cache.access(addr, write);
        self.now += cfg.hit_cycles;
        r
    }

    /// Charge a memory stall ending at `until` (bus + DRAM time computed
    /// by the machine).
    pub fn stall_until(&mut self, until: u64) {
        if until > self.now {
            self.mem_stall_cycles += until - self.now;
            self.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CpuConfig {
        CpuConfig {
            cache: CacheConfig {
                words: 256,
                line_words: 4,
                ways: 2,
            },
            hit_cycles: 1,
            miss_extra_cycles: 20,
        }
    }

    #[test]
    fn compute_advances_the_clock() {
        let c = cfg();
        let mut cpu = Cpu::new(&c);
        cpu.compute(50);
        assert_eq!(cpu.now, 50);
        assert_eq!(cpu.compute_cycles, 50);
    }

    #[test]
    fn hits_cost_hit_cycles() {
        let c = cfg();
        let mut cpu = Cpu::new(&c);
        cpu.access(&c, 0, false); // miss, but only classification here
        let before = cpu.now;
        let r = cpu.access(&c, 1, false);
        assert_eq!(r, AccessResult::Hit);
        assert_eq!(cpu.now, before + 1);
    }

    #[test]
    fn stall_until_accumulates_stalls() {
        let c = cfg();
        let mut cpu = Cpu::new(&c);
        cpu.compute(10);
        cpu.stall_until(35);
        assert_eq!(cpu.now, 35);
        assert_eq!(cpu.mem_stall_cycles, 25);
        cpu.stall_until(30); // in the past: no-op
        assert_eq!(cpu.now, 35);
        assert_eq!(cpu.mem_stall_cycles, 25);
    }
}
