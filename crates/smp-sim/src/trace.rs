//! Operation traces for the trace-driven SMP simulator.
//!
//! A trace is a sequence of [`Op`]s per processor. [`TracePattern`]
//! generates the patterns the analytic models need validated:
//!
//! * `ResidentLoop` — repeated sweeps over a cache-resident block
//!   (Threat Analysis's per-pair working set: "the threads ... execute
//!   mostly within cache");
//! * `Stream` — a single pass over a large private array (Terrain
//!   Masking's copy/reset/merge loops);
//! * `SharedStream` — a streaming sweep over an array shared with other
//!   processors (the `masking` array merges, which also produce
//!   invalidation traffic);
//! * `Strided` — fixed-stride sweep (line-reuse ablation).

/// One trace operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` cycles of pure computation (no memory).
    Compute(u64),
    /// One memory access at word `addr`; `write` selects store semantics.
    Mem {
        /// Word address.
        addr: usize,
        /// Store if true, load otherwise.
        write: bool,
    },
}

/// Synthetic per-processor access patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePattern {
    /// `rounds` sweeps over `block_words` words starting at `base`, with
    /// `compute_per_access` compute cycles between accesses.
    ResidentLoop {
        /// First word of the block.
        base: usize,
        /// Block size in words (should fit in cache).
        block_words: usize,
        /// Number of sweeps.
        rounds: usize,
        /// Compute cycles between accesses.
        compute_per_access: u64,
    },
    /// One pass over `words` words starting at `base` with the given
    /// stride, `compute_per_access` compute cycles between accesses,
    /// writing if `write`.
    Stream {
        /// First word.
        base: usize,
        /// Number of accesses.
        words: usize,
        /// Stride in words.
        stride: usize,
        /// Compute cycles between accesses.
        compute_per_access: u64,
        /// Store if true.
        write: bool,
    },
}

impl TracePattern {
    /// Materialize the trace.
    pub fn generate(&self) -> Vec<Op> {
        let mut out = Vec::new();
        match *self {
            TracePattern::ResidentLoop {
                base,
                block_words,
                rounds,
                compute_per_access,
            } => {
                for _ in 0..rounds {
                    for w in 0..block_words {
                        if compute_per_access > 0 {
                            out.push(Op::Compute(compute_per_access));
                        }
                        out.push(Op::Mem {
                            addr: base + w,
                            write: false,
                        });
                    }
                }
            }
            TracePattern::Stream {
                base,
                words,
                stride,
                compute_per_access,
                write,
            } => {
                for i in 0..words {
                    if compute_per_access > 0 {
                        out.push(Op::Compute(compute_per_access));
                    }
                    out.push(Op::Mem {
                        addr: base + i * stride,
                        write,
                    });
                }
            }
        }
        out
    }

    /// Number of memory operations the trace will contain.
    pub fn mem_ops(&self) -> usize {
        match *self {
            TracePattern::ResidentLoop {
                block_words,
                rounds,
                ..
            } => block_words * rounds,
            TracePattern::Stream { words, .. } => words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_loop_repeats_the_block() {
        let t = TracePattern::ResidentLoop {
            base: 100,
            block_words: 3,
            rounds: 2,
            compute_per_access: 0,
        }
        .generate();
        let addrs: Vec<usize> = t
            .iter()
            .filter_map(|op| match op {
                Op::Mem { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(addrs, vec![100, 101, 102, 100, 101, 102]);
    }

    #[test]
    fn stream_strides() {
        let t = TracePattern::Stream {
            base: 0,
            words: 4,
            stride: 8,
            compute_per_access: 2,
            write: true,
        }
        .generate();
        assert_eq!(t.len(), 8, "compute + mem per access");
        assert_eq!(
            t[1],
            Op::Mem {
                addr: 0,
                write: true
            }
        );
        assert_eq!(
            t[7],
            Op::Mem {
                addr: 24,
                write: true
            }
        );
    }

    #[test]
    fn mem_ops_counts_match_generation() {
        for p in [
            TracePattern::ResidentLoop {
                base: 0,
                block_words: 10,
                rounds: 3,
                compute_per_access: 1,
            },
            TracePattern::Stream {
                base: 0,
                words: 25,
                stride: 2,
                compute_per_access: 0,
                write: false,
            },
        ] {
            let n = p
                .generate()
                .iter()
                .filter(|op| matches!(op, Op::Mem { .. }))
                .count();
            assert_eq!(n, p.mem_ops());
        }
    }
}
