//! The shared interconnect: a bandwidth-limited resource every line fill,
//! upgrade, and writeback must cross.
//!
//! Modeled exactly like a memory bank in `mta-sim`: a transaction arriving
//! at time `t` starts at `max(t, busy_until)` and occupies the bus for a
//! fixed per-transaction time. On the Pentium Pro this is the front-side
//! bus; on the Exemplar the crossbar-to-memory path (wider, so its
//! per-transaction time is smaller, but it still saturates — Figure 4 of
//! the paper shows exactly that).

/// A single shared bus with fixed per-transaction occupancy.
#[derive(Debug, Clone)]
pub struct Bus {
    /// Cycles each transaction occupies the bus.
    per_transaction: u64,
    busy_until: u64,
    transactions: u64,
    queue_cycles: u64,
}

impl Bus {
    /// A bus occupying `per_transaction` cycles per transaction.
    pub fn new(per_transaction: u64) -> Self {
        assert!(per_transaction > 0);
        Self {
            per_transaction,
            busy_until: 0,
            transactions: 0,
            queue_cycles: 0,
        }
    }

    /// Submit a transaction at `now`; returns its completion time.
    pub fn transact(&mut self, now: u64) -> u64 {
        let start = now.max(self.busy_until);
        self.queue_cycles += start - now;
        self.busy_until = start + self.per_transaction;
        self.transactions += 1;
        self.busy_until
    }

    /// Transactions carried so far.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total cycles transactions spent waiting for the bus.
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }

    /// Fraction of `elapsed` cycles the bus was occupied.
    pub fn occupancy(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.transactions * self.per_transaction) as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_transactions_queue() {
        let mut b = Bus::new(10);
        assert_eq!(b.transact(0), 10);
        assert_eq!(b.transact(0), 20);
        assert_eq!(b.transact(5), 30);
        assert_eq!(b.transactions(), 3);
        assert_eq!(b.queue_cycles(), 10 + 15);
    }

    #[test]
    fn idle_bus_does_not_queue() {
        let mut b = Bus::new(10);
        assert_eq!(b.transact(0), 10);
        assert_eq!(b.transact(100), 110);
        assert_eq!(b.queue_cycles(), 0);
    }

    #[test]
    fn occupancy_reflects_traffic() {
        let mut b = Bus::new(10);
        for t in 0..5 {
            b.transact(t * 100);
        }
        assert!((b.occupancy(500) - 0.1).abs() < 1e-12);
    }
}
