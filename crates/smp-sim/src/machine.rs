//! The SMP machine: N trace-driven processors with private caches, a
//! MESI-lite coherence protocol, and one shared interconnect.
//!
//! Execution interleaves processors in local-time order (the processor
//! with the earliest clock executes its next operation), so contention for
//! the shared bus is resolved deterministically and in causal order.

use crate::bus::Bus;
use crate::cache::AccessResult;
use crate::cpu::{Cpu, CpuConfig};
use crate::trace::Op;

/// SMP machine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmpConfig {
    /// Number of processors.
    pub n_cpus: usize,
    /// Per-processor configuration (cache, hit/miss costs).
    pub cpu: CpuConfig,
    /// Bus occupancy per line transaction.
    pub bus_per_transaction: u64,
}

/// Result of a trace-driven run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmpResult {
    /// Per-processor finish times.
    pub finish: Vec<u64>,
    /// Per-processor (hits, misses, upgrades).
    pub cache_stats: Vec<(u64, u64, u64)>,
    /// Per-processor cycles stalled on memory.
    pub mem_stalls: Vec<u64>,
    /// Total bus transactions.
    pub bus_transactions: u64,
    /// Cycles transactions spent queued for the bus.
    pub bus_queue_cycles: u64,
    /// Lines invalidated in remote caches by writes.
    pub invalidations: u64,
}

impl SmpResult {
    /// Makespan: the time the last processor finished.
    pub fn makespan(&self) -> u64 {
        self.finish.iter().copied().max().unwrap_or(0)
    }

    /// Machine-wide cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        let (mut h, mut total) = (0u64, 0u64);
        for &(hits, misses, upgrades) in &self.cache_stats {
            h += hits;
            total += hits + misses + upgrades;
        }
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }
}

/// The machine.
pub struct SmpMachine {
    config: SmpConfig,
    cpus: Vec<Cpu>,
    bus: Bus,
    invalidations: u64,
}

impl SmpMachine {
    /// A machine of `config.n_cpus` processors with cold caches.
    pub fn new(config: SmpConfig) -> Self {
        assert!(config.n_cpus > 0);
        Self {
            cpus: (0..config.n_cpus).map(|_| Cpu::new(&config.cpu)).collect(),
            bus: Bus::new(config.bus_per_transaction),
            config,
            invalidations: 0,
        }
    }

    /// Run one trace per processor to completion (`traces.len()` must not
    /// exceed the processor count; missing traces mean idle processors).
    pub fn run(&mut self, traces: &[Vec<Op>]) -> SmpResult {
        assert!(
            traces.len() <= self.config.n_cpus,
            "more traces ({}) than processors ({})",
            traces.len(),
            self.config.n_cpus
        );
        let mut cursors = vec![0usize; traces.len()];

        // Pick the unfinished processor with the earliest local clock
        // (ties break toward the lower index — deterministic).
        while let Some(p) = (0..traces.len())
            .filter(|&p| cursors[p] < traces[p].len())
            .min_by_key(|&p| (self.cpus[p].now, p))
        {
            let op = traces[p][cursors[p]];
            cursors[p] += 1;
            match op {
                Op::Compute(n) => self.cpus[p].compute(n),
                Op::Mem { addr, write } => {
                    let cfg = self.config.cpu;
                    let r = self.cpus[p].access(&cfg, addr, write);
                    match r {
                        AccessResult::Hit => {}
                        AccessResult::Miss | AccessResult::Upgrade => {
                            let now = self.cpus[p].now;
                            let bus_done = self.bus.transact(now);
                            let extra = if r == AccessResult::Miss {
                                cfg.miss_extra_cycles
                            } else {
                                0
                            };
                            self.cpus[p].stall_until(bus_done + extra);
                            if write {
                                // Invalidate remote copies.
                                for q in 0..self.cpus.len() {
                                    if q != p && self.cpus[q].cache.invalidate(addr) {
                                        self.invalidations += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        SmpResult {
            finish: self.cpus[..traces.len()].iter().map(|c| c.now).collect(),
            cache_stats: self.cpus[..traces.len()]
                .iter()
                .map(|c| c.cache.stats())
                .collect(),
            mem_stalls: self.cpus[..traces.len()]
                .iter()
                .map(|c| c.mem_stall_cycles)
                .collect(),
            bus_transactions: self.bus.transactions(),
            bus_queue_cycles: self.bus.queue_cycles(),
            invalidations: self.invalidations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::trace::TracePattern;

    fn config(n_cpus: usize) -> SmpConfig {
        SmpConfig {
            n_cpus,
            cpu: CpuConfig {
                cache: CacheConfig {
                    words: 4096,
                    line_words: 4,
                    ways: 4,
                },
                hit_cycles: 1,
                miss_extra_cycles: 30,
            },
            bus_per_transaction: 10,
        }
    }

    #[test]
    fn compute_only_traces_scale_perfectly() {
        let traces: Vec<Vec<Op>> = (0..4).map(|_| vec![Op::Compute(1000)]).collect();
        let mut m = SmpMachine::new(config(4));
        let r = m.run(&traces);
        assert_eq!(r.makespan(), 1000, "no shared resource touched");
        assert_eq!(r.bus_transactions, 0);
    }

    #[test]
    fn resident_working_sets_hit_and_scale() {
        // Each CPU loops over its own cache-resident block: after warmup
        // everything hits; the bus carries only compulsory misses.
        let traces: Vec<Vec<Op>> = (0..4)
            .map(|p| {
                TracePattern::ResidentLoop {
                    base: p * 100_000,
                    block_words: 1024,
                    rounds: 20,
                    compute_per_access: 2,
                }
                .generate()
            })
            .collect();
        let mut m = SmpMachine::new(config(4));
        let r = m.run(&traces);
        assert!(r.hit_rate() > 0.94, "hit rate {}", r.hit_rate());
        // Near-perfect scaling: makespan ≈ single-cpu time.
        let single = {
            let mut m1 = SmpMachine::new(config(1));
            m1.run(&traces[..1]).makespan()
        };
        let ratio = r.makespan() as f64 / single as f64;
        assert!(ratio < 1.1, "compute-bound run must scale: ratio {ratio}");
    }

    #[test]
    fn streaming_traces_saturate_the_bus() {
        // Private streams (no sharing), but every line fill crosses the
        // one bus: with enough CPUs the bus is the bottleneck.
        let make = |n: usize| -> Vec<Vec<Op>> {
            (0..n)
                .map(|p| {
                    TracePattern::Stream {
                        base: p * 1_000_000,
                        words: 8000,
                        stride: 1,
                        compute_per_access: 1,
                        write: false,
                    }
                    .generate()
                })
                .collect()
        };
        let t1 = SmpMachine::new(config(1)).run(&make(1)).makespan();
        let t8 = {
            let mut m = SmpMachine::new(config(8));
            m.run(&make(8))
        };
        // Perfect scaling would keep makespan == t1; bus contention must
        // inflate it substantially.
        let ratio = t8.makespan() as f64 / t1 as f64;
        assert!(ratio > 1.5, "8 streaming CPUs must contend: ratio {ratio}");
        assert!(t8.bus_queue_cycles > 0);
    }

    #[test]
    fn speedup_of_streaming_work_saturates_like_figure_4() {
        // Fixed total work divided over n CPUs: speedup must flatten well
        // below linear — the shape of the paper's Exemplar Terrain
        // Masking curve.
        let total_words = 32_000;
        let run = |n: usize| -> u64 {
            let per = total_words / n;
            let traces: Vec<Vec<Op>> = (0..n)
                .map(|p| {
                    TracePattern::Stream {
                        base: p * 1_000_000,
                        words: per,
                        stride: 1,
                        compute_per_access: 1,
                        write: true,
                    }
                    .generate()
                })
                .collect();
            SmpMachine::new(config(n)).run(&traces).makespan()
        };
        let t1 = run(1);
        let s4 = t1 as f64 / run(4) as f64;
        let s16 = t1 as f64 / run(16) as f64;
        assert!(s4 > 1.5, "some speedup at 4: {s4}");
        assert!(s16 < 8.0, "memory-bound speedup must saturate: {s16}");
        assert!(s16 < 16.0 * 0.6);
    }

    #[test]
    fn shared_line_writes_ping_pong() {
        // Two CPUs alternately writing the same line: every write after
        // the first must be a miss or an upgrade (never a silent hit).
        let traces: Vec<Vec<Op>> = (0..2)
            .map(|_| {
                (0..50)
                    .flat_map(|_| {
                        vec![
                            Op::Compute(5),
                            Op::Mem {
                                addr: 0,
                                write: true,
                            },
                        ]
                    })
                    .collect()
            })
            .collect();
        let mut m = SmpMachine::new(config(2));
        let r = m.run(&traces);
        assert!(
            r.invalidations > 40,
            "ping-pong must invalidate constantly: {}",
            r.invalidations
        );
        assert!(
            r.hit_rate() < 0.5,
            "shared writes must not hit: {}",
            r.hit_rate()
        );
    }

    #[test]
    fn disjoint_writes_do_not_invalidate() {
        let traces: Vec<Vec<Op>> = (0..2)
            .map(|p| {
                TracePattern::Stream {
                    base: p * 1_000_000,
                    words: 100,
                    stride: 1,
                    compute_per_access: 0,
                    write: true,
                }
                .generate()
            })
            .collect();
        let mut m = SmpMachine::new(config(2));
        let r = m.run(&traces);
        assert_eq!(r.invalidations, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let traces: Vec<Vec<Op>> = (0..3)
            .map(|p| {
                TracePattern::Stream {
                    base: p * 512,
                    words: 500,
                    stride: 3,
                    compute_per_access: 1,
                    write: p % 2 == 0,
                }
                .generate()
            })
            .collect();
        let r1 = SmpMachine::new(config(3)).run(&traces);
        let r2 = SmpMachine::new(config(3)).run(&traces);
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "more traces")]
    fn too_many_traces_panics() {
        let traces = vec![vec![], vec![]];
        SmpMachine::new(config(1)).run(&traces);
    }
}
