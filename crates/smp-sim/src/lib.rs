//! # smp-sim — trace-driven cache/bus simulator for the conventional
//! platforms of the SC'98 study
//!
//! The paper compares the Tera MTA against three cache-based machines: a
//! 500 MHz DEC AlphaStation, a quad 200 MHz Pentium Pro (shared bus), and
//! a 16-processor HP Exemplar. Their behaviour in the study is governed by
//! two mechanisms this crate simulates:
//!
//! * **cache locality** — Threat Analysis runs "mostly within cache" and
//!   scales nearly perfectly; Terrain Masking streams over large arrays
//!   and is memory-bound ([`cache`]);
//! * **shared-interconnect contention** — the memory-bound program
//!   saturates the bus/crossbar, capping multiprocessor speedup well below
//!   linear (Figures 3 and 4) ([`bus`]).
//!
//! Processors ([`cpu`]) execute operation traces ([`trace`]) against
//! private set-associative caches with MESI-lite invalidation, sharing a
//! bandwidth-limited interconnect ([`machine`]). The simulator is used to
//! *validate the assumptions* of the analytic SMP models in `eval-core`
//! (hit rates of streaming vs resident access patterns, bus saturation
//! curves); the analytic models then scale those effects to full benchmark
//! runs.

pub mod bus;
pub mod cache;
pub mod cpu;
pub mod machine;
pub mod trace;

pub use bus::Bus;
pub use cache::{AccessResult, Cache, CacheConfig};
pub use cpu::{Cpu, CpuConfig};
pub use machine::{SmpConfig, SmpMachine, SmpResult};
pub use trace::{Op, TracePattern};
