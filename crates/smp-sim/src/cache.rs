//! Set-associative LRU cache with MESI-lite state (enough coherence to
//! model invalidation traffic: a line is either absent, Shared, or
//! Modified/Exclusive — we do not distinguish M from E because the study's
//! traffic patterns never need the difference).

/// Cache geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in words.
    pub words: usize,
    /// Line size in words.
    pub line_words: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.words / (self.line_words * self.ways)
    }
}

/// Line coherence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    Shared,
    Owned, // Modified-or-Exclusive
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: usize,
    state: LineState,
    /// LRU timestamp (higher = more recent).
    lru: u64,
    valid: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Present in the right state; no interconnect traffic.
    Hit,
    /// Absent: a line fill is required (and possibly an eviction).
    Miss,
    /// Present but Shared on a write: an upgrade (invalidate) is required.
    Upgrade,
}

/// One processor's private cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
    upgrades: u64,
}

impl Cache {
    /// An empty cache with the given geometry. Panics if the geometry is
    /// inconsistent (capacity not divisible into sets).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_words > 0 && config.ways > 0);
        assert!(
            config.words.is_multiple_of(config.line_words * config.ways) && config.sets() > 0,
            "cache capacity must divide into sets"
        );
        let n_lines = config.sets() * config.ways;
        Self {
            config,
            lines: vec![
                Line {
                    tag: 0,
                    state: LineState::Shared,
                    lru: 0,
                    valid: false
                };
                n_lines
            ],
            tick: 0,
            hits: 0,
            misses: 0,
            upgrades: 0,
        }
    }

    /// Cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The line-aligned address (line id) of a word address.
    pub fn line_of(&self, addr: usize) -> usize {
        addr / self.config.line_words
    }

    fn set_range(&self, line_id: usize) -> std::ops::Range<usize> {
        let set = line_id % self.config.sets();
        let base = set * self.config.ways;
        base..base + self.config.ways
    }

    /// Access `addr`; `write` selects store semantics. Returns what the
    /// access requires. On `Miss` the line is installed (evicting LRU);
    /// on `Upgrade` the line moves to Owned. Interconnect cost is the
    /// caller's business — the cache only classifies.
    pub fn access(&mut self, addr: usize, write: bool) -> AccessResult {
        self.tick += 1;
        let line_id = self.line_of(addr);
        let tag = line_id;
        let range = self.set_range(line_id);

        // Probe.
        for i in range.clone() {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].lru = self.tick;
                if write && self.lines[i].state == LineState::Shared {
                    self.lines[i].state = LineState::Owned;
                    self.upgrades += 1;
                    return AccessResult::Upgrade;
                }
                self.hits += 1;
                return AccessResult::Hit;
            }
        }

        // Miss: install over the LRU way.
        let victim = range
            .clone()
            .min_by_key(|&i| {
                if self.lines[i].valid {
                    self.lines[i].lru
                } else {
                    0
                }
            })
            .expect("non-empty set");
        self.lines[victim] = Line {
            tag,
            state: if write {
                LineState::Owned
            } else {
                LineState::Shared
            },
            lru: self.tick,
            valid: true,
        };
        self.misses += 1;
        AccessResult::Miss
    }

    /// Invalidate the line containing `addr` if present (remote write).
    /// Returns whether a line was dropped.
    pub fn invalidate(&mut self, addr: usize) -> bool {
        let line_id = self.line_of(addr);
        for i in self.set_range(line_id) {
            if self.lines[i].valid && self.lines[i].tag == line_id {
                self.lines[i].valid = false;
                return true;
            }
        }
        false
    }

    /// Whether the line containing `addr` is present.
    pub fn contains(&self, addr: usize) -> bool {
        let line_id = self.line_of(addr);
        self.set_range(line_id)
            .any(|i| self.lines[i].valid && self.lines[i].tag == line_id)
    }

    /// (hits, misses, upgrades) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.upgrades)
    }

    /// Hit rate over all accesses so far (upgrades count as neither).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.upgrades;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 64 words, 4-word lines, 2-way → 8 sets.
        Cache::new(CacheConfig {
            words: 64,
            line_words: 4,
            ways: 2,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert_eq!(c.access(10, false), AccessResult::Miss);
        assert_eq!(c.access(10, false), AccessResult::Hit);
        assert_eq!(c.access(11, false), AccessResult::Hit, "same line");
        assert_eq!(c.access(12, false), AccessResult::Miss, "next line");
    }

    #[test]
    fn write_to_shared_line_upgrades_once() {
        let mut c = small();
        assert_eq!(c.access(0, false), AccessResult::Miss);
        assert_eq!(c.access(0, true), AccessResult::Upgrade);
        assert_eq!(c.access(0, true), AccessResult::Hit, "already owned");
    }

    #[test]
    fn write_miss_installs_owned() {
        let mut c = small();
        assert_eq!(c.access(0, true), AccessResult::Miss);
        assert_eq!(c.access(0, true), AccessResult::Hit);
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = small();
        // 8 sets × 4-word lines: addresses 0, 32, 64 map to set 0.
        c.access(0, false);
        c.access(32, false);
        c.access(0, false); // touch 0 → 32 is LRU
        c.access(64, false); // evicts 32
        assert!(c.contains(0));
        assert!(!c.contains(32));
        assert!(c.contains(64));
    }

    #[test]
    fn invalidate_drops_the_line() {
        let mut c = small();
        c.access(20, false);
        assert!(c.contains(20));
        assert!(c.invalidate(20));
        assert!(!c.contains(20));
        assert!(!c.invalidate(20), "second invalidate finds nothing");
        assert_eq!(c.access(20, false), AccessResult::Miss);
    }

    #[test]
    fn streaming_hit_rate_is_line_reuse() {
        // Sequential word sweep: 1 miss per line → hit rate = 3/4 with
        // 4-word lines.
        let mut c = Cache::new(CacheConfig {
            words: 1024,
            line_words: 4,
            ways: 4,
        });
        for a in 0..4000 {
            c.access(a, false);
        }
        let hr = c.hit_rate();
        assert!((hr - 0.75).abs() < 0.01, "hit rate {hr}");
    }

    #[test]
    fn resident_working_set_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig {
            words: 1024,
            line_words: 4,
            ways: 4,
        });
        for round in 0..10 {
            for a in 0..512 {
                let r = c.access(a, false);
                if round > 0 {
                    assert_eq!(r, AccessResult::Hit, "addr {a} round {round}");
                }
            }
        }
    }

    #[test]
    fn thrashing_working_set_misses() {
        // Working set 4× capacity, LRU → every access misses after warmup.
        let mut c = Cache::new(CacheConfig {
            words: 256,
            line_words: 4,
            ways: 2,
        });
        let mut late_hits = 0;
        for round in 0..4 {
            for a in (0..1024).step_by(4) {
                let r = c.access(a, false);
                if round == 3 && r == AccessResult::Hit {
                    late_hits += 1;
                }
            }
        }
        assert_eq!(
            late_hits, 0,
            "LRU must thrash on a cyclic over-capacity sweep"
        );
    }

    #[test]
    #[should_panic(expected = "divide into sets")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig {
            words: 100,
            line_words: 4,
            ways: 3,
        });
    }
}
