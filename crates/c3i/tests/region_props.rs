//! Property tests for the region-of-influence geometry under heavy
//! clipping, and for the equivalence of the two `AltStore` backings.
//!
//! These pin the invariants the fuzzer's degenerate-terrain cases lean
//! on: corner threats with radii far past the grid edge must still yield
//! rings that exactly partition the clipped region, and Program 4's
//! bounding-box scratch array must be indistinguishable from a
//! full-grid store for any line-of-sight computation.

use c3i::terrain::los::{compute_raw_alts, AltStore, Region, ScratchAlt};
use c3i::terrain::GroundThreat;
use c3i::Grid;
use c3i::NoRec;
use proptest::prelude::*;
use std::collections::HashSet;

/// Grid shapes plus threat placements that force clipping on one or more
/// sides: corners, edge midpoints, and interior cells, with radii from 0
/// up to twice the grid perimeter bound.
fn arb_clipped_region() -> impl Strategy<Value = (usize, usize, GroundThreat)> {
    (1usize..24, 1usize..24).prop_flat_map(|(xs, ys)| {
        let placements = prop_oneof![
            Just((0, 0)),
            Just((xs - 1, 0)),
            Just((0, ys - 1)),
            Just((xs - 1, ys - 1)),
            Just((xs / 2, 0)),
            Just((0, ys / 2)),
            (0..xs, 0..ys),
        ];
        (placements, 0usize..2 * (xs + ys)).prop_map(move |((x, y), radius)| {
            (
                xs,
                ys,
                GroundThreat {
                    x,
                    y,
                    radius,
                    mast_height: 10.0,
                },
            )
        })
    })
}

/// Degenerate terrains the fuzzer generates: all-flat, a single spike,
/// and a cliff wall splitting the grid.
fn arb_degenerate_terrain() -> impl Strategy<Value = Grid<f64>> {
    (2usize..24, 2usize..24).prop_flat_map(|(xs, ys)| {
        prop_oneof![
            // All-flat: every slope comparison ties.
            (0.0..500.0f64).prop_map(move |h| Grid::new(xs, ys, h)),
            // Single spike on flat ground.
            (0..xs, 0..ys, 500.0..2000.0f64).prop_map(move |(sx, sy, peak)| Grid::from_fn(
                xs,
                ys,
                |x, y| {
                    if (x, y) == (sx, sy) {
                        peak
                    } else {
                        25.0
                    }
                }
            )),
            // Cliff wall: a step function at column `wall`.
            (0..xs, 900.0..1500.0f64).prop_map(move |(wall, hi)| Grid::from_fn(xs, ys, |x, _| {
                if x < wall {
                    10.0
                } else {
                    hi
                }
            })),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rings 0..=radius exactly partition the clipped region: every
    /// surviving cell appears in exactly one ring, at exactly its
    /// Chebyshev distance, no matter how hard the grid edge clips.
    #[test]
    fn rings_partition_the_clipped_region((xs, ys, threat) in arb_clipped_region()) {
        let region = Region::of(&threat, xs, ys).expect("threat is on the grid");
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for k in 0..=region.radius {
            for (x, y) in region.ring(k) {
                prop_assert!(x < xs && y < ys, "ring {k} leaked off-grid cell ({x},{y})");
                let d = x.abs_diff(threat.x).max(y.abs_diff(threat.y));
                prop_assert_eq!(d, k, "cell ({}, {}) in ring {} has distance {}", x, y, k, d);
                prop_assert!(seen.insert((x, y)), "cell ({}, {}) appears twice", x, y);
            }
        }
        let all: HashSet<(usize, usize)> = region.cells().collect();
        prop_assert_eq!(seen, all, "rings must cover exactly the region's cells");
    }

    /// Ring enumeration is deterministic — the replay guarantee the
    /// fuzzer's bit-identical comparisons rest on.
    #[test]
    fn ring_order_is_deterministic((xs, ys, threat) in arb_clipped_region()) {
        let region = Region::of(&threat, xs, ys).expect("threat is on the grid");
        for k in 0..=region.radius {
            prop_assert_eq!(region.ring(k), region.ring(k));
        }
    }

    /// The run-based ring representation is exactly the historical ring:
    /// at most four contiguous edge runs whose flattened cells are the
    /// same set as `reference::ring`, in the canonical run order that
    /// `Region::ring` now produces — under every clipping the placement
    /// strategy can force, including radii past the grid.
    #[test]
    fn ring_runs_flatten_to_the_historical_ring((xs, ys, threat) in arb_clipped_region()) {
        let region = Region::of(&threat, xs, ys).expect("threat is on the grid");
        for k in 0..=region.radius {
            let runs = region.ring_runs(k);
            prop_assert!(runs.n_runs() <= 4, "ring {k} produced {} runs", runs.n_runs());
            let flat: Vec<(usize, usize)> = runs.cells().collect();
            prop_assert_eq!(&flat, &region.ring(k), "ring {} order diverged", k);
            let as_set: HashSet<(usize, usize)> = flat.iter().copied().collect();
            let historical: HashSet<(usize, usize)> =
                c3i::terrain::los::reference::ring(&region, k).into_iter().collect();
            prop_assert_eq!(as_set, historical, "ring {} cell set diverged", k);
            prop_assert_eq!(runs.len(), flat.len());
            // Random access agrees with iteration, and each run really is
            // contiguous along its axis.
            for (i, cell) in flat.iter().enumerate() {
                prop_assert_eq!(runs.cell(i), *cell, "cell({}) diverged", i);
            }
            for run in runs.iter() {
                let cells: Vec<_> = run.cells().collect();
                for w in cells.windows(2) {
                    let contiguous = (w[0].0 == w[1].0 && w[0].1 + 1 == w[1].1)
                        || (w[0].1 == w[1].1 && w[0].0 + 1 == w[1].0);
                    prop_assert!(contiguous, "run cells not contiguous: {:?}", w);
                }
            }
        }
    }

    /// A radius past both grid dimensions clips to the whole grid: the
    /// region degenerates to the full rectangle.
    #[test]
    fn oversized_radius_covers_the_whole_grid(
        (xs, ys) in (1usize..16, 1usize..16),
        (fx, fy) in (0usize..16, 0usize..16),
    ) {
        let threat = GroundThreat {
            x: fx.min(xs - 1),
            y: fy.min(ys - 1),
            radius: xs + ys,
            mast_height: 0.0,
        };
        let region = Region::of(&threat, xs, ys).expect("threat is on the grid");
        prop_assert_eq!(region.cells().count(), xs * ys);
    }

    /// Program 4's bounding-box scratch store computes bit-identical raw
    /// altitudes to a full-grid store on degenerate terrains, for any
    /// clipped region — the two `AltStore` backings are interchangeable.
    #[test]
    fn scratch_store_matches_full_grid_store(
        terrain in arb_degenerate_terrain(),
        (tx, ty, radius) in (0usize..24, 0usize..24, 0usize..64),
        cell_size in prop_oneof![Just(1.0f64), Just(30.0), Just(100.0), Just(1000.0)],
    ) {
        let (xs, ys) = (terrain.x_size(), terrain.y_size());
        let threat = GroundThreat {
            x: tx.min(xs - 1),
            y: ty.min(ys - 1),
            radius,
            mast_height: 12.0,
        };
        let region = Region::of(&threat, xs, ys).expect("threat is on the grid");

        let mut scratch = ScratchAlt::new(&region, f64::INFINITY);
        compute_raw_alts(&terrain, cell_size, &threat, &region, &mut scratch, &mut NoRec);

        let mut full: Grid<f64> = Grid::new(xs, ys, f64::INFINITY);
        compute_raw_alts(&terrain, cell_size, &threat, &region, &mut full, &mut NoRec);

        for (x, y) in region.cells() {
            let a = AltStore::get(&scratch, x, y);
            let b = AltStore::get(&full, x, y);
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "cell ({}, {}): scratch {:?} != grid {:?}", x, y, a, b
            );
        }
    }
}
