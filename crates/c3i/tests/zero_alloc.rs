//! Counting-allocator proof that the masking pipeline's hot path is
//! allocation-free.
//!
//! After one warm-up call populates the thread's `KernelArena` (scratch
//! store, distance tables, run staging) and the output grid, repeated
//! `terrain_masking_into` pipelines must perform **zero** heap
//! allocations — the property the ring-run + arena data layout exists to
//! provide. This file deliberately contains exactly one test: the global
//! allocator counter would otherwise see other tests' allocations from
//! concurrently running test threads.

use c3i::terrain::{
    generate, terrain_masking_into, terrain_masking_reference, TerrainScenarioParams,
};
use c3i::{Grid, NoRec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn masking_pipeline_is_allocation_free_after_warmup() {
    // A mid-size scenario with clipped regions so every kernel shape
    // (row/col sweeps, corner peels, column parents) runs.
    let scenario = generate(TerrainScenarioParams {
        grid_size: 96,
        n_threats: 12,
        seed: 11,
        ..TerrainScenarioParams::default()
    });

    let mut masking = Grid::new(0, 0, 0.0);
    // Warm-up: sizes the output grid, the arena scratch, the distance
    // tables, and the run staging buffer.
    terrain_masking_into(&scenario, &mut masking, &mut NoRec);
    let expected = terrain_masking_reference(&scenario);
    assert_eq!(masking, expected, "warm-up output must already be correct");

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..3 {
        terrain_masking_into(&scenario, &mut masking, &mut NoRec);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "hot path allocated {} times in 3 warm pipelines",
        after - before
    );
    assert_eq!(masking, expected, "warm runs must keep the exact output");
}
