//! Property-based tests for the C3I benchmark implementations: every
//! parallel variant must agree with the sequential program on arbitrary
//! scenarios, and the physical invariants must hold for arbitrary inputs.

use c3i::terrain::{self, TerrainScenarioParams};
use c3i::threat::{self, canonical, verify_intervals, ThreatScenarioParams};
use proptest::prelude::*;

fn arb_threat_scenario() -> impl Strategy<Value = threat::ThreatScenario> {
    (1usize..20, 1usize..5, 0u64..1000).prop_map(|(n_threats, n_weapons, seed)| {
        threat::generate(ThreatScenarioParams {
            n_threats,
            n_weapons,
            seed,
            theater_m: 300_000.0,
            launch_window_s: 400.0,
        })
    })
}

fn arb_terrain_scenario() -> impl Strategy<Value = terrain::TerrainScenario> {
    (1usize..8, 0u64..1000, 32usize..96).prop_map(|(n_threats, seed, grid)| {
        terrain::generate(TerrainScenarioParams {
            grid_size: grid,
            n_threats,
            seed,
            ..Default::default()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunked Threat Analysis equals the sequential program for any
    /// scenario, chunk count, and thread count.
    #[test]
    fn chunked_threat_analysis_is_equivalent(
        s in arb_threat_scenario(),
        n_chunks in 1usize..40,
        n_threads in 1usize..6,
    ) {
        let seq = threat::threat_analysis(&s, &mut c3i::NoRec);
        let chunked = threat::threat_analysis_chunked_host(&s, n_chunks, n_threads);
        prop_assert_eq!(chunked.flatten(), seq);
    }

    /// Fine-grained Threat Analysis equals the sequential program as a set.
    #[test]
    fn fine_threat_analysis_is_equivalent(
        s in arb_threat_scenario(),
        n_threads in 1usize..6,
    ) {
        let seq = canonical(threat::threat_analysis(&s, &mut c3i::NoRec));
        let fine = canonical(threat::threat_analysis_fine_host(&s, n_threads).intervals);
        prop_assert_eq!(fine, seq);
    }

    /// The sequential Threat Analysis output always verifies.
    #[test]
    fn threat_analysis_output_verifies(s in arb_threat_scenario()) {
        let seq = threat::threat_analysis(&s, &mut c3i::NoRec);
        prop_assert!(verify_intervals(&s, &seq).is_ok());
    }

    /// All Terrain Masking variants agree bitwise for any scenario and
    /// any thread/block configuration.
    #[test]
    fn terrain_masking_variants_agree(
        s in arb_terrain_scenario(),
        n_threads in 1usize..5,
        n_blocks in 1usize..12,
    ) {
        let seq = terrain::terrain_masking(&s, &mut c3i::NoRec);
        let coarse = terrain::terrain_masking_coarse_host(&s, n_threads, n_blocks);
        prop_assert_eq!(&coarse, &seq);
        let fine = terrain::terrain_masking_fine_host(&s, n_threads);
        prop_assert_eq!(&fine, &seq);
    }

    /// The sequential Terrain Masking output always verifies.
    #[test]
    fn terrain_masking_output_verifies(s in arb_terrain_scenario()) {
        let m = terrain::terrain_masking(&s, &mut c3i::NoRec);
        prop_assert!(terrain::verify_masking(&s, &m).is_ok(), "{:?}",
            terrain::verify_masking(&s, &m));
    }

    /// Masking is monotone: a scenario with a superset of threats never has
    /// higher masking anywhere.
    #[test]
    fn terrain_masking_is_monotone_in_threats(s in arb_terrain_scenario()) {
        prop_assume!(s.threats.len() >= 2);
        let mut fewer = s.clone();
        fewer.threats.pop();
        let base = terrain::terrain_masking(&fewer, &mut c3i::NoRec);
        let more = terrain::terrain_masking(&s, &mut c3i::NoRec);
        for (x, y, &b) in base.iter_cells() {
            prop_assert!(more[(x, y)] <= b, "({x},{y}): {} > {}", more[(x, y)], b);
        }
    }

    /// Engagement plans built from any benchmark output validate, and the
    /// exhaustive scheduler never does worse than the greedy one.
    #[test]
    fn engagement_plans_validate_and_exhaustive_dominates(
        s in arb_threat_scenario(),
    ) {
        let intervals = threat::threat_analysis(&s, &mut c3i::NoRec);
        prop_assume!(intervals.len() <= 40); // keep branch and bound fast
        let greedy = threat::schedule_greedy(&intervals);
        prop_assert!(greedy.validate(&intervals).is_ok(), "{:?}", greedy.validate(&intervals));
        let best = threat::schedule_exhaustive(&intervals);
        prop_assert!(best.validate(&intervals).is_ok());
        prop_assert!(best.threats_engaged() >= greedy.threats_engaged());
        // EDF's classic 1/2 approximation bound.
        prop_assert!(2 * greedy.threats_engaged() >= best.threats_engaged());
    }

    /// Route planning: the best route's exposure is monotone in altitude
    /// and never exceeds the route's length.
    #[test]
    fn route_exposure_is_monotone_in_altitude(s in arb_terrain_scenario()) {
        let masking = terrain::terrain_masking(&s, &mut c3i::NoRec);
        let xs = masking.x_size();
        let ys = masking.y_size();
        let start = (0usize, ys / 2);
        let goal = (xs - 1, ys / 2);
        let mut last = 0usize;
        for alt in [100.0, 500.0, 2000.0, 8000.0] {
            let r = terrain::plan_route(&masking, alt, start, goal).expect("route exists");
            prop_assert!(r.exposed_cells >= last, "exposure decreased with altitude");
            prop_assert!(r.exposed_cells <= r.cells.len());
            last = r.exposed_cells;
        }
    }

    /// Interval outputs are invariant under weapon-list rotation modulo
    /// reindexing — the per-pair computation must not depend on global
    /// state (the property the paper's parallelization relies on).
    #[test]
    fn pairs_are_independent(s in arb_threat_scenario()) {
        prop_assume!(s.weapons.len() >= 2);
        let base = canonical(threat::threat_analysis(&s, &mut c3i::NoRec));
        let mut rotated = s.clone();
        rotated.weapons.rotate_left(1);
        let n = rotated.weapons.len() as u32;
        let mut re = threat::threat_analysis(&rotated, &mut c3i::NoRec);
        for iv in &mut re {
            // weapon j in rotated was weapon (j+1) mod n originally.
            iv.weapon = (iv.weapon + 1) % n;
        }
        prop_assert_eq!(canonical(re), base);
    }
}
