//! Benchmark data files — the C3IPBS ships each problem with its input
//! data and a correctness test; this module provides the file formats.
//!
//! Scenarios and outputs serialize as JSON, so benchmark inputs can be
//! frozen, exchanged, and re-verified:
//!
//! ```no_run
//! use c3i::io;
//! use c3i::threat;
//!
//! let scenario = threat::small_scenario(1);
//! io::save_threat_scenario(&scenario, "scenario1.json").unwrap();
//! let loaded = io::load_threat_scenario("scenario1.json").unwrap();
//! let intervals = threat::threat_analysis_host(&loaded);
//! io::save_intervals(&intervals, "scenario1.out.json").unwrap();
//! ```

use crate::terrain::TerrainScenario;
use crate::threat::{Interval, ThreatScenario};
use std::path::Path;

/// I/O or format error.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Format(serde_json::Error),
    /// The file parsed but its contents are inconsistent (e.g. a masking
    /// grid whose cell count does not match its declared dimensions).
    Malformed(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(e) => write!(f, "format error: {e}"),
            IoError::Malformed(msg) => write!(f, "malformed file: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Format(e)
    }
}

fn save<T: serde::Serialize>(value: &T, path: impl AsRef<Path>) -> Result<(), IoError> {
    let json = serde_json::to_string(value)?;
    std::fs::write(path, json)?;
    Ok(())
}

fn load<T: serde::de::DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, IoError> {
    let text = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

/// Write a Threat Analysis scenario to a JSON file.
pub fn save_threat_scenario(s: &ThreatScenario, path: impl AsRef<Path>) -> Result<(), IoError> {
    save(s, path)
}

/// Read a Threat Analysis scenario from a JSON file.
pub fn load_threat_scenario(path: impl AsRef<Path>) -> Result<ThreatScenario, IoError> {
    load(path)
}

/// Write a Threat Analysis output (interval list) to a JSON file.
pub fn save_intervals(intervals: &[Interval], path: impl AsRef<Path>) -> Result<(), IoError> {
    save(&intervals, path)
}

/// Read a Threat Analysis output from a JSON file.
pub fn load_intervals(path: impl AsRef<Path>) -> Result<Vec<Interval>, IoError> {
    load(path)
}

/// Write a Terrain Masking scenario (terrain + threats) to a JSON file.
pub fn save_terrain_scenario(s: &TerrainScenario, path: impl AsRef<Path>) -> Result<(), IoError> {
    save(s, path)
}

/// Read a Terrain Masking scenario from a JSON file.
pub fn load_terrain_scenario(path: impl AsRef<Path>) -> Result<TerrainScenario, IoError> {
    load(path)
}

/// On-disk form of a masking grid: IEEE-754 bit patterns, because the
/// masking field legitimately contains `+∞` (uncovered terrain) which
/// JSON numbers cannot represent.
#[derive(serde::Serialize, serde::Deserialize)]
struct MaskingFile {
    x_size: usize,
    y_size: usize,
    bits: Vec<u64>,
}

/// Write a masking grid to a JSON file (bit-exact, including infinities).
pub fn save_masking(grid: &crate::Grid<f64>, path: impl AsRef<Path>) -> Result<(), IoError> {
    let file = MaskingFile {
        x_size: grid.x_size(),
        y_size: grid.y_size(),
        bits: grid.as_slice().iter().map(|v| v.to_bits()).collect(),
    };
    save(&file, path)
}

/// Read a masking grid from a JSON file.
///
/// A cell count that disagrees with the declared dimensions (a truncated
/// or hand-edited file) is an [`IoError::Malformed`] error, not a grid
/// silently padded with zeros.
pub fn load_masking(path: impl AsRef<Path>) -> Result<crate::Grid<f64>, IoError> {
    let file: MaskingFile = load(path)?;
    let expected = file
        .x_size
        .checked_mul(file.y_size)
        .ok_or_else(|| IoError::Malformed("masking grid dimensions overflow".into()))?;
    if file.bits.len() != expected {
        return Err(IoError::Malformed(format!(
            "masking grid declares {}x{} = {expected} cells but carries {}",
            file.x_size,
            file.y_size,
            file.bits.len()
        )));
    }
    let mut it = file.bits.into_iter();
    Ok(crate::Grid::from_fn(file.x_size, file.y_size, |_, _| {
        f64::from_bits(it.next().expect("length checked above"))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain;
    use crate::threat;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("c3i_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn threat_scenario_round_trips() {
        let s = threat::small_scenario(5);
        let path = tmp("threat.json");
        save_threat_scenario(&s, &path).unwrap();
        let loaded = load_threat_scenario(&path).unwrap();
        assert_eq!(loaded.threats, s.threats);
        assert_eq!(loaded.weapons, s.weapons);
        // Outputs from the loaded scenario are identical.
        assert_eq!(
            threat::threat_analysis_host(&loaded),
            threat::threat_analysis_host(&s)
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn intervals_round_trip_and_verify() {
        let s = threat::small_scenario(6);
        let out = threat::threat_analysis_host(&s);
        let path = tmp("intervals.json");
        save_intervals(&out, &path).unwrap();
        let loaded = load_intervals(&path).unwrap();
        assert_eq!(loaded, out);
        threat::verify_intervals(&s, &loaded).expect("loaded output verifies");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn terrain_scenario_and_masking_round_trip() {
        let s = terrain::small_scenario(7);
        let sp = tmp("terrain.json");
        save_terrain_scenario(&s, &sp).unwrap();
        let loaded = load_terrain_scenario(&sp).unwrap();
        assert_eq!(loaded.terrain, s.terrain);
        assert_eq!(loaded.threats, s.threats);

        let masking = terrain::terrain_masking_host(&loaded);
        let mp = tmp("masking.json");
        save_masking(&masking, &mp).unwrap();
        let masking2 = load_masking(&mp).unwrap();
        assert_eq!(masking2, masking);
        terrain::verify_masking(&s, &masking2).expect("loaded masking verifies");
        std::fs::remove_file(sp).ok();
        std::fs::remove_file(mp).ok();
    }

    #[test]
    fn truncated_masking_file_is_rejected() {
        let path = tmp("truncated_masking.json");
        std::fs::write(&path, r#"{"x_size":4,"y_size":4,"bits":[0,0,0]}"#).unwrap();
        let err = load_masking(&path).unwrap_err();
        assert!(matches!(err, IoError::Malformed(_)), "got {err:?}");
        assert!(err.to_string().contains("16 cells"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = load_threat_scenario("/nonexistent/path/x.json").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn malformed_file_reports_format_error() {
        let path = tmp("bad.json");
        std::fs::write(&path, "{ not json").unwrap();
        let err = load_threat_scenario(&path).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
        std::fs::remove_file(path).ok();
    }
}
