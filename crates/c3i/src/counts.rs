//! Operation recording for the machine models.
//!
//! The benchmark algorithms are written once, generic over [`Rec`]. With
//! [`NoRec`] every recording call is a no-op the optimizer deletes, so the
//! host-timed variants pay nothing. With [`sthreads::OpRecorder`] the same
//! code path produces the abstract operation counts (per logical thread)
//! that `eval-core`'s calibrated platform models turn into the paper's
//! table entries.

use sthreads::{OpCounts, OpRecorder, ThreadCounts};

/// Abstract-operation recorder interface. Counts are in units of "machine
/// operations": one `int`/`fp` is one ALU instruction, one `load`/`store`
/// is one word of memory traffic, one `sync` is one synchronized memory
/// operation (full/empty access, fetch-add, or lock transition), one
/// `spawn` is one logical thread creation.
pub trait Rec {
    /// Whether this recorder actually accumulates counts. Kernels with a
    /// batched fast path (the SoA engagement scan, the `simd` row sweep)
    /// check this at compile time: when `true` they take the historical
    /// stepwise path so recorded totals stay exactly those of the
    /// reference code; when `false` (the [`NoRec`] timing path) they are
    /// free to batch, since outputs are bit-identical either way.
    const COUNTING: bool = true;
    /// Record `n` integer ALU operations.
    fn int(&mut self, n: u64);
    /// Record `n` floating-point operations.
    fn fp(&mut self, n: u64);
    /// Record `n` memory loads.
    fn load(&mut self, n: u64);
    /// Record `n` memory stores.
    fn store(&mut self, n: u64);
    /// Record `n` streaming loads over large, low-reuse arrays.
    fn sload(&mut self, n: u64);
    /// Record `n` streaming stores over large, low-reuse arrays.
    fn sstore(&mut self, n: u64);
    /// Record `n` synchronization operations.
    fn sync(&mut self, n: u64);
    /// Record `n` logical thread spawns.
    fn spawn(&mut self, n: u64);
}

/// The zero-cost recorder used by the host-timed benchmark variants.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoRec;

impl Rec for NoRec {
    const COUNTING: bool = false;
    #[inline(always)]
    fn int(&mut self, _n: u64) {}
    #[inline(always)]
    fn fp(&mut self, _n: u64) {}
    #[inline(always)]
    fn load(&mut self, _n: u64) {}
    #[inline(always)]
    fn store(&mut self, _n: u64) {}
    #[inline(always)]
    fn sload(&mut self, _n: u64) {}
    #[inline(always)]
    fn sstore(&mut self, _n: u64) {}
    #[inline(always)]
    fn sync(&mut self, _n: u64) {}
    #[inline(always)]
    fn spawn(&mut self, _n: u64) {}
}

impl Rec for OpRecorder {
    #[inline]
    fn int(&mut self, n: u64) {
        OpRecorder::int(self, n);
    }
    #[inline]
    fn fp(&mut self, n: u64) {
        OpRecorder::fp(self, n);
    }
    #[inline]
    fn load(&mut self, n: u64) {
        OpRecorder::load(self, n);
    }
    #[inline]
    fn store(&mut self, n: u64) {
        OpRecorder::store(self, n);
    }
    #[inline]
    fn sload(&mut self, n: u64) {
        OpRecorder::sload(self, n);
    }
    #[inline]
    fn sstore(&mut self, n: u64) {
        OpRecorder::sstore(self, n);
    }
    #[inline]
    fn sync(&mut self, n: u64) {
        OpRecorder::sync(self, n);
    }
    #[inline]
    fn spawn(&mut self, n: u64) {
        OpRecorder::spawn(self, n);
    }
}

/// The operation profile of one benchmark run: a serial phase (input setup,
/// result initialization the paper's programs perform on one thread) and a
/// parallel region with per-logical-thread counts.
#[derive(Debug, Default, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Profile {
    /// Work performed before/after the parallel region on a single thread.
    pub serial: OpCounts,
    /// Per-logical-thread work inside the parallel region. For sequential
    /// programs this holds exactly one logical thread.
    pub parallel: ThreadCounts,
}

impl Profile {
    /// A purely sequential profile (the whole program is the serial phase
    /// plus a single-thread "region" holding the main computation).
    pub fn sequential(serial: OpCounts, main: OpCounts) -> Self {
        Self {
            serial,
            parallel: ThreadCounts::new(vec![main]),
        }
    }

    /// Sum of all operations in the run.
    pub fn total(&self) -> OpCounts {
        self.serial.merged(&self.parallel.total())
    }

    /// Number of logical threads in the parallel region.
    pub fn n_logical_threads(&self) -> usize {
        self.parallel.n_threads()
    }
}

/// One flat-parallel inner loop: `width` independent iterations performing
/// `ops` in total. The fine-grained Terrain Masking variant is a sequence
/// of these (one per ring of the masking recurrence, plus the bulk
/// copy/merge loops), separated by barriers.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParallelPhase {
    /// Number of independent iterations available to run concurrently.
    pub width: u64,
    /// Total operations across the whole phase.
    pub ops: OpCounts,
}

/// The operation profile of a fine-grained (inner-loop parallel) program:
/// a serial phase plus an ordered sequence of barrier-separated parallel
/// phases. The machine models charge each phase at the concurrency its
/// `width` supports — this is what makes narrow rings limit the Tera's
/// two-processor speedup (Table 11).
#[derive(Debug, Default, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhasedProfile {
    /// Work performed on a single thread outside the parallel phases.
    pub serial: OpCounts,
    /// Barrier-separated inner-loop parallel phases, in execution order.
    pub phases: Vec<ParallelPhase>,
}

impl PhasedProfile {
    /// Sum of all operations in the run.
    pub fn total(&self) -> OpCounts {
        self.phases
            .iter()
            .fold(self.serial, |acc, p| acc.merged(&p.ops))
    }

    /// Number of barrier-separated phases.
    pub fn n_phases(&self) -> usize {
        self.phases.len()
    }

    /// Operation-weighted mean phase width — the parallelism actually
    /// available to the machine, counting wide phases more.
    pub fn weighted_width(&self) -> f64 {
        let total: u64 = self.phases.iter().map(|p| p.ops.instructions()).sum();
        if total == 0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|p| p.width as f64 * p.ops.instructions() as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(int_ops: u64) -> OpCounts {
        OpCounts {
            int_ops,
            ..OpCounts::default()
        }
    }

    #[test]
    fn norec_is_a_noop() {
        let mut r = NoRec;
        r.int(5);
        r.fp(5);
        r.load(5);
        r.store(5);
        r.sync(5);
        r.spawn(5);
        // NoRec carries no state; the assertion is that this compiles and
        // the generic algorithms can be instantiated with it.
    }

    #[test]
    fn oprecorder_implements_rec() {
        let mut r = OpRecorder::new();
        Rec::int(&mut r, 3);
        Rec::load(&mut r, 2);
        assert_eq!(r.counts().int_ops, 3);
        assert_eq!(r.counts().loads, 2);
    }

    #[test]
    fn profile_total_includes_serial_and_parallel() {
        let p = Profile {
            serial: ops(10),
            parallel: ThreadCounts::new(vec![ops(5), ops(7)]),
        };
        assert_eq!(p.total().int_ops, 22);
        assert_eq!(p.n_logical_threads(), 2);
    }

    #[test]
    fn sequential_profile_has_one_logical_thread() {
        let p = Profile::sequential(ops(1), ops(100));
        assert_eq!(p.n_logical_threads(), 1);
        assert_eq!(p.total().int_ops, 101);
    }

    #[test]
    fn phased_profile_totals_and_width() {
        let p = PhasedProfile {
            serial: ops(5),
            phases: vec![
                ParallelPhase {
                    width: 10,
                    ops: ops(100),
                },
                ParallelPhase {
                    width: 40,
                    ops: ops(300),
                },
            ],
        };
        assert_eq!(p.total().int_ops, 405);
        assert_eq!(p.n_phases(), 2);
        // weighted width = (10*100 + 40*300) / 400 = 32.5
        assert!((p.weighted_width() - 32.5).abs() < 1e-12);
    }

    #[test]
    fn empty_phased_profile_width_is_zero() {
        let p = PhasedProfile::default();
        assert_eq!(p.weighted_width(), 0.0);
        assert_eq!(p.total(), OpCounts::default());
    }
}
