//! Program 1: the sequential Threat Analysis program.
//!
//! Three nested loops — threats × weapons × time-stepped scan — appending
//! to a single shared `intervals` array through a single shared
//! `num_intervals` counter. The store index of each append depends on every
//! prior iteration, which is exactly why the automatic parallelizing
//! compilers of both the Exemplar and the Tera could not parallelize it.

use super::model::{intervals_for_pair, Interval};
use super::scenario::ThreatScenario;
use crate::counts::{NoRec, Profile, Rec};
use sthreads::OpRecorder;

/// Sequential Threat Analysis (Program 1). Returns the interval list in
/// the canonical (threat-major, weapon-minor, time-increasing) order the
/// sequential loop structure produces.
pub fn threat_analysis<R: Rec>(scenario: &ThreatScenario, r: &mut R) -> Vec<Interval> {
    let mut intervals = Vec::new();
    r.int(1); // num_intervals = 0
    for (ti, threat) in scenario.threats.iter().enumerate() {
        for (wi, weapon) in scenario.weapons.iter().enumerate() {
            r.int(2); // loop bookkeeping
            r.load(2); // threat/weapon descriptors
            intervals_for_pair(ti as u32, wi as u32, threat, weapon, r, |iv| {
                intervals.push(iv);
            });
        }
    }
    intervals
}

/// Convenience wrapper running Program 1 without recording.
pub fn threat_analysis_host(scenario: &ThreatScenario) -> Vec<Interval> {
    threat_analysis(scenario, &mut NoRec)
}

/// Run Program 1 under the counting backend, returning the intervals and
/// the operation [`Profile`] (one logical thread; no parallel region).
pub fn threat_analysis_profile(scenario: &ThreatScenario) -> (Vec<Interval>, Profile) {
    let mut r = OpRecorder::new();
    let intervals = threat_analysis(scenario, &mut r);
    let profile = Profile::sequential(Default::default(), r.counts());
    (intervals, profile)
}

/// Per-threat operation counts (threat `i`'s work against every weapon).
/// Chunk profiles for *any* chunking are cheap aggregations of this
/// vector, which is how the experiment harness sweeps Tables 3–6 without
/// re-running the benchmark per configuration.
pub fn per_threat_counts(scenario: &ThreatScenario) -> Vec<sthreads::OpCounts> {
    scenario
        .threats
        .iter()
        .enumerate()
        .map(|(ti, threat)| {
            let mut r = OpRecorder::new();
            for (wi, weapon) in scenario.weapons.iter().enumerate() {
                crate::counts::Rec::int(&mut r, 2);
                crate::counts::Rec::load(&mut r, 2);
                crate::threat::model::intervals_for_pair(
                    ti as u32,
                    wi as u32,
                    threat,
                    weapon,
                    &mut r,
                    |_| {},
                );
            }
            r.counts()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threat::scenario::small_scenario;

    #[test]
    fn produces_intervals_on_the_small_scenario() {
        let s = small_scenario(1);
        let out = threat_analysis_host(&s);
        assert!(
            !out.is_empty(),
            "small scenario must yield some interceptions"
        );
    }

    #[test]
    fn output_is_in_canonical_loop_order() {
        let s = small_scenario(2);
        let out = threat_analysis_host(&s);
        for w in out.windows(2) {
            let a = (w[0].threat, w[0].weapon, w[0].t_start);
            let b = (w[1].threat, w[1].weapon, w[1].t_start);
            assert!(a < b, "sequential output must be sorted: {a:?} !< {b:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = small_scenario(3);
        assert_eq!(threat_analysis_host(&s), threat_analysis_host(&s));
    }

    #[test]
    fn profile_counts_scale_with_scenario_size() {
        let small = small_scenario(1);
        let (_, p_small) = threat_analysis_profile(&small);
        let big = crate::threat::scenario::generate(crate::threat::ThreatScenarioParams {
            n_threats: 80,
            n_weapons: 6,
            seed: 1,
            theater_m: 300_000.0,
            launch_window_s: 600.0,
        });
        let (_, p_big) = threat_analysis_profile(&big);
        assert!(p_big.total().instructions() > p_small.total().instructions());
        assert_eq!(p_small.n_logical_threads(), 1);
    }

    #[test]
    fn profile_is_compute_dominated() {
        // §5: "The program is compute-bound, rather than memory-bound."
        let (_, p) = threat_analysis_profile(&small_scenario(1));
        let t = p.total();
        assert!(
            t.compute_ops() > t.mem_ops(),
            "Threat Analysis must be compute-bound: {t:?}"
        );
    }

    #[test]
    fn empty_scenario_yields_no_intervals() {
        let s = ThreatScenario {
            threats: vec![],
            weapons: vec![],
        };
        assert!(threat_analysis_host(&s).is_empty());
    }
}
