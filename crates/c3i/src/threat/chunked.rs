//! Program 2: the multithreaded (chunked) Threat Analysis program.
//!
//! The outer loop over threats is replaced by a multithreaded loop over
//! `num_chunks` chunks; each chunk owns its own `num_intervals[chunk]`
//! counter and its own *generously oversized* section of the `intervals`
//! array, so chunks are completely independent. The paper runs one chunk
//! per processor on the conventional SMPs and 8–256 chunks on the Tera MTA
//! (Table 6), and notes the cost: the more chunks, the more oversized
//! storage.

use super::model::{intervals_for_pair, Interval};
use super::scenario::ThreatScenario;
use crate::counts::{NoRec, Profile, Rec};
use parking_lot::Mutex;
use sthreads::{chunk_range, multithreaded_for, OpRecorder, ParFor, Schedule, ThreadCounts};

/// How generously each chunk's output section is oversized: capacity =
/// `OVERSIZE_INTERVALS_PER_PAIR × pairs in the chunk`. The verifier checks
/// this bound is never exceeded on the benchmark scenarios.
pub const OVERSIZE_INTERVALS_PER_PAIR: usize = 4;

/// Output of the chunked program: one independent section per chunk.
#[derive(Debug, Clone)]
pub struct ChunkedResult {
    /// `intervals[chunk]` — each chunk's output section, in that chunk's
    /// deterministic loop order.
    pub per_chunk: Vec<Vec<Interval>>,
    /// Total words of output storage *reserved* (the oversized allocation
    /// the paper identifies as the drawback of this approach; one interval
    /// is 4 words).
    pub reserved_words: usize,
}

impl ChunkedResult {
    /// Flatten chunk sections in chunk order (the order a final sequential
    /// concatenation would produce).
    pub fn flatten(&self) -> Vec<Interval> {
        self.per_chunk.iter().flatten().copied().collect()
    }

    /// Total number of intervals found.
    pub fn n_intervals(&self) -> usize {
        self.per_chunk.iter().map(Vec::len).sum()
    }

    /// Words of output storage actually used.
    pub fn used_words(&self) -> usize {
        self.n_intervals() * 4
    }
}

/// Compute one chunk's section: threats `[first, end)` against every
/// weapon. This is the body of Program 2's multithreaded loop.
fn run_chunk<R: Rec>(
    scenario: &ThreatScenario,
    first: usize,
    end: usize,
    capacity: usize,
    r: &mut R,
) -> Vec<Interval> {
    let mut section = Vec::with_capacity(capacity);
    r.int(4); // chunk bounds arithmetic: (chunk*n)/num_chunks etc.
    r.store(1); // num_intervals[chunk] = 0
    for ti in first..end {
        let threat = &scenario.threats[ti];
        for (wi, weapon) in scenario.weapons.iter().enumerate() {
            r.int(2);
            r.load(2);
            intervals_for_pair(ti as u32, wi as u32, threat, weapon, r, |iv| {
                section.push(iv);
            });
        }
    }
    section
}

/// Multithreaded Threat Analysis (Program 2) on real host threads:
/// `n_chunks` logical threads executed by `n_threads` workers.
pub fn threat_analysis_chunked_host(
    scenario: &ThreatScenario,
    n_chunks: usize,
    n_threads: usize,
) -> ChunkedResult {
    let n_threats = scenario.threats.len();
    let cap_per_pair = OVERSIZE_INTERVALS_PER_PAIR * scenario.weapons.len();
    let slots: Vec<Mutex<Vec<Interval>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    let mut reserved_words = 0usize;
    for c in 0..n_chunks {
        reserved_words += chunk_range(c, n_threats, n_chunks).len() * cap_per_pair * 4;
    }

    ParFor::new(0..n_threats)
        .threads(n_threads)
        .chunk_count(n_chunks)
        .run_chunked(|cb| {
            let capacity = (cb.end - cb.first) * cap_per_pair;
            let section = run_chunk(scenario, cb.first, cb.end, capacity, &mut NoRec);
            *slots[cb.chunk].lock() = section;
        });

    let per_chunk = slots.into_iter().map(Mutex::into_inner).collect();
    ChunkedResult {
        per_chunk,
        reserved_words,
    }
}

/// [`threat_analysis_chunked_host`] with an explicit schedule assigning
/// chunks to workers. Chunks are completely independent (own counter, own
/// oversized section), so the flattened output is identical under every
/// schedule — the property the differential fuzzer asserts. The paper's
/// Program 2 corresponds to [`Schedule::Static`]; the production host
/// variant keeps contiguous chunk blocks via [`ParFor::run_chunked`].
pub fn threat_analysis_chunked_host_sched(
    scenario: &ThreatScenario,
    n_chunks: usize,
    n_threads: usize,
    schedule: Schedule,
) -> ChunkedResult {
    let n_threats = scenario.threats.len();
    let cap_per_pair = OVERSIZE_INTERVALS_PER_PAIR * scenario.weapons.len();
    let slots: Vec<Mutex<Vec<Interval>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    let mut reserved_words = 0usize;
    for c in 0..n_chunks {
        reserved_words += chunk_range(c, n_threats, n_chunks).len() * cap_per_pair * 4;
    }

    multithreaded_for(0..n_chunks, n_threads, schedule, |c| {
        let range = chunk_range(c, n_threats, n_chunks);
        let section = run_chunk(
            scenario,
            range.start,
            range.end,
            range.len() * cap_per_pair,
            &mut NoRec,
        );
        *slots[c].lock() = section;
    });

    let per_chunk = slots.into_iter().map(Mutex::into_inner).collect();
    ChunkedResult {
        per_chunk,
        reserved_words,
    }
}

/// Program 2 under the counting backend: logical chunks execute
/// sequentially, each recording its own operation counts. Returns the
/// result and the [`Profile`] whose parallel region has `n_chunks` logical
/// threads.
pub fn threat_analysis_chunked(
    scenario: &ThreatScenario,
    n_chunks: usize,
) -> (ChunkedResult, Profile) {
    let n_threats = scenario.threats.len();
    let cap_per_pair = OVERSIZE_INTERVALS_PER_PAIR * scenario.weapons.len();
    let mut per_chunk = Vec::with_capacity(n_chunks);
    let mut reserved_words = 0usize;

    let mut serial = OpRecorder::new();
    // Serial prologue: computing the chunk decomposition and spawning.
    serial.int(2 * n_chunks as u64);
    serial.spawn(n_chunks as u64);

    let thread_counts = ThreadCounts::record(n_chunks, |c, r| {
        let range = chunk_range(c, n_threats, n_chunks);
        reserved_words += range.len() * cap_per_pair * 4;
        let section = run_chunk(
            scenario,
            range.start,
            range.end,
            range.len() * cap_per_pair,
            r,
        );
        per_chunk.push(section);
    });

    (
        ChunkedResult {
            per_chunk,
            reserved_words,
        },
        Profile {
            serial: serial.counts(),
            parallel: thread_counts,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threat::scenario::small_scenario;
    use crate::threat::sequential::threat_analysis_host;

    #[test]
    fn chunked_equals_sequential_when_flattened() {
        let s = small_scenario(1);
        let seq = threat_analysis_host(&s);
        for n_chunks in [1, 2, 3, 8, 16] {
            let res = threat_analysis_chunked_host(&s, n_chunks, 4);
            assert_eq!(res.flatten(), seq, "n_chunks={n_chunks}");
        }
    }

    #[test]
    fn every_schedule_flattens_to_the_sequential_output() {
        let s = small_scenario(1);
        let seq = threat_analysis_host(&s);
        for schedule in [Schedule::Static, Schedule::Dynamic, Schedule::Stealing] {
            for threads in [1, 2, 8] {
                let res = threat_analysis_chunked_host_sched(&s, 8, threads, schedule);
                assert_eq!(res.flatten(), seq, "{schedule:?} threads={threads}");
            }
        }
    }

    #[test]
    fn counting_backend_produces_identical_output() {
        let s = small_scenario(2);
        let host = threat_analysis_chunked_host(&s, 8, 4);
        let (counted, profile) = threat_analysis_chunked(&s, 8);
        assert_eq!(counted.flatten(), host.flatten());
        assert_eq!(profile.n_logical_threads(), 8);
        assert_eq!(profile.serial.spawns, 8);
    }

    #[test]
    fn more_chunks_reserve_more_storage() {
        // The paper's drawback: oversized storage grows with chunk count
        // only through rounding here (capacity is per-pair), so reserved
        // words are monotone non-decreasing and usage is constant.
        let s = small_scenario(3);
        let r8 = threat_analysis_chunked_host(&s, 8, 4);
        let r32 = threat_analysis_chunked_host(&s, 32, 4);
        assert_eq!(r8.n_intervals(), r32.n_intervals());
        assert!(
            r8.reserved_words >= r8.used_words(),
            "allocation must cover usage"
        );
        assert!(r32.reserved_words >= r32.used_words());
    }

    #[test]
    fn oversizing_bound_holds_per_chunk() {
        let s = small_scenario(4);
        let res = threat_analysis_chunked_host(&s, 10, 4);
        let cap_per_pair = OVERSIZE_INTERVALS_PER_PAIR * s.weapons.len();
        for (c, section) in res.per_chunk.iter().enumerate() {
            let n_threats = chunk_range(c, s.threats.len(), 10).len();
            assert!(
                section.len() <= n_threats * cap_per_pair,
                "chunk {c} overflowed its oversized section"
            );
        }
    }

    #[test]
    fn chunk_counts_are_roughly_balanced() {
        // Threats are i.i.d., so per-chunk instruction counts should be
        // within a small factor of each other for modest chunk counts.
        let s = small_scenario(5);
        let (_, profile) = threat_analysis_chunked(&s, 4);
        let per: Vec<u64> = profile
            .parallel
            .per_thread()
            .iter()
            .map(|c| c.instructions())
            .collect();
        let max = *per.iter().max().unwrap() as f64;
        let min = *per.iter().min().unwrap() as f64;
        assert!(max / min < 2.0, "unexpectedly imbalanced: {per:?}");
    }

    #[test]
    fn single_chunk_single_thread_matches_sequential_counts_closely() {
        // Program 2 with one chunk does the same pair scans as Program 1;
        // only the per-chunk bookkeeping differs.
        let s = small_scenario(6);
        let (_, p1) = crate::threat::sequential::threat_analysis_profile(&s);
        let (_, p2) = threat_analysis_chunked(&s, 1);
        let a = p1.total().instructions() as f64;
        let b = p2.total().instructions() as f64;
        assert!((a - b).abs() / a < 0.01, "seq={a} chunked(1)={b}");
    }
}
