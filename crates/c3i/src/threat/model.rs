//! Physical model: ballistic threats, interceptor weapons, and the
//! time-stepped interception predicate.
//!
//! The C3IPBS distribution (and its classified input data) is not publicly
//! available, so this module defines a physically plausible model with the
//! same computational structure as the benchmark: each (threat, weapon)
//! pair is examined by a time-stepped simulation of threat and interceptor
//! positions, and the interception predicate is a conjunction of envelope
//! constraints that switches on and off as the threat flies, producing
//! zero, one, or more maximal interception intervals per pair.

use crate::counts::Rec;

/// Simulation time step in seconds. The benchmark scans interception
/// feasibility at integer multiples of this step.
pub const TIME_STEP: f64 = 1.0;

/// An incoming ballistic threat on a parabolic trajectory from `launch` to
/// `impact` (ground coordinates in meters).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Threat {
    /// Ground launch point (m).
    pub launch: (f64, f64),
    /// Ground impact point (m).
    pub impact: (f64, f64),
    /// Absolute launch time (s).
    pub launch_time: f64,
    /// Time of flight from launch to impact (s).
    pub flight_time: f64,
    /// Apex altitude of the trajectory (m).
    pub apex_height: f64,
    /// Delay after launch until radar detection (s).
    pub detect_delay: f64,
}

impl Threat {
    /// Absolute time at which the threat strikes the ground.
    pub fn impact_time(&self) -> f64 {
        self.launch_time + self.flight_time
    }

    /// Absolute time at which the threat is first detected. Interception
    /// cannot be planned before this.
    pub fn detect_time(&self) -> f64 {
        self.launch_time + self.detect_delay
    }

    /// First integer time step at which interception may be considered.
    pub fn first_step(&self) -> u32 {
        (self.detect_time() / TIME_STEP).ceil().max(0.0) as u32
    }

    /// Last integer time step before impact.
    pub fn last_step(&self) -> u32 {
        (self.impact_time() / TIME_STEP).floor().max(0.0) as u32
    }

    /// Position of the threat at absolute time `t`, or `None` if the threat
    /// is not in flight. Horizontal motion is uniform from launch to
    /// impact; vertical motion is the parabola `z(τ) = 4·H·τ·(1−τ)` with
    /// `τ` the flight fraction — the standard drag-free ballistic shape.
    pub fn position<R: Rec>(&self, t: f64, r: &mut R) -> Option<(f64, f64, f64)> {
        // The trajectory record is register-resident across the scan loop;
        // only the time-window test touches it here.
        r.load(2);
        r.fp(2);
        if t < self.launch_time || t > self.impact_time() {
            return None;
        }
        let tau = (t - self.launch_time) / self.flight_time;
        let x = self.launch.0 + (self.impact.0 - self.launch.0) * tau;
        let y = self.launch.1 + (self.impact.1 - self.launch.1) * tau;
        let z = 4.0 * self.apex_height * tau * (1.0 - tau);
        r.load(2); // endpoints + apex (mostly register-resident)
        r.fp(10); // interpolation + parabola
        Some((x, y, z))
    }
}

/// A ground-based interceptor battery.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Weapon {
    /// Battery ground position (m).
    pub pos: (f64, f64),
    /// Interceptor fly-out speed (m/s).
    pub interceptor_speed: f64,
    /// Maximum slant range of an engagement (m).
    pub max_range: f64,
    /// Lowest altitude at which an intercept is allowed (m).
    pub min_alt: f64,
    /// Highest altitude the interceptor can reach (m).
    pub max_alt: f64,
    /// Command/launch reaction delay after threat detection (s).
    pub reaction_time: f64,
}

/// One maximal interception interval: `weapon` can intercept `threat` at
/// every integer time step in `t_start..=t_end`, and at neither
/// `t_start − 1` nor `t_end + 1`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Interval {
    /// Index of the threat in the scenario.
    pub threat: u32,
    /// Index of the weapon in the scenario.
    pub weapon: u32,
    /// First feasible time step (inclusive).
    pub t_start: u32,
    /// Last feasible time step (inclusive).
    pub t_end: u32,
}

/// The interception predicate: can `weapon` intercept `threat` at time step
/// `step`? True when, at `t = step·TIME_STEP`:
///
/// 1. the threat is in flight and already detected (plus the weapon's
///    reaction delay),
/// 2. the threat's altitude lies inside the weapon's engagement envelope
///    `[min_alt, max_alt]`,
/// 3. the slant range from the battery to the threat does not exceed
///    `max_range`, and
/// 4. an interceptor launched at `detect_time + reaction_time` flying at
///    `interceptor_speed` can reach the threat's position by `t`.
///
/// Each evaluation performs a fixed small amount of floating-point work —
/// the time-stepped inner simulation the paper calls "not amenable to
/// parallelization".
pub fn can_intercept<R: Rec>(weapon: &Weapon, threat: &Threat, step: u32, r: &mut R) -> bool {
    let t = step as f64 * TIME_STEP;
    r.int(2); // step -> time, loop bookkeeping

    let earliest = threat.detect_time() + weapon.reaction_time;
    r.load(2);
    r.fp(2);
    if t < earliest || t > threat.impact_time() {
        return false;
    }

    let Some((x, y, z)) = threat.position(t, r) else {
        return false;
    };

    r.load(2); // envelope bounds
    r.fp(2);
    if z < weapon.min_alt || z > weapon.max_alt {
        return false;
    }

    let dx = x - weapon.pos.0;
    let dy = y - weapon.pos.1;
    let slant2 = dx * dx + dy * dy + z * z;
    r.load(2);
    r.fp(7);
    if slant2 > weapon.max_range * weapon.max_range {
        r.fp(1);
        return false;
    }

    let flyout = slant2.sqrt() / weapon.interceptor_speed;
    r.load(1);
    r.fp(3);
    flyout <= t - earliest
}

/// Scan the time-stepped simulation for one (threat, weapon) pair and emit
/// every maximal interception interval, in increasing time order.
///
/// Counting recorders (`R::COUNTING`) take the historical stepwise scan so
/// recorded operation totals stay pinned; the no-op recorder takes the
/// structure-of-arrays batch scan, which emits bit-identical intervals.
pub fn intervals_for_pair<R: Rec>(
    threat_idx: u32,
    weapon_idx: u32,
    threat: &Threat,
    weapon: &Weapon,
    r: &mut R,
    emit: impl FnMut(Interval),
) {
    if R::COUNTING {
        intervals_for_pair_stepwise(threat_idx, weapon_idx, threat, weapon, r, emit);
    } else {
        intervals_for_pair_batch(threat_idx, weapon_idx, threat, weapon, emit);
    }
}

/// The pinned stepwise scan — the `while` loop body of Programs 1 and 2:
/// find the first feasible step `t1 ≥ t0`, extend it to the last
/// consecutive feasible step `t2`, emit `[t1, t2]`, continue from `t2 + 1`.
/// This is the baseline side of the `engagement_scan` kernel bench and the
/// path every counting recorder observes.
pub fn intervals_for_pair_stepwise<R: Rec>(
    threat_idx: u32,
    weapon_idx: u32,
    threat: &Threat,
    weapon: &Weapon,
    r: &mut R,
    mut emit: impl FnMut(Interval),
) {
    let first = threat.first_step();
    let last = threat.last_step();
    r.load(2);
    r.int(2);
    if first > last {
        return;
    }

    let mut t0 = first;
    while t0 <= last {
        // t1 = first time after t0 that weapon can intercept threat.
        let mut t1 = t0;
        while t1 <= last && !can_intercept(weapon, threat, t1, r) {
            t1 += 1;
            r.int(2);
        }
        if t1 > last {
            return;
        }
        // t2 = last consecutive time after t1 that weapon can intercept.
        let mut t2 = t1;
        while t2 < last && can_intercept(weapon, threat, t2 + 1, r) {
            t2 += 1;
            r.int(2);
        }
        emit(Interval {
            threat: threat_idx,
            weapon: weapon_idx,
            t_start: t1,
            t_end: t2,
        });
        r.sstore(4); // interval tuple written to the output array
        r.int(2); // counter increment + t0 update
        t0 = t2 + 1;
    }
}

/// Number of time steps evaluated per structure-of-arrays block in the
/// batch scan. Three parallel `f64`/`bool` arrays of this length live on
/// the stack (~5 KiB), small enough to stay cache- and allocation-free.
const SCAN_BLOCK: usize = 256;

/// Batch form of the pair scan: evaluate the interception predicate over a
/// structure-of-arrays timeline block — kinematics in one straight-line
/// pass over parallel arrays, the envelope conjunction in a second — then
/// extract maximal feasible runs, carrying an open interval across block
/// boundaries. Every comparison keeps `can_intercept`'s polarity and
/// operand expressions, so the emitted intervals are identical (a NaN
/// flight fraction fails the fly-out comparison exactly as it does in the
/// stepwise scan).
/// Squared minimum ground distance from `weapon` to the threat's ground
/// track (point-to-segment). A lower bound on every step's slant range,
/// used to skip pairs that can never come within weapon range.
fn min_ground_dist2(threat: &Threat, weapon: &Weapon) -> f64 {
    let (ax, ay) = threat.launch;
    let (bx, by) = threat.impact;
    let (px, py) = weapon.pos;
    let abx = bx - ax;
    let aby = by - ay;
    let len2 = abx * abx + aby * aby;
    let t = if len2 > 0.0 {
        (((px - ax) * abx + (py - ay) * aby) / len2).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let dx = ax + t * abx - px;
    let dy = ay + t * aby - py;
    dx * dx + dy * dy
}

fn intervals_for_pair_batch(
    threat_idx: u32,
    weapon_idx: u32,
    threat: &Threat,
    weapon: &Weapon,
    mut emit: impl FnMut(Interval),
) {
    let first = threat.first_step();
    let last = threat.last_step();
    if first > last {
        return;
    }

    // Pair-invariant quantities, hoisted out of the timeline: the same
    // expressions `can_intercept` rebuilds per step.
    let launch = threat.launch_time;
    let impact = threat.impact_time();
    let earliest = threat.detect_time() + weapon.reaction_time;
    let mr2 = weapon.max_range * weapon.max_range;

    // Pair-level range prune: every step's slant² is at least the squared
    // ground distance to the track, which is at least `min_ground_dist2`
    // up to rounding. The 1% margin dwarfs any accumulated float error
    // (relative ~1e-15), so a pair is only skipped when every step's
    // `in_range` conjunct is certainly false; NaN geometry fails the `>`
    // and falls through to the full scan.
    if min_ground_dist2(threat, weapon) > mr2 * 1.01 {
        return;
    }

    let mut zs = [0.0_f64; SCAN_BLOCK];
    let mut slant2 = [0.0_f64; SCAN_BLOCK];
    let mut feasible = [false; SCAN_BLOCK];

    let mut open: Option<u32> = None;
    // Steps with `t < earliest` fail the timing conjunct; they form a
    // prefix of the scan window (t is increasing), so skipping them moves
    // no interval boundary.
    let mut base = first;
    while base <= last && (base as f64) * TIME_STEP < earliest {
        base += 1;
    }
    if base > last {
        return;
    }
    loop {
        let n = ((last - base) as usize + 1).min(SCAN_BLOCK);

        // Pass 1: trajectory kinematics and slant geometry for the block.
        for i in 0..n {
            let t = (base + i as u32) as f64 * TIME_STEP;
            let tau = (t - launch) / threat.flight_time;
            let x = threat.launch.0 + (threat.impact.0 - threat.launch.0) * tau;
            let y = threat.launch.1 + (threat.impact.1 - threat.launch.1) * tau;
            let z = 4.0 * threat.apex_height * tau * (1.0 - tau);
            let dx = x - weapon.pos.0;
            let dy = y - weapon.pos.1;
            zs[i] = z;
            slant2[i] = dx * dx + dy * dy + z * z;
        }

        // Pass 2: the cheap envelope conjuncts over the parallel arrays.
        for i in 0..n {
            let t = (base + i as u32) as f64 * TIME_STEP;
            let timed = !(t < earliest || t > impact);
            let in_flight = !(t < launch || t > impact);
            let envelope = !(zs[i] < weapon.min_alt || zs[i] > weapon.max_alt);
            // Written as `!(x > mr2)`, not `x <= mr2`: a NaN slant (the
            // degenerate flight_time case) must pass this conjunct with
            // exactly the stepwise predicate's polarity.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let in_range = !(slant2[i] > mr2);
            feasible[i] = timed && in_flight && envelope && in_range;
        }

        // Pass 3: the fly-out test, only where the cheap conjuncts hold —
        // the same steps the stepwise predicate pays the sqrt on. Where
        // `feasible` is already false the conjunction's value is fixed, so
        // skipping the comparison cannot change the result.
        for i in 0..n {
            if feasible[i] {
                let t = (base + i as u32) as f64 * TIME_STEP;
                feasible[i] = slant2[i].sqrt() / weapon.interceptor_speed <= t - earliest;
            }
        }

        // Maximal-run extraction, carrying any open run into the next block.
        for (i, &f) in feasible.iter().take(n).enumerate() {
            let s = base + i as u32;
            if f {
                if open.is_none() {
                    open = Some(s);
                }
            } else if let Some(t1) = open.take() {
                emit(Interval {
                    threat: threat_idx,
                    weapon: weapon_idx,
                    t_start: t1,
                    t_end: s - 1,
                });
            }
        }

        match base.checked_add(n as u32) {
            Some(next) if next <= last => base = next,
            _ => break,
        }
    }
    if let Some(t1) = open {
        emit(Interval {
            threat: threat_idx,
            weapon: weapon_idx,
            t_start: t1,
            t_end: last,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::NoRec;

    fn test_threat() -> Threat {
        Threat {
            launch: (0.0, 0.0),
            impact: (100_000.0, 0.0),
            launch_time: 10.0,
            flight_time: 200.0,
            apex_height: 80_000.0,
            detect_delay: 5.0,
        }
    }

    fn test_weapon() -> Weapon {
        Weapon {
            pos: (90_000.0, 0.0),
            interceptor_speed: 3000.0,
            max_range: 60_000.0,
            min_alt: 1_000.0,
            max_alt: 30_000.0,
            reaction_time: 3.0,
        }
    }

    #[test]
    fn trajectory_endpoints_are_on_the_ground() {
        let th = test_threat();
        let (x0, y0, z0) = th.position(th.launch_time, &mut NoRec).unwrap();
        assert_eq!((x0, y0), th.launch);
        assert!(z0.abs() < 1e-9);
        let (x1, y1, z1) = th.position(th.impact_time(), &mut NoRec).unwrap();
        assert_eq!((x1, y1), th.impact);
        assert!(z1.abs() < 1e-9);
    }

    #[test]
    fn trajectory_apex_is_at_midcourse() {
        let th = test_threat();
        let tm = th.launch_time + th.flight_time / 2.0;
        let (_, _, z) = th.position(tm, &mut NoRec).unwrap();
        assert!((z - th.apex_height).abs() < 1e-6);
        // Slightly before/after midcourse must be lower.
        let (_, _, zb) = th.position(tm - 5.0, &mut NoRec).unwrap();
        let (_, _, za) = th.position(tm + 5.0, &mut NoRec).unwrap();
        assert!(zb < z && za < z);
    }

    #[test]
    fn position_is_none_outside_flight_window() {
        let th = test_threat();
        assert!(th.position(th.launch_time - 1.0, &mut NoRec).is_none());
        assert!(th.position(th.impact_time() + 1.0, &mut NoRec).is_none());
    }

    #[test]
    fn step_window_brackets_flight() {
        let th = test_threat();
        assert_eq!(th.first_step(), 15); // launch 10 + detect 5
        assert_eq!(th.last_step(), 210); // impact at 210.0
    }

    #[test]
    fn intercept_requires_detection_plus_reaction() {
        let th = test_threat();
        let w = test_weapon();
        // Before detection + reaction no intercept regardless of geometry.
        assert!(!can_intercept(&w, &th, 15, &mut NoRec)); // t=15 < 10+5+3
                                                          // Impossible after impact.
        assert!(!can_intercept(&w, &th, 211, &mut NoRec));
    }

    #[test]
    fn intercept_respects_altitude_envelope() {
        let th = test_threat();
        let w = test_weapon();
        // At midcourse the threat is at 80 km, far above max_alt 30 km.
        assert!(!can_intercept(&w, &th, 110, &mut NoRec));
    }

    #[test]
    fn descending_threat_is_interceptable_near_the_battery() {
        let th = test_threat();
        let w = test_weapon();
        // Late in the descent the threat is near (90 km, 0) and low.
        let feasible = (15..=210)
            .filter(|&s| can_intercept(&w, &th, s, &mut NoRec))
            .count();
        assert!(
            feasible > 0,
            "the canonical test geometry must admit an intercept"
        );
    }

    #[test]
    fn pair_scan_emits_maximal_disjoint_intervals() {
        let th = test_threat();
        let w = test_weapon();
        let mut got = Vec::new();
        intervals_for_pair(3, 4, &th, &w, &mut NoRec, |iv| got.push(iv));
        assert!(!got.is_empty());
        for iv in &got {
            assert_eq!(iv.threat, 3);
            assert_eq!(iv.weapon, 4);
            assert!(iv.t_start <= iv.t_end);
            // Every step inside is feasible.
            for s in iv.t_start..=iv.t_end {
                assert!(
                    can_intercept(&w, &th, s, &mut NoRec),
                    "gap inside interval at {s}"
                );
            }
            // Maximality on both sides (within the scan window).
            if iv.t_start > th.first_step() {
                assert!(!can_intercept(&w, &th, iv.t_start - 1, &mut NoRec));
            }
            if iv.t_end < th.last_step() {
                assert!(!can_intercept(&w, &th, iv.t_end + 1, &mut NoRec));
            }
        }
        // Intervals are ordered and disjoint.
        for pair in got.windows(2) {
            assert!(pair[0].t_end + 1 < pair[1].t_start);
        }
    }

    #[test]
    fn out_of_range_weapon_yields_no_intervals() {
        let th = test_threat();
        let mut w = test_weapon();
        w.pos = (1.0e7, 1.0e7); // far away
        let mut got = Vec::new();
        intervals_for_pair(0, 0, &th, &w, &mut NoRec, |iv| got.push(iv));
        assert!(got.is_empty());
    }

    #[test]
    fn altitude_window_on_ascent_and_descent_gives_two_intervals() {
        // A weapon directly under the trajectory midpoint with a narrow
        // altitude band sees the threat pass through the band twice.
        let th = Threat {
            launch: (0.0, 0.0),
            impact: (100_000.0, 0.0),
            launch_time: 0.0,
            flight_time: 400.0,
            apex_height: 50_000.0,
            detect_delay: 0.0,
        };
        let w = Weapon {
            pos: (50_000.0, 0.0),
            interceptor_speed: 10_000.0,
            max_range: 100_000.0,
            min_alt: 20_000.0,
            max_alt: 40_000.0,
            reaction_time: 0.0,
        };
        let mut got = Vec::new();
        intervals_for_pair(0, 0, &th, &w, &mut NoRec, |iv| got.push(iv));
        assert_eq!(got.len(), 2, "ascent and descent crossings: {got:?}");
    }

    fn stepwise_intervals(th: &Threat, w: &Weapon) -> Vec<Interval> {
        let mut got = Vec::new();
        intervals_for_pair_stepwise(7, 9, th, w, &mut NoRec, |iv| got.push(iv));
        got
    }

    fn batch_intervals(th: &Threat, w: &Weapon) -> Vec<Interval> {
        let mut got = Vec::new();
        // NoRec has COUNTING = false, so the public entry dispatches to the
        // structure-of-arrays batch scan.
        intervals_for_pair(7, 9, th, w, &mut NoRec, |iv| got.push(iv));
        got
    }

    #[test]
    fn batch_scan_matches_stepwise_on_edge_pairs() {
        let base_t = test_threat();
        let base_w = test_weapon();
        let mut cases: Vec<(Threat, Weapon)> = vec![(base_t, base_w)];
        // Narrow altitude band: two intervals (ascent + descent).
        cases.push((
            Threat {
                launch: (0.0, 0.0),
                impact: (100_000.0, 0.0),
                launch_time: 0.0,
                flight_time: 400.0,
                apex_height: 50_000.0,
                detect_delay: 0.0,
            },
            Weapon {
                pos: (50_000.0, 0.0),
                interceptor_speed: 10_000.0,
                max_range: 100_000.0,
                min_alt: 20_000.0,
                max_alt: 40_000.0,
                reaction_time: 0.0,
            },
        ));
        // Out of range: no intervals.
        let mut far = base_w;
        far.pos = (1.0e7, 1.0e7);
        cases.push((base_t, far));
        // Detection after impact: first_step > last_step, empty window.
        let mut late = base_t;
        late.detect_delay = late.flight_time + 50.0;
        cases.push((late, base_w));
        // Degenerate zero-length flight: tau is 0/0 = NaN; both scans must
        // agree (no intercepts, no panic).
        let mut point = base_t;
        point.flight_time = 0.0;
        cases.push((point, base_w));
        // Feasible exactly at the last step: interval closed by the
        // end-of-timeline flush rather than an infeasible successor.
        let mut tail = base_w;
        tail.min_alt = 0.0;
        cases.push((base_t, tail));
        for (i, (th, w)) in cases.iter().enumerate() {
            assert_eq!(
                batch_intervals(th, w),
                stepwise_intervals(th, w),
                "case {i} diverged"
            );
        }
    }

    #[test]
    fn batch_scan_carries_runs_across_block_boundaries() {
        // A ~990-step feasible run spanning three SCAN_BLOCK boundaries.
        let th = Threat {
            launch: (0.0, 0.0),
            impact: (100_000.0, 0.0),
            launch_time: 0.0,
            flight_time: 1000.0,
            apex_height: 25_000.0,
            detect_delay: 0.0,
        };
        let w = Weapon {
            pos: (50_000.0, 0.0),
            interceptor_speed: 10_000.0,
            max_range: 200_000.0,
            min_alt: 0.0,
            max_alt: 30_000.0,
            reaction_time: 0.0,
        };
        let step = stepwise_intervals(&th, &w);
        let batch = batch_intervals(&th, &w);
        assert_eq!(batch, step);
        let longest = step
            .iter()
            .map(|iv| iv.t_end - iv.t_start + 1)
            .max()
            .unwrap_or(0);
        assert!(
            longest as usize > super::SCAN_BLOCK,
            "test must exercise the cross-block carry: longest run {longest}"
        );
    }

    #[test]
    fn counting_path_emits_the_same_intervals_as_the_batch_path() {
        let th = test_threat();
        let w = test_weapon();
        let mut counted = Vec::new();
        let mut r = sthreads::OpRecorder::new();
        intervals_for_pair(7, 9, &th, &w, &mut r, |iv| counted.push(iv));
        assert_eq!(counted, batch_intervals(&th, &w));
        assert!(r.counts().fp_ops > 0, "counting path must record work");
    }

    #[test]
    fn recorder_sees_fp_work_per_predicate_call() {
        let th = test_threat();
        let w = test_weapon();
        let mut r = sthreads::OpRecorder::new();
        can_intercept(&w, &th, 150, &mut r);
        let c = r.counts();
        assert!(c.fp_ops > 0, "predicate must record floating-point work");
        assert!(c.loads > 0);
    }
}
