//! Threat Analysis benchmark scenarios.
//!
//! The C3IPBS ships five input scenarios of 1000 threats each; the
//! benchmark time is the total over all five. The original data is not
//! publicly distributable, so scenarios are generated from a seeded RNG
//! with the paper's stated statistics: 1000 threats per scenario, a
//! defended area with a battery of interceptor weapons, and threat
//! geometry that produces zero, one, or more interception intervals per
//! (threat, weapon) pair.

use super::model::{Threat, Weapon};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A complete Threat Analysis input: the trajectories of the incoming
/// threats and the locations/capabilities of the defending weapons.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ThreatScenario {
    /// Incoming ballistic threats.
    pub threats: Vec<Threat>,
    /// Defending interceptor batteries.
    pub weapons: Vec<Weapon>,
}

/// Why a [`ThreatScenario`] was rejected by [`ThreatScenario::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ThreatScenarioError {
    /// A threat or weapon field is NaN or infinite.
    NonFinite {
        /// `"threat"` or `"weapon"`.
        kind: &'static str,
        /// Index into the corresponding scenario vector.
        index: usize,
    },
    /// A threat's flight time is not strictly positive.
    NonPositiveFlightTime {
        /// Index into `threats`.
        index: usize,
    },
    /// A threat's timeline extends past [`MAX_TIMELINE_S`], which would
    /// make the second-by-second interval scan effectively unbounded
    /// (`Threat::last_step` saturates at `u32::MAX` steps).
    TimelineTooLong {
        /// Index into `threats`.
        index: usize,
        /// `launch_time + flight_time` for that threat (s).
        end_s: f64,
    },
    /// A threat's detect delay is negative or at least its flight time.
    BadDetectDelay {
        /// Index into `threats`.
        index: usize,
    },
    /// A weapon's interceptor speed or maximum range is not positive, its
    /// reaction time is negative, or its altitude band is inverted.
    BadWeapon {
        /// Index into `weapons`.
        index: usize,
    },
}

impl std::fmt::Display for ThreatScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFinite { kind, index } => {
                write!(f, "{kind} {index} has a NaN or infinite field")
            }
            Self::NonPositiveFlightTime { index } => {
                write!(f, "threat {index} has non-positive flight time")
            }
            Self::TimelineTooLong { index, end_s } => write!(
                f,
                "threat {index} timeline ends at {end_s} s, past the {MAX_TIMELINE_S} s bound"
            ),
            Self::BadDetectDelay { index } => write!(
                f,
                "threat {index} detect delay is negative or >= flight time"
            ),
            Self::BadWeapon { index } => write!(
                f,
                "weapon {index} has non-positive speed/range, negative reaction \
                 time, or an inverted altitude band"
            ),
        }
    }
}

impl std::error::Error for ThreatScenarioError {}

/// Upper bound on `launch_time + flight_time` accepted by
/// [`ThreatScenario::validate`] (s). The interval scan walks the timeline
/// in 1 s steps, so an absurd impact time turns one (threat, weapon) pair
/// into billions of iterations; generated scenarios stay far below this.
pub const MAX_TIMELINE_S: f64 = 1_000_000.0;

impl ThreatScenario {
    /// Number of (threat, weapon) pairs the benchmark examines.
    pub fn n_pairs(&self) -> usize {
        self.threats.len() * self.weapons.len()
    }

    /// Check the scenario invariants the analysis kernels assume.
    ///
    /// [`generate`] always produces valid scenarios; this exists for
    /// untrusted inputs — fuzz-shrunk cases and hand-edited corpus files —
    /// so a malformed scenario is rejected up front instead of hanging or
    /// panicking inside a kernel.
    pub fn validate(&self) -> Result<(), ThreatScenarioError> {
        for (index, t) in self.threats.iter().enumerate() {
            let fields = [
                t.launch.0,
                t.launch.1,
                t.impact.0,
                t.impact.1,
                t.launch_time,
                t.flight_time,
                t.apex_height,
                t.detect_delay,
            ];
            if fields.iter().any(|v| !v.is_finite()) {
                return Err(ThreatScenarioError::NonFinite {
                    kind: "threat",
                    index,
                });
            }
            if t.flight_time <= 0.0 {
                return Err(ThreatScenarioError::NonPositiveFlightTime { index });
            }
            if t.detect_delay < 0.0 || t.detect_delay >= t.flight_time {
                return Err(ThreatScenarioError::BadDetectDelay { index });
            }
            let end_s = t.launch_time + t.flight_time;
            if t.launch_time < 0.0 || end_s > MAX_TIMELINE_S {
                return Err(ThreatScenarioError::TimelineTooLong { index, end_s });
            }
        }
        for (index, w) in self.weapons.iter().enumerate() {
            let fields = [
                w.pos.0,
                w.pos.1,
                w.interceptor_speed,
                w.max_range,
                w.min_alt,
                w.max_alt,
                w.reaction_time,
            ];
            if fields.iter().any(|v| !v.is_finite()) {
                return Err(ThreatScenarioError::NonFinite {
                    kind: "weapon",
                    index,
                });
            }
            if w.interceptor_speed <= 0.0
                || w.max_range <= 0.0
                || w.reaction_time < 0.0
                || w.min_alt > w.max_alt
            {
                return Err(ThreatScenarioError::BadWeapon { index });
            }
        }
        Ok(())
    }
}

/// Generation parameters for a synthetic scenario.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThreatScenarioParams {
    /// Number of incoming threats (the benchmark uses 1000).
    pub n_threats: usize,
    /// Number of defending weapons.
    pub n_weapons: usize,
    /// RNG seed; equal seeds give identical scenarios.
    pub seed: u64,
    /// Side length of the theater square (m). Launches happen near one
    /// edge, the defended area is near the opposite edge.
    pub theater_m: f64,
    /// Window over which threat launches are staggered (s).
    pub launch_window_s: f64,
}

impl Default for ThreatScenarioParams {
    fn default() -> Self {
        Self {
            n_threats: 1000,
            n_weapons: 25,
            seed: 0,
            theater_m: 500_000.0,
            launch_window_s: 1800.0,
        }
    }
}

/// Generate a scenario from `params`, deterministically in the seed.
pub fn generate(params: ThreatScenarioParams) -> ThreatScenario {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let side = params.theater_m;

    // Defended area: a band occupying the far 20% of the theater. Weapons
    // defend it; threats aim into it.
    let defended_x = 0.8 * side..side;

    let weapons = (0..params.n_weapons)
        .map(|_| Weapon {
            pos: (
                rng.random_range(defended_x.clone()),
                rng.random_range(0.0..side),
            ),
            interceptor_speed: rng.random_range(2_000.0..5_000.0),
            max_range: rng.random_range(40_000.0..160_000.0),
            min_alt: rng.random_range(200.0..2_000.0),
            max_alt: rng.random_range(20_000.0..45_000.0),
            reaction_time: rng.random_range(2.0..15.0),
        })
        .collect();

    let threats = (0..params.n_threats)
        .map(|_| {
            let flight_time = rng.random_range(150.0..500.0);
            Threat {
                launch: (
                    rng.random_range(0.0..0.2 * side),
                    rng.random_range(0.0..side),
                ),
                impact: (
                    rng.random_range(defended_x.clone()),
                    rng.random_range(0.0..side),
                ),
                launch_time: rng.random_range(0.0..params.launch_window_s),
                flight_time,
                // Ballistic apex grows with range; jitter keeps pairs from
                // being interchangeable.
                apex_height: rng.random_range(40_000.0..220_000.0),
                detect_delay: rng.random_range(0.05..0.25) * flight_time,
            }
        })
        .collect();

    ThreatScenario { threats, weapons }
}

/// The five benchmark input scenarios (paper: "total time for all five
/// input scenarios"). Seeds 1–5; every other parameter at benchmark scale.
pub fn benchmark_suite() -> Vec<ThreatScenario> {
    (1..=5)
        .map(|seed| {
            generate(ThreatScenarioParams {
                seed,
                ..ThreatScenarioParams::default()
            })
        })
        .collect()
}

/// A reduced scenario for tests and quick examples: 40 threats, 6 weapons.
pub fn small_scenario(seed: u64) -> ThreatScenario {
    generate(ThreatScenarioParams {
        n_threats: 40,
        n_weapons: 6,
        seed,
        theater_m: 300_000.0,
        launch_window_s: 600.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = generate(ThreatScenarioParams {
            seed: 7,
            ..Default::default()
        });
        let b = generate(ThreatScenarioParams {
            seed: 7,
            ..Default::default()
        });
        assert_eq!(a.threats.len(), b.threats.len());
        assert_eq!(a.threats[0], b.threats[0]);
        assert_eq!(a.weapons[3], b.weapons[3]);
        let c = generate(ThreatScenarioParams {
            seed: 8,
            ..Default::default()
        });
        assert_ne!(a.threats[0], c.threats[0], "different seeds must differ");
    }

    #[test]
    fn benchmark_suite_has_five_scenarios_of_1000_threats() {
        let suite = benchmark_suite();
        assert_eq!(suite.len(), 5);
        for s in &suite {
            assert_eq!(s.threats.len(), 1000);
            assert!(!s.weapons.is_empty());
        }
    }

    #[test]
    fn scenarios_in_suite_are_distinct() {
        let suite = benchmark_suite();
        assert_ne!(suite[0].threats[0], suite[1].threats[0]);
    }

    #[test]
    fn threat_parameters_are_physical() {
        let s = generate(ThreatScenarioParams::default());
        for th in &s.threats {
            assert!(th.flight_time > 0.0);
            assert!(th.apex_height > 0.0);
            assert!(th.detect_delay > 0.0 && th.detect_delay < th.flight_time);
            assert!(th.launch_time >= 0.0);
        }
        for w in &s.weapons {
            assert!(w.interceptor_speed > 0.0);
            assert!(w.max_range > 0.0);
            assert!(w.min_alt < w.max_alt);
        }
    }

    #[test]
    fn generated_scenarios_validate() {
        for seed in 0..4 {
            generate(ThreatScenarioParams {
                seed,
                ..Default::default()
            })
            .validate()
            .unwrap();
            small_scenario(seed).validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_malformed_scenarios() {
        let base = small_scenario(1);

        let mut s = base.clone();
        s.threats[3].apex_height = f64::NAN;
        assert!(matches!(
            s.validate(),
            Err(ThreatScenarioError::NonFinite {
                kind: "threat",
                index: 3
            })
        ));

        let mut s = base.clone();
        s.threats[0].flight_time = 0.0;
        assert!(matches!(
            s.validate(),
            Err(ThreatScenarioError::NonPositiveFlightTime { index: 0 })
        ));

        let mut s = base.clone();
        s.threats[1].launch_time = 5.0e9;
        assert!(matches!(
            s.validate(),
            Err(ThreatScenarioError::TimelineTooLong { index: 1, .. })
        ));

        let mut s = base.clone();
        s.threats[2].detect_delay = s.threats[2].flight_time * 2.0;
        assert!(matches!(
            s.validate(),
            Err(ThreatScenarioError::BadDetectDelay { index: 2 })
        ));

        let mut s = base.clone();
        s.weapons[4].min_alt = s.weapons[4].max_alt + 1.0;
        assert!(matches!(
            s.validate(),
            Err(ThreatScenarioError::BadWeapon { index: 4 })
        ));

        let mut s = base;
        s.weapons[0].pos.1 = f64::INFINITY;
        assert!(matches!(
            s.validate(),
            Err(ThreatScenarioError::NonFinite {
                kind: "weapon",
                index: 0
            })
        ));
    }

    #[test]
    fn small_scenario_is_small() {
        let s = small_scenario(1);
        assert_eq!(s.threats.len(), 40);
        assert_eq!(s.weapons.len(), 6);
        assert_eq!(s.n_pairs(), 240);
    }
}
