//! Threat Analysis benchmark scenarios.
//!
//! The C3IPBS ships five input scenarios of 1000 threats each; the
//! benchmark time is the total over all five. The original data is not
//! publicly distributable, so scenarios are generated from a seeded RNG
//! with the paper's stated statistics: 1000 threats per scenario, a
//! defended area with a battery of interceptor weapons, and threat
//! geometry that produces zero, one, or more interception intervals per
//! (threat, weapon) pair.

use super::model::{Threat, Weapon};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A complete Threat Analysis input: the trajectories of the incoming
/// threats and the locations/capabilities of the defending weapons.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ThreatScenario {
    /// Incoming ballistic threats.
    pub threats: Vec<Threat>,
    /// Defending interceptor batteries.
    pub weapons: Vec<Weapon>,
}

impl ThreatScenario {
    /// Number of (threat, weapon) pairs the benchmark examines.
    pub fn n_pairs(&self) -> usize {
        self.threats.len() * self.weapons.len()
    }
}

/// Generation parameters for a synthetic scenario.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThreatScenarioParams {
    /// Number of incoming threats (the benchmark uses 1000).
    pub n_threats: usize,
    /// Number of defending weapons.
    pub n_weapons: usize,
    /// RNG seed; equal seeds give identical scenarios.
    pub seed: u64,
    /// Side length of the theater square (m). Launches happen near one
    /// edge, the defended area is near the opposite edge.
    pub theater_m: f64,
    /// Window over which threat launches are staggered (s).
    pub launch_window_s: f64,
}

impl Default for ThreatScenarioParams {
    fn default() -> Self {
        Self {
            n_threats: 1000,
            n_weapons: 25,
            seed: 0,
            theater_m: 500_000.0,
            launch_window_s: 1800.0,
        }
    }
}

/// Generate a scenario from `params`, deterministically in the seed.
pub fn generate(params: ThreatScenarioParams) -> ThreatScenario {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let side = params.theater_m;

    // Defended area: a band occupying the far 20% of the theater. Weapons
    // defend it; threats aim into it.
    let defended_x = 0.8 * side..side;

    let weapons = (0..params.n_weapons)
        .map(|_| Weapon {
            pos: (
                rng.random_range(defended_x.clone()),
                rng.random_range(0.0..side),
            ),
            interceptor_speed: rng.random_range(2_000.0..5_000.0),
            max_range: rng.random_range(40_000.0..160_000.0),
            min_alt: rng.random_range(200.0..2_000.0),
            max_alt: rng.random_range(20_000.0..45_000.0),
            reaction_time: rng.random_range(2.0..15.0),
        })
        .collect();

    let threats = (0..params.n_threats)
        .map(|_| {
            let flight_time = rng.random_range(150.0..500.0);
            Threat {
                launch: (
                    rng.random_range(0.0..0.2 * side),
                    rng.random_range(0.0..side),
                ),
                impact: (
                    rng.random_range(defended_x.clone()),
                    rng.random_range(0.0..side),
                ),
                launch_time: rng.random_range(0.0..params.launch_window_s),
                flight_time,
                // Ballistic apex grows with range; jitter keeps pairs from
                // being interchangeable.
                apex_height: rng.random_range(40_000.0..220_000.0),
                detect_delay: rng.random_range(0.05..0.25) * flight_time,
            }
        })
        .collect();

    ThreatScenario { threats, weapons }
}

/// The five benchmark input scenarios (paper: "total time for all five
/// input scenarios"). Seeds 1–5; every other parameter at benchmark scale.
pub fn benchmark_suite() -> Vec<ThreatScenario> {
    (1..=5)
        .map(|seed| {
            generate(ThreatScenarioParams {
                seed,
                ..ThreatScenarioParams::default()
            })
        })
        .collect()
}

/// A reduced scenario for tests and quick examples: 40 threats, 6 weapons.
pub fn small_scenario(seed: u64) -> ThreatScenario {
    generate(ThreatScenarioParams {
        n_threats: 40,
        n_weapons: 6,
        seed,
        theater_m: 300_000.0,
        launch_window_s: 600.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = generate(ThreatScenarioParams {
            seed: 7,
            ..Default::default()
        });
        let b = generate(ThreatScenarioParams {
            seed: 7,
            ..Default::default()
        });
        assert_eq!(a.threats.len(), b.threats.len());
        assert_eq!(a.threats[0], b.threats[0]);
        assert_eq!(a.weapons[3], b.weapons[3]);
        let c = generate(ThreatScenarioParams {
            seed: 8,
            ..Default::default()
        });
        assert_ne!(a.threats[0], c.threats[0], "different seeds must differ");
    }

    #[test]
    fn benchmark_suite_has_five_scenarios_of_1000_threats() {
        let suite = benchmark_suite();
        assert_eq!(suite.len(), 5);
        for s in &suite {
            assert_eq!(s.threats.len(), 1000);
            assert!(!s.weapons.is_empty());
        }
    }

    #[test]
    fn scenarios_in_suite_are_distinct() {
        let suite = benchmark_suite();
        assert_ne!(suite[0].threats[0], suite[1].threats[0]);
    }

    #[test]
    fn threat_parameters_are_physical() {
        let s = generate(ThreatScenarioParams::default());
        for th in &s.threats {
            assert!(th.flight_time > 0.0);
            assert!(th.apex_height > 0.0);
            assert!(th.detect_delay > 0.0 && th.detect_delay < th.flight_time);
            assert!(th.launch_time >= 0.0);
        }
        for w in &s.weapons {
            assert!(w.interceptor_speed > 0.0);
            assert!(w.max_range > 0.0);
            assert!(w.min_alt < w.max_alt);
        }
    }

    #[test]
    fn small_scenario_is_small() {
        let s = small_scenario(1);
        assert_eq!(s.threats.len(), 40);
        assert_eq!(s.weapons.len(), 6);
        assert_eq!(s.n_pairs(), 240);
    }
}
