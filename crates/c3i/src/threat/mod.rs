//! # Threat Analysis (C3IPBS problem; paper §5)
//!
//! A time-stepped simulation of the trajectories of incoming ballistic
//! threats, with computation of options for intercepting the threats.
//!
//! **Input:** (i) the trajectories of a set of incoming threats, and
//! (ii) the locations and capabilities of a set of weapons that can be used
//! to intercept them. **Output:** for each (threat, weapon) pair, the time
//! intervals over which the threat can be intercepted by the weapon —
//! zero, one, or more intervals per pair. The benchmark runs five input
//! scenarios of 1000 threats each and reports the total time.
//!
//! The `t1`/`t2` interception times are found by a time-stepped scan of
//! simulated threat and interceptor positions ([`model::can_intercept`]),
//! which is inherently sequential; parallelism exists only *across*
//! (threat, weapon) pairs.
//!
//! ## Implementations
//!
//! * [`sequential::threat_analysis`] — Program 1: three nested loops,
//!   shared `num_intervals`/`intervals[]`. Not parallelizable as written
//!   (the store index of one iteration depends on all prior iterations);
//!   [`autopar`](https://docs.rs/autopar)'s dependence analyzer rejects it
//!   for exactly that reason, as the Tera and Exemplar compilers did.
//! * [`chunked::threat_analysis_chunked`] — Program 2: the outer loop over
//!   threats is split into `num_chunks` chunks, each with its own
//!   `num_intervals[chunk]` counter and its own generously oversized
//!   section of the output array. Chunks are completely independent. This
//!   is the variant run on all multiprocessor platforms; on the Tera MTA
//!   the paper sweeps 8–256 chunks (Table 6).
//! * [`fine::threat_analysis_fine`] — the alternative §5 describes for the
//!   Tera only: parallelize over threats with *no* chunking and allocate
//!   output slots from a shared counter with one-cycle fetch-add
//!   (a synchronization variable). No oversized array, but the output
//!   order is nondeterministic (results must be compared as a set).

pub mod chunked;
pub mod engagement;
pub mod fine;
pub mod model;
pub mod scenario;
pub mod sequential;
pub mod verify;

pub use chunked::{
    threat_analysis_chunked, threat_analysis_chunked_host, threat_analysis_chunked_host_sched,
    ChunkedResult,
};
pub use engagement::{coverage, schedule_exhaustive, schedule_greedy, Engagement, Plan};
pub use fine::{threat_analysis_fine, threat_analysis_fine_host, threat_analysis_fine_host_sched};
pub use model::{
    can_intercept, intervals_for_pair, intervals_for_pair_stepwise, Interval, Threat, Weapon,
    TIME_STEP,
};
pub use scenario::{
    benchmark_suite, generate, small_scenario, ThreatScenario, ThreatScenarioError,
    ThreatScenarioParams,
};
pub use sequential::{
    per_threat_counts, threat_analysis, threat_analysis_host, threat_analysis_profile,
};
pub use verify::{canonical, verify_intervals, VerifyError};
