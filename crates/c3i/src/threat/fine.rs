//! Fine-grained Threat Analysis: parallelization without chunking.
//!
//! §5 of the paper describes an alternative Tera-only approach: parallelize
//! the outer loop over all 1000 threats directly and resolve the shared
//! `num_intervals`/`intervals[]` access with very fine-grained locking on
//! Tera synchronization variables — a one-cycle `int_fetch_add` allocates
//! each output slot. No oversized per-chunk array is needed, but the
//! element order becomes nondeterministic (a race on slot allocation), so
//! results must be compared as a set. The paper notes this is "viable for
//! the Tera MTA, but not for our conventional coarse-grained multiprocessor
//! platforms" — on an SMP the fetch-add on every interval would bounce a
//! cache line between all processors.

use super::model::{intervals_for_pair, Interval};
use super::scenario::ThreatScenario;
use crate::counts::{NoRec, Profile};
use std::sync::OnceLock;
use sthreads::{multithreaded_for, OpRecorder, Schedule, SyncCounter, ThreadCounts};

/// Result of the fine-grained program: the shared output array (dense
/// prefix of the slot array) in nondeterministic order.
#[derive(Debug, Clone)]
pub struct FineResult {
    /// All intervals found, in slot-allocation order (nondeterministic
    /// under real parallel execution).
    pub intervals: Vec<Interval>,
}

/// Upper bound on output slots: the verifier checks the benchmark scenarios
/// stay under `FINE_SLOTS_PER_PAIR` intervals per (threat, weapon) pair.
pub const FINE_SLOTS_PER_PAIR: usize = 4;

/// Fine-grained Threat Analysis on real host threads: one logical task per
/// threat, dynamically scheduled; output slots allocated with an atomic
/// fetch-add (the host stand-in for the MTA's one-cycle `int_fetch_add`).
pub fn threat_analysis_fine_host(scenario: &ThreatScenario, n_threads: usize) -> FineResult {
    threat_analysis_fine_host_sched(scenario, n_threads, Schedule::Stealing)
}

/// [`threat_analysis_fine_host`] with an explicit schedule for the outer
/// threat loop. Output order is nondeterministic regardless (the fetch-add
/// race), so results compare equal as a *set* under every schedule — the
/// comparison the differential fuzzer applies after `canonical` sorting.
pub fn threat_analysis_fine_host_sched(
    scenario: &ThreatScenario,
    n_threads: usize,
    schedule: Schedule,
) -> FineResult {
    let n_slots = scenario.n_pairs() * FINE_SLOTS_PER_PAIR;
    let slots: Vec<OnceLock<Interval>> = (0..n_slots).map(|_| OnceLock::new()).collect();
    let num_intervals = SyncCounter::new(0);

    // Per-threat tasks are short and irregular; the default stealing
    // schedule rebalances them without the shared claim counter (output
    // order is already nondeterministic, so the schedule is unobservable).
    multithreaded_for(0..scenario.threats.len(), n_threads, schedule, |ti| {
        let threat = &scenario.threats[ti];
        for (wi, weapon) in scenario.weapons.iter().enumerate() {
            intervals_for_pair(ti as u32, wi as u32, threat, weapon, &mut NoRec, |iv| {
                let slot = num_intervals.fetch_add(1) as usize;
                assert!(slot < n_slots, "fine-grained slot array overflow");
                slots[slot]
                    .set(iv)
                    .expect("slot allocated twice — fetch_add must hand out unique slots");
            });
        }
    });

    let n = num_intervals.get() as usize;
    let intervals = slots[..n]
        .iter()
        .map(|s| *s.get().expect("allocated slot left empty"))
        .collect();
    FineResult { intervals }
}

/// Fine-grained Threat Analysis under the counting backend: one logical
/// thread per threat; every slot allocation records one synchronization
/// operation. Returns the result (here in deterministic threat order,
/// since logical threads run sequentially) and the [`Profile`].
pub fn threat_analysis_fine(scenario: &ThreatScenario) -> (FineResult, Profile) {
    let mut intervals = Vec::new();
    let mut serial = OpRecorder::new();
    serial.int(1); // num_intervals = 0 (a sync variable initialization)
    serial.spawn(scenario.threats.len() as u64);

    let thread_counts = ThreadCounts::record(scenario.threats.len(), |ti, r| {
        let threat = &scenario.threats[ti];
        for (wi, weapon) in scenario.weapons.iter().enumerate() {
            r.int(2);
            r.load(2);
            let before = intervals.len();
            intervals_for_pair(ti as u32, wi as u32, threat, weapon, r, |iv| {
                intervals.push(iv);
            });
            // One int_fetch_add on the shared counter per emitted interval.
            r.sync((intervals.len() - before) as u64);
        }
    });

    (
        FineResult { intervals },
        Profile {
            serial: serial.counts(),
            parallel: thread_counts,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threat::scenario::small_scenario;
    use crate::threat::sequential::threat_analysis_host;
    use crate::threat::verify::canonical;

    #[test]
    fn fine_host_matches_sequential_as_a_set() {
        let s = small_scenario(1);
        let seq = canonical(threat_analysis_host(&s));
        for threads in [1, 2, 4, 8] {
            let fine = canonical(threat_analysis_fine_host(&s, threads).intervals);
            assert_eq!(fine, seq, "threads={threads}");
        }
    }

    #[test]
    fn every_schedule_matches_sequential_as_a_set() {
        let s = small_scenario(1);
        let seq = canonical(threat_analysis_host(&s));
        for schedule in [Schedule::Static, Schedule::Dynamic, Schedule::Stealing] {
            for threads in [1, 2, 8] {
                let fine =
                    canonical(threat_analysis_fine_host_sched(&s, threads, schedule).intervals);
                assert_eq!(fine, seq, "{schedule:?} threads={threads}");
            }
        }
    }

    #[test]
    fn counting_backend_matches_sequential_as_a_set() {
        let s = small_scenario(2);
        let seq = canonical(threat_analysis_host(&s));
        let (fine, profile) = threat_analysis_fine(&s);
        assert_eq!(canonical(fine.intervals), seq);
        assert_eq!(profile.n_logical_threads(), s.threats.len());
    }

    #[test]
    fn every_interval_costs_one_sync_op() {
        let s = small_scenario(3);
        let (fine, profile) = threat_analysis_fine(&s);
        assert_eq!(
            profile.parallel.total().sync_ops,
            fine.intervals.len() as u64
        );
    }

    #[test]
    fn fine_grained_needs_no_oversized_storage() {
        // Contrast with Program 2: used slots == intervals found; the slot
        // array bound is shared, not per-chunk.
        let s = small_scenario(4);
        let fine = threat_analysis_fine_host(&s, 4);
        let chunked = crate::threat::chunked::threat_analysis_chunked_host(&s, 256, 4);
        assert_eq!(fine.intervals.len(), chunked.n_intervals());
    }

    #[test]
    fn logical_thread_count_equals_threat_count() {
        // §5: "each input scenario ... has 1000 threats, parallelization
        // over threats ... easily supplies enough threads".
        let s = small_scenario(5);
        let (_, profile) = threat_analysis_fine(&s);
        assert_eq!(profile.n_logical_threads(), 40);
        assert_eq!(profile.serial.spawns, 40);
    }
}
