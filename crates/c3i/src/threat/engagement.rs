//! Engagement scheduling — the downstream consumer of Threat Analysis.
//!
//! The benchmark computes, for every (threat, weapon) pair, the time
//! intervals over which interception is possible ("options for
//! intercepting the threats"). A battle-management system then has to
//! *choose*: assign weapons to threats such that as many threats as
//! possible are engaged, given that a weapon can service only one threat
//! at a time. This module implements that assignment problem over the
//! benchmark's interval output:
//!
//! * [`schedule_greedy`] — earliest-deadline-first over interception
//!   windows, the classic interval-scheduling heuristic;
//! * [`schedule_exhaustive`] — optimal assignment by branch and bound,
//!   feasible for small scenarios and used to bound the heuristic in
//!   tests;
//! * [`coverage`] — scoring.

use super::model::Interval;
use std::collections::BTreeMap;

/// One scheduled engagement: `weapon` engages `threat`, occupying the
/// weapon for `[t_start, t_end]` (the full interception window is
/// reserved — a conservative doctrine that keeps the model simple).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engagement {
    /// Threat index.
    pub threat: u32,
    /// Weapon index.
    pub weapon: u32,
    /// Reservation start (time step).
    pub t_start: u32,
    /// Reservation end (inclusive).
    pub t_end: u32,
}

/// A complete engagement plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Plan {
    /// Scheduled engagements, sorted by start time.
    pub engagements: Vec<Engagement>,
}

impl Plan {
    /// Number of distinct threats engaged.
    pub fn threats_engaged(&self) -> usize {
        let mut t: Vec<u32> = self.engagements.iter().map(|e| e.threat).collect();
        t.sort_unstable();
        t.dedup();
        t.len()
    }

    /// Check plan validity against the interval set: every engagement
    /// uses a reported interception window, each threat is engaged at
    /// most once, and no weapon's reservations overlap.
    pub fn validate(&self, intervals: &[Interval]) -> Result<(), String> {
        use std::collections::BTreeSet;
        let windows: BTreeSet<Interval> = intervals.iter().copied().collect();
        let mut threats = BTreeSet::new();
        let mut per_weapon: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
        for e in &self.engagements {
            let w = Interval {
                threat: e.threat,
                weapon: e.weapon,
                t_start: e.t_start,
                t_end: e.t_end,
            };
            if !windows.contains(&w) {
                return Err(format!("engagement {e:?} is not a reported window"));
            }
            if !threats.insert(e.threat) {
                return Err(format!("threat {} engaged twice", e.threat));
            }
            per_weapon
                .entry(e.weapon)
                .or_default()
                .push((e.t_start, e.t_end));
        }
        for (w, mut spans) in per_weapon {
            spans.sort_unstable();
            for pair in spans.windows(2) {
                if pair[1].0 <= pair[0].1 {
                    return Err(format!("weapon {w} double-booked: {pair:?}"));
                }
            }
        }
        Ok(())
    }
}

/// Earliest-deadline-first greedy assignment: consider interception
/// windows by increasing end time; take a window if its threat is not yet
/// engaged and its weapon is free for the whole window. Runs in
/// `O(n log n)` over the interval count.
pub fn schedule_greedy(intervals: &[Interval]) -> Plan {
    // Structure-of-arrays permutation sort: pack each interval's sort key
    // into two dense u64 parallel arrays and sort a u32 index permutation
    // over them, rather than shuffling wide `&Interval` references. The
    // packed lexicographic order ((t_end,t_start), (threat,weapon)) is
    // exactly the historical tuple order, so the resulting plan is
    // unchanged — and fully determined even for duplicate keys, since
    // equal keys imply identical intervals.
    let deadline_key: Vec<u64> = intervals
        .iter()
        .map(|iv| ((iv.t_end as u64) << 32) | iv.t_start as u64)
        .collect();
    let pair_key: Vec<u64> = intervals
        .iter()
        .map(|iv| ((iv.threat as u64) << 32) | iv.weapon as u64)
        .collect();
    let mut order: Vec<u32> = (0..intervals.len() as u32).collect();
    order.sort_unstable_by_key(|&i| (deadline_key[i as usize], pair_key[i as usize]));

    let mut engaged = std::collections::BTreeSet::new();
    let mut weapon_busy: BTreeMap<u32, Vec<(u32, u32)>> = BTreeMap::new();
    let mut plan = Plan::default();
    for iv in order.into_iter().map(|i| &intervals[i as usize]) {
        if engaged.contains(&iv.threat) {
            continue;
        }
        let spans = weapon_busy.entry(iv.weapon).or_default();
        let free = spans.iter().all(|&(s, e)| iv.t_end < s || iv.t_start > e);
        if free {
            engaged.insert(iv.threat);
            spans.push((iv.t_start, iv.t_end));
            plan.engagements.push(Engagement {
                threat: iv.threat,
                weapon: iv.weapon,
                t_start: iv.t_start,
                t_end: iv.t_end,
            });
        }
    }
    plan.engagements
        .sort_unstable_by_key(|e| (e.t_start, e.threat));
    plan
}

/// Optimal assignment by depth-first branch and bound over threats.
/// Exponential in the worst case — intended for small scenarios (tests,
/// examples) to bound [`schedule_greedy`].
pub fn schedule_exhaustive(intervals: &[Interval]) -> Plan {
    // Group windows by threat.
    let mut threats: BTreeMap<u32, Vec<Interval>> = BTreeMap::new();
    for iv in intervals {
        threats.entry(iv.threat).or_default().push(*iv);
    }
    let threat_ids: Vec<u32> = threats.keys().copied().collect();

    fn weapon_free(busy: &BTreeMap<u32, Vec<(u32, u32)>>, iv: &Interval) -> bool {
        busy.get(&iv.weapon)
            .map(|spans| spans.iter().all(|&(s, e)| iv.t_end < s || iv.t_start > e))
            .unwrap_or(true)
    }

    fn dfs(
        idx: usize,
        threat_ids: &[u32],
        threats: &BTreeMap<u32, Vec<Interval>>,
        busy: &mut BTreeMap<u32, Vec<(u32, u32)>>,
        current: &mut Vec<Engagement>,
        best: &mut Vec<Engagement>,
    ) {
        // Bound: even engaging every remaining threat cannot beat best.
        if current.len() + (threat_ids.len() - idx) <= best.len() {
            return;
        }
        if idx == threat_ids.len() {
            if current.len() > best.len() {
                *best = current.clone();
            }
            return;
        }
        let t = threat_ids[idx];
        // Option 1: engage threat t with one of its windows.
        for iv in &threats[&t] {
            if weapon_free(busy, iv) {
                busy.entry(iv.weapon)
                    .or_default()
                    .push((iv.t_start, iv.t_end));
                current.push(Engagement {
                    threat: iv.threat,
                    weapon: iv.weapon,
                    t_start: iv.t_start,
                    t_end: iv.t_end,
                });
                dfs(idx + 1, threat_ids, threats, busy, current, best);
                current.pop();
                busy.get_mut(&iv.weapon).unwrap().pop();
            }
        }
        // Option 2: leave threat t unengaged (a leaker).
        dfs(idx + 1, threat_ids, threats, busy, current, best);
    }

    let mut best = Vec::new();
    let mut current = Vec::new();
    let mut busy = BTreeMap::new();
    dfs(0, &threat_ids, &threats, &mut busy, &mut current, &mut best);
    best.sort_unstable_by_key(|e| (e.t_start, e.threat));
    Plan { engagements: best }
}

/// Fraction of threats with at least one interception window that the
/// plan actually engages.
pub fn coverage(plan: &Plan, intervals: &[Interval]) -> f64 {
    let mut interceptable: Vec<u32> = intervals.iter().map(|iv| iv.threat).collect();
    interceptable.sort_unstable();
    interceptable.dedup();
    if interceptable.is_empty() {
        return 1.0;
    }
    plan.threats_engaged() as f64 / interceptable.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threat::{self, ThreatScenarioParams};

    fn iv(threat: u32, weapon: u32, t_start: u32, t_end: u32) -> Interval {
        Interval {
            threat,
            weapon,
            t_start,
            t_end,
        }
    }

    #[test]
    fn greedy_engages_disjoint_windows() {
        let intervals = vec![iv(0, 0, 0, 5), iv(1, 0, 6, 9), iv(2, 1, 0, 9)];
        let plan = schedule_greedy(&intervals);
        plan.validate(&intervals).unwrap();
        assert_eq!(plan.threats_engaged(), 3);
    }

    #[test]
    fn greedy_respects_weapon_exclusivity() {
        // One weapon, two fully overlapping windows: only one threat wins.
        let intervals = vec![iv(0, 0, 0, 10), iv(1, 0, 2, 8)];
        let plan = schedule_greedy(&intervals);
        plan.validate(&intervals).unwrap();
        assert_eq!(plan.threats_engaged(), 1);
    }

    #[test]
    fn exhaustive_beats_greedy_on_an_adversarial_case() {
        // EDF takes threat 0's early window on weapon 0, blocking threat
        // 1's only option, even though threat 0 also had a late window on
        // weapon 1. The exhaustive scheduler finds the 2-engagement plan.
        let intervals = vec![
            iv(0, 0, 0, 5), // tempting early window
            iv(0, 1, 6, 7), // threat 0's alternative
            iv(1, 0, 4, 6), // threat 1's ONLY window
        ];
        let greedy = schedule_greedy(&intervals);
        let best = schedule_exhaustive(&intervals);
        greedy.validate(&intervals).unwrap();
        best.validate(&intervals).unwrap();
        assert_eq!(greedy.threats_engaged(), 1, "{greedy:?}");
        assert_eq!(best.threats_engaged(), 2, "{best:?}");
    }

    #[test]
    fn exhaustive_equals_greedy_when_everything_is_disjoint() {
        let intervals: Vec<Interval> = (0..6).map(|t| iv(t, t % 2, 10 * t, 10 * t + 5)).collect();
        assert_eq!(
            schedule_greedy(&intervals).threats_engaged(),
            schedule_exhaustive(&intervals).threats_engaged()
        );
    }

    #[test]
    fn greedy_plan_is_input_order_invariant() {
        // The permutation sort orders by the full packed key, so the plan
        // cannot depend on the order intervals arrive in.
        let scenario = threat::generate(ThreatScenarioParams {
            n_threats: 40,
            n_weapons: 5,
            seed: 21,
            ..Default::default()
        });
        let mut intervals = threat::threat_analysis_host(&scenario);
        let forward = schedule_greedy(&intervals);
        intervals.reverse();
        assert_eq!(schedule_greedy(&intervals), forward);
    }

    #[test]
    fn plans_on_real_benchmark_output_validate() {
        let scenario = threat::generate(ThreatScenarioParams {
            n_threats: 60,
            n_weapons: 6,
            seed: 12,
            ..Default::default()
        });
        let intervals = threat::threat_analysis_host(&scenario);
        let plan = schedule_greedy(&intervals);
        plan.validate(&intervals)
            .expect("greedy plan must validate");
        let cov = coverage(&plan, &intervals);
        assert!(
            cov > 0.5,
            "greedy should engage most interceptable threats: {cov}"
        );
    }

    #[test]
    fn greedy_is_within_bound_of_optimal_on_small_scenarios() {
        // EDF interval scheduling is 1/2-approximate in general; on the
        // benchmark's loosely-coupled geometry it is usually optimal.
        for seed in 0..5 {
            let scenario = threat::generate(ThreatScenarioParams {
                n_threats: 8,
                n_weapons: 2,
                seed,
                theater_m: 250_000.0,
                launch_window_s: 300.0,
            });
            let intervals = threat::threat_analysis_host(&scenario);
            let greedy = schedule_greedy(&intervals).threats_engaged();
            let best = schedule_exhaustive(&intervals).threats_engaged();
            assert!(best >= greedy);
            assert!(
                2 * greedy >= best,
                "greedy fell below its approximation bound: {greedy} vs {best} (seed {seed})"
            );
        }
    }

    #[test]
    fn validate_rejects_fabricated_engagements() {
        let intervals = vec![iv(0, 0, 0, 5)];
        let bad = Plan {
            engagements: vec![Engagement {
                threat: 0,
                weapon: 0,
                t_start: 1,
                t_end: 4,
            }],
        };
        assert!(bad.validate(&intervals).is_err());
    }

    #[test]
    fn validate_rejects_double_booked_weapon() {
        let intervals = vec![iv(0, 0, 0, 5), iv(1, 0, 3, 8)];
        let bad = Plan {
            engagements: vec![
                Engagement {
                    threat: 0,
                    weapon: 0,
                    t_start: 0,
                    t_end: 5,
                },
                Engagement {
                    threat: 1,
                    weapon: 0,
                    t_start: 3,
                    t_end: 8,
                },
            ],
        };
        let err = bad.validate(&intervals).unwrap_err();
        assert!(err.contains("double-booked"));
    }

    #[test]
    fn empty_interval_set_gives_empty_plan_full_coverage() {
        let plan = schedule_greedy(&[]);
        assert!(plan.engagements.is_empty());
        assert_eq!(coverage(&plan, &[]), 1.0);
    }
}
