//! Correctness test for Threat Analysis output (the C3IPBS ships one per
//! problem).
//!
//! Verification is independent of which program produced the output: every
//! reported interval is re-checked against the interception predicate
//! (feasible at every step inside, infeasible just outside), and the
//! interval set is checked for completeness against a fresh predicate scan.

use super::model::{can_intercept, Interval};
use super::scenario::ThreatScenario;
use crate::counts::NoRec;
use std::collections::BTreeSet;

/// Why a Threat Analysis output failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// An interval references a threat or weapon index outside the scenario.
    BadIndex(Interval),
    /// An interval is empty or reversed (`t_start > t_end`).
    EmptyInterval(Interval),
    /// A step inside a reported interval is not actually feasible.
    InfeasibleStep { interval: Interval, step: u32 },
    /// A reported interval is not maximal (feasible just outside it).
    NotMaximal(Interval),
    /// Two reported intervals for the same pair overlap or touch.
    Overlap(Interval, Interval),
    /// A feasible step is not covered by any reported interval.
    MissedStep { threat: u32, weapon: u32, step: u32 },
    /// The same interval was reported twice.
    Duplicate(Interval),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BadIndex(iv) => {
                write!(f, "interval references out-of-range index: {iv:?}")
            }
            VerifyError::EmptyInterval(iv) => write!(f, "empty/reversed interval: {iv:?}"),
            VerifyError::InfeasibleStep { interval, step } => {
                write!(f, "step {step} inside {interval:?} is not feasible")
            }
            VerifyError::NotMaximal(iv) => write!(f, "interval {iv:?} is not maximal"),
            VerifyError::Overlap(a, b) => write!(f, "intervals overlap: {a:?}, {b:?}"),
            VerifyError::MissedStep {
                threat,
                weapon,
                step,
            } => {
                write!(
                    f,
                    "feasible step {step} for pair ({threat},{weapon}) not reported"
                )
            }
            VerifyError::Duplicate(iv) => write!(f, "duplicate interval: {iv:?}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Sort intervals into the canonical (threat, weapon, t_start) order, so
/// outputs with nondeterministic ordering (the fine-grained program) can be
/// compared with deterministic ones.
pub fn canonical(mut intervals: Vec<Interval>) -> Vec<Interval> {
    intervals.sort_unstable();
    intervals
}

/// Full verification of a Threat Analysis output against its scenario:
/// indices valid, intervals non-empty, feasible throughout, maximal,
/// mutually disjoint per pair, no duplicates, and *complete* (every
/// feasible step of every pair is covered).
pub fn verify_intervals(
    scenario: &ThreatScenario,
    intervals: &[Interval],
) -> Result<(), VerifyError> {
    let n_threats = scenario.threats.len() as u32;
    let n_weapons = scenario.weapons.len() as u32;

    let mut seen = BTreeSet::new();
    for &iv in intervals {
        if iv.threat >= n_threats || iv.weapon >= n_weapons {
            return Err(VerifyError::BadIndex(iv));
        }
        if iv.t_start > iv.t_end {
            return Err(VerifyError::EmptyInterval(iv));
        }
        if !seen.insert(iv) {
            return Err(VerifyError::Duplicate(iv));
        }
        let threat = &scenario.threats[iv.threat as usize];
        let weapon = &scenario.weapons[iv.weapon as usize];
        for step in iv.t_start..=iv.t_end {
            if !can_intercept(weapon, threat, step, &mut NoRec) {
                return Err(VerifyError::InfeasibleStep { interval: iv, step });
            }
        }
        if iv.t_start > threat.first_step()
            && can_intercept(weapon, threat, iv.t_start - 1, &mut NoRec)
        {
            return Err(VerifyError::NotMaximal(iv));
        }
        if iv.t_end < threat.last_step() && can_intercept(weapon, threat, iv.t_end + 1, &mut NoRec)
        {
            return Err(VerifyError::NotMaximal(iv));
        }
    }

    // Disjointness per pair (canonical order makes this a linear scan).
    let sorted = canonical(intervals.to_vec());
    for w in sorted.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a.threat == b.threat && a.weapon == b.weapon && b.t_start <= a.t_end {
            return Err(VerifyError::Overlap(a, b));
        }
    }

    // Completeness: every feasible step is covered by some interval.
    let mut idx = 0usize;
    for (ti, threat) in scenario.threats.iter().enumerate() {
        for (wi, weapon) in scenario.weapons.iter().enumerate() {
            let mut covered: Vec<(u32, u32)> = Vec::new();
            while idx < sorted.len()
                && sorted[idx].threat == ti as u32
                && sorted[idx].weapon == wi as u32
            {
                covered.push((sorted[idx].t_start, sorted[idx].t_end));
                idx += 1;
            }
            for step in threat.first_step()..=threat.last_step() {
                let feasible = can_intercept(weapon, threat, step, &mut NoRec);
                let reported = covered.iter().any(|&(a, b)| a <= step && step <= b);
                if feasible && !reported {
                    return Err(VerifyError::MissedStep {
                        threat: ti as u32,
                        weapon: wi as u32,
                        step,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threat::scenario::small_scenario;
    use crate::threat::sequential::threat_analysis_host;

    #[test]
    fn sequential_output_verifies() {
        let s = small_scenario(1);
        let out = threat_analysis_host(&s);
        verify_intervals(&s, &out).expect("sequential output must verify");
    }

    #[test]
    fn canonical_sorts_by_pair_then_time() {
        let a = Interval {
            threat: 1,
            weapon: 0,
            t_start: 5,
            t_end: 6,
        };
        let b = Interval {
            threat: 0,
            weapon: 1,
            t_start: 9,
            t_end: 9,
        };
        let c = Interval {
            threat: 0,
            weapon: 1,
            t_start: 2,
            t_end: 3,
        };
        assert_eq!(canonical(vec![a, b, c]), vec![c, b, a]);
    }

    #[test]
    fn detects_missing_interval() {
        let s = small_scenario(2);
        let mut out = threat_analysis_host(&s);
        assert!(!out.is_empty());
        out.pop();
        assert!(matches!(
            verify_intervals(&s, &out),
            Err(VerifyError::MissedStep { .. })
        ));
    }

    #[test]
    fn detects_duplicate() {
        let s = small_scenario(3);
        let mut out = threat_analysis_host(&s);
        assert!(!out.is_empty());
        out.push(out[0]);
        assert!(matches!(
            verify_intervals(&s, &out),
            Err(VerifyError::Duplicate(_))
        ));
    }

    #[test]
    fn detects_truncated_interval_as_not_maximal() {
        let s = small_scenario(4);
        let mut out = threat_analysis_host(&s);
        let i = out
            .iter()
            .position(|iv| iv.t_end > iv.t_start)
            .expect("need a multi-step interval");
        out[i].t_end -= 1;
        assert!(matches!(
            verify_intervals(&s, &out),
            Err(VerifyError::NotMaximal(_))
        ));
    }

    #[test]
    fn detects_bad_index() {
        let s = small_scenario(5);
        let out = vec![Interval {
            threat: 10_000,
            weapon: 0,
            t_start: 0,
            t_end: 0,
        }];
        assert!(matches!(
            verify_intervals(&s, &out),
            Err(VerifyError::BadIndex(_))
        ));
    }

    #[test]
    fn detects_reversed_interval() {
        let s = small_scenario(5);
        let out = vec![Interval {
            threat: 0,
            weapon: 0,
            t_start: 5,
            t_end: 4,
        }];
        assert!(matches!(
            verify_intervals(&s, &out),
            Err(VerifyError::EmptyInterval(_))
        ));
    }

    #[test]
    fn detects_fabricated_interval() {
        let s = small_scenario(6);
        let mut out = threat_analysis_host(&s);
        // Fabricate an interval at a step outside any feasible window for
        // a pair that has none at step 0 (launches are staggered, so step 0
        // precedes every detection).
        out.push(Interval {
            threat: 0,
            weapon: 0,
            t_start: 0,
            t_end: 0,
        });
        let err = verify_intervals(&s, &out).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::InfeasibleStep { .. } | VerifyError::Overlap(..)
            ),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn error_messages_render() {
        let e = VerifyError::MissedStep {
            threat: 1,
            weapon: 2,
            step: 3,
        };
        assert!(e.to_string().contains("feasible step 3"));
    }
}
