//! # Terrain Masking (C3IPBS problem; paper §6)
//!
//! Computation of the maximum safe flight altitude over all points in an
//! uneven terrain containing ground-based threats.
//!
//! **Input:** (i) the ground elevation for all points of the terrain, and
//! (ii) the position and range of a set of ground-based threats (radar
//! sites). **Output:** for every terrain point, the maximum altitude at
//! which an aircraft is invisible to *all* threats. The benchmark runs
//! five scenarios and reports the total time; each scenario has 60 threats
//! whose regions of influence cover up to 5 % of the terrain each.
//!
//! The per-threat computation is a line-of-sight shadow: the safe altitude
//! at a point is determined by the terrain between the point and the radar,
//! so "the value at one point is computed from the values at neighboring
//! points" — a ring-ordered recurrence ([`los`]). The overall answer is the
//! pointwise minimum over threats, and regions of influence of different
//! threats overlap, which is what blocks naive outer-loop parallelization.
//!
//! ## Implementations
//!
//! * [`sequential::terrain_masking`] — Program 3: for each threat, copy the
//!   affected region of `masking` into `temp`, recompute the region's
//!   per-threat altitudes in place, then merge `min(masking, temp)` back.
//! * [`coarse::terrain_masking_coarse_host`] — Program 4: threads
//!   dynamically claim threats; each computes into its *own* temp array and
//!   merges into the shared `masking` array under per-block locks (10×10
//!   blocking in the paper). Requires a temp array per thread — acceptable
//!   for 16 threads, impractical for the hundreds the Tera needs.
//! * [`fine::terrain_masking_fine`] — the Tera-only variant (developed with
//!   John Feo at Tera, per the paper's acknowledgments): the outer loop
//!   over threats stays sequential, the *inner* loops are parallelized —
//!   the ring recurrence ring by ring, and the bulk copy/merge loops over
//!   whole regions. One temp array total, hundreds of fine-grained threads.

pub mod coarse;
pub mod exact;
pub mod fine;
pub mod los;
pub mod render;
pub mod route;
pub mod scenario;
pub mod sequential;
pub mod verify;

pub use coarse::{
    greedy_bins, per_threat_counts, terrain_masking_coarse, terrain_masking_coarse_host,
    terrain_masking_coarse_host_sched, Blocking,
};
pub use exact::{compare_with_recurrence, exact_blocking_slope, exact_per_threat_masking};
pub use fine::{terrain_masking_fine, terrain_masking_fine_host, terrain_masking_fine_host_sched};
pub use los::{
    per_threat_masking, KernelArena, KernelScratch, OffGridThreat, Region, RingRun, RingRuns,
};
pub use render::{render_grid, render_masking, render_terrain};
pub use route::{altitude_sweep, exposed_fraction, is_exposed, plan_route, Route};
pub use scenario::{
    benchmark_suite, generate, small_scenario, GroundThreat, TerrainScenario, TerrainScenarioError,
    TerrainScenarioParams,
};
pub use sequential::{
    terrain_masking, terrain_masking_host, terrain_masking_into, terrain_masking_profile,
    terrain_masking_reference,
};
pub use verify::{verify_masking, TerrainVerifyError};
