//! Terrain Masking benchmark scenarios: synthetic terrain and ground-based
//! threats.
//!
//! The C3IPBS terrain data is not publicly available; elevations are
//! generated with the diamond-square (midpoint displacement) fractal, the
//! standard synthetic model for natural terrain relief, from a seeded RNG.
//! Threat placement follows the paper's stated statistics: 60 threats per
//! scenario, each with a region of influence of up to 5 % of the terrain.

use crate::grid::Grid;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A ground-based threat (radar site) with a circular-ish region of
/// influence of Chebyshev radius `radius` cells.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GroundThreat {
    /// Grid x coordinate of the radar.
    pub x: usize,
    /// Grid y coordinate of the radar.
    pub y: usize,
    /// Region-of-influence radius in cells (Chebyshev).
    pub radius: usize,
    /// Height of the radar mast above local terrain (m).
    pub mast_height: f64,
}

/// A complete Terrain Masking input.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TerrainScenario {
    /// Ground elevation (m) at every grid point.
    pub terrain: Grid<f64>,
    /// Radar threats on the terrain.
    pub threats: Vec<GroundThreat>,
    /// Physical size of one grid cell (m).
    pub cell_size_m: f64,
}

/// Why a [`TerrainScenario`] is malformed (see [`TerrainScenario::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TerrainScenarioError {
    /// The terrain grid has zero cells.
    EmptyTerrain,
    /// The cell size is not a finite positive number.
    BadCellSize(f64),
    /// A terrain elevation is NaN or infinite.
    NonFiniteElevation {
        /// Offending cell.
        cell: (usize, usize),
        /// Elevation found there.
        value: f64,
    },
    /// A threat sits outside the terrain grid.
    OffGridThreat {
        /// Index of the threat in the scenario.
        index: usize,
        /// Threat coordinates.
        at: (usize, usize),
        /// Grid dimensions.
        grid: (usize, usize),
    },
    /// A threat's radius is absurdly large for the grid (every ring beyond
    /// the grid diagonal is empty, so the recurrence would spin on nothing).
    HugeRadius {
        /// Index of the threat in the scenario.
        index: usize,
        /// Radius found.
        radius: usize,
    },
    /// A threat's mast height is NaN or infinite.
    NonFiniteMast {
        /// Index of the threat in the scenario.
        index: usize,
        /// Mast height found.
        value: f64,
    },
}

impl std::fmt::Display for TerrainScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TerrainScenarioError::EmptyTerrain => write!(f, "terrain grid has zero cells"),
            TerrainScenarioError::BadCellSize(v) => {
                write!(f, "cell size must be finite and positive, got {v}")
            }
            TerrainScenarioError::NonFiniteElevation { cell, value } => {
                write!(f, "elevation at {cell:?} is not finite: {value}")
            }
            TerrainScenarioError::OffGridThreat { index, at, grid } => {
                write!(f, "threat {index} at {at:?} is outside the {grid:?} grid")
            }
            TerrainScenarioError::HugeRadius { index, radius } => {
                write!(f, "threat {index} has absurd radius {radius}")
            }
            TerrainScenarioError::NonFiniteMast { index, value } => {
                write!(f, "threat {index} mast height is not finite: {value}")
            }
        }
    }
}

impl std::error::Error for TerrainScenarioError {}

impl TerrainScenario {
    /// Check the scenario invariants every program variant assumes: a
    /// non-empty grid of finite elevations, a finite positive cell size,
    /// and threats that sit on the grid with sane radii and finite masts.
    ///
    /// The generators in this module always produce valid scenarios; this
    /// is the guard for *loaded* inputs (corpus replay, fuzzing, JSON
    /// files), so a malformed scenario fails with an error instead of
    /// panicking deep inside a recurrence.
    pub fn validate(&self) -> Result<(), TerrainScenarioError> {
        if self.terrain.is_empty() {
            return Err(TerrainScenarioError::EmptyTerrain);
        }
        if !(self.cell_size_m.is_finite() && self.cell_size_m > 0.0) {
            return Err(TerrainScenarioError::BadCellSize(self.cell_size_m));
        }
        for (x, y, &v) in self.terrain.iter_cells() {
            if !v.is_finite() {
                return Err(TerrainScenarioError::NonFiniteElevation {
                    cell: (x, y),
                    value: v,
                });
            }
        }
        let (xs, ys) = (self.terrain.x_size(), self.terrain.y_size());
        for (i, t) in self.threats.iter().enumerate() {
            if t.x >= xs || t.y >= ys {
                return Err(TerrainScenarioError::OffGridThreat {
                    index: i,
                    at: (t.x, t.y),
                    grid: (xs, ys),
                });
            }
            if t.radius > xs + ys {
                return Err(TerrainScenarioError::HugeRadius {
                    index: i,
                    radius: t.radius,
                });
            }
            if !t.mast_height.is_finite() {
                return Err(TerrainScenarioError::NonFiniteMast {
                    index: i,
                    value: t.mast_height,
                });
            }
        }
        Ok(())
    }
}

/// Generation parameters for a synthetic scenario.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TerrainScenarioParams {
    /// Terrain is `grid_size × grid_size` cells.
    pub grid_size: usize,
    /// Number of ground-based threats (the benchmark uses 60).
    pub n_threats: usize,
    /// RNG seed.
    pub seed: u64,
    /// Peak-to-valley elevation range of the generated terrain (m).
    pub relief_m: f64,
    /// Cell edge length (m).
    pub cell_size_m: f64,
    /// Maximum fraction of the terrain one threat's region may cover
    /// (paper: "up to 5% of the total terrain").
    pub max_region_fraction: f64,
}

impl Default for TerrainScenarioParams {
    fn default() -> Self {
        Self {
            grid_size: 1024,
            n_threats: 60,
            seed: 0,
            relief_m: 1500.0,
            cell_size_m: 100.0,
            max_region_fraction: 0.05,
        }
    }
}

/// Diamond-square midpoint-displacement terrain on a `(2^n + 1)`-sized
/// square, returned at exactly that size. `roughness` in `(0, 1)` controls
/// how fast displacement amplitude decays per level (higher = rougher).
pub fn diamond_square(levels: u32, roughness: f64, rng: &mut impl Rng) -> Grid<f64> {
    let size = (1usize << levels) + 1;
    let mut g = Grid::new(size, size, 0.0f64);
    // Seed corners.
    for &(x, y) in &[(0, 0), (size - 1, 0), (0, size - 1), (size - 1, size - 1)] {
        g[(x, y)] = rng.random_range(-1.0..1.0);
    }
    let mut step = size - 1;
    let mut amp = 1.0f64;
    while step > 1 {
        let half = step / 2;
        // Diamond step: centers of squares.
        for y in (half..size).step_by(step) {
            for x in (half..size).step_by(step) {
                let avg = (g[(x - half, y - half)]
                    + g[(x + half, y - half)]
                    + g[(x - half, y + half)]
                    + g[(x + half, y + half)])
                    / 4.0;
                g[(x, y)] = avg + rng.random_range(-amp..amp);
            }
        }
        // Square step: edge midpoints, averaging the diamond neighbors that
        // exist (edges of the map have only three).
        for y in (0..size).step_by(half) {
            let x_start = if (y / half).is_multiple_of(2) {
                half
            } else {
                0
            };
            for x in (x_start..size).step_by(step) {
                let mut sum = 0.0;
                let mut n = 0.0;
                let xi = x as isize;
                let yi = y as isize;
                for (dx, dy) in [
                    (0isize, -(half as isize)),
                    (0, half as isize),
                    (-(half as isize), 0),
                    (half as isize, 0),
                ] {
                    if g.contains(xi + dx, yi + dy) {
                        sum += g[((xi + dx) as usize, (yi + dy) as usize)];
                        n += 1.0;
                    }
                }
                g[(x, y)] = sum / n + rng.random_range(-amp..amp);
            }
        }
        step = half;
        amp *= roughness;
    }
    g
}

/// Generate a scenario from `params`, deterministically in the seed.
pub fn generate(params: TerrainScenarioParams) -> TerrainScenario {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed ^ 0x7e44_a1ee_0000_0000);

    // Build fractal terrain at the next power-of-two-plus-one size and crop.
    // Integer arithmetic: `2^levels + 1 >= grid_size` must hold *exactly*,
    // or the crop below would index past the fractal grid. The previous
    // float form (`log2().ceil()`) could round an exact or near power of
    // two down a level for large sizes.
    let levels = params.grid_size.max(2).next_power_of_two().ilog2();
    let raw = diamond_square(levels, 0.55, &mut rng);
    // Normalize to [0, relief_m].
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in raw.as_slice() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-12);
    let terrain = Grid::from_fn(params.grid_size, params.grid_size, |x, y| {
        (raw[(x, y)] - lo) / span * params.relief_m
    });

    // Threat radii: up to the 5% cap. A Chebyshev-radius-R region covers
    // (2R+1)^2 cells, so the cap radius is the largest R with
    // (2R+1)^2 <= max_region_fraction * area. The radius is additionally
    // clamped to the grid: a radius beyond `grid_size - 1` is pure
    // clipping. On small grids the cap can force the radius all the way
    // to 0 (a single-cell region) — an unconditional floor here used to
    // let radius-2 regions exceed the cap or even swallow a tiny grid.
    let area = (params.grid_size * params.grid_size) as f64;
    let max_cells = params.max_region_fraction * area;
    let r_cap = if max_cells >= 1.0 {
        ((max_cells.sqrt() - 1.0) / 2.0).floor() as usize
    } else {
        0
    };
    let r_max = r_cap.min(params.grid_size.saturating_sub(1));
    let r_min = (r_max / 3).max(2).min(r_max);

    let threats = (0..params.n_threats)
        .map(|_| GroundThreat {
            x: rng.random_range(0..params.grid_size),
            y: rng.random_range(0..params.grid_size),
            radius: rng.random_range(r_min..=r_max),
            mast_height: rng.random_range(5.0..30.0),
        })
        .collect();

    TerrainScenario {
        terrain,
        threats,
        cell_size_m: params.cell_size_m,
    }
}

/// The five benchmark input scenarios (seeds 1–5, benchmark scale).
pub fn benchmark_suite() -> Vec<TerrainScenario> {
    (1..=5)
        .map(|seed| {
            generate(TerrainScenarioParams {
                seed,
                ..TerrainScenarioParams::default()
            })
        })
        .collect()
}

/// A reduced scenario for tests and quick examples: 128×128 cells, 12
/// threats.
pub fn small_scenario(seed: u64) -> TerrainScenario {
    generate(TerrainScenarioParams {
        grid_size: 128,
        n_threats: 12,
        seed,
        ..TerrainScenarioParams::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_square_size_is_power_of_two_plus_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = diamond_square(4, 0.5, &mut rng);
        assert_eq!(g.x_size(), 17);
        assert_eq!(g.y_size(), 17);
    }

    #[test]
    fn diamond_square_is_deterministic_in_seed() {
        let a = diamond_square(5, 0.5, &mut ChaCha8Rng::seed_from_u64(9));
        let b = diamond_square(5, 0.5, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = diamond_square(5, 0.5, &mut ChaCha8Rng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn terrain_is_normalized_to_relief_range() {
        let s = small_scenario(1);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in s.terrain.as_slice() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo >= 0.0);
        assert!(hi <= 1500.0 + 1e-9);
        assert!(
            hi - lo > 100.0,
            "terrain should have meaningful relief, got {}",
            hi - lo
        );
    }

    #[test]
    fn regions_respect_the_five_percent_cap() {
        // The cap must hold for *every* grid size, not just the benchmark
        // default — tiny and non-power-of-two grids used to slip through
        // the old radius floor (a radius-2 region on a 4x4 grid covers
        // more cells than the whole grid).
        for grid_size in [
            1usize, 2, 3, 4, 5, 7, 8, 9, 16, 17, 23, 33, 64, 100, 128, 1024,
        ] {
            let s = generate(TerrainScenarioParams {
                grid_size,
                n_threats: 8,
                ..TerrainScenarioParams::default()
            });
            let area = (s.terrain.x_size() * s.terrain.y_size()) as f64;
            for t in &s.threats {
                let cells = ((2 * t.radius + 1) * (2 * t.radius + 1)) as f64;
                assert!(
                    cells <= 0.05 * area + 1.0,
                    "grid {grid_size}: region of radius {} covers {} cells > 5% of {}",
                    t.radius,
                    cells,
                    area
                );
                assert!(
                    t.radius < grid_size.max(1),
                    "grid {grid_size}: radius {} exceeds the grid",
                    t.radius
                );
            }
        }
    }

    #[test]
    fn generated_scenarios_validate_at_every_size() {
        for grid_size in [1usize, 2, 3, 5, 8, 17, 33, 100] {
            let s = generate(TerrainScenarioParams {
                grid_size,
                n_threats: 6,
                seed: 11,
                ..TerrainScenarioParams::default()
            });
            s.validate()
                .unwrap_or_else(|e| panic!("grid {grid_size}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed_scenarios() {
        let mut s = small_scenario(1);
        s.threats[0].x = 10_000;
        assert!(matches!(
            s.validate(),
            Err(TerrainScenarioError::OffGridThreat { index: 0, .. })
        ));

        let mut s = small_scenario(1);
        s.terrain[(3, 4)] = f64::NAN;
        assert!(matches!(
            s.validate(),
            Err(TerrainScenarioError::NonFiniteElevation { cell: (3, 4), .. })
        ));

        let mut s = small_scenario(1);
        s.cell_size_m = 0.0;
        assert!(matches!(
            s.validate(),
            Err(TerrainScenarioError::BadCellSize(_))
        ));

        let mut s = small_scenario(1);
        s.threats[2].radius = usize::MAX;
        assert!(matches!(
            s.validate(),
            Err(TerrainScenarioError::HugeRadius { index: 2, .. })
        ));

        let mut s = small_scenario(1);
        s.threats[1].mast_height = f64::INFINITY;
        assert!(matches!(
            s.validate(),
            Err(TerrainScenarioError::NonFiniteMast { index: 1, .. })
        ));

        assert_eq!(small_scenario(1).validate(), Ok(()));
    }

    #[test]
    fn power_of_two_and_tiny_grids_generate_at_exact_size() {
        // Regression for the float level computation: exact powers of two
        // must never round down to a fractal grid smaller than the crop.
        for grid_size in [1usize, 2, 3, 4, 8, 16, 64, 256, 512, 1023, 1024, 1025] {
            let s = generate(TerrainScenarioParams {
                grid_size,
                n_threats: 1,
                ..TerrainScenarioParams::default()
            });
            assert_eq!(s.terrain.x_size(), grid_size);
            assert_eq!(s.terrain.y_size(), grid_size);
        }
    }

    #[test]
    fn benchmark_suite_matches_paper_statistics() {
        let suite = benchmark_suite();
        assert_eq!(suite.len(), 5, "five input scenarios");
        for s in &suite {
            assert_eq!(s.threats.len(), 60, "60 threats per scenario");
        }
    }

    #[test]
    fn threats_are_on_the_grid() {
        let s = small_scenario(2);
        for t in &s.threats {
            assert!(t.x < s.terrain.x_size());
            assert!(t.y < s.terrain.y_size());
            assert!(t.radius >= 2);
            assert!(t.mast_height > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_scenario(3);
        let b = small_scenario(3);
        assert_eq!(a.terrain, b.terrain);
        assert_eq!(a.threats, b.threats);
    }
}
