//! ASCII rendering of terrain and masking fields, for examples, quick
//! inspection, and the `repro` binary's human-readable output.

use crate::grid::Grid;

/// Downsample a grid to at most `max_w × max_h` characters by point
/// sampling, mapping each sampled value through `glyph`.
pub fn render_grid<T>(
    grid: &Grid<T>,
    max_w: usize,
    max_h: usize,
    mut glyph: impl FnMut(usize, usize, &T) -> char,
) -> String {
    assert!(max_w > 0 && max_h > 0);
    if grid.is_empty() {
        return String::new();
    }
    let sx = grid.x_size().div_ceil(max_w).max(1);
    let sy = grid.y_size().div_ceil(max_h).max(1);
    let mut out = String::new();
    let mut y = 0;
    while y < grid.y_size() {
        let mut x = 0;
        while x < grid.x_size() {
            out.push(glyph(x, y, &grid[(x, y)]));
            x += sx;
        }
        out.push('\n');
        y += sy;
    }
    out
}

/// Render elevations as shade characters (` .:-=+*#%@`, low to high).
pub fn render_terrain(terrain: &Grid<f64>, max_w: usize, max_h: usize) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in terrain.as_slice() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-12);
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    render_grid(terrain, max_w, max_h, |_, _, &v| {
        let t = ((v - lo) / span * (SHADES.len() - 1) as f64).round() as usize;
        SHADES[t.min(SHADES.len() - 1)]
    })
}

/// Render a masking field relative to the terrain: `.` = no threat
/// influence (fly at any altitude), `#` = pinned to the ground, digits
/// 1–9 = safe ceiling above local terrain in units of `level_m` meters.
///
/// The output never leaves that legend: cells with no altitude-band
/// reading — NaN headroom (NaN masking or infinite terrain), a `-inf`
/// masking value, or a non-positive/NaN `level_m` — render as the
/// conservative ground-pin glyph `#`. (A NaN previously survived the
/// clamp, cast to 0, and emitted an undocumented `'0'`.)
pub fn render_masking(
    masking: &Grid<f64>,
    terrain: &Grid<f64>,
    level_m: f64,
    max_w: usize,
    max_h: usize,
) -> String {
    assert_eq!(masking.x_size(), terrain.x_size());
    assert_eq!(masking.y_size(), terrain.y_size());
    render_grid(masking, max_w, max_h, |x, y, &m| {
        // Only +inf means "no threat influence"; -inf is a pinned cell,
        // not an open sky.
        if m == f64::INFINITY {
            '.'
        } else {
            let headroom = m - terrain[(x, y)];
            if headroom.is_nan() || level_m.is_nan() || level_m <= 0.0 || headroom < level_m / 4.0 {
                '#'
            } else {
                let level = (headroom / level_m).clamp(1.0, 9.0) as u32;
                char::from_digit(level, 10).unwrap()
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_grid_respects_bounds() {
        let g = Grid::from_fn(100, 60, |x, y| x + y);
        let s = render_grid(&g, 40, 20, |_, _, _| 'x');
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() <= 20 + 1, "{} lines", lines.len());
        assert!(lines[0].len() <= 40 + 1, "{} cols", lines[0].len());
        assert!(lines.iter().all(|l| l.chars().all(|c| c == 'x')));
    }

    #[test]
    fn small_grids_render_one_char_per_cell() {
        let g = Grid::from_fn(3, 2, |x, _| x);
        let s = render_grid(&g, 80, 40, |_, _, &v| {
            char::from_digit(v as u32, 10).unwrap()
        });
        assert_eq!(s, "012\n012\n");
    }

    #[test]
    fn terrain_shading_orders_by_elevation() {
        let g = Grid::from_fn(10, 1, |x, _| x as f64 * 100.0);
        let s = render_terrain(&g, 10, 1);
        let chars: Vec<char> = s.trim_end().chars().collect();
        assert_eq!(chars.first(), Some(&' '));
        assert_eq!(chars.last(), Some(&'@'));
        // Monotone shade progression.
        const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let rank = |c: char| SHADES.iter().position(|&s| s == c).unwrap();
        for w in chars.windows(2) {
            assert!(rank(w[1]) >= rank(w[0]), "{s}");
        }
    }

    #[test]
    fn masking_renderer_distinguishes_the_three_regimes() {
        let terrain = Grid::new(3, 1, 100.0f64);
        let mut masking = Grid::new(3, 1, f64::INFINITY);
        masking[(0, 0)] = 100.0; // pinned to ground
        masking[(1, 0)] = 100.0 + 600.0; // 3 levels of 200 m
        let s = render_masking(&masking, &terrain, 200.0, 10, 5);
        assert_eq!(s.trim_end(), "#3.");
    }

    #[test]
    fn masking_renderer_never_leaves_the_documented_legend() {
        // The PR-8 satellite bug: NaN headroom survived the clamp, cast
        // to 0, and rendered an undocumented '0' glyph; non-positive
        // level_m could do the same. Every degenerate combination must
        // stay inside the `.`/`#`/1-9 legend.
        let legend = |s: &str| {
            s.chars()
                .all(|c| c == '.' || c == '#' || ('1'..='9').contains(&c) || c == '\n')
        };
        let terrain = Grid::from_fn(5, 1, |x, _| if x == 4 { f64::INFINITY } else { 100.0 });
        let mut masking = Grid::new(5, 1, f64::INFINITY);
        masking[(0, 0)] = f64::NAN; // NaN headroom
        masking[(1, 0)] = f64::NEG_INFINITY; // pinned, not "no influence"
        masking[(2, 0)] = 100.0 + 600.0; // ordinary banded cell
        masking[(4, 0)] = 100.0; // finite masking - inf terrain = -inf headroom
        let s = render_masking(&masking, &terrain, 200.0, 10, 5);
        assert!(legend(&s), "{s:?}");
        assert_eq!(s.trim_end(), "##3.#");

        // Degenerate level_m: zero, negative, NaN — banded cells fall
        // back to '#' rather than inventing glyphs.
        for level in [0.0, -50.0, f64::NAN] {
            let s = render_masking(&masking, &terrain, level, 10, 5);
            assert!(legend(&s), "level {level}: {s:?}");
            assert_eq!(s.trim_end(), "###.#", "level {level}");
        }
    }

    #[test]
    fn empty_grid_renders_empty() {
        let g: Grid<f64> = Grid::new(0, 0, 0.0);
        assert_eq!(render_terrain(&g, 10, 10), "");
    }
}
