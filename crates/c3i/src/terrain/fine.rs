//! The fine-grained (inner-loop parallel) Terrain Masking program — the
//! Tera MTA variant of §6.
//!
//! The coarse-grained program needs a private temp array per thread, which
//! is unaffordable for the hundreds of threads a Tera processor wants. So
//! here the outer loop over threats stays *sequential* and the inner loops
//! are parallelized instead:
//!
//! * the bulk copy / reset / min-merge loops over a threat's region are
//!   flat parallel loops over thousands of cells, and
//! * the masking recurrence is parallelized *ring by ring*: cells within a
//!   ring depend only on the previous ring, so each ring is a parallel
//!   loop (width 8k for ring k) with a barrier between rings.
//!
//! One temp array total; hundreds of threads; exactly the loop widths that
//! make this "viable for the Tera MTA, but not for our conventional
//! coarse-grained multiprocessor platforms" — on an SMP, a few hundred
//! cells per ring is far too little work to amortize OS-thread
//! synchronization.

use super::los::{
    clamp_alt, raw_alt_for_cell, sensor_height, AltStore, KernelArena, Region, ScratchAlt,
};
use super::scenario::TerrainScenario;
use crate::counts::{NoRec, ParallelPhase, PhasedProfile};
use crate::grid::Grid;
use std::sync::atomic::{AtomicU64, Ordering};
use sthreads::{multithreaded_for, OpRecorder, Schedule};

/// Fine-grained Terrain Masking on real host threads. Produces the same
/// grid as Programs 3 and 4 bit-for-bit. `n_threads` is the worker count
/// used for every inner parallel loop.
pub fn terrain_masking_fine_host(scenario: &TerrainScenario, n_threads: usize) -> Grid<f64> {
    terrain_masking_fine_host_sched(scenario, n_threads, Schedule::Stealing)
}

/// [`terrain_masking_fine_host`] with an explicit schedule for the ring
/// loops. Each ring cell writes its own result slot, so the grid is
/// bit-identical under every schedule — the differential fuzzer runs the
/// full schedule matrix through here.
pub fn terrain_masking_fine_host_sched(
    scenario: &TerrainScenario,
    n_threads: usize,
    schedule: Schedule,
) -> Grid<f64> {
    let terrain = &scenario.terrain;
    let mut masking = Grid::new(terrain.x_size(), terrain.y_size(), f64::INFINITY);

    // The one temp array plus the ring result slots live in this thread's
    // arena, reused across threats; ring cell lists are never
    // materialized — each ring is indexed through its edge runs.
    KernelArena::with(|arena| {
        for threat in &scenario.threats {
            let region = Region::of_checked(threat, terrain.x_size(), terrain.y_size());
            let h_s = sensor_height(terrain, threat);

            // temp[x][y] = masking[x][y] over the region (parallel copy).
            let temp = &mut arena.scratch;
            temp.reset(&region, f64::INFINITY);
            for (x, y) in region.cells() {
                temp.set(x, y, AltStore::get(&masking, x, y));
            }

            // Reset the region of masking (parallel in spirit; the write
            // is cheap enough that the host variant keeps it serial per
            // cell and the machine models charge it as a parallel phase).
            for (x, y) in region.cells() {
                AltStore::set(&mut masking, x, y, f64::INFINITY);
            }

            // Ring recurrence: each ring is a parallel loop over its
            // cells, reading only the previous ring; a barrier separates
            // rings.
            for (x, y) in region
                .ring_runs(0)
                .cells()
                .chain(region.ring_runs(1).cells())
            {
                AltStore::set(&mut masking, x, y, f64::NEG_INFINITY);
            }
            for k in 2..=region.radius {
                let runs = region.ring_runs(k);
                let n = runs.len();
                if arena.ring_slots.len() < n {
                    arena.ring_slots.resize_with(n, || AtomicU64::new(0));
                }
                let results = &arena.ring_slots[..n];
                {
                    let masking_ref = &masking;
                    // Rings are the sub-microsecond case (a few hundred
                    // cells, ~100ns each): the default stealing schedule
                    // keeps each worker on a contiguous arc without a
                    // shared claim counter.
                    multithreaded_for(0..n, n_threads, schedule, |i| {
                        let (x, y) = runs.cell(i);
                        let v = raw_alt_for_cell(
                            terrain,
                            scenario.cell_size_m,
                            h_s,
                            region.cx,
                            region.cy,
                            x,
                            y,
                            masking_ref,
                            &mut NoRec,
                        );
                        results[i].store(v.to_bits(), Ordering::Relaxed);
                    });
                }
                for (i, slot) in results.iter().enumerate() {
                    let (x, y) = runs.cell(i);
                    AltStore::set(
                        &mut masking,
                        x,
                        y,
                        f64::from_bits(slot.load(Ordering::Relaxed)),
                    );
                }
            }

            // masking = Min(clamped per-threat altitude, temp) (parallel
            // merge in spirit; serial on the host for the same reason as
            // the reset).
            for (x, y) in region.cells() {
                let per_threat = clamp_alt(AltStore::get(&masking, x, y), terrain[(x, y)]);
                let prior = arena.scratch.get(x, y);
                AltStore::set(&mut masking, x, y, per_threat.min(prior));
            }
        }
    });
    masking
}

/// Fine-grained Terrain Masking under the counting backend: returns the
/// masking grid and the [`PhasedProfile`] — the ordered list of
/// barrier-separated parallel phases (copy, reset, one per ring, merge,
/// per threat) with their widths and operation counts. The machine models
/// charge each phase at the concurrency its width supports.
pub fn terrain_masking_fine(scenario: &TerrainScenario) -> (Grid<f64>, PhasedProfile) {
    let terrain = &scenario.terrain;
    let mut masking = Grid::new(terrain.x_size(), terrain.y_size(), f64::INFINITY);
    let mut profile = PhasedProfile::default();

    let mut serial = OpRecorder::new();
    // The masking initialization is itself a flat parallel loop over the
    // whole grid (width = every cell).
    {
        let mut r = OpRecorder::new();
        r.sstore(terrain.len() as u64);
        profile.phases.push(ParallelPhase {
            width: terrain.len() as u64,
            ops: r.counts(),
        });
    }

    for threat in &scenario.threats {
        let region = Region::of_checked(threat, terrain.x_size(), terrain.y_size());
        let h_s = sensor_height(terrain, threat);
        let cells: Vec<(usize, usize)> = region.cells().collect();
        serial.load(4);
        serial.int(8);

        // Phase: parallel copy masking -> temp.
        let mut temp = ScratchAlt::new(&region, f64::INFINITY);
        let mut r = OpRecorder::new();
        for &(x, y) in &cells {
            temp.set(x, y, AltStore::get(&masking, x, y));
            r.sload(1);
            r.sstore(1);
        }
        profile.phases.push(ParallelPhase {
            width: cells.len() as u64,
            ops: r.counts(),
        });

        // Phase: parallel reset.
        let mut r = OpRecorder::new();
        for &(x, y) in &cells {
            AltStore::set(&mut masking, x, y, f64::INFINITY);
            r.sstore(1);
        }
        profile.phases.push(ParallelPhase {
            width: cells.len() as u64,
            ops: r.counts(),
        });

        // Ring phases.
        let mut r = OpRecorder::new();
        let inner: Vec<(usize, usize)> = region.ring(0).into_iter().chain(region.ring(1)).collect();
        for &(x, y) in &inner {
            AltStore::set(&mut masking, x, y, f64::NEG_INFINITY);
            r.sstore(1);
        }
        profile.phases.push(ParallelPhase {
            width: inner.len() as u64,
            ops: r.counts(),
        });
        for k in 2..=region.radius {
            let ring = region.ring(k);
            let mut r = OpRecorder::new();
            let values: Vec<f64> = ring
                .iter()
                .map(|&(x, y)| {
                    raw_alt_for_cell(
                        terrain,
                        scenario.cell_size_m,
                        h_s,
                        region.cx,
                        region.cy,
                        x,
                        y,
                        &masking,
                        &mut r,
                    )
                })
                .collect();
            for (&(x, y), &v) in ring.iter().zip(&values) {
                AltStore::set(&mut masking, x, y, v);
                r.sstore(1);
            }
            profile.phases.push(ParallelPhase {
                width: ring.len() as u64,
                ops: r.counts(),
            });
        }

        // Phase: parallel min-merge.
        let mut r = OpRecorder::new();
        for &(x, y) in &cells {
            let per_threat = clamp_alt(AltStore::get(&masking, x, y), terrain[(x, y)]);
            let prior = temp.get(x, y);
            AltStore::set(&mut masking, x, y, per_threat.min(prior));
            r.sload(3);
            r.fp(2);
            r.sstore(1);
        }
        profile.phases.push(ParallelPhase {
            width: cells.len() as u64,
            ops: r.counts(),
        });
    }

    profile.serial = serial.counts();
    (masking, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::scenario::small_scenario;
    use crate::terrain::sequential::{terrain_masking_host, terrain_masking_profile};

    #[test]
    fn fine_host_matches_sequential_bitwise() {
        let s = small_scenario(1);
        let seq = terrain_masking_host(&s);
        for threads in [1, 2, 4] {
            let fine = terrain_masking_fine_host(&s, threads);
            assert_eq!(fine, seq, "threads={threads}");
        }
    }

    #[test]
    fn every_schedule_matches_sequential_bitwise() {
        let s = small_scenario(6);
        let seq = terrain_masking_host(&s);
        for schedule in [Schedule::Static, Schedule::Dynamic, Schedule::Stealing] {
            for threads in [1, 2, 8] {
                let fine = terrain_masking_fine_host_sched(&s, threads, schedule);
                assert_eq!(fine, seq, "{schedule:?} threads={threads}");
            }
        }
    }

    #[test]
    fn counting_backend_matches_sequential_bitwise() {
        let s = small_scenario(2);
        let seq = terrain_masking_host(&s);
        let (fine, _) = terrain_masking_fine(&s);
        assert_eq!(fine, seq);
    }

    #[test]
    fn phase_structure_matches_the_algorithm() {
        let s = small_scenario(3);
        let (_, profile) = terrain_masking_fine(&s);
        // One grid-init phase, then per threat: copy + reset +
        // inner-rings + (radius-1) rings + merge.
        let expected: usize = 1 + s
            .threats
            .iter()
            .map(|t| 4 + (t.radius.max(1) - 1))
            .sum::<usize>();
        assert_eq!(profile.n_phases(), expected);
    }

    #[test]
    fn ring_phase_widths_grow_with_ring_index() {
        // For an unclipped threat, ring k has 8k cells; phases recorded in
        // order should show that growth between consecutive ring phases.
        let mut s = small_scenario(4);
        s.threats.truncate(1);
        let t = &mut s.threats[0];
        t.x = 64;
        t.y = 64;
        t.radius = 20; // unclipped in a 128x128 grid
        let (_, profile) = terrain_masking_fine(&s);
        // phases: grid-init, copy, reset, inner(rings 0+1), ring2.., merge
        let ring_phases = &profile.phases[4..profile.phases.len() - 1];
        assert_eq!(ring_phases.len(), 19);
        for (i, p) in ring_phases.iter().enumerate() {
            let k = i + 2;
            assert_eq!(p.width, 8 * k as u64, "ring {k}");
        }
    }

    #[test]
    fn total_fine_ops_track_sequential_ops() {
        // The fine variant does the same arithmetic as the sequential
        // program; totals should agree within bookkeeping noise.
        let s = small_scenario(5);
        let (_, seq_profile) = terrain_masking_profile(&s);
        let (_, fine_profile) = terrain_masking_fine(&s);
        let a = seq_profile.total().instructions() as f64;
        let b = fine_profile.total().instructions() as f64;
        assert!((a - b).abs() / a < 0.05, "seq={a} fine={b}");
    }

    #[test]
    fn weighted_width_supplies_hundreds_of_threads() {
        // §6's point: inner-loop parallelism provides enough threads for
        // the Tera. At benchmark scale regions are ~100 cells across, so
        // the op-weighted mean width must be in the hundreds.
        let s = super::super::scenario::generate(super::super::scenario::TerrainScenarioParams {
            grid_size: 512,
            n_threats: 8,
            seed: 9,
            ..Default::default()
        });
        let (_, profile) = terrain_masking_fine(&s);
        assert!(
            profile.weighted_width() > 100.0,
            "weighted width = {}",
            profile.weighted_width()
        );
    }
}
