//! Exact line-of-sight masking by continuous ray marching — an
//! *independent* oracle for the ring recurrence of [`super::los`].
//!
//! The benchmark algorithm (XDraw-style parent interpolation) is an
//! approximation: each cell inherits the blocking slope of one or two
//! parents on the previous ring. This module computes the reference
//! answer by sampling the terrain (bilinearly interpolated) at fine steps
//! along the actual radar→cell segment and taking the true maximum
//! blocking slope.
//!
//! Two facts are verified by the tests here and used by the validation
//! suite:
//!
//! 1. on axis-aligned and exact-diagonal rays the recurrence's parent
//!    chain follows the ray exactly, so recurrence == oracle;
//! 2. on arbitrary rays the recurrence is a bounded approximation of the
//!    oracle (interpolation smooths ridges) — close on smooth terrain.

use super::los::{clamp_alt, sensor_height, AltStore, Region, ScratchAlt};
use super::scenario::GroundThreat;
use crate::grid::Grid;

/// Bilinearly interpolated terrain elevation at fractional grid
/// coordinates (clamped to the grid).
pub fn elevation_at(terrain: &Grid<f64>, fx: f64, fy: f64) -> f64 {
    let max_x = (terrain.x_size() - 1) as f64;
    let max_y = (terrain.y_size() - 1) as f64;
    let fx = fx.clamp(0.0, max_x);
    let fy = fy.clamp(0.0, max_y);
    let x0 = fx.floor() as usize;
    let y0 = fy.floor() as usize;
    let x1 = (x0 + 1).min(terrain.x_size() - 1);
    let y1 = (y0 + 1).min(terrain.y_size() - 1);
    let tx = fx - x0 as f64;
    let ty = fy - y0 as f64;
    let top = terrain[(x0, y0)] * (1.0 - tx) + terrain[(x1, y0)] * tx;
    let bot = terrain[(x0, y1)] * (1.0 - tx) + terrain[(x1, y1)] * tx;
    top * (1.0 - ty) + bot * ty
}

/// The exact maximum blocking slope along the open segment from the radar
/// at `(cx, cy)` (sensor height `h_s`) toward cell `(x, y)`, sampling
/// every `step` cells. Terrain strictly between radar and cell counts;
/// the endpoints do not.
#[allow(clippy::too_many_arguments)] // same geometry signature as the recurrence it validates
pub fn exact_blocking_slope(
    terrain: &Grid<f64>,
    cell_size: f64,
    h_s: f64,
    cx: usize,
    cy: usize,
    x: usize,
    y: usize,
    step: f64,
) -> f64 {
    let dx = x as f64 - cx as f64;
    let dy = y as f64 - cy as f64;
    let dist = (dx * dx + dy * dy).sqrt();
    if dist < 1.0 {
        return f64::NEG_INFINITY;
    }
    let mut best = f64::NEG_INFINITY;
    // March from just past the radar to just before the cell.
    let mut t = step;
    while t <= dist - 1.0 {
        let fx = cx as f64 + dx * t / dist;
        let fy = cy as f64 + dy * t / dist;
        let elev = elevation_at(terrain, fx, fy);
        let slope = (elev - h_s) / (t * cell_size);
        if slope > best {
            best = slope;
        }
        t += step;
    }
    best
}

/// The exact per-threat masking field over the threat's region (clamped
/// like the benchmark's), computed entirely by ray marching.
pub fn exact_per_threat_masking(
    terrain: &Grid<f64>,
    cell_size: f64,
    threat: &GroundThreat,
    step: f64,
) -> (Region, ScratchAlt) {
    let region = Region::of_checked(threat, terrain.x_size(), terrain.y_size());
    let h_s = sensor_height(terrain, threat);
    let mut out = ScratchAlt::new(&region, f64::INFINITY);
    for (x, y) in region.cells() {
        let b = exact_blocking_slope(terrain, cell_size, h_s, region.cx, region.cy, x, y, step);
        let d = {
            let dx = x as f64 - region.cx as f64;
            let dy = y as f64 - region.cy as f64;
            (dx * dx + dy * dy).sqrt() * cell_size
        };
        let raw = if b == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            h_s + b * d
        };
        out.set(x, y, clamp_alt(raw, terrain[(x, y)]));
    }
    (region, out)
}

/// Aggregate comparison between the benchmark recurrence and the exact
/// oracle over one threat's region: (mean absolute error, max absolute
/// error, both in meters over cells where either field is finite).
pub fn compare_with_recurrence(
    terrain: &Grid<f64>,
    cell_size: f64,
    threat: &GroundThreat,
    step: f64,
) -> (f64, f64) {
    let (region, approx) = super::los::per_threat_masking(terrain, cell_size, threat);
    let (_, exact) = exact_per_threat_masking(terrain, cell_size, threat, step);
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut n = 0u64;
    for (x, y) in region.cells() {
        let a = approx.get(x, y);
        let e = exact.get(x, y);
        if a.is_finite() || e.is_finite() {
            let d = (a - e).abs();
            sum += d;
            max = max.max(d);
            n += 1;
        }
    }
    (sum / n.max(1) as f64, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(size: usize, elev: f64) -> Grid<f64> {
        Grid::new(size, size, elev)
    }

    #[test]
    fn bilinear_interpolation_is_exact_at_nodes_and_linear_between() {
        let g = Grid::from_fn(4, 4, |x, y| (10 * x + y) as f64);
        assert_eq!(elevation_at(&g, 2.0, 3.0), 23.0);
        assert_eq!(elevation_at(&g, 1.5, 0.0), 15.0);
        assert_eq!(elevation_at(&g, 0.0, 1.5), 1.5);
        assert_eq!(elevation_at(&g, 1.5, 1.5), 16.5);
        // Clamped outside.
        assert_eq!(elevation_at(&g, -5.0, 0.0), 0.0);
        assert_eq!(elevation_at(&g, 10.0, 10.0), 33.0);
    }

    #[test]
    fn flat_terrain_has_negative_blocking_everywhere() {
        let terrain = flat(33, 100.0);
        let b = exact_blocking_slope(&terrain, 100.0, 120.0, 16, 16, 28, 20, 0.25);
        assert!(b < 0.0, "mast above flat ground sees everything: {b}");
    }

    #[test]
    fn axis_ray_matches_the_recurrence_exactly() {
        // Wall at x = cx + 4 (all y): on the +x axis the recurrence's
        // parent chain is the ray itself, so both must agree to fp noise.
        let size = 41;
        let mut terrain = flat(size, 0.0);
        let c = size / 2;
        for y in 0..size {
            terrain[(c + 4, y)] = 300.0;
        }
        let t = GroundThreat {
            x: c,
            y: c,
            radius: 15,
            mast_height: 10.0,
        };
        let (_, approx) = super::super::los::per_threat_masking(&terrain, 100.0, &t);
        let (_, exact) = exact_per_threat_masking(&terrain, 100.0, &t, 0.25);
        for dist in 6..=15 {
            let a = approx.get(c + dist, c);
            let e = exact.get(c + dist, c);
            assert!(
                (a - e).abs() < 1e-6,
                "axis cell at +{dist}: approx {a} vs exact {e}"
            );
        }
    }

    #[test]
    fn diagonal_ray_matches_the_recurrence_exactly() {
        let size = 41;
        let mut terrain = flat(size, 0.0);
        let c = size / 2;
        terrain[(c + 3, c + 3)] = 400.0;
        let t = GroundThreat {
            x: c,
            y: c,
            radius: 14,
            mast_height: 10.0,
        };
        let (_, approx) = super::super::los::per_threat_masking(&terrain, 100.0, &t);
        let (_, exact) = exact_per_threat_masking(&terrain, 100.0, &t, 0.25);
        for d in 5..=14 {
            let a = approx.get(c + d, c + d);
            let e = exact.get(c + d, c + d);
            // The bilinear oracle sees the single-cell peak slightly
            // differently than the discrete chain; tolerance in meters.
            assert!((a - e).abs() < 30.0, "diag cell +{d}: {a} vs {e}");
        }
    }

    #[test]
    fn recurrence_tracks_the_oracle_on_smooth_terrain() {
        // On fractal terrain with ~1500 m relief, the XDraw approximation
        // should track the exact field closely in the mean.
        let scenario =
            super::super::scenario::generate(super::super::scenario::TerrainScenarioParams {
                grid_size: 128,
                n_threats: 1,
                seed: 17,
                ..Default::default()
            });
        let t = GroundThreat {
            x: 64,
            y: 64,
            radius: 30,
            mast_height: 15.0,
        };
        let (mean, max) = compare_with_recurrence(&scenario.terrain, scenario.cell_size_m, &t, 0.5);
        assert!(
            mean < 30.0,
            "mean masking error too large: {mean} m (max {max})"
        );
    }

    #[test]
    fn oracle_is_monotone_in_sampling_resolution() {
        // Finer sampling can only find more blocking (higher slopes).
        let scenario =
            super::super::scenario::generate(super::super::scenario::TerrainScenarioParams {
                grid_size: 96,
                n_threats: 1,
                seed: 4,
                ..Default::default()
            });
        let h_s = sensor_height(
            &scenario.terrain,
            &GroundThreat {
                x: 48,
                y: 48,
                radius: 20,
                mast_height: 10.0,
            },
        );
        for &(x, y) in &[(60usize, 52usize), (33, 41), (48, 66)] {
            let coarse = exact_blocking_slope(&scenario.terrain, 100.0, h_s, 48, 48, x, y, 1.0);
            let fine = exact_blocking_slope(&scenario.terrain, 100.0, h_s, 48, 48, x, y, 0.1);
            assert!(
                fine >= coarse - 1e-12,
                "({x},{y}): fine {fine} < coarse {coarse}"
            );
        }
    }
}
