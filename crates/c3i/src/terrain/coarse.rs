//! Program 4: the coarse-grained multithreaded Terrain Masking program.
//!
//! Threads dynamically claim unprocessed threats ("`threat = next
//! unprocessed threat`"). Each thread computes the claimed threat's safe
//! altitudes into its **own** temp array, then folds them into the shared
//! `masking` array block by block: the terrain is blocked into
//! `num_blocks × num_blocks` equal blocks, each with its own lock, and a
//! block is locked around the min-merge of the overlap between the threat's
//! region and that block.
//!
//! The roles of `temp` and `masking` are swapped relative to Program 3 (the
//! recurrence runs in `temp`, the merge target is `masking`), which is also
//! what makes the per-thread temp arrays necessary — the paper's reason
//! this approach drowns in memory for the hundreds of threads the Tera MTA
//! wants.

use super::los::{clamp_alt, compute_raw_alts_in, KernelArena, Region};
use super::scenario::TerrainScenario;
use crate::counts::{NoRec, Profile, Rec};
use crate::grid::Grid;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use sthreads::{multithreaded_for, OpRecorder, Schedule, ThreadCounts};

/// The paper's block decomposition: `nb × nb` equal-ish blocks over the
/// terrain, one lock per block ("ten-by-ten blocking").
#[derive(Debug, Clone, Copy)]
pub struct Blocking {
    nb: usize,
    bw: usize,
    bh: usize,
    x_size: usize,
    y_size: usize,
}

impl Blocking {
    /// Block an `x_size × y_size` grid into `nb × nb` blocks.
    pub fn new(x_size: usize, y_size: usize, nb: usize) -> Self {
        assert!(nb > 0 && x_size > 0 && y_size > 0);
        Self {
            nb,
            bw: x_size.div_ceil(nb),
            bh: y_size.div_ceil(nb),
            x_size,
            y_size,
        }
    }

    /// Number of blocks per side.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Inclusive cell bounds `(x0, y0, x1, y1)` of block `(bi, bj)`.
    pub fn block_bounds(&self, bi: usize, bj: usize) -> (usize, usize, usize, usize) {
        let x0 = bi * self.bw;
        let y0 = bj * self.bh;
        (
            x0,
            y0,
            ((bi + 1) * self.bw - 1).min(self.x_size - 1),
            ((bj + 1) * self.bh - 1).min(self.y_size - 1),
        )
    }

    /// Indices of blocks whose cells overlap `region`.
    pub fn blocks_overlapping(&self, region: &Region) -> Vec<(usize, usize)> {
        let bi0 = region.x0 / self.bw;
        let bi1 = region.x1 / self.bw;
        let bj0 = region.y0 / self.bh;
        let bj1 = region.y1 / self.bh;
        let mut out = Vec::with_capacity((bi1 - bi0 + 1) * (bj1 - bj0 + 1));
        for bi in bi0..=bi1 {
            for bj in bj0..=bj1 {
                if bi < self.nb && bj < self.nb {
                    out.push((bi, bj));
                }
            }
        }
        out
    }
}

/// A shared `f64` grid whose cells may be written concurrently from
/// different threads *under the block-lock discipline*: relaxed atomics
/// carry the values, the block locks provide the mutual exclusion and
/// ordering the algorithm needs.
struct SharedMaskGrid {
    x_size: usize,
    data: Vec<AtomicU64>,
}

impl SharedMaskGrid {
    fn new_infinite(x_size: usize, y_size: usize) -> Self {
        let bits = f64::INFINITY.to_bits();
        Self {
            x_size,
            data: (0..x_size * y_size).map(|_| AtomicU64::new(bits)).collect(),
        }
    }

    #[inline]
    fn get(&self, x: usize, y: usize) -> f64 {
        f64::from_bits(self.data[y * self.x_size + x].load(Ordering::Relaxed))
    }

    #[inline]
    fn set(&self, x: usize, y: usize, v: f64) {
        self.data[y * self.x_size + x].store(v.to_bits(), Ordering::Relaxed);
    }

    fn into_grid(self, y_size: usize) -> Grid<f64> {
        Grid::from_fn(self.x_size, y_size, |x, y| {
            f64::from_bits(self.data[y * self.x_size + x].load(Ordering::Relaxed))
        })
    }
}

/// Per-threat work shared by the host and counting variants: compute the
/// threat's raw altitudes into a scratch array, then merge them into
/// `masking` block by block under the supplied lock/unlock hooks.
fn process_threat<R: Rec>(
    scenario: &TerrainScenario,
    ti: usize,
    blocking: &Blocking,
    masking: &SharedMaskGrid,
    locks: Option<&[Mutex<()>]>,
    r: &mut R,
) {
    let terrain = &scenario.terrain;
    let threat = &scenario.threats[ti];
    let region = Region::of_checked(threat, terrain.x_size(), terrain.y_size());
    r.sync(1); // claim from the work queue (fetch-add)
    r.load(4);
    r.int(8);

    // Working storage (the per-thread temp array and the ring kernel
    // tables) comes from this worker thread's arena, reused across every
    // threat the worker claims.
    KernelArena::with(|arena| {
        let (temp, kern) = arena.split();

        // temp[x][y] = INFINITY over the region of influence.
        temp.reset(&region, f64::INFINITY);
        r.sstore(region.n_cells() as u64);

        // temp[x][y] = maximum safe altitude due to this threat.
        compute_raw_alts_in(
            terrain,
            scenario.cell_size_m,
            threat,
            &region,
            temp,
            kern,
            r,
        );

        // Merge into the shared masking array block by block, locking each
        // block around its overlap.
        for (bi, bj) in blocking.blocks_overlapping(&region) {
            let _guard = locks.map(|l| l[bi * blocking.nb() + bj].lock());
            r.sync(2); // lock + unlock
            let (bx0, by0, bx1, by1) = blocking.block_bounds(bi, bj);
            let x0 = bx0.max(region.x0);
            let x1 = bx1.min(region.x1);
            let y0 = by0.max(region.y0);
            let y1 = by1.min(region.y1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    use super::los::AltStore;
                    let per_threat = clamp_alt(temp.get(x, y), terrain[(x, y)]);
                    let prior = masking.get(x, y);
                    masking.set(x, y, per_threat.min(prior));
                    r.sload(3);
                    r.fp(2);
                    r.sstore(1);
                }
            }
        }
    });
}

/// Coarse-grained Terrain Masking (Program 4) on real host threads:
/// `n_threads` workers self-schedule over the threats; merges are guarded
/// by `n_blocks × n_blocks` block locks.
pub fn terrain_masking_coarse_host(
    scenario: &TerrainScenario,
    n_threads: usize,
    n_blocks: usize,
) -> Grid<f64> {
    terrain_masking_coarse_host_sched(scenario, n_threads, n_blocks, Schedule::Dynamic)
}

/// [`terrain_masking_coarse_host`] with an explicit iteration schedule for
/// the outer threat loop. Per-cell merges commute (min under block locks),
/// so every schedule produces the same grid bit-for-bit — the invariant
/// the differential fuzzer exercises across the full schedule matrix.
pub fn terrain_masking_coarse_host_sched(
    scenario: &TerrainScenario,
    n_threads: usize,
    n_blocks: usize,
    schedule: Schedule,
) -> Grid<f64> {
    let terrain = &scenario.terrain;
    let blocking = Blocking::new(terrain.x_size(), terrain.y_size(), n_blocks);
    let masking = SharedMaskGrid::new_infinite(terrain.x_size(), terrain.y_size());
    let locks: Vec<Mutex<()>> = (0..n_blocks * n_blocks).map(|_| Mutex::new(())).collect();

    multithreaded_for(0..scenario.threats.len(), n_threads, schedule, |ti| {
        process_threat(scenario, ti, &blocking, &masking, Some(&locks), &mut NoRec);
    });

    masking.into_grid(terrain.y_size())
}

/// Per-threat operation counts of the coarse-grained program (temp init,
/// recurrence, block-locked merge). Thread profiles for *any* worker count
/// are greedy aggregations of this vector — see [`greedy_bins`].
pub fn per_threat_counts(scenario: &TerrainScenario, n_blocks: usize) -> Vec<sthreads::OpCounts> {
    let terrain = &scenario.terrain;
    let blocking = Blocking::new(terrain.x_size(), terrain.y_size(), n_blocks);
    let masking = SharedMaskGrid::new_infinite(terrain.x_size(), terrain.y_size());
    (0..scenario.threats.len())
        .map(|ti| {
            let mut r = OpRecorder::new();
            process_threat(scenario, ti, &blocking, &masking, None, &mut r);
            r.counts()
        })
        .collect()
}

/// The deterministic model of dynamic self-scheduling: each item, in claim
/// order, goes to the least-loaded of `n_threads` logical threads.
pub fn greedy_bins(per_item: &[sthreads::OpCounts], n_threads: usize) -> ThreadCounts {
    let n = n_threads.max(1);
    let mut bins = vec![sthreads::OpCounts::default(); n];
    let mut load = vec![0u64; n];
    for c in per_item {
        let t = load
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .map(|(i, _)| i)
            .unwrap();
        bins[t].add(c);
        load[t] += c.instructions();
    }
    ThreadCounts::new(bins)
}

/// Program 4 under the counting backend. Per-threat operation counts are
/// measured exactly, then threats are assigned to `n_threads` logical
/// threads with the least-loaded-first greedy rule — the deterministic
/// model of dynamic self-scheduling. Returns the masking grid and a
/// [`Profile`] whose parallel region has `n_threads` logical threads.
pub fn terrain_masking_coarse(
    scenario: &TerrainScenario,
    n_threads: usize,
    n_blocks: usize,
) -> (Grid<f64>, Profile) {
    let terrain = &scenario.terrain;
    let blocking = Blocking::new(terrain.x_size(), terrain.y_size(), n_blocks);
    let masking = SharedMaskGrid::new_infinite(terrain.x_size(), terrain.y_size());

    let mut serial = OpRecorder::new();
    serial.sstore(terrain.len() as u64); // masking init
    serial.int(2 * (n_blocks * n_blocks) as u64); // block bounds setup
    serial.spawn(n_threads as u64);

    // Exact per-threat counts (locks irrelevant to counting: sync ops are
    // recorded either way).
    let per_threat: Vec<sthreads::OpCounts> = (0..scenario.threats.len())
        .map(|ti| {
            let mut r = OpRecorder::new();
            process_threat(scenario, ti, &blocking, &masking, None, &mut r);
            r.counts()
        })
        .collect();

    (
        masking.into_grid(terrain.y_size()),
        Profile {
            serial: serial.counts(),
            parallel: greedy_bins(&per_threat, n_threads),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::scenario::small_scenario;
    use crate::terrain::sequential::terrain_masking_host;

    #[test]
    fn blocking_covers_the_grid_exactly() {
        let b = Blocking::new(100, 100, 10);
        let mut covered = vec![0u32; 100 * 100];
        for bi in 0..10 {
            for bj in 0..10 {
                let (x0, y0, x1, y1) = b.block_bounds(bi, bj);
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        covered[y * 100 + x] += 1;
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn blocking_handles_non_divisible_sizes() {
        let b = Blocking::new(101, 97, 10);
        let (.., x1, y1) = b.block_bounds(9, 9);
        assert_eq!(x1, 100);
        assert_eq!(y1, 96);
    }

    #[test]
    fn blocks_overlapping_finds_the_right_blocks() {
        let b = Blocking::new(100, 100, 10);
        let region = Region {
            cx: 15,
            cy: 15,
            radius: 10,
            x0: 5,
            y0: 5,
            x1: 25,
            y1: 25,
        };
        let blocks = b.blocks_overlapping(&region);
        // Region spans cells 5..=25 → blocks 0..=2 on each axis.
        assert_eq!(blocks.len(), 9);
        assert!(blocks.contains(&(0, 0)) && blocks.contains(&(2, 2)));
        assert!(!blocks.contains(&(3, 0)));
    }

    #[test]
    fn coarse_host_matches_sequential_bitwise() {
        let s = small_scenario(1);
        let seq = terrain_masking_host(&s);
        for threads in [1, 2, 4, 8] {
            let coarse = terrain_masking_coarse_host(&s, threads, 10);
            assert_eq!(coarse, seq, "threads={threads}");
        }
    }

    #[test]
    fn every_schedule_matches_sequential_bitwise() {
        let s = small_scenario(6);
        let seq = terrain_masking_host(&s);
        for schedule in [Schedule::Static, Schedule::Dynamic, Schedule::Stealing] {
            for threads in [1, 2, 8] {
                let coarse = terrain_masking_coarse_host_sched(&s, threads, 10, schedule);
                assert_eq!(coarse, seq, "{schedule:?} threads={threads}");
            }
        }
    }

    #[test]
    fn block_count_does_not_change_the_answer() {
        let s = small_scenario(2);
        let seq = terrain_masking_host(&s);
        for blocks in [1, 3, 10, 40] {
            let coarse = terrain_masking_coarse_host(&s, 4, blocks);
            assert_eq!(coarse, seq, "blocks={blocks}");
        }
    }

    #[test]
    fn counting_backend_matches_host_result() {
        let s = small_scenario(3);
        let host = terrain_masking_coarse_host(&s, 4, 10);
        let (counted, profile) = terrain_masking_coarse(&s, 4, 10);
        assert_eq!(counted, host);
        assert_eq!(profile.n_logical_threads(), 4);
        assert!(
            profile.parallel.total().sync_ops > 0,
            "lock traffic must be recorded"
        );
    }

    #[test]
    fn greedy_assignment_is_reasonably_balanced() {
        let s = small_scenario(4);
        let (_, profile) = terrain_masking_coarse(&s, 3, 10);
        // 12 irregular threats over 3 threads: greedy keeps imbalance well
        // under the worst case.
        let imbalance = profile.parallel.imbalance();
        assert!((1.0..3.0).contains(&imbalance), "imbalance={imbalance}");
    }

    #[test]
    fn sync_ops_scale_with_block_granularity() {
        // Finer blocking ⇒ more lock acquisitions recorded.
        let s = small_scenario(5);
        let (_, p1) = terrain_masking_coarse(&s, 4, 2);
        let (_, p2) = terrain_masking_coarse(&s, 4, 20);
        assert!(p2.total().sync_ops > p1.total().sync_ops);
    }
}
