//! Program 3: the sequential Terrain Masking program.
//!
//! For each threat in turn: save the affected region of the shared
//! `masking` array into `temp`, recompute the region in place with the
//! per-threat recurrence, then fold `min(masking, temp)` back. The
//! outer loop is not parallelizable as written because different threats'
//! regions of influence overlap — concurrent iterations would clobber each
//! other's in-place recurrences.
//!
//! The four bulk loops per threat (copy out, reset, compute, min-merge)
//! stream over large arrays doing almost no arithmetic, which is why the
//! paper finds this program memory-bound.

use super::los::{
    clamp_alt, compute_raw_alts_in, reference, AltStore, KernelArena, Region, ScratchAlt,
};
use super::scenario::TerrainScenario;
use crate::counts::{NoRec, Profile, Rec};
use crate::grid::Grid;
use sthreads::OpRecorder;

/// Sequential Terrain Masking (Program 3). Returns the masking grid:
/// `masking[x][y]` is the maximum altitude at which an aircraft at that
/// cell is invisible to every threat (`+∞` where no threat has influence).
pub fn terrain_masking<R: Rec>(scenario: &TerrainScenario, r: &mut R) -> Grid<f64> {
    let mut masking = Grid::new(0, 0, f64::INFINITY);
    terrain_masking_into(scenario, &mut masking, r);
    masking
}

/// Program 3 into a caller-owned output grid, with all working storage
/// (the per-threat `temp` scratch and the ring kernel tables) drawn from
/// this thread's [`KernelArena`]. After one warm-up call, repeated table
/// pipelines through this entry perform zero hot-path allocations — the
/// property the counting-allocator test pins.
pub fn terrain_masking_into<R: Rec>(
    scenario: &TerrainScenario,
    masking: &mut Grid<f64>,
    r: &mut R,
) {
    let terrain = &scenario.terrain;
    masking.reset(terrain.x_size(), terrain.y_size(), f64::INFINITY);
    r.sstore(masking.len() as u64); // masking[x][y] = INFINITY

    KernelArena::with(|arena| {
        for threat in &scenario.threats {
            let region = Region::of_checked(threat, terrain.x_size(), terrain.y_size());
            r.load(4); // threat record
            r.int(8); // region bounds
            let (temp, kern) = arena.split();

            // temp[x][y] = masking[x][y] over the region of influence.
            temp.reset(&region, f64::INFINITY);
            for (x, y) in region.cells() {
                temp.set(x, y, AltStore::get(masking, x, y));
                r.sload(1);
                r.sstore(1);
            }

            // masking[x][y] = INFINITY over the region (reset for the
            // in-place recurrence; raw values overwrite these).
            for (x, y) in region.cells() {
                AltStore::set(masking, x, y, f64::INFINITY);
                r.sstore(1);
            }

            // masking[x][y] = maximum safe altitude due to this threat.
            compute_raw_alts_in(
                terrain,
                scenario.cell_size_m,
                threat,
                &region,
                masking,
                kern,
                r,
            );

            // masking[x][y] = Min(masking[x][y], temp[x][y]), clamping the
            // raw recurrence value to the terrain floor as it is folded in.
            for (x, y) in region.cells() {
                let per_threat = clamp_alt(AltStore::get(masking, x, y), terrain[(x, y)]);
                let prior = temp.get(x, y);
                AltStore::set(masking, x, y, per_threat.min(prior));
                r.sload(3); // masking, temp, terrain
                r.fp(2); // clamp + min
                r.sstore(1);
            }
        }
    });
}

/// The pinned scalar baseline of Program 3: fresh per-threat allocations
/// and the historical cell-at-a-time recurrence ([`mod@reference`]). This is
/// the comparison side of the `kernels` harness phase, the bench baseline,
/// and the fuzzer's kernel-differential config; it must keep the exact
/// pre-optimization behavior.
pub fn terrain_masking_reference(scenario: &TerrainScenario) -> Grid<f64> {
    let terrain = &scenario.terrain;
    let mut masking = Grid::new(terrain.x_size(), terrain.y_size(), f64::INFINITY);
    for threat in &scenario.threats {
        let region = Region::of_checked(threat, terrain.x_size(), terrain.y_size());
        let mut temp = ScratchAlt::new(&region, f64::INFINITY);
        for (x, y) in region.cells() {
            temp.set(x, y, AltStore::get(&masking, x, y));
        }
        for (x, y) in region.cells() {
            AltStore::set(&mut masking, x, y, f64::INFINITY);
        }
        reference::compute_raw_alts(
            terrain,
            scenario.cell_size_m,
            threat,
            &region,
            &mut masking,
            &mut NoRec,
        );
        for (x, y) in region.cells() {
            let per_threat = clamp_alt(AltStore::get(&masking, x, y), terrain[(x, y)]);
            let prior = temp.get(x, y);
            AltStore::set(&mut masking, x, y, per_threat.min(prior));
        }
    }
    masking
}

/// Convenience wrapper running Program 3 without recording.
pub fn terrain_masking_host(scenario: &TerrainScenario) -> Grid<f64> {
    terrain_masking(scenario, &mut NoRec)
}

/// Run Program 3 under the counting backend, returning the masking grid
/// and the operation [`Profile`] (one logical thread).
pub fn terrain_masking_profile(scenario: &TerrainScenario) -> (Grid<f64>, Profile) {
    let mut r = OpRecorder::new();
    let masking = terrain_masking(scenario, &mut r);
    (masking, Profile::sequential(Default::default(), r.counts()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::scenario::small_scenario;

    #[test]
    fn cells_outside_all_regions_stay_infinite() {
        let s = small_scenario(1);
        let masking = terrain_masking_host(&s);
        let regions: Vec<Region> = s
            .threats
            .iter()
            .map(|t| Region::of_checked(t, s.terrain.x_size(), s.terrain.y_size()))
            .collect();
        let mut outside_seen = 0;
        for (x, y, &v) in masking.iter_cells() {
            if !regions.iter().any(|rg| rg.contains(x, y)) {
                assert!(
                    v.is_infinite(),
                    "({x},{y}) outside all regions must be +inf"
                );
                outside_seen += 1;
            }
        }
        assert!(
            outside_seen > 0,
            "small scenario should leave some terrain uncovered"
        );
    }

    #[test]
    fn covered_cells_are_finite_and_at_least_terrain_level() {
        let s = small_scenario(2);
        let masking = terrain_masking_host(&s);
        let regions: Vec<Region> = s
            .threats
            .iter()
            .map(|t| Region::of_checked(t, s.terrain.x_size(), s.terrain.y_size()))
            .collect();
        for (x, y, &v) in masking.iter_cells() {
            if regions.iter().any(|rg| rg.contains(x, y)) {
                assert!(v.is_finite(), "covered cell ({x},{y}) must be finite");
                assert!(
                    v >= s.terrain[(x, y)] - 1e-9,
                    "masking below terrain at ({x},{y}): {v} < {}",
                    s.terrain[(x, y)]
                );
            }
        }
    }

    #[test]
    fn masking_is_min_over_per_threat_fields() {
        let s = small_scenario(3);
        let masking = terrain_masking_host(&s);
        // Independent composition: compute each threat field standalone
        // and take the pointwise min.
        let mut expected = Grid::new(s.terrain.x_size(), s.terrain.y_size(), f64::INFINITY);
        for t in &s.threats {
            let (region, field) =
                super::super::los::per_threat_masking(&s.terrain, s.cell_size_m, t);
            for (x, y) in region.cells() {
                let v = field.get(x, y);
                if v < expected[(x, y)] {
                    expected[(x, y)] = v;
                }
            }
        }
        for (x, y, &v) in masking.iter_cells() {
            let e = expected[(x, y)];
            assert!(
                v == e || (v.is_infinite() && e.is_infinite()),
                "mismatch at ({x},{y}): {v} vs {e}"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = small_scenario(4);
        assert_eq!(terrain_masking_host(&s), terrain_masking_host(&s));
    }

    #[test]
    fn profile_is_memory_bound() {
        // §6: "The program is memory-bound, rather than compute-bound."
        // The signature on a cache-based machine is streaming traffic over
        // large arrays: a substantial fraction of all operations here,
        // versus essentially none in Threat Analysis.
        let (_, p) = terrain_masking_profile(&small_scenario(1));
        let t = p.total();
        assert!(
            t.stream_fraction() > 0.15,
            "Terrain Masking must stream heavily: {:.3}",
            t.stream_fraction()
        );
        let (_, ta) = crate::threat::sequential::threat_analysis_profile(
            &crate::threat::scenario::small_scenario(1),
        );
        assert!(
            ta.total().stream_fraction() < 0.02,
            "Threat Analysis must be compute-bound: {:.3}",
            ta.total().stream_fraction()
        );
        assert!(
            t.stream_fraction() > 10.0 * ta.total().stream_fraction(),
            "TM ({:.3}) must stream far more than TA ({:.3})",
            t.stream_fraction(),
            ta.total().stream_fraction()
        );
    }

    #[test]
    fn threat_order_does_not_matter() {
        // min is commutative/associative, so reversing the threat order
        // must give the identical grid.
        let mut s = small_scenario(5);
        let a = terrain_masking_host(&s);
        s.threats.reverse();
        let b = terrain_masking_host(&s);
        assert_eq!(a, b);
    }

    #[test]
    fn reference_baseline_is_bit_identical_to_optimized() {
        for seed in 1..=6 {
            let s = small_scenario(seed);
            let opt = terrain_masking_host(&s);
            let refr = terrain_masking_reference(&s);
            for (x, y, &v) in opt.iter_cells() {
                assert_eq!(
                    v.to_bits(),
                    refr[(x, y)].to_bits(),
                    "seed {seed} cell ({x},{y}): {v} vs {}",
                    refr[(x, y)]
                );
            }
        }
    }

    #[test]
    fn into_entry_reuses_the_output_grid() {
        let s = small_scenario(2);
        let fresh = terrain_masking_host(&s);
        // A dirty, differently-shaped output grid must be fully reshaped
        // and overwritten.
        let mut out = Grid::new(3, 7, -1.0);
        terrain_masking_into(&s, &mut out, &mut NoRec);
        assert_eq!(out, fresh);
    }

    #[test]
    fn empty_threat_list_leaves_everything_unmasked() {
        let mut s = small_scenario(6);
        s.threats.clear();
        let masking = terrain_masking_host(&s);
        assert!(masking.as_slice().iter().all(|v| v.is_infinite()));
    }
}
