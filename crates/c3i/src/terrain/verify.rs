//! Correctness test for Terrain Masking output.
//!
//! The checks are independent of which program variant produced the grid:
//!
//! 1. cells outside every region of influence are `+∞`;
//! 2. covered cells are finite and never below the terrain;
//! 3. the grid equals the pointwise minimum of independently recomputed
//!    per-threat masking fields (exactly — all variants are bit-identical
//!    by construction);
//! 4. monotonicity: the masking of a scenario never *increases* when a
//!    threat is added.

use super::los::per_threat_masking;
use super::scenario::TerrainScenario;
use crate::grid::Grid;

/// Why a Terrain Masking output failed verification.
#[derive(Debug, Clone, PartialEq)]
pub enum TerrainVerifyError {
    /// Output grid dimensions do not match the terrain.
    WrongShape {
        /// Expected (terrain) dimensions.
        expected: (usize, usize),
        /// Dimensions of the grid under test.
        got: (usize, usize),
    },
    /// A cell outside every region of influence is not `+∞`.
    UncoveredCellNotInfinite {
        /// Cell coordinates.
        cell: (usize, usize),
        /// Value found.
        value: f64,
    },
    /// A covered cell is `±∞` or NaN.
    CoveredCellNotFinite {
        /// Cell coordinates.
        cell: (usize, usize),
        /// Value found.
        value: f64,
    },
    /// A cell's masking altitude lies below the terrain surface.
    BelowTerrain {
        /// Cell coordinates.
        cell: (usize, usize),
        /// Masking value found.
        value: f64,
        /// Terrain elevation there.
        terrain: f64,
    },
    /// A cell disagrees with the independently recomputed min-composition.
    Mismatch {
        /// Cell coordinates.
        cell: (usize, usize),
        /// Value under test.
        got: f64,
        /// Independently recomputed value.
        expected: f64,
    },
}

impl std::fmt::Display for TerrainVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TerrainVerifyError::WrongShape { expected, got } => {
                write!(f, "wrong shape: expected {expected:?}, got {got:?}")
            }
            TerrainVerifyError::UncoveredCellNotInfinite { cell, value } => {
                write!(f, "uncovered cell {cell:?} should be +inf, got {value}")
            }
            TerrainVerifyError::CoveredCellNotFinite { cell, value } => {
                write!(f, "covered cell {cell:?} should be finite, got {value}")
            }
            TerrainVerifyError::BelowTerrain {
                cell,
                value,
                terrain,
            } => {
                write!(f, "cell {cell:?}: masking {value} below terrain {terrain}")
            }
            TerrainVerifyError::Mismatch {
                cell,
                got,
                expected,
            } => {
                write!(f, "cell {cell:?}: got {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for TerrainVerifyError {}

/// Verify a masking grid against its scenario (checks 1–3 above).
pub fn verify_masking(
    scenario: &TerrainScenario,
    masking: &Grid<f64>,
) -> Result<(), TerrainVerifyError> {
    let terrain = &scenario.terrain;
    if (masking.x_size(), masking.y_size()) != (terrain.x_size(), terrain.y_size()) {
        return Err(TerrainVerifyError::WrongShape {
            expected: (terrain.x_size(), terrain.y_size()),
            got: (masking.x_size(), masking.y_size()),
        });
    }

    // Independent recomposition: min over standalone per-threat fields.
    let mut expected = Grid::new(terrain.x_size(), terrain.y_size(), f64::INFINITY);
    let mut covered = Grid::new(terrain.x_size(), terrain.y_size(), false);
    for t in &scenario.threats {
        let (region, field) = per_threat_masking(terrain, scenario.cell_size_m, t);
        for (x, y) in region.cells() {
            use super::los::AltStore;
            let v = field.get(x, y);
            if v < expected[(x, y)] {
                expected[(x, y)] = v;
            }
            covered[(x, y)] = true;
        }
    }

    for (x, y, &v) in masking.iter_cells() {
        if v.is_nan() {
            return Err(TerrainVerifyError::CoveredCellNotFinite {
                cell: (x, y),
                value: v,
            });
        }
        if !covered[(x, y)] {
            if !(v.is_infinite() && v > 0.0) {
                return Err(TerrainVerifyError::UncoveredCellNotInfinite {
                    cell: (x, y),
                    value: v,
                });
            }
            continue;
        }
        if !v.is_finite() {
            return Err(TerrainVerifyError::CoveredCellNotFinite {
                cell: (x, y),
                value: v,
            });
        }
        if v < terrain[(x, y)] - 1e-9 {
            return Err(TerrainVerifyError::BelowTerrain {
                cell: (x, y),
                value: v,
                terrain: terrain[(x, y)],
            });
        }
        let e = expected[(x, y)];
        if v != e {
            return Err(TerrainVerifyError::Mismatch {
                cell: (x, y),
                got: v,
                expected: e,
            });
        }
    }
    Ok(())
}

/// Check 4: adding a threat never increases masking anywhere. Returns the
/// first offending cell if violated.
pub fn check_monotonicity(
    base: &Grid<f64>,
    with_extra_threat: &Grid<f64>,
) -> Result<(), TerrainVerifyError> {
    for (x, y, &b) in base.iter_cells() {
        let w = with_extra_threat[(x, y)];
        if w > b {
            return Err(TerrainVerifyError::Mismatch {
                cell: (x, y),
                got: w,
                expected: b,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::coarse::terrain_masking_coarse_host;
    use crate::terrain::fine::terrain_masking_fine_host;
    use crate::terrain::los::Region;
    use crate::terrain::scenario::small_scenario;
    use crate::terrain::sequential::terrain_masking_host;

    #[test]
    fn all_three_variants_verify() {
        let s = small_scenario(1);
        verify_masking(&s, &terrain_masking_host(&s)).expect("sequential");
        verify_masking(&s, &terrain_masking_coarse_host(&s, 4, 10)).expect("coarse");
        verify_masking(&s, &terrain_masking_fine_host(&s, 4)).expect("fine");
    }

    #[test]
    fn detects_wrong_shape() {
        let s = small_scenario(2);
        let wrong = Grid::new(3, 3, 0.0);
        assert!(matches!(
            verify_masking(&s, &wrong),
            Err(TerrainVerifyError::WrongShape { .. })
        ));
    }

    #[test]
    fn detects_corrupted_cell() {
        let s = small_scenario(3);
        let mut m = terrain_masking_host(&s);
        // Corrupt a covered cell (the threat's own cell is always covered).
        let t = s.threats[0];
        m[(t.x, t.y)] += 100.0;
        let err = verify_masking(&s, &m).unwrap_err();
        assert!(
            matches!(err, TerrainVerifyError::Mismatch { .. }),
            "unexpected: {err:?}"
        );
    }

    #[test]
    fn detects_spurious_coverage() {
        let s = small_scenario(4);
        let mut m = terrain_masking_host(&s);
        // Find an uncovered cell and fake a finite value there.
        let regions: Vec<Region> = s
            .threats
            .iter()
            .map(|t| Region::of_checked(t, s.terrain.x_size(), s.terrain.y_size()))
            .collect();
        let (x, y) = m
            .iter_cells()
            .find(|&(x, y, _)| !regions.iter().any(|r| r.contains(x, y)))
            .map(|(x, y, _)| (x, y))
            .expect("small scenario must have uncovered terrain");
        m[(x, y)] = 1234.5;
        assert!(matches!(
            verify_masking(&s, &m),
            Err(TerrainVerifyError::UncoveredCellNotInfinite { .. })
        ));
    }

    #[test]
    fn detects_nan() {
        let s = small_scenario(5);
        let mut m = terrain_masking_host(&s);
        m[(0, 0)] = f64::NAN;
        assert!(matches!(
            verify_masking(&s, &m),
            Err(TerrainVerifyError::CoveredCellNotFinite { .. })
        ));
    }

    #[test]
    fn adding_a_threat_is_monotone() {
        let mut s = small_scenario(6);
        let extra = s.threats.pop().unwrap();
        let base = terrain_masking_host(&s);
        s.threats.push(extra);
        let more = terrain_masking_host(&s);
        check_monotonicity(&base, &more).expect("adding a threat must only lower masking");
    }
}
