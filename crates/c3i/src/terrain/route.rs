//! Low-observability route planning — the downstream consumer of Terrain
//! Masking.
//!
//! The benchmark's output is, for every terrain cell, the maximum
//! altitude at which an aircraft there is invisible to all radars. The
//! C3I application on top of it is mission planning: find a route across
//! the terrain that a plane flying at a given altitude can take with the
//! least radar exposure. This module implements that planner:
//!
//! * a cell is **exposed** at altitude `alt` when `alt > masking[cell]`
//!   (the shadow ceiling there is below the aircraft);
//! * [`plan_route`] runs Dijkstra over the 8-connected grid minimizing
//!   `(exposed cells, path length)` lexicographically — the safest route
//!   first, distance as the tie-breaker.

use crate::grid::Grid;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A planned route.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Cells visited, start to goal inclusive.
    pub cells: Vec<(usize, usize)>,
    /// Number of exposed cells along the route.
    pub exposed_cells: usize,
    /// Total path length in cell steps (diagonals count √2).
    pub length: f64,
}

/// Whether a cell is exposed at `alt` given the masking grid.
#[inline]
pub fn is_exposed(masking: &Grid<f64>, x: usize, y: usize, alt: f64) -> bool {
    alt > masking[(x, y)]
}

/// Fraction of the whole terrain exposed at `alt`.
pub fn exposed_fraction(masking: &Grid<f64>, alt: f64) -> f64 {
    if masking.is_empty() {
        return 0.0;
    }
    let exposed = masking.as_slice().iter().filter(|&&m| alt > m).count();
    exposed as f64 / masking.len() as f64
}

/// Plan the minimum-exposure route from `start` to `goal` for an aircraft
/// at `alt`. Returns `None` only if start/goal are off the grid.
///
/// Cost order is lexicographic: fewest exposed cells first, then shortest
/// distance. Exposure of the start cell counts; the planner may loiter in
/// radar shadow as long as it likes.
pub fn plan_route(
    masking: &Grid<f64>,
    alt: f64,
    start: (usize, usize),
    goal: (usize, usize),
) -> Option<Route> {
    let (xs, ys) = (masking.x_size(), masking.y_size());
    if start.0 >= xs || start.1 >= ys || goal.0 >= xs || goal.1 >= ys {
        return None;
    }
    // Lexicographic cost packed as (exposed, length-scaled): use integer
    // milli-steps for the heap ordering to stay total.
    #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
    struct Cost {
        exposed: usize,
        milli_len: u64,
    }
    let idx = |x: usize, y: usize| y * xs + x;
    let mut best: Vec<Option<Cost>> = vec![None; xs * ys];
    let mut prev: Vec<usize> = vec![usize::MAX; xs * ys];
    let mut heap: BinaryHeap<Reverse<(Cost, usize)>> = BinaryHeap::new();

    let start_cost = Cost {
        exposed: is_exposed(masking, start.0, start.1, alt) as usize,
        milli_len: 0,
    };
    best[idx(start.0, start.1)] = Some(start_cost);
    heap.push(Reverse((start_cost, idx(start.0, start.1))));

    const DIRS: [(isize, isize, u64); 8] = [
        (1, 0, 1000),
        (-1, 0, 1000),
        (0, 1, 1000),
        (0, -1, 1000),
        (1, 1, 1414),
        (1, -1, 1414),
        (-1, 1, 1414),
        (-1, -1, 1414),
    ];

    while let Some(Reverse((cost, at))) = heap.pop() {
        if best[at] != Some(cost) {
            continue; // stale entry
        }
        let (x, y) = (at % xs, at / xs);
        if (x, y) == goal {
            // Reconstruct.
            let mut cells = vec![(x, y)];
            let mut cur = at;
            while prev[cur] != usize::MAX {
                cur = prev[cur];
                cells.push((cur % xs, cur / xs));
            }
            cells.reverse();
            return Some(Route {
                cells,
                exposed_cells: cost.exposed,
                length: cost.milli_len as f64 / 1000.0,
            });
        }
        for (dx, dy, step) in DIRS {
            let nx = x as isize + dx;
            let ny = y as isize + dy;
            if nx < 0 || ny < 0 || nx as usize >= xs || ny as usize >= ys {
                continue;
            }
            let (nx, ny) = (nx as usize, ny as usize);
            let ncost = Cost {
                exposed: cost.exposed + is_exposed(masking, nx, ny, alt) as usize,
                milli_len: cost.milli_len + step,
            };
            let ni = idx(nx, ny);
            if best[ni].map(|c| ncost < c).unwrap_or(true) {
                best[ni] = Some(ncost);
                prev[ni] = at;
                heap.push(Reverse((ncost, ni)));
            }
        }
    }
    // Grid is connected, so this is unreachable for valid inputs; keep a
    // defensive None for zero-size grids.
    None
}

/// Sweep altitudes and report `(alt, exposed cells on the best route)` —
/// the mission-planning trade curve (fly low: safe but slow/hard; fly
/// high: exposed).
pub fn altitude_sweep(
    masking: &Grid<f64>,
    alts: &[f64],
    start: (usize, usize),
    goal: (usize, usize),
) -> Vec<(f64, usize)> {
    alts.iter()
        .filter_map(|&alt| plan_route(masking, alt, start, goal).map(|r| (alt, r.exposed_cells)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::{self, TerrainScenarioParams};

    /// A masking grid with a vertical exposed wall and a gap.
    fn wall_with_gap(size: usize, gap_y: usize) -> Grid<f64> {
        Grid::from_fn(size, size, |x, y| {
            if x == size / 2 && y != gap_y {
                0.0 // exposed at any altitude above ground
            } else {
                f64::INFINITY
            }
        })
    }

    #[test]
    fn route_threads_the_gap() {
        let masking = wall_with_gap(21, 17);
        let route = plan_route(&masking, 1000.0, (0, 10), (20, 10)).expect("route must exist");
        assert_eq!(
            route.exposed_cells, 0,
            "the gap makes a clean route possible"
        );
        assert!(
            route.cells.contains(&(10, 17)),
            "route must pass through the gap: {route:?}"
        );
        assert_eq!(route.cells.first(), Some(&(0, 10)));
        assert_eq!(route.cells.last(), Some(&(20, 10)));
    }

    #[test]
    fn route_accepts_exposure_when_there_is_no_gap() {
        let masking = Grid::from_fn(15, 15, |x, _| if x == 7 { 0.0 } else { f64::INFINITY });
        let route = plan_route(&masking, 500.0, (0, 7), (14, 7)).unwrap();
        assert_eq!(route.exposed_cells, 1, "must cross the wall exactly once");
    }

    #[test]
    fn shorter_of_two_clean_routes_wins() {
        // All clear: the straight line should be chosen.
        let masking = Grid::new(11, 11, f64::INFINITY);
        let route = plan_route(&masking, 100.0, (0, 5), (10, 5)).unwrap();
        assert_eq!(route.exposed_cells, 0);
        assert!((route.length - 10.0).abs() < 1e-9, "{route:?}");
        assert_eq!(route.cells.len(), 11);
    }

    #[test]
    fn route_steps_are_adjacent() {
        let masking = wall_with_gap(21, 3);
        let route = plan_route(&masking, 1000.0, (0, 0), (20, 20)).unwrap();
        for pair in route.cells.windows(2) {
            let dx = (pair[1].0 as isize - pair[0].0 as isize).abs();
            let dy = (pair[1].1 as isize - pair[0].1 as isize).abs();
            assert!(
                dx <= 1 && dy <= 1 && (dx + dy) > 0,
                "non-adjacent step {pair:?}"
            );
        }
    }

    #[test]
    fn flying_lower_never_exposes_more() {
        // Monotonicity: exposure at the route level is non-decreasing in
        // altitude (masking ceilings are fixed).
        let scenario = terrain::generate(TerrainScenarioParams {
            grid_size: 96,
            n_threats: 8,
            seed: 31,
            ..Default::default()
        });
        let masking = terrain::terrain_masking_host(&scenario);
        let sweep = altitude_sweep(
            &masking,
            &[200.0, 600.0, 1200.0, 2000.0, 4000.0],
            (0, 48),
            (95, 48),
        );
        assert_eq!(sweep.len(), 5);
        for w in sweep.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "higher altitude must not reduce best-route exposure: {sweep:?}"
            );
        }
    }

    #[test]
    fn exposed_fraction_matches_manual_count() {
        let masking = wall_with_gap(10, 0);
        // Wall column x=5 has 9 exposed cells (gap at y=0) out of 100.
        assert!((exposed_fraction(&masking, 50.0) - 0.09).abs() < 1e-12);
        assert_eq!(exposed_fraction(&masking, f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn off_grid_endpoints_are_rejected() {
        let masking = Grid::new(5, 5, f64::INFINITY);
        assert!(plan_route(&masking, 100.0, (9, 0), (4, 4)).is_none());
        assert!(plan_route(&masking, 100.0, (0, 0), (0, 9)).is_none());
    }

    #[test]
    fn start_equals_goal() {
        let masking = Grid::new(5, 5, f64::INFINITY);
        let r = plan_route(&masking, 100.0, (2, 2), (2, 2)).unwrap();
        assert_eq!(r.cells, vec![(2, 2)]);
        assert_eq!(r.length, 0.0);
    }

    #[test]
    fn sqrt2_constant_is_used_for_diagonals() {
        let masking = Grid::new(5, 5, f64::INFINITY);
        let r = plan_route(&masking, 100.0, (0, 0), (4, 4)).unwrap();
        assert!(
            (r.length - 4.0 * std::f64::consts::SQRT_2).abs() < 0.01,
            "{}",
            r.length
        );
    }
}
