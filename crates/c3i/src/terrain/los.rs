//! The line-of-sight masking recurrence — the computational core of
//! Terrain Masking.
//!
//! For one radar threat, the *maximum safe altitude* at a terrain cell is
//! the ceiling of the radar's shadow there: an aircraft is invisible while
//! its elevation angle from the radar is below the steepest terrain angle
//! along the sight line. The recurrence propagates that "blocking slope"
//! outward ring by ring (the XDraw scheme): a cell on ring `k` derives its
//! blocking slope from one or two *parent* cells on ring `k − 1` crossed by
//! the ray from the radar, interpolating between them. This is exactly the
//! "value at one point is computed from the values at neighboring points"
//! dependence the paper describes: rings must be processed in order, but
//! all cells *within* a ring are independent — which is what the
//! fine-grained Tera variant exploits.
//!
//! The recurrence stores the **raw altitude** `h_s + B·d` per cell (sensor
//! height plus blocking slope times distance), from which a parent's
//! blocking slope is recovered exactly; raw altitudes are clamped to the
//! terrain elevation only when merged into the result, so every program
//! variant computes bit-identical masking grids.

use super::scenario::GroundThreat;
use crate::counts::Rec;
use crate::grid::Grid;

/// The clipped region of influence of one threat: the intersection of the
/// Chebyshev disc of radius `radius` around `(cx, cy)` with the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Radar cell x.
    pub cx: usize,
    /// Radar cell y.
    pub cy: usize,
    /// Chebyshev radius in cells.
    pub radius: usize,
    /// Clipped bounds, inclusive.
    pub x0: usize,
    /// Clipped bounds, inclusive.
    pub y0: usize,
    /// Clipped bounds, inclusive.
    pub x1: usize,
    /// Clipped bounds, inclusive.
    pub y1: usize,
}

/// Error returned by [`Region::of`] for a threat whose radar cell lies
/// outside the grid. A malformed (hand-edited or fuzz-replayed) scenario
/// fails with this instead of panicking deep inside a program variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffGridThreat {
    /// Radar cell of the offending threat.
    pub at: (usize, usize),
    /// Grid dimensions the threat was checked against.
    pub grid: (usize, usize),
}

impl std::fmt::Display for OffGridThreat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "threat at {:?} is outside the {:?} grid",
            self.at, self.grid
        )
    }
}

impl std::error::Error for OffGridThreat {}

impl Region {
    /// The region of influence of `threat` on an `x_size × y_size` grid,
    /// or an [`OffGridThreat`] error if the radar cell is off the grid.
    ///
    /// Program variants call this through [`Region::of_checked`]'s
    /// `expect` after scenario validation; callers handling untrusted
    /// input (the fuzzer, corpus replay) match on the `Result`.
    pub fn of(threat: &GroundThreat, x_size: usize, y_size: usize) -> Result<Self, OffGridThreat> {
        if threat.x >= x_size || threat.y >= y_size {
            return Err(OffGridThreat {
                at: (threat.x, threat.y),
                grid: (x_size, y_size),
            });
        }
        let r = threat.radius;
        Ok(Self {
            cx: threat.x,
            cy: threat.y,
            radius: r,
            x0: threat.x.saturating_sub(r),
            y0: threat.y.saturating_sub(r),
            x1: threat.x.saturating_add(r).min(x_size - 1),
            y1: threat.y.saturating_add(r).min(y_size - 1),
        })
    }

    /// [`Region::of`] for callers that have already validated the scenario
    /// (see `TerrainScenario::validate`): panics with the underlying error
    /// message on an off-grid threat instead of returning it.
    pub fn of_checked(threat: &GroundThreat, x_size: usize, y_size: usize) -> Self {
        Self::of(threat, x_size, y_size)
            .unwrap_or_else(|e| panic!("{e} (run TerrainScenario::validate first)"))
    }

    /// Number of cells in the clipped bounding box.
    pub fn n_cells(&self) -> usize {
        (self.x1 - self.x0 + 1) * (self.y1 - self.y0 + 1)
    }

    /// Whether `(x, y)` lies inside the clipped region.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        (self.x0..=self.x1).contains(&x) && (self.y0..=self.y1).contains(&y)
    }

    /// Whether this region's bounding box overlaps `other`'s.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// Iterate all cells of the clipped region, row-major.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (self.y0..=self.y1).flat_map(move |y| (self.x0..=self.x1).map(move |x| (x, y)))
    }

    /// The cells of Chebyshev ring `k` (distance exactly `k` from the
    /// radar) that survive clipping, in the canonical run order (see
    /// [`Region::ring_runs`]). Allocates; the kernels iterate the runs
    /// directly instead.
    pub fn ring(&self, k: usize) -> Vec<(usize, usize)> {
        self.ring_runs(k).cells().collect()
    }

    /// Ring `k` as at most four contiguous edge runs: top row, left
    /// column, right column, bottom row — the columns exclude the corner
    /// cells, which belong to the rows. This is the allocation-free
    /// representation the sweep kernels iterate; flattening the runs in
    /// order defines the canonical ring order.
    pub fn ring_runs(&self, k: usize) -> RingRuns {
        let mut runs = RingRuns::empty();
        if k == 0 {
            runs.push(RingRun::Row {
                y: self.cy,
                x0: self.cx,
                x1: self.cx,
            });
            return runs;
        }
        let (cx, cy, k) = (self.cx as isize, self.cy as isize, k as isize);
        let (x0, y0) = (self.x0 as isize, self.y0 as isize);
        let (x1, y1) = (self.x1 as isize, self.y1 as isize);
        let rx0 = (cx - k).max(x0);
        let rx1 = (cx + k).min(x1);
        let ry0 = (cy - k + 1).max(y0);
        let ry1 = (cy + k - 1).min(y1);
        if cy - k >= y0 && rx0 <= rx1 {
            runs.push(RingRun::Row {
                y: (cy - k) as usize,
                x0: rx0 as usize,
                x1: rx1 as usize,
            });
        }
        if ry0 <= ry1 {
            if cx - k >= x0 {
                runs.push(RingRun::Col {
                    x: (cx - k) as usize,
                    y0: ry0 as usize,
                    y1: ry1 as usize,
                });
            }
            if cx + k <= x1 {
                runs.push(RingRun::Col {
                    x: (cx + k) as usize,
                    y0: ry0 as usize,
                    y1: ry1 as usize,
                });
            }
        }
        if cy + k <= y1 && rx0 <= rx1 {
            runs.push(RingRun::Row {
                y: (cy + k) as usize,
                x0: rx0 as usize,
                x1: rx1 as usize,
            });
        }
        runs
    }
}

/// One contiguous edge run of a Chebyshev ring: a horizontal span of one
/// row or a vertical span of one column, bounds inclusive. Runs are never
/// empty by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingRun {
    /// Cells `(x0..=x1, y)`.
    Row {
        /// Row index.
        y: usize,
        /// First x, inclusive.
        x0: usize,
        /// Last x, inclusive.
        x1: usize,
    },
    /// Cells `(x, y0..=y1)`.
    Col {
        /// Column index.
        x: usize,
        /// First y, inclusive.
        y0: usize,
        /// Last y, inclusive.
        y1: usize,
    },
}

impl RingRun {
    /// Number of cells in the run.
    pub fn len(&self) -> usize {
        match *self {
            RingRun::Row { x0, x1, .. } => x1 - x0 + 1,
            RingRun::Col { y0, y1, .. } => y1 - y0 + 1,
        }
    }

    /// Runs are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th cell of the run.
    #[inline]
    pub fn cell(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.len());
        match *self {
            RingRun::Row { y, x0, .. } => (x0 + i, y),
            RingRun::Col { x, y0, .. } => (x, y0 + i),
        }
    }

    /// Iterate the cells of the run in order.
    pub fn cells(self) -> impl Iterator<Item = (usize, usize)> {
        (0..self.len()).map(move |i| self.cell(i))
    }
}

/// A clipped ring as up to four contiguous edge runs — the stack-allocated
/// replacement for the per-ring `Vec` the recurrence used to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingRuns {
    runs: [RingRun; 4],
    n: usize,
}

impl RingRuns {
    const PLACEHOLDER: RingRun = RingRun::Row { y: 0, x0: 0, x1: 0 };

    /// No runs (a fully clipped-away ring).
    pub const fn empty() -> Self {
        Self {
            runs: [Self::PLACEHOLDER; 4],
            n: 0,
        }
    }

    fn push(&mut self, run: RingRun) {
        self.runs[self.n] = run;
        self.n += 1;
    }

    /// Number of runs (≤ 4).
    pub fn n_runs(&self) -> usize {
        self.n
    }

    /// Total number of cells across the runs.
    pub fn len(&self) -> usize {
        self.runs[..self.n].iter().map(RingRun::len).sum()
    }

    /// Whether the clipped ring has no cells.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterate the runs in canonical order.
    pub fn iter(self) -> impl Iterator<Item = RingRun> {
        self.runs.into_iter().take(self.n)
    }

    /// Iterate all cells run by run — the canonical ring order.
    pub fn cells(self) -> impl Iterator<Item = (usize, usize)> {
        self.iter().flat_map(RingRun::cells)
    }

    /// The `i`-th cell in canonical order: an O(n_runs) lookup the
    /// fine-grained variant uses to index into a ring without
    /// materializing it.
    pub fn cell(&self, i: usize) -> (usize, usize) {
        let mut i = i;
        for run in &self.runs[..self.n] {
            if i < run.len() {
                return run.cell(i);
            }
            i -= run.len();
        }
        panic!("ring cell index {i} past the end of the ring");
    }
}

/// Storage for raw per-threat altitudes during the recurrence. The
/// sequential program (Program 3) runs the recurrence *in place* over the
/// shared `masking` grid; the coarse-grained program (Program 4) runs it
/// over a per-thread scratch array. Both are [`AltStore`]s.
pub trait AltStore {
    /// Read the raw altitude at grid cell `(x, y)`.
    fn get(&self, x: usize, y: usize) -> f64;
    /// Write the raw altitude at grid cell `(x, y)`.
    fn set(&mut self, x: usize, y: usize, v: f64);
    /// Borrow the contiguous span `x0..=x1` of row `y` (grid coordinates)
    /// — the parent-row slice the row-sweep kernels stream over.
    fn row(&self, y: usize, x0: usize, x1: usize) -> &[f64];
    /// Mutably borrow the span `x0..=x1` of row `y` (grid coordinates).
    fn row_mut(&mut self, y: usize, x0: usize, x1: usize) -> &mut [f64];
}

impl AltStore for Grid<f64> {
    #[inline]
    fn get(&self, x: usize, y: usize) -> f64 {
        self[(x, y)]
    }
    #[inline]
    fn set(&mut self, x: usize, y: usize, v: f64) {
        self[(x, y)] = v;
    }
    #[inline]
    fn row(&self, y: usize, x0: usize, x1: usize) -> &[f64] {
        &Grid::row(self, y)[x0..=x1]
    }
    #[inline]
    fn row_mut(&mut self, y: usize, x0: usize, x1: usize) -> &mut [f64] {
        &mut Grid::row_mut(self, y)[x0..=x1]
    }
}

/// A scratch array covering only a region's bounding box — the per-thread
/// `temp` array of Program 4, sized at the paper's "up to 5% of the total
/// terrain" per thread.
#[derive(Debug, Clone)]
pub struct ScratchAlt {
    x0: usize,
    y0: usize,
    grid: Grid<f64>,
}

impl ScratchAlt {
    /// Scratch covering `region`, initialized to `fill`.
    pub fn new(region: &Region, fill: f64) -> Self {
        Self {
            x0: region.x0,
            y0: region.y0,
            grid: Grid::new(region.x1 - region.x0 + 1, region.y1 - region.y0 + 1, fill),
        }
    }

    /// A zero-sized scratch placeholder, to be [`ScratchAlt::reset`]
    /// before use. This is what a fresh [`KernelArena`] holds.
    pub fn empty() -> Self {
        Self {
            x0: 0,
            y0: 0,
            grid: Grid::new(0, 0, 0.0),
        }
    }

    /// Re-aim the scratch at `region` and fill it with `fill`, reusing the
    /// retained backing storage (see [`Grid::reset`]). This is the arena
    /// reuse hook that keeps repeated per-threat recurrences free of
    /// allocations.
    pub fn reset(&mut self, region: &Region, fill: f64) {
        self.x0 = region.x0;
        self.y0 = region.y0;
        self.grid
            .reset(region.x1 - region.x0 + 1, region.y1 - region.y0 + 1, fill);
    }

    /// Words of storage this scratch occupies.
    pub fn words(&self) -> usize {
        self.grid.len()
    }
}

impl AltStore for ScratchAlt {
    #[inline]
    fn get(&self, x: usize, y: usize) -> f64 {
        self.grid[(x - self.x0, y - self.y0)]
    }
    #[inline]
    fn set(&mut self, x: usize, y: usize, v: f64) {
        self.grid[(x - self.x0, y - self.y0)] = v;
    }
    #[inline]
    fn row(&self, y: usize, x0: usize, x1: usize) -> &[f64] {
        &self.grid.row(y - self.y0)[x0 - self.x0..=x1 - self.x0]
    }
    #[inline]
    fn row_mut(&mut self, y: usize, x0: usize, x1: usize) -> &mut [f64] {
        &mut self.grid.row_mut(y - self.y0)[x0 - self.x0..=x1 - self.x0]
    }
}

/// Sensor height above datum for a threat standing on the terrain.
pub fn sensor_height(terrain: &Grid<f64>, threat: &GroundThreat) -> f64 {
    terrain[(threat.x, threat.y)] + threat.mast_height
}

#[inline]
fn dist_cells(dx: isize, dy: isize, cell_size: f64) -> f64 {
    (((dx * dx + dy * dy) as f64).sqrt()) * cell_size
}

/// Compute the raw altitude of one cell on ring `k ≥ 2` from its parents on
/// ring `k − 1` (already present in `store`). Exposed for the fine-grained
/// variant, which processes a ring's cells in parallel.
///
/// Parent selection is the XDraw scheme: scale the offset by `(k−1)/k`; on
/// an edge-dominant cell the two parents straddle the scaled coordinate on
/// the dominant-axis edge of ring `k − 1`; on a diagonal cell the single
/// parent is the diagonal cell of ring `k − 1`.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the benchmark kernel's signature: grid + threat geometry + cell
pub fn raw_alt_for_cell<S: AltStore, R: Rec>(
    terrain: &Grid<f64>,
    cell_size: f64,
    h_s: f64,
    cx: usize,
    cy: usize,
    x: usize,
    y: usize,
    store: &S,
    r: &mut R,
) -> f64 {
    let dx = x as isize - cx as isize;
    let dy = y as isize - cy as isize;
    let k = dx.abs().max(dy.abs());
    debug_assert!(k >= 2, "ring 0/1 cells have no parents");
    let scale = (k - 1) as f64 / k as f64;
    r.int(6); // offsets, ring index, parent arithmetic
    r.fp(2);

    // Blocking value of a parent: the steeper of its own terrain slope and
    // its inherited blocking slope (recovered from its raw altitude).
    let parent_v = |px: isize, py: isize, r: &mut R| -> f64 {
        let (pxu, pyu) = (px as usize, py as usize);
        let d = dist_cells(px - cx as isize, py - cy as isize, cell_size);
        let raw = store.get(pxu, pyu);
        let elev = terrain[(pxu, pyu)];
        r.sload(2); // raw + terrain, streaming over large grids
        r.fp(7); // distance, two slopes, max
        let b = if raw == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            (raw - h_s) / d
        };
        let slope = (elev - h_s) / d;
        b.max(slope)
    };

    let v = if dx.abs() == dy.abs() {
        // Diagonal: single parent one step in on both axes.
        parent_v(
            cx as isize + dx.signum() * (k - 1),
            cy as isize + dy.signum() * (k - 1),
            r,
        )
    } else {
        // Dominant-axis cell: the two parents straddle the scaled
        // subordinate coordinate on the dominant-axis edge of ring k−1.
        // One arm, axis-generalized (x-dominant ⟺ |dx| > |dy|); the
        // operation order matches the historical two-arm code exactly.
        let x_dom = dx.abs() > dy.abs();
        let (dom, sub, c_dom, c_sub) = if x_dom {
            (dx, dy, cx, cy)
        } else {
            (dy, dx, cy, cx)
        };
        let p_dom = c_dom as isize + dom.signum() * (k - 1);
        let f_sub = c_sub as f64 + sub as f64 * scale;
        let lo = f_sub.floor();
        let w = f_sub - lo;
        r.fp(4);
        let pv = |s: isize, r: &mut R| {
            if x_dom {
                parent_v(p_dom, s, r)
            } else {
                parent_v(s, p_dom, r)
            }
        };
        let v_lo = pv(lo as isize, r);
        if w == 0.0 {
            v_lo
        } else {
            let v_hi = pv(lo as isize + 1, r);
            v_lo * (1.0 - w) + v_hi * w
        }
    };

    let d = dist_cells(dx, dy, cell_size);
    r.fp(5);
    h_s + v * d
}

/// Per-ring scratch owned by a [`KernelArena`]: distance tables shared by
/// every run of one ring, and a staging buffer for one run's results.
///
/// The table entries are the *same integer expressions* `dist_cells`
/// evaluates per call (`aᵢ² + k²` in exact integer arithmetic, then one
/// sqrt), so looking them up is bit-identical to recomputing them — that
/// is what lets the sweep kernels hoist ~3 sqrts per cell out of the inner
/// loop without perturbing the masking grids.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// `cell_d[a]`: distance of a ring-`k` cell whose off-axis offset is
    /// `a` (`cell_d[k]` is the corner). Valid indices `0..=k`.
    cell_d: Vec<f64>,
    /// `par_d[a]`: distance of a ring-`k−1` parent with off-axis offset
    /// `a`. Valid indices `0..k`.
    par_d: Vec<f64>,
    /// Staging buffer for one run, written back as one contiguous copy.
    row: Vec<f64>,
}

impl KernelScratch {
    /// An empty scratch; tables are (re)filled per ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fill the distance tables for ring `k ≥ 1`, reusing capacity.
    fn fill(&mut self, k: usize, cell_size: f64) {
        let ki = k as isize;
        self.cell_d.clear();
        self.cell_d
            .extend((0..=ki).map(|a| dist_cells(a, ki, cell_size)));
        self.par_d.clear();
        self.par_d
            .extend((0..ki).map(|a| dist_cells(a, ki - 1, cell_size)));
    }
}

/// Reusable per-thread working storage for the masking kernels: the ring
/// distance tables, the per-threat `ScratchAlt` backing store, and the
/// fine-grained variant's ring result slots. Acquired via
/// [`KernelArena::with`], which hands out one arena per OS thread so a
/// whole table pipeline performs zero hot-path allocations after warm-up.
#[derive(Debug)]
pub struct KernelArena {
    /// Per-ring distance tables and run staging.
    pub kernel: KernelScratch,
    /// Per-threat raw-altitude scratch (Program 4's `temp` array).
    pub scratch: ScratchAlt,
    /// Per-ring atomic result slots for the fine-grained variant.
    pub ring_slots: Vec<std::sync::atomic::AtomicU64>,
}

impl KernelArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self {
            kernel: KernelScratch::new(),
            scratch: ScratchAlt::empty(),
            ring_slots: Vec::new(),
        }
    }

    /// Run `f` with this thread's arena. Reentrant calls (an arena user
    /// calling back into another arena user on the same thread) fall back
    /// to a fresh arena instead of panicking on the double borrow.
    pub fn with<T>(f: impl FnOnce(&mut KernelArena) -> T) -> T {
        use std::cell::RefCell;
        thread_local! {
            static ARENA: RefCell<KernelArena> = RefCell::new(KernelArena::new());
        }
        ARENA.with(|a| match a.try_borrow_mut() {
            Ok(mut arena) => f(&mut arena),
            Err(_) => f(&mut KernelArena::new()),
        })
    }

    /// Disjoint mutable borrows of the scratch store and the kernel
    /// tables, for callers that need both at once (the store is the
    /// recurrence target while the tables drive the sweeps).
    pub fn split(&mut self) -> (&mut ScratchAlt, &mut KernelScratch) {
        (&mut self.scratch, &mut self.kernel)
    }
}

impl Default for KernelArena {
    fn default() -> Self {
        Self::new()
    }
}

/// Explicit-lane f64 vectors for the `simd` feature. Lanewise IEEE-754
/// add/sub/mul/div/max/floor are bit-identical to their scalar
/// counterparts, which is why the `simd` kernels produce bit-identical
/// masking grids (pinned by the corpus-replay identity tests).
#[cfg(feature = "simd")]
mod wide {
    /// Lane count of the hand-rolled vector type.
    pub const LANES: usize = 4;

    /// A 4-lane f64 vector. Plain arrays + per-lane loops: LLVM lowers
    /// these to packed vector instructions, and every lane op is the
    /// exact IEEE operation the scalar path performs.
    #[derive(Debug, Clone, Copy)]
    pub struct F64s(pub [f64; LANES]);

    impl F64s {
        #[inline]
        pub fn splat(v: f64) -> Self {
            Self([v; LANES])
        }
        #[inline]
        pub fn from_fn(f: impl FnMut(usize) -> f64) -> Self {
            Self(std::array::from_fn(f))
        }
        #[inline]
        pub fn max(self, o: Self) -> Self {
            Self(std::array::from_fn(|i| self.0[i].max(o.0[i])))
        }
        #[inline]
        pub fn floor(self) -> Self {
            Self(std::array::from_fn(|i| self.0[i].floor()))
        }
        /// Lanewise `if mask { a } else { b }`.
        #[inline]
        pub fn select(mask: [bool; LANES], a: Self, b: Self) -> Self {
            Self(std::array::from_fn(
                |i| if mask[i] { a.0[i] } else { b.0[i] },
            ))
        }
    }

    impl std::ops::Add for F64s {
        type Output = Self;
        #[inline]
        fn add(self, o: Self) -> Self {
            Self(std::array::from_fn(|i| self.0[i] + o.0[i]))
        }
    }
    impl std::ops::Sub for F64s {
        type Output = Self;
        #[inline]
        fn sub(self, o: Self) -> Self {
            Self(std::array::from_fn(|i| self.0[i] - o.0[i]))
        }
    }
    impl std::ops::Mul for F64s {
        type Output = Self;
        #[inline]
        fn mul(self, o: Self) -> Self {
            Self(std::array::from_fn(|i| self.0[i] * o.0[i]))
        }
    }
    impl std::ops::Div for F64s {
        type Output = Self;
        #[inline]
        fn div(self, o: Self) -> Self {
            Self(std::array::from_fn(|i| self.0[i] / o.0[i]))
        }
    }
}

/// Row-sweep kernel: one horizontal run of ring `k ≥ 2` (`y = cy ± k`,
/// cells `rx0..=rx1`). The interior cells are y-dominant — both parents
/// sit on the contiguous span of row `y ∓ 1` written by ring `k−1` — so
/// the kernel streams two parent slices (`store` raw altitudes, terrain
/// elevations), with `k`, `scale`, and both distance tables hoisted out of
/// the straight-line inner loop. Corner (diagonal) cells are peeled off
/// the run ends. Per-cell operation order matches [`raw_alt_for_cell`]
/// exactly, so the results are bit-identical to the reference recurrence.
#[allow(clippy::too_many_arguments)]
fn sweep_row<S: AltStore, R: Rec>(
    terrain: &Grid<f64>,
    h_s: f64,
    region: &Region,
    k: usize,
    y: usize,
    rx0: usize,
    rx1: usize,
    store: &mut S,
    kern: &mut KernelScratch,
    r: &mut R,
) {
    let KernelScratch { cell_d, par_d, row } = kern;
    let (cx, cy) = (region.cx as isize, region.cy as isize);
    let ki = k as isize;
    let scale = (ki - 1) as f64 / ki as f64;
    // Parent row: one step back toward the radar.
    let py = if (y as isize) < cy { y + 1 } else { y - 1 };
    // Clipped span of ring k−1's row py (always covers every parent this
    // run interpolates between — the scaled offset never reaches past the
    // clipped parent row).
    let px0 = (cx - (ki - 1)).max(region.x0 as isize) as usize;
    let px1 = (cx + (ki - 1)).min(region.x1 as isize) as usize;
    let par_raw = store.row(py, px0, px1);
    let par_elev = &terrain.row(py)[px0..=px1];

    // Blocking value of the parent at (px, py): the steeper of its
    // inherited blocking slope and its own terrain slope — the body of
    // `raw_alt_for_cell`'s `parent_v`, with the distance table lookup
    // replacing the per-call sqrt.
    let pv = |px: usize, r: &mut R| -> f64 {
        debug_assert!((px0..=px1).contains(&px));
        let d = par_d[px.abs_diff(region.cx)];
        let raw = par_raw[px - px0];
        let elev = par_elev[px - px0];
        r.sload(2);
        r.fp(7);
        let b = if raw == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            (raw - h_s) / d
        };
        let slope = (elev - h_s) / d;
        b.max(slope)
    };

    row.clear();
    let has_l = rx0 as isize == cx - ki;
    let has_r = rx1 as isize == cx + ki;
    let ix0 = if has_l { rx0 + 1 } else { rx0 };
    let ix1 = if has_r { rx1 - 1 } else { rx1 };

    // Diagonal corner: single parent one step in on both axes, at the end
    // of the parent span.
    let corner = |px: usize, r: &mut R| -> f64 {
        r.int(6);
        r.fp(2);
        let v = pv(px, r);
        r.fp(5);
        h_s + v * cell_d[k]
    };

    if has_l {
        let v = corner(px0, r);
        row.push(v);
    }

    #[cfg_attr(not(feature = "simd"), allow(unused_mut))]
    let mut x = ix0;
    #[cfg(feature = "simd")]
    if !R::COUNTING && x <= ix1 {
        use wide::{F64s, LANES};
        let cx_s = F64s::splat(cx as f64);
        let scale_s = F64s::splat(scale);
        let h_s_s = F64s::splat(h_s);
        let neg_inf = F64s::splat(f64::NEG_INFINITY);
        while ix1 + 1 - x >= LANES {
            let xs = F64s::from_fn(|l| (x + l) as f64);
            let fx = cx_s + (xs - cx_s) * scale_s;
            let x_lo = fx.floor();
            let w = fx - x_lo;
            let lo: [usize; LANES] = std::array::from_fn(|l| x_lo.0[l] as usize);
            // When w == 0 the hi parent is never used (selected away
            // below); clamp its index so the speculative gather stays in
            // the parent span.
            let hi: [usize; LANES] = std::array::from_fn(|l| (lo[l] + 1).min(px1));
            let d_lo = F64s::from_fn(|l| par_d[lo[l].abs_diff(region.cx)]);
            let d_hi = F64s::from_fn(|l| par_d[hi[l].abs_diff(region.cx)]);
            let raw_lo = F64s::from_fn(|l| par_raw[lo[l] - px0]);
            let raw_hi = F64s::from_fn(|l| par_raw[hi[l] - px0]);
            let elev_lo = F64s::from_fn(|l| par_elev[lo[l] - px0]);
            let elev_hi = F64s::from_fn(|l| par_elev[hi[l] - px0]);
            // Branchless inherited slope: (-∞ − h_s)/d is -∞, exactly
            // what the scalar -∞ branch selects.
            let b_lo = (raw_lo - h_s_s) / d_lo;
            let b_lo = F64s::select(
                std::array::from_fn(|l| raw_lo.0[l] == f64::NEG_INFINITY),
                neg_inf,
                b_lo,
            );
            let b_hi = (raw_hi - h_s_s) / d_hi;
            let b_hi = F64s::select(
                std::array::from_fn(|l| raw_hi.0[l] == f64::NEG_INFINITY),
                neg_inf,
                b_hi,
            );
            let v_lo = b_lo.max((elev_lo - h_s_s) / d_lo);
            let v_hi = b_hi.max((elev_hi - h_s_s) / d_hi);
            let one = F64s::splat(1.0);
            let blend = v_lo * (one - w) + v_hi * w;
            // w == 0 must select v_lo outright: the blend would evaluate
            // v_hi · 0, which is NaN when v_hi is ±∞.
            let v = F64s::select(std::array::from_fn(|l| w.0[l] == 0.0), v_lo, blend);
            let d = F64s::from_fn(|l| cell_d[(x + l).abs_diff(region.cx)]);
            let out = h_s_s + v * d;
            row.extend_from_slice(&out.0);
            x += LANES;
        }
    }
    for x in x..=ix1 {
        let dx = x as isize - cx;
        r.int(6);
        r.fp(2);
        let fx = cx as f64 + dx as f64 * scale;
        let x_lo = fx.floor();
        let w = fx - x_lo;
        r.fp(4);
        let v_lo = pv(x_lo as usize, r);
        let v = if w == 0.0 {
            v_lo
        } else {
            let v_hi = pv(x_lo as usize + 1, r);
            v_lo * (1.0 - w) + v_hi * w
        };
        r.fp(5);
        row.push(h_s + v * cell_d[dx.unsigned_abs()]);
    }

    if has_r {
        let v = corner(px1, r);
        row.push(v);
    }

    // One contiguous write-back for the whole run.
    store.row_mut(y, rx0, rx1).copy_from_slice(row);
    r.sstore((rx1 - rx0 + 1) as u64);
}

/// Column-sweep kernel: one vertical run of ring `k ≥ 2` (`x = cx ± k`,
/// cells `ry0..=ry1`; corners belong to the row runs, so every cell here
/// is x-dominant). Parents live in column `x ∓ 1`, a strided walk of the
/// store; distances and the dominant-axis branch are hoisted like the row
/// sweep's. Per-cell operation order again matches [`raw_alt_for_cell`].
#[allow(clippy::too_many_arguments)]
fn sweep_col<S: AltStore, R: Rec>(
    terrain: &Grid<f64>,
    h_s: f64,
    region: &Region,
    k: usize,
    x: usize,
    ry0: usize,
    ry1: usize,
    store: &mut S,
    kern: &mut KernelScratch,
    r: &mut R,
) {
    let KernelScratch { cell_d, par_d, row } = kern;
    let (cx, cy) = (region.cx as isize, region.cy as isize);
    let ki = k as isize;
    let scale = (ki - 1) as f64 / ki as f64;
    // Parent column: one step back toward the radar.
    let px = if (x as isize) < cx { x + 1 } else { x - 1 };

    row.clear();
    {
        let pv = |py: usize, r: &mut R| -> f64 {
            let d = par_d[py.abs_diff(region.cy)];
            let raw = store.get(px, py);
            let elev = terrain[(px, py)];
            r.sload(2);
            r.fp(7);
            let b = if raw == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                (raw - h_s) / d
            };
            let slope = (elev - h_s) / d;
            b.max(slope)
        };
        for y in ry0..=ry1 {
            let dy = y as isize - cy;
            r.int(6);
            r.fp(2);
            let fy = cy as f64 + dy as f64 * scale;
            let y_lo = fy.floor();
            let w = fy - y_lo;
            r.fp(4);
            let v_lo = pv(y_lo as usize, r);
            let v = if w == 0.0 {
                v_lo
            } else {
                let v_hi = pv(y_lo as usize + 1, r);
                v_lo * (1.0 - w) + v_hi * w
            };
            r.fp(5);
            row.push(h_s + v * cell_d[dy.unsigned_abs()]);
        }
    }
    for (i, y) in (ry0..=ry1).enumerate() {
        store.set(x, y, row[i]);
    }
    r.sstore((ry1 - ry0 + 1) as u64);
}

/// Run the full ring recurrence for `threat` into `store` using caller-
/// provided kernel scratch: after the call, `store` holds the raw altitude
/// for every cell of the region (rings 0 and 1 hold `-∞`: next to the
/// radar there is no intermediate terrain, so nothing is masked above
/// ground). Rings are processed in order as edge-run sweeps; cells within
/// a ring are independent.
pub fn compute_raw_alts_in<S: AltStore, R: Rec>(
    terrain: &Grid<f64>,
    cell_size: f64,
    threat: &GroundThreat,
    region: &Region,
    store: &mut S,
    kern: &mut KernelScratch,
    r: &mut R,
) {
    let h_s = sensor_height(terrain, threat);
    r.load(2);
    r.fp(1);
    for (x, y) in region.ring_runs(0).cells() {
        store.set(x, y, f64::NEG_INFINITY);
        r.sstore(1);
    }
    for (x, y) in region.ring_runs(1).cells() {
        store.set(x, y, f64::NEG_INFINITY);
        r.sstore(1);
    }
    for k in 2..=region.radius {
        kern.fill(k, cell_size);
        for run in region.ring_runs(k).iter() {
            match run {
                RingRun::Row { y, x0, x1 } => {
                    sweep_row(terrain, h_s, region, k, y, x0, x1, store, kern, r)
                }
                RingRun::Col { x, y0, y1 } => {
                    sweep_col(terrain, h_s, region, k, x, y0, y1, store, kern, r)
                }
            }
        }
    }
}

/// [`compute_raw_alts_in`] with kernel scratch drawn from this thread's
/// [`KernelArena`] — the drop-in equivalent of the historical entry point.
pub fn compute_raw_alts<S: AltStore, R: Rec>(
    terrain: &Grid<f64>,
    cell_size: f64,
    threat: &GroundThreat,
    region: &Region,
    store: &mut S,
    r: &mut R,
) {
    KernelArena::with(|a| {
        compute_raw_alts_in(terrain, cell_size, threat, region, store, &mut a.kernel, r)
    })
}

/// The pinned scalar baseline: the historical cell-at-a-time recurrence
/// the run-sweep kernels are benchmarked against (the `kernels` harness
/// phase) and differentially tested for bit-identity (the fuzzer's
/// reference config). Kept verbatim so the ≥1.5x gate always measures
/// against the exact pre-optimization code path.
pub mod reference {
    use super::*;

    /// The historical `Region::ring` enumeration order: top edge left to
    /// right, then left/right edge cells interleaved per row, then the
    /// bottom edge — the order the per-ring `Vec` used to be built in.
    pub fn ring(region: &Region, k: usize) -> Vec<(usize, usize)> {
        if k == 0 {
            return vec![(region.cx, region.cy)];
        }
        let mut out = Vec::with_capacity(8 * k);
        let (cx, cy, k) = (region.cx as isize, region.cy as isize, k as isize);
        let push = |x: isize, y: isize, out: &mut Vec<(usize, usize)>| {
            if x >= 0 && y >= 0 {
                let (x, y) = (x as usize, y as usize);
                if region.contains(x, y) {
                    out.push((x, y));
                }
            }
        };
        for x in (cx - k)..=(cx + k) {
            push(x, cy - k, &mut out);
        }
        for y in (cy - k + 1)..=(cy + k - 1) {
            push(cx - k, y, &mut out);
            push(cx + k, y, &mut out);
        }
        for x in (cx - k)..=(cx + k) {
            push(x, cy + k, &mut out);
        }
        out
    }

    /// The historical recurrence driver: allocate each ring's cell list
    /// and evaluate [`raw_alt_for_cell`] per cell. Bit-identical to
    /// [`super::compute_raw_alts`] by construction (same per-cell
    /// operations in a different — ring-internal, hence irrelevant —
    /// order).
    pub fn compute_raw_alts<S: AltStore, R: Rec>(
        terrain: &Grid<f64>,
        cell_size: f64,
        threat: &GroundThreat,
        region: &Region,
        store: &mut S,
        r: &mut R,
    ) {
        let h_s = sensor_height(terrain, threat);
        r.load(2);
        r.fp(1);
        for (x, y) in ring(region, 0) {
            store.set(x, y, f64::NEG_INFINITY);
            r.sstore(1);
        }
        for (x, y) in ring(region, 1) {
            store.set(x, y, f64::NEG_INFINITY);
            r.sstore(1);
        }
        for k in 2..=region.radius {
            for (x, y) in ring(region, k) {
                let v = raw_alt_for_cell(
                    terrain, cell_size, h_s, region.cx, region.cy, x, y, store, r,
                );
                store.set(x, y, v);
                r.sstore(1);
            }
        }
    }
}

/// Clamp a raw altitude into the final per-threat masking value at a cell:
/// the shadow ceiling, but never below the local terrain (an aircraft on
/// the ground can always be there; "safe altitude" bottoms out at ground
/// level).
#[inline]
pub fn clamp_alt(raw: f64, elev: f64) -> f64 {
    raw.max(elev)
}

/// Convenience: the complete per-threat masking field over the threat's
/// region (clamped), as a scratch array. Used by the verifier and tests.
pub fn per_threat_masking(
    terrain: &Grid<f64>,
    cell_size: f64,
    threat: &GroundThreat,
) -> (Region, ScratchAlt) {
    let region = Region::of_checked(threat, terrain.x_size(), terrain.y_size());
    let mut scratch = ScratchAlt::new(&region, f64::INFINITY);
    compute_raw_alts(
        terrain,
        cell_size,
        threat,
        &region,
        &mut scratch,
        &mut crate::counts::NoRec,
    );
    // Clamp in place.
    let mut clamped = scratch.clone();
    for (x, y) in region.cells() {
        clamped.set(x, y, clamp_alt(scratch.get(x, y), terrain[(x, y)]));
    }
    (region, clamped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::NoRec;

    fn flat_terrain(size: usize, elev: f64) -> Grid<f64> {
        Grid::new(size, size, elev)
    }

    fn center_threat(size: usize, radius: usize) -> GroundThreat {
        GroundThreat {
            x: size / 2,
            y: size / 2,
            radius,
            mast_height: 20.0,
        }
    }

    #[test]
    fn region_clips_to_grid() {
        let t = GroundThreat {
            x: 2,
            y: 3,
            radius: 5,
            mast_height: 10.0,
        };
        let r = Region::of_checked(&t, 10, 10);
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (0, 0, 7, 8));
        assert_eq!(r.n_cells(), 8 * 9);
    }

    #[test]
    fn off_grid_threat_is_an_error_not_a_panic() {
        let t = GroundThreat {
            x: 10,
            y: 3,
            radius: 2,
            mast_height: 10.0,
        };
        let err = Region::of(&t, 10, 10).unwrap_err();
        assert_eq!(err.at, (10, 3));
        assert_eq!(err.grid, (10, 10));
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn huge_radius_clips_without_overflow() {
        let t = GroundThreat {
            x: 0,
            y: 0,
            radius: usize::MAX - 1,
            mast_height: 10.0,
        };
        let r = Region::of(&t, 5, 5).unwrap();
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (0, 0, 4, 4));
    }

    #[test]
    fn ring_cells_have_exact_chebyshev_distance() {
        let t = center_threat(41, 15);
        let r = Region::of_checked(&t, 41, 41);
        for k in 0..=15 {
            let ring = r.ring(k);
            assert!(!ring.is_empty());
            for (x, y) in &ring {
                let d = (*x as isize - r.cx as isize)
                    .abs()
                    .max((*y as isize - r.cy as isize).abs());
                assert_eq!(d as usize, k);
            }
            // Unclipped interior ring has exactly 8k cells (1 for k=0).
            let expected = if k == 0 { 1 } else { 8 * k };
            assert_eq!(ring.len(), expected, "ring {k}");
        }
    }

    #[test]
    fn rings_partition_the_region() {
        let t = GroundThreat {
            x: 3,
            y: 4,
            radius: 6,
            mast_height: 10.0,
        };
        let r = Region::of_checked(&t, 20, 20);
        let mut from_rings: Vec<(usize, usize)> = (0..=6).flat_map(|k| r.ring(k)).collect();
        from_rings.sort_unstable();
        let mut all: Vec<(usize, usize)> = r.cells().collect();
        all.sort_unstable();
        assert_eq!(from_rings, all);
    }

    #[test]
    fn overlap_detection() {
        let a = Region {
            cx: 5,
            cy: 5,
            radius: 3,
            x0: 2,
            y0: 2,
            x1: 8,
            y1: 8,
        };
        let b = Region {
            cx: 10,
            cy: 10,
            radius: 3,
            x0: 7,
            y0: 7,
            x1: 13,
            y1: 13,
        };
        let c = Region {
            cx: 20,
            cy: 20,
            radius: 2,
            x0: 18,
            y0: 18,
            x1: 22,
            y1: 22,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn flat_terrain_masks_nothing_above_ground() {
        // On a flat plain a radar on a mast sees everything above ground:
        // every clamped masking value is exactly the terrain elevation.
        let terrain = flat_terrain(33, 100.0);
        let t = center_threat(33, 12);
        let (region, masked) = per_threat_masking(&terrain, 100.0, &t);
        for (x, y) in region.cells() {
            assert_eq!(masked.get(x, y), 100.0, "cell ({x},{y})");
        }
    }

    #[test]
    fn ridge_casts_a_growing_shadow() {
        // A tall wall east of the radar: cells beyond the wall are masked
        // up to an altitude that grows with distance (the shadow cone).
        let size = 41;
        let mut terrain = flat_terrain(size, 0.0);
        let c = size / 2;
        for y in 0..size {
            terrain[(c + 3, y)] = 500.0;
        }
        let t = GroundThreat {
            x: c,
            y: c,
            radius: 18,
            mast_height: 10.0,
        };
        let (_, masked) = per_threat_masking(&terrain, 100.0, &t);
        // Directly east, beyond the wall, masking must exceed ground and
        // increase with distance.
        let m5 = masked.get(c + 5, c);
        let m10 = masked.get(c + 10, c);
        let m15 = masked.get(c + 15, c);
        assert!(m5 > 0.0, "wall must cast a shadow: {m5}");
        assert!(m10 > m5);
        assert!(m15 > m10);
        // West of the radar there is no wall: bare ground.
        assert_eq!(masked.get(c - 10, c), 0.0);
    }

    #[test]
    fn shadow_height_matches_similar_triangles_on_the_axis() {
        // On the axis through the wall the parent chain is exact (no
        // interpolation), so the shadow ceiling obeys similar triangles:
        // (h_wall - h_s)/d_wall == (ceil - h_s)/d_cell.
        let size = 41;
        let mut terrain = flat_terrain(size, 0.0);
        let c = size / 2;
        terrain[(c + 4, c)] = 300.0;
        let t = GroundThreat {
            x: c,
            y: c,
            radius: 18,
            mast_height: 10.0,
        };
        let (_, masked) = per_threat_masking(&terrain, 100.0, &t);
        let h_s = 10.0;
        let d_wall = 4.0 * 100.0;
        for dist in [8usize, 12, 16] {
            let d_cell = dist as f64 * 100.0;
            let expected = h_s + (300.0 - h_s) / d_wall * d_cell;
            let got = masked.get(c + dist, c);
            assert!(
                (got - expected).abs() < 1e-6,
                "dist {dist}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn raw_alts_are_deterministic_between_stores() {
        // Scratch store and full-grid store must produce identical raw
        // values — this is the invariant that makes Program 3 and
        // Program 4 outputs bit-identical.
        let terrain = {
            let mut g = flat_terrain(25, 0.0);
            for (i, v) in g.as_mut_slice().iter_mut().enumerate() {
                *v = ((i * 2654435761) % 997) as f64;
            }
            g
        };
        let t = center_threat(25, 10);
        let region = Region::of_checked(&t, 25, 25);

        let mut scratch = ScratchAlt::new(&region, f64::INFINITY);
        compute_raw_alts(&terrain, 100.0, &t, &region, &mut scratch, &mut NoRec);

        let mut full = Grid::new(25, 25, f64::INFINITY);
        compute_raw_alts(&terrain, 100.0, &t, &region, &mut full, &mut NoRec);

        for (x, y) in region.cells() {
            let a = scratch.get(x, y);
            let b = AltStore::get(&full, x, y);
            assert!(a == b, "({x},{y}): {a} vs {b}");
        }
    }

    #[test]
    fn recurrence_records_memory_heavy_ops() {
        let terrain = flat_terrain(33, 50.0);
        let t = center_threat(33, 12);
        let region = Region::of_checked(&t, 33, 33);
        let mut scratch = ScratchAlt::new(&region, f64::INFINITY);
        let mut r = sthreads::OpRecorder::new();
        compute_raw_alts(&terrain, 100.0, &t, &region, &mut scratch, &mut r);
        let c = r.counts();
        assert!(c.stream_loads > 0 && c.stream_stores > 0 && c.fp_ops > 0);
        // Every region cell is stored exactly once (streaming class).
        assert_eq!(c.stream_stores, region.n_cells() as u64);
    }

    #[test]
    fn clamp_respects_terrain_floor() {
        assert_eq!(clamp_alt(f64::NEG_INFINITY, 120.0), 120.0);
        assert_eq!(clamp_alt(80.0, 120.0), 120.0);
        assert_eq!(clamp_alt(500.0, 120.0), 500.0);
    }

    #[test]
    fn scratch_words_match_region_size() {
        let t = center_threat(101, 30);
        let region = Region::of_checked(&t, 101, 101);
        let scratch = ScratchAlt::new(&region, 0.0);
        assert_eq!(scratch.words(), 61 * 61);
    }

    fn bumpy_terrain(size: usize) -> Grid<f64> {
        Grid::from_fn(size, size, |x, y| {
            (((x * 31 + y * 17) * 2654435761) % 997) as f64
        })
    }

    /// Threat placements that exercise every clipping shape: interior,
    /// all four corners, edge midpoints, and radii past the grid.
    fn clipping_threats(size: usize) -> Vec<GroundThreat> {
        let c = size - 1;
        [
            (size / 2, size / 2, size / 3),
            (0, 0, size / 2),
            (c, 0, size / 2),
            (0, c, size / 2),
            (c, c, size / 2),
            (size / 2, 0, size - 1),
            (0, size / 2, size - 1),
            (size / 2, size / 2, 2 * size),
            (1, size / 2, 2 * size),
        ]
        .into_iter()
        .map(|(x, y, radius)| GroundThreat {
            x,
            y,
            radius,
            mast_height: 15.0,
        })
        .collect()
    }

    #[test]
    fn ring_runs_are_at_most_four_and_cover_the_ring() {
        for t in clipping_threats(19) {
            let region = Region::of_checked(&t, 19, 19);
            for k in 0..=region.radius {
                let runs = region.ring_runs(k);
                assert!(runs.n_runs() <= 4);
                let flat: Vec<_> = runs.cells().collect();
                assert_eq!(flat.len(), runs.len());
                // Set-equal to the historical enumeration.
                let mut a = flat.clone();
                let mut b = reference::ring(&region, k);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "threat {t:?} ring {k}");
                // Indexed lookup agrees with iteration.
                for (i, cell) in flat.iter().enumerate() {
                    assert_eq!(runs.cell(i), *cell);
                }
            }
        }
    }

    #[test]
    fn run_kernels_match_reference_bitwise_under_clipping() {
        let terrain = bumpy_terrain(23);
        for t in clipping_threats(23) {
            let region = Region::of_checked(&t, 23, 23);
            let mut opt = ScratchAlt::new(&region, f64::INFINITY);
            compute_raw_alts(&terrain, 100.0, &t, &region, &mut opt, &mut NoRec);
            let mut refr = ScratchAlt::new(&region, f64::INFINITY);
            reference::compute_raw_alts(&terrain, 100.0, &t, &region, &mut refr, &mut NoRec);
            for (x, y) in region.cells() {
                assert_eq!(
                    opt.get(x, y).to_bits(),
                    refr.get(x, y).to_bits(),
                    "threat {t:?} cell ({x},{y}): {} vs {}",
                    opt.get(x, y),
                    refr.get(x, y)
                );
            }
        }
    }

    #[test]
    fn run_kernels_record_identical_op_counts_to_reference() {
        // The calibrated machine models consume these totals; the sweep
        // kernels must charge exactly what the historical recurrence did.
        let terrain = bumpy_terrain(23);
        for t in clipping_threats(23) {
            let region = Region::of_checked(&t, 23, 23);
            let mut opt = ScratchAlt::new(&region, f64::INFINITY);
            let mut r_opt = sthreads::OpRecorder::new();
            compute_raw_alts(&terrain, 100.0, &t, &region, &mut opt, &mut r_opt);
            let mut refr = ScratchAlt::new(&region, f64::INFINITY);
            let mut r_ref = sthreads::OpRecorder::new();
            reference::compute_raw_alts(&terrain, 100.0, &t, &region, &mut refr, &mut r_ref);
            assert_eq!(r_opt.counts(), r_ref.counts(), "threat {t:?}");
        }
    }

    #[test]
    fn arena_scratch_reset_matches_fresh_scratch() {
        let terrain = bumpy_terrain(17);
        let threats = clipping_threats(17);
        KernelArena::with(|arena| {
            for t in &threats {
                let region = Region::of_checked(t, 17, 17);
                let (scratch, kern) = arena.split();
                scratch.reset(&region, f64::INFINITY);
                compute_raw_alts_in(&terrain, 30.0, t, &region, scratch, kern, &mut NoRec);
                let mut fresh = ScratchAlt::new(&region, f64::INFINITY);
                compute_raw_alts(&terrain, 30.0, t, &region, &mut fresh, &mut NoRec);
                for (x, y) in region.cells() {
                    assert_eq!(scratch.get(x, y).to_bits(), fresh.get(x, y).to_bits());
                }
            }
        });
    }
}
