//! The line-of-sight masking recurrence — the computational core of
//! Terrain Masking.
//!
//! For one radar threat, the *maximum safe altitude* at a terrain cell is
//! the ceiling of the radar's shadow there: an aircraft is invisible while
//! its elevation angle from the radar is below the steepest terrain angle
//! along the sight line. The recurrence propagates that "blocking slope"
//! outward ring by ring (the XDraw scheme): a cell on ring `k` derives its
//! blocking slope from one or two *parent* cells on ring `k − 1` crossed by
//! the ray from the radar, interpolating between them. This is exactly the
//! "value at one point is computed from the values at neighboring points"
//! dependence the paper describes: rings must be processed in order, but
//! all cells *within* a ring are independent — which is what the
//! fine-grained Tera variant exploits.
//!
//! The recurrence stores the **raw altitude** `h_s + B·d` per cell (sensor
//! height plus blocking slope times distance), from which a parent's
//! blocking slope is recovered exactly; raw altitudes are clamped to the
//! terrain elevation only when merged into the result, so every program
//! variant computes bit-identical masking grids.

use super::scenario::GroundThreat;
use crate::counts::Rec;
use crate::grid::Grid;

/// The clipped region of influence of one threat: the intersection of the
/// Chebyshev disc of radius `radius` around `(cx, cy)` with the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Radar cell x.
    pub cx: usize,
    /// Radar cell y.
    pub cy: usize,
    /// Chebyshev radius in cells.
    pub radius: usize,
    /// Clipped bounds, inclusive.
    pub x0: usize,
    /// Clipped bounds, inclusive.
    pub y0: usize,
    /// Clipped bounds, inclusive.
    pub x1: usize,
    /// Clipped bounds, inclusive.
    pub y1: usize,
}

/// Error returned by [`Region::of`] for a threat whose radar cell lies
/// outside the grid. A malformed (hand-edited or fuzz-replayed) scenario
/// fails with this instead of panicking deep inside a program variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffGridThreat {
    /// Radar cell of the offending threat.
    pub at: (usize, usize),
    /// Grid dimensions the threat was checked against.
    pub grid: (usize, usize),
}

impl std::fmt::Display for OffGridThreat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "threat at {:?} is outside the {:?} grid",
            self.at, self.grid
        )
    }
}

impl std::error::Error for OffGridThreat {}

impl Region {
    /// The region of influence of `threat` on an `x_size × y_size` grid,
    /// or an [`OffGridThreat`] error if the radar cell is off the grid.
    ///
    /// Program variants call this through [`Region::of_checked`]'s
    /// `expect` after scenario validation; callers handling untrusted
    /// input (the fuzzer, corpus replay) match on the `Result`.
    pub fn of(threat: &GroundThreat, x_size: usize, y_size: usize) -> Result<Self, OffGridThreat> {
        if threat.x >= x_size || threat.y >= y_size {
            return Err(OffGridThreat {
                at: (threat.x, threat.y),
                grid: (x_size, y_size),
            });
        }
        let r = threat.radius;
        Ok(Self {
            cx: threat.x,
            cy: threat.y,
            radius: r,
            x0: threat.x.saturating_sub(r),
            y0: threat.y.saturating_sub(r),
            x1: threat.x.saturating_add(r).min(x_size - 1),
            y1: threat.y.saturating_add(r).min(y_size - 1),
        })
    }

    /// [`Region::of`] for callers that have already validated the scenario
    /// (see `TerrainScenario::validate`): panics with the underlying error
    /// message on an off-grid threat instead of returning it.
    pub fn of_checked(threat: &GroundThreat, x_size: usize, y_size: usize) -> Self {
        Self::of(threat, x_size, y_size)
            .unwrap_or_else(|e| panic!("{e} (run TerrainScenario::validate first)"))
    }

    /// Number of cells in the clipped bounding box.
    pub fn n_cells(&self) -> usize {
        (self.x1 - self.x0 + 1) * (self.y1 - self.y0 + 1)
    }

    /// Whether `(x, y)` lies inside the clipped region.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        (self.x0..=self.x1).contains(&x) && (self.y0..=self.y1).contains(&y)
    }

    /// Whether this region's bounding box overlaps `other`'s.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// Iterate all cells of the clipped region, row-major.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (self.y0..=self.y1).flat_map(move |y| (self.x0..=self.x1).map(move |x| (x, y)))
    }

    /// The cells of Chebyshev ring `k` (distance exactly `k` from the
    /// radar) that survive clipping, in a deterministic order.
    pub fn ring(&self, k: usize) -> Vec<(usize, usize)> {
        if k == 0 {
            return vec![(self.cx, self.cy)];
        }
        let mut out = Vec::with_capacity(8 * k);
        let (cx, cy, k) = (self.cx as isize, self.cy as isize, k as isize);
        let push = |x: isize, y: isize, out: &mut Vec<(usize, usize)>| {
            if x >= 0 && y >= 0 {
                let (x, y) = (x as usize, y as usize);
                if self.contains(x, y) {
                    out.push((x, y));
                }
            }
        };
        // Top and bottom edges (full width), then left/right edges
        // (excluding corners already emitted).
        for x in (cx - k)..=(cx + k) {
            push(x, cy - k, &mut out);
        }
        for y in (cy - k + 1)..=(cy + k - 1) {
            push(cx - k, y, &mut out);
            push(cx + k, y, &mut out);
        }
        for x in (cx - k)..=(cx + k) {
            push(x, cy + k, &mut out);
        }
        out
    }
}

/// Storage for raw per-threat altitudes during the recurrence. The
/// sequential program (Program 3) runs the recurrence *in place* over the
/// shared `masking` grid; the coarse-grained program (Program 4) runs it
/// over a per-thread scratch array. Both are [`AltStore`]s.
pub trait AltStore {
    /// Read the raw altitude at grid cell `(x, y)`.
    fn get(&self, x: usize, y: usize) -> f64;
    /// Write the raw altitude at grid cell `(x, y)`.
    fn set(&mut self, x: usize, y: usize, v: f64);
}

impl AltStore for Grid<f64> {
    #[inline]
    fn get(&self, x: usize, y: usize) -> f64 {
        self[(x, y)]
    }
    #[inline]
    fn set(&mut self, x: usize, y: usize, v: f64) {
        self[(x, y)] = v;
    }
}

/// A scratch array covering only a region's bounding box — the per-thread
/// `temp` array of Program 4, sized at the paper's "up to 5% of the total
/// terrain" per thread.
#[derive(Debug, Clone)]
pub struct ScratchAlt {
    x0: usize,
    y0: usize,
    grid: Grid<f64>,
}

impl ScratchAlt {
    /// Scratch covering `region`, initialized to `fill`.
    pub fn new(region: &Region, fill: f64) -> Self {
        Self {
            x0: region.x0,
            y0: region.y0,
            grid: Grid::new(region.x1 - region.x0 + 1, region.y1 - region.y0 + 1, fill),
        }
    }

    /// Words of storage this scratch occupies.
    pub fn words(&self) -> usize {
        self.grid.len()
    }
}

impl AltStore for ScratchAlt {
    #[inline]
    fn get(&self, x: usize, y: usize) -> f64 {
        self.grid[(x - self.x0, y - self.y0)]
    }
    #[inline]
    fn set(&mut self, x: usize, y: usize, v: f64) {
        self.grid[(x - self.x0, y - self.y0)] = v;
    }
}

/// Sensor height above datum for a threat standing on the terrain.
pub fn sensor_height(terrain: &Grid<f64>, threat: &GroundThreat) -> f64 {
    terrain[(threat.x, threat.y)] + threat.mast_height
}

#[inline]
fn dist_cells(dx: isize, dy: isize, cell_size: f64) -> f64 {
    (((dx * dx + dy * dy) as f64).sqrt()) * cell_size
}

/// Compute the raw altitude of one cell on ring `k ≥ 2` from its parents on
/// ring `k − 1` (already present in `store`). Exposed for the fine-grained
/// variant, which processes a ring's cells in parallel.
///
/// Parent selection is the XDraw scheme: scale the offset by `(k−1)/k`; on
/// an edge-dominant cell the two parents straddle the scaled coordinate on
/// the dominant-axis edge of ring `k − 1`; on a diagonal cell the single
/// parent is the diagonal cell of ring `k − 1`.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the benchmark kernel's signature: grid + threat geometry + cell
pub fn raw_alt_for_cell<S: AltStore, R: Rec>(
    terrain: &Grid<f64>,
    cell_size: f64,
    h_s: f64,
    cx: usize,
    cy: usize,
    x: usize,
    y: usize,
    store: &S,
    r: &mut R,
) -> f64 {
    let dx = x as isize - cx as isize;
    let dy = y as isize - cy as isize;
    let k = dx.abs().max(dy.abs());
    debug_assert!(k >= 2, "ring 0/1 cells have no parents");
    let scale = (k - 1) as f64 / k as f64;
    r.int(6); // offsets, ring index, parent arithmetic
    r.fp(2);

    // Blocking value of a parent: the steeper of its own terrain slope and
    // its inherited blocking slope (recovered from its raw altitude).
    let parent_v = |px: isize, py: isize, r: &mut R| -> f64 {
        let (pxu, pyu) = (px as usize, py as usize);
        let d = dist_cells(px - cx as isize, py - cy as isize, cell_size);
        let raw = store.get(pxu, pyu);
        let elev = terrain[(pxu, pyu)];
        r.sload(2); // raw + terrain, streaming over large grids
        r.fp(7); // distance, two slopes, max
        let b = if raw == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            (raw - h_s) / d
        };
        let slope = (elev - h_s) / d;
        b.max(slope)
    };

    let v = if dx.abs() == dy.abs() {
        // Diagonal: single parent one step in on both axes.
        parent_v(
            cx as isize + dx.signum() * (k - 1),
            cy as isize + dy.signum() * (k - 1),
            r,
        )
    } else if dx.abs() > dy.abs() {
        // x-dominant: parents on the vertical edge of ring k-1.
        let px = cx as isize + dx.signum() * (k - 1);
        let fy = cy as f64 + dy as f64 * scale;
        let y_lo = fy.floor();
        let w = fy - y_lo;
        r.fp(4);
        let v_lo = parent_v(px, y_lo as isize, r);
        if w == 0.0 {
            v_lo
        } else {
            let v_hi = parent_v(px, y_lo as isize + 1, r);
            v_lo * (1.0 - w) + v_hi * w
        }
    } else {
        // y-dominant: parents on the horizontal edge of ring k-1.
        let py = cy as isize + dy.signum() * (k - 1);
        let fx = cx as f64 + dx as f64 * scale;
        let x_lo = fx.floor();
        let w = fx - x_lo;
        r.fp(4);
        let v_lo = parent_v(x_lo as isize, py, r);
        if w == 0.0 {
            v_lo
        } else {
            let v_hi = parent_v(x_lo as isize + 1, py, r);
            v_lo * (1.0 - w) + v_hi * w
        }
    };

    let d = dist_cells(dx, dy, cell_size);
    r.fp(5);
    h_s + v * d
}

/// Run the full ring recurrence for `threat` into `store`: after the call,
/// `store` holds the raw altitude for every cell of the region (rings 0 and
/// 1 hold `-∞`: next to the radar there is no intermediate terrain, so
/// nothing is masked above ground). Rings are processed in order; cells
/// within a ring are independent.
pub fn compute_raw_alts<S: AltStore, R: Rec>(
    terrain: &Grid<f64>,
    cell_size: f64,
    threat: &GroundThreat,
    region: &Region,
    store: &mut S,
    r: &mut R,
) {
    let h_s = sensor_height(terrain, threat);
    r.load(2);
    r.fp(1);
    for (x, y) in region.ring(0) {
        store.set(x, y, f64::NEG_INFINITY);
        r.sstore(1);
    }
    for (x, y) in region.ring(1) {
        store.set(x, y, f64::NEG_INFINITY);
        r.sstore(1);
    }
    for k in 2..=region.radius {
        for (x, y) in region.ring(k) {
            let v = raw_alt_for_cell(
                terrain, cell_size, h_s, region.cx, region.cy, x, y, store, r,
            );
            store.set(x, y, v);
            r.sstore(1);
        }
    }
}

/// Clamp a raw altitude into the final per-threat masking value at a cell:
/// the shadow ceiling, but never below the local terrain (an aircraft on
/// the ground can always be there; "safe altitude" bottoms out at ground
/// level).
#[inline]
pub fn clamp_alt(raw: f64, elev: f64) -> f64 {
    raw.max(elev)
}

/// Convenience: the complete per-threat masking field over the threat's
/// region (clamped), as a scratch array. Used by the verifier and tests.
pub fn per_threat_masking(
    terrain: &Grid<f64>,
    cell_size: f64,
    threat: &GroundThreat,
) -> (Region, ScratchAlt) {
    let region = Region::of_checked(threat, terrain.x_size(), terrain.y_size());
    let mut scratch = ScratchAlt::new(&region, f64::INFINITY);
    compute_raw_alts(
        terrain,
        cell_size,
        threat,
        &region,
        &mut scratch,
        &mut crate::counts::NoRec,
    );
    // Clamp in place.
    let mut clamped = scratch.clone();
    for (x, y) in region.cells() {
        clamped.set(x, y, clamp_alt(scratch.get(x, y), terrain[(x, y)]));
    }
    (region, clamped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::NoRec;

    fn flat_terrain(size: usize, elev: f64) -> Grid<f64> {
        Grid::new(size, size, elev)
    }

    fn center_threat(size: usize, radius: usize) -> GroundThreat {
        GroundThreat {
            x: size / 2,
            y: size / 2,
            radius,
            mast_height: 20.0,
        }
    }

    #[test]
    fn region_clips_to_grid() {
        let t = GroundThreat {
            x: 2,
            y: 3,
            radius: 5,
            mast_height: 10.0,
        };
        let r = Region::of_checked(&t, 10, 10);
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (0, 0, 7, 8));
        assert_eq!(r.n_cells(), 8 * 9);
    }

    #[test]
    fn off_grid_threat_is_an_error_not_a_panic() {
        let t = GroundThreat {
            x: 10,
            y: 3,
            radius: 2,
            mast_height: 10.0,
        };
        let err = Region::of(&t, 10, 10).unwrap_err();
        assert_eq!(err.at, (10, 3));
        assert_eq!(err.grid, (10, 10));
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn huge_radius_clips_without_overflow() {
        let t = GroundThreat {
            x: 0,
            y: 0,
            radius: usize::MAX - 1,
            mast_height: 10.0,
        };
        let r = Region::of(&t, 5, 5).unwrap();
        assert_eq!((r.x0, r.y0, r.x1, r.y1), (0, 0, 4, 4));
    }

    #[test]
    fn ring_cells_have_exact_chebyshev_distance() {
        let t = center_threat(41, 15);
        let r = Region::of_checked(&t, 41, 41);
        for k in 0..=15 {
            let ring = r.ring(k);
            assert!(!ring.is_empty());
            for (x, y) in &ring {
                let d = (*x as isize - r.cx as isize)
                    .abs()
                    .max((*y as isize - r.cy as isize).abs());
                assert_eq!(d as usize, k);
            }
            // Unclipped interior ring has exactly 8k cells (1 for k=0).
            let expected = if k == 0 { 1 } else { 8 * k };
            assert_eq!(ring.len(), expected, "ring {k}");
        }
    }

    #[test]
    fn rings_partition_the_region() {
        let t = GroundThreat {
            x: 3,
            y: 4,
            radius: 6,
            mast_height: 10.0,
        };
        let r = Region::of_checked(&t, 20, 20);
        let mut from_rings: Vec<(usize, usize)> = (0..=6).flat_map(|k| r.ring(k)).collect();
        from_rings.sort_unstable();
        let mut all: Vec<(usize, usize)> = r.cells().collect();
        all.sort_unstable();
        assert_eq!(from_rings, all);
    }

    #[test]
    fn overlap_detection() {
        let a = Region {
            cx: 5,
            cy: 5,
            radius: 3,
            x0: 2,
            y0: 2,
            x1: 8,
            y1: 8,
        };
        let b = Region {
            cx: 10,
            cy: 10,
            radius: 3,
            x0: 7,
            y0: 7,
            x1: 13,
            y1: 13,
        };
        let c = Region {
            cx: 20,
            cy: 20,
            radius: 2,
            x0: 18,
            y0: 18,
            x1: 22,
            y1: 22,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn flat_terrain_masks_nothing_above_ground() {
        // On a flat plain a radar on a mast sees everything above ground:
        // every clamped masking value is exactly the terrain elevation.
        let terrain = flat_terrain(33, 100.0);
        let t = center_threat(33, 12);
        let (region, masked) = per_threat_masking(&terrain, 100.0, &t);
        for (x, y) in region.cells() {
            assert_eq!(masked.get(x, y), 100.0, "cell ({x},{y})");
        }
    }

    #[test]
    fn ridge_casts_a_growing_shadow() {
        // A tall wall east of the radar: cells beyond the wall are masked
        // up to an altitude that grows with distance (the shadow cone).
        let size = 41;
        let mut terrain = flat_terrain(size, 0.0);
        let c = size / 2;
        for y in 0..size {
            terrain[(c + 3, y)] = 500.0;
        }
        let t = GroundThreat {
            x: c,
            y: c,
            radius: 18,
            mast_height: 10.0,
        };
        let (_, masked) = per_threat_masking(&terrain, 100.0, &t);
        // Directly east, beyond the wall, masking must exceed ground and
        // increase with distance.
        let m5 = masked.get(c + 5, c);
        let m10 = masked.get(c + 10, c);
        let m15 = masked.get(c + 15, c);
        assert!(m5 > 0.0, "wall must cast a shadow: {m5}");
        assert!(m10 > m5);
        assert!(m15 > m10);
        // West of the radar there is no wall: bare ground.
        assert_eq!(masked.get(c - 10, c), 0.0);
    }

    #[test]
    fn shadow_height_matches_similar_triangles_on_the_axis() {
        // On the axis through the wall the parent chain is exact (no
        // interpolation), so the shadow ceiling obeys similar triangles:
        // (h_wall - h_s)/d_wall == (ceil - h_s)/d_cell.
        let size = 41;
        let mut terrain = flat_terrain(size, 0.0);
        let c = size / 2;
        terrain[(c + 4, c)] = 300.0;
        let t = GroundThreat {
            x: c,
            y: c,
            radius: 18,
            mast_height: 10.0,
        };
        let (_, masked) = per_threat_masking(&terrain, 100.0, &t);
        let h_s = 10.0;
        let d_wall = 4.0 * 100.0;
        for dist in [8usize, 12, 16] {
            let d_cell = dist as f64 * 100.0;
            let expected = h_s + (300.0 - h_s) / d_wall * d_cell;
            let got = masked.get(c + dist, c);
            assert!(
                (got - expected).abs() < 1e-6,
                "dist {dist}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn raw_alts_are_deterministic_between_stores() {
        // Scratch store and full-grid store must produce identical raw
        // values — this is the invariant that makes Program 3 and
        // Program 4 outputs bit-identical.
        let terrain = {
            let mut g = flat_terrain(25, 0.0);
            for (i, v) in g.as_mut_slice().iter_mut().enumerate() {
                *v = ((i * 2654435761) % 997) as f64;
            }
            g
        };
        let t = center_threat(25, 10);
        let region = Region::of_checked(&t, 25, 25);

        let mut scratch = ScratchAlt::new(&region, f64::INFINITY);
        compute_raw_alts(&terrain, 100.0, &t, &region, &mut scratch, &mut NoRec);

        let mut full = Grid::new(25, 25, f64::INFINITY);
        compute_raw_alts(&terrain, 100.0, &t, &region, &mut full, &mut NoRec);

        for (x, y) in region.cells() {
            let a = scratch.get(x, y);
            let b = AltStore::get(&full, x, y);
            assert!(a == b, "({x},{y}): {a} vs {b}");
        }
    }

    #[test]
    fn recurrence_records_memory_heavy_ops() {
        let terrain = flat_terrain(33, 50.0);
        let t = center_threat(33, 12);
        let region = Region::of_checked(&t, 33, 33);
        let mut scratch = ScratchAlt::new(&region, f64::INFINITY);
        let mut r = sthreads::OpRecorder::new();
        compute_raw_alts(&terrain, 100.0, &t, &region, &mut scratch, &mut r);
        let c = r.counts();
        assert!(c.stream_loads > 0 && c.stream_stores > 0 && c.fp_ops > 0);
        // Every region cell is stored exactly once (streaming class).
        assert_eq!(c.stream_stores, region.n_cells() as u64);
    }

    #[test]
    fn clamp_respects_terrain_floor() {
        assert_eq!(clamp_alt(f64::NEG_INFINITY, 120.0), 120.0);
        assert_eq!(clamp_alt(80.0, 120.0), 120.0);
        assert_eq!(clamp_alt(500.0, 120.0), 500.0);
    }

    #[test]
    fn scratch_words_match_region_size() {
        let t = center_threat(101, 30);
        let region = Region::of_checked(&t, 101, 101);
        let scratch = ScratchAlt::new(&region, 0.0);
        assert_eq!(scratch.words(), 61 * 61);
    }
}
