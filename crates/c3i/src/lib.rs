//! # c3i — the C3I Parallel Benchmark Suite problems of the SC'98 study
//!
//! The USAF Rome Laboratory C3I Parallel Benchmark Suite (C3IPBS) consists
//! of eight problems representing essential elements of real command,
//! control, communication and intelligence applications. The SC'98 Tera MTA
//! evaluation uses two of them, both reimplemented here in full:
//!
//! * [`threat`] — **Threat Analysis**: a time-stepped simulation of the
//!   trajectories of incoming ballistic threats, computing for each
//!   (threat, weapon) pair the time intervals over which the threat can be
//!   intercepted (paper §5, Programs 1–2).
//! * [`terrain`] — **Terrain Masking**: computation of the maximum safe
//!   flight altitude over all points of an uneven terrain containing
//!   ground-based threats (paper §6, Programs 3–4).
//!
//! Each problem provides, as the C3IPBS does:
//!
//! 1. a problem description (module docs),
//! 2. an efficient sequential program,
//! 3. benchmark input data — seeded synthetic scenario generators matching
//!    the paper's workload statistics (5 scenarios; 1000 threats/scenario
//!    for Threat Analysis; 60 threats and ≤5 % regions of influence for
//!    Terrain Masking), and
//! 4. a correctness test for the output.
//!
//! On top of the sequential programs, the crate implements every manual
//! parallelization the paper evaluates: static chunking (Program 2),
//! dynamic self-scheduling with block locks (Program 4), fine-grained
//! synchronization-variable and inner-loop variants (the Tera-specific
//! approaches of §5 and §6).
//!
//! All algorithms are written once, generic over a [`counts::Rec`] operation
//! recorder: instantiated with [`counts::NoRec`] they run at full speed on
//! the host; instantiated with an [`sthreads::OpRecorder`] they produce the
//! per-logical-thread operation counts consumed by the machine models in
//! `eval-core`.

pub mod counts;
pub mod grid;
pub mod io;
pub mod terrain;
pub mod threat;

pub use counts::{NoRec, ParallelPhase, PhasedProfile, Profile, Rec};
pub use grid::Grid;
