//! Row-major 2-D grid used for terrain elevations, masking results, and
//! per-thread scratch arrays.
//!
//! The Terrain Masking benchmark is memory-bound: its time goes into
//! streaming reads and writes over large 2-D arrays. `Grid` is a flat
//! `Vec`-backed array with `(x, y)` indexing so those access patterns are
//! explicit and cheap, and so the simulators can reason about addresses
//! (`Grid::flat_index` is the word address used by trace generation).

use std::ops::{Index, IndexMut};

/// A dense `x_size × y_size` grid stored row-major (`y` major, `x` minor).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Grid<T> {
    x_size: usize,
    y_size: usize,
    data: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// A grid filled with `fill`.
    pub fn new(x_size: usize, y_size: usize, fill: T) -> Self {
        Self {
            x_size,
            y_size,
            data: vec![fill; x_size * y_size],
        }
    }

    /// Re-shape the grid to `x_size × y_size` and fill every cell with
    /// `fill`, reusing the existing backing storage. Allocates only when
    /// the new shape exceeds the retained capacity — the reuse hook the
    /// per-thread kernel arenas lean on to keep the masking pipeline free
    /// of hot-path allocations.
    pub fn reset(&mut self, x_size: usize, y_size: usize, fill: T) {
        self.x_size = x_size;
        self.y_size = y_size;
        self.data.clear();
        self.data.resize(x_size * y_size, fill);
    }
}

impl<T> Grid<T> {
    /// Build a grid from a function of the coordinates.
    pub fn from_fn(x_size: usize, y_size: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(x_size * y_size);
        for y in 0..y_size {
            for x in 0..x_size {
                data.push(f(x, y));
            }
        }
        Self {
            x_size,
            y_size,
            data,
        }
    }

    /// Grid width (number of `x` positions).
    pub fn x_size(&self) -> usize {
        self.x_size
    }

    /// Grid height (number of `y` positions).
    pub fn y_size(&self) -> usize {
        self.y_size
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether `(x, y)` is inside the grid.
    pub fn contains(&self, x: isize, y: isize) -> bool {
        x >= 0 && y >= 0 && (x as usize) < self.x_size && (y as usize) < self.y_size
    }

    /// The flat word index of `(x, y)` — the "address" used by the memory
    /// trace generators.
    #[inline]
    pub fn flat_index(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.x_size && y < self.y_size);
        y * self.x_size + x
    }

    /// Borrow the backing storage (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the backing storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow row `y` as a contiguous slice.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        debug_assert!(y < self.y_size);
        &self.data[y * self.x_size..(y + 1) * self.x_size]
    }

    /// Mutably borrow row `y` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        debug_assert!(y < self.y_size);
        &mut self.data[y * self.x_size..(y + 1) * self.x_size]
    }

    /// Iterate the rows in `y` order, each as a contiguous slice — the
    /// access pattern the row-sweep kernels are built around.
    pub fn rows(&self) -> impl Iterator<Item = &[T]> {
        // `max(1)` keeps the zero-width grid from panicking in
        // `chunks_exact` (it has no rows to yield either way).
        self.data.chunks_exact(self.x_size.max(1))
    }

    /// Iterate `(x, y, &value)` in row-major order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        self.rows()
            .enumerate()
            .flat_map(|(y, row)| row.iter().enumerate().map(move |(x, v)| (x, y, v)))
    }
}

impl<T> Index<(usize, usize)> for Grid<T> {
    type Output = T;
    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &T {
        &self.data[self.flat_index(x, y)]
    }
}

impl<T> IndexMut<(usize, usize)> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut T {
        let i = self.flat_index(x, y);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fills_all_cells() {
        let g = Grid::new(3, 2, 7u32);
        assert_eq!(g.len(), 6);
        assert!(g.as_slice().iter().all(|&v| v == 7));
        assert_eq!(g.x_size(), 3);
        assert_eq!(g.y_size(), 2);
    }

    #[test]
    fn from_fn_and_indexing_agree() {
        let g = Grid::from_fn(4, 3, |x, y| 10 * y + x);
        for y in 0..3 {
            for x in 0..4 {
                assert_eq!(g[(x, y)], 10 * y + x);
            }
        }
    }

    #[test]
    fn flat_index_is_row_major() {
        let g = Grid::new(5, 4, 0u8);
        assert_eq!(g.flat_index(0, 0), 0);
        assert_eq!(g.flat_index(4, 0), 4);
        assert_eq!(g.flat_index(0, 1), 5);
        assert_eq!(g.flat_index(4, 3), 19);
    }

    #[test]
    fn index_mut_writes_through() {
        let mut g = Grid::new(2, 2, 0i32);
        g[(1, 0)] = 5;
        g[(0, 1)] = -3;
        assert_eq!(g.as_slice(), &[0, 5, -3, 0]);
    }

    #[test]
    fn contains_checks_bounds() {
        let g = Grid::new(3, 3, ());
        assert!(g.contains(0, 0));
        assert!(g.contains(2, 2));
        assert!(!g.contains(-1, 0));
        assert!(!g.contains(0, 3));
        assert!(!g.contains(3, 0));
    }

    #[test]
    fn iter_cells_yields_coordinates_in_row_major_order() {
        let g = Grid::from_fn(2, 2, |x, y| (x, y));
        let cells: Vec<_> = g.iter_cells().map(|(x, y, _)| (x, y)).collect();
        assert_eq!(cells, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn empty_grid() {
        let g: Grid<u8> = Grid::new(0, 5, 0);
        assert!(g.is_empty());
        assert_eq!(g.iter_cells().count(), 0);
        assert_eq!(g.rows().count(), 0);
    }

    #[test]
    fn rows_cover_the_grid_in_order() {
        let g = Grid::from_fn(3, 2, |x, y| 10 * y + x);
        let rows: Vec<Vec<usize>> = g.rows().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![vec![0, 1, 2], vec![10, 11, 12]]);
        assert_eq!(g.row(1), &[10, 11, 12]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut g = Grid::new(3, 2, 0u8);
        g.row_mut(1).copy_from_slice(&[7, 8, 9]);
        assert_eq!(g.as_slice(), &[0, 0, 0, 7, 8, 9]);
    }

    #[test]
    fn reset_reshapes_without_growing_capacity() {
        let mut g = Grid::new(8, 8, 1.5f64);
        g[(3, 3)] = 9.0;
        g.reset(5, 4, 0.0);
        assert_eq!((g.x_size(), g.y_size(), g.len()), (5, 4, 20));
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }
}
