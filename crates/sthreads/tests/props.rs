//! Property-based tests for the sthreads runtime primitives.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use sthreads::{
    chunk_range, multithreaded_for, OpCounts, ParFor, Schedule, SyncVar, ThreadCounts, WorkQueue,
};

proptest! {
    /// Every index in 0..n belongs to exactly one chunk, for any (n, chunks).
    #[test]
    fn chunking_is_a_partition(n in 0usize..5000, chunks in 1usize..300) {
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for c in 0..chunks {
            let r = chunk_range(c, n, chunks);
            prop_assert_eq!(r.start, prev_end, "chunks must be contiguous");
            prev_end = r.end;
            covered += r.len();
        }
        prop_assert_eq!(prev_end, n);
        prop_assert_eq!(covered, n);
    }

    /// Chunk sizes never differ by more than one.
    #[test]
    fn chunking_is_balanced(n in 0usize..5000, chunks in 1usize..300) {
        let sizes: Vec<usize> = (0..chunks).map(|c| chunk_range(c, n, chunks).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// multithreaded_for computes the same reduction as a sequential loop,
    /// for all three schedules and arbitrary thread counts.
    #[test]
    fn par_for_matches_sequential_sum(
        n in 0usize..2000,
        threads in 1usize..9,
        which in 0usize..3,
    ) {
        let schedule = [Schedule::Static, Schedule::Dynamic, Schedule::Stealing][which];
        let expected: u64 = (0..n as u64).map(|i| i.wrapping_mul(2654435761)).sum();
        let sum = AtomicU64::new(0);
        multithreaded_for(0..n, threads, schedule, |i| {
            sum.fetch_add((i as u64).wrapping_mul(2654435761), Ordering::Relaxed);
        });
        prop_assert_eq!(sum.load(Ordering::Relaxed), expected);
    }

    /// A chunked ParFor with an arbitrary chunk count still covers the range.
    #[test]
    fn chunked_par_for_covers_range(
        start in 0usize..100,
        len in 0usize..1000,
        threads in 1usize..6,
        chunks in 1usize..64,
    ) {
        let covered = AtomicU64::new(0);
        ParFor::new(start..start + len)
            .threads(threads)
            .chunk_count(chunks)
            .run_chunked(|c| {
                covered.fetch_add((c.end - c.first) as u64, Ordering::Relaxed);
            });
        prop_assert_eq!(covered.load(Ordering::Relaxed), len as u64);
    }

    /// WorkQueue dispenses the full range with no duplicates under
    /// sequential draining from an arbitrary start.
    #[test]
    fn work_queue_is_exact(start in 0usize..1000, len in 0usize..1000) {
        let q = WorkQueue::new(start..start + len);
        let mut got = Vec::new();
        while let Some(i) = q.next() {
            got.push(i);
        }
        prop_assert_eq!(got, (start..start + len).collect::<Vec<_>>());
        prop_assert!(q.is_exhausted());
    }

    /// WorkQueue::next_batch dispenses every index exactly once for any
    /// batch size, truncating (never overshooting) at the range end.
    #[test]
    fn work_queue_batches_partition(start in 0usize..500, len in 0usize..2000, k in 1usize..40) {
        let q = WorkQueue::new(start..start + len);
        let mut got = Vec::new();
        while let Some(r) = q.next_batch(k) {
            prop_assert!(r.start >= start && r.end <= start + len, "batch {r:?} out of range");
            prop_assert!(r.len() <= k, "batch longer than requested");
            got.extend(r);
        }
        prop_assert_eq!(got, (start..start + len).collect::<Vec<_>>());
        prop_assert!(q.is_exhausted());
        prop_assert_eq!(q.remaining(), 0);
    }

    /// Concurrent draining with mixed batch sizes claims each index
    /// exactly once, for arbitrary thread counts.
    #[test]
    fn work_queue_batches_concurrent(len in 0usize..3000, threads in 1usize..9, k in 1usize..40) {
        let q = WorkQueue::new(0..len);
        let hits: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            let (q, hits) = (&q, &hits);
            for t in 0..threads {
                // Half the workers use batch k, half single claims, so
                // mixed grains race on the same counter.
                let k = if t % 2 == 0 { k } else { 1 };
                s.spawn(move || {
                    while let Some(r) = q.next_batch(k) {
                        for i in r {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// The dynamic schedule's batched claiming still visits each index
    /// exactly once on the persistent pool, for arbitrary widths.
    #[test]
    fn batched_dynamic_par_for_visits_each_index_once(n in 0usize..4000, threads in 1usize..9) {
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        multithreaded_for(0..n, threads, Schedule::Dynamic, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// par_map under the stealing schedule is bit-identical to the
    /// sequential map at 1, 2 and 8 workers, for arbitrary task counts —
    /// stealing may reorder execution, never results.
    #[test]
    fn stealing_par_map_is_bit_identical_to_sequential(n in 0usize..3000) {
        let expected: Vec<u64> =
            (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        for threads in [1usize, 2, 8] {
            let got = sthreads::par_map(n, threads, Schedule::Stealing, |i| {
                (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
            });
            prop_assert_eq!(&got, &expected, "stealing diverged at {} threads", threads);
        }
    }

    /// SyncVar sequential write/take round-trips any sequence of values.
    #[test]
    fn syncvar_round_trips(values in proptest::collection::vec(any::<i64>(), 0..50)) {
        let v = SyncVar::new_empty();
        for &x in &values {
            v.write(x);
            prop_assert_eq!(v.take(), x);
        }
        prop_assert!(!v.is_full());
    }

    /// ThreadCounts invariants: total >= max thread, imbalance >= 1.
    #[test]
    fn thread_counts_invariants(loads in proptest::collection::vec(0u64..10_000, 1..64)) {
        let tc = ThreadCounts::new(
            loads.iter().map(|&l| OpCounts { int_ops: l, ..OpCounts::default() }).collect(),
        );
        prop_assert!(tc.total().instructions() >= tc.max_thread_instructions());
        prop_assert!(tc.imbalance() >= 1.0 - 1e-9);
        // Round-robin worker totals conserve instructions.
        for workers in [1usize, 2, 3, 7] {
            let per_worker = tc.worker_instructions(workers);
            prop_assert_eq!(per_worker.iter().sum::<u64>(), tc.total().instructions());
        }
    }
}

/// A worker panicking mid-storm in a stealing region must propagate the
/// panic to the caller, and — the regression this test pins — must leave
/// the pool in a state where subsequent stealing regions run to
/// completion: a thief raiding a dead worker's deque, or a parked peer
/// waiting on it, must never deadlock. Repeated because the panic lands
/// at a different point of the steal/pop interleaving each time.
#[test]
fn steal_under_panic_propagates_and_does_not_deadlock() {
    for round in 0..20 {
        let result = std::panic::catch_unwind(|| {
            multithreaded_for(0..2000, 4, Schedule::Stealing, |i| {
                if i == 997 {
                    panic!("intentional mid-storm panic (round {round})");
                }
            });
        });
        assert!(result.is_err(), "the body's panic must reach the caller");

        // The pool must still dispense every index of a fresh region.
        let hits: Vec<AtomicU64> = (0..512).map(|_| AtomicU64::new(0)).collect();
        multithreaded_for(0..512, 4, Schedule::Stealing, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "pool unusable after a panicked stealing region (round {round})"
        );
    }
}
