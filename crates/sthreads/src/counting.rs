//! The op-counting backend.
//!
//! The paper's tables report wall-clock times on four machines we do not
//! have. Our reproduction instead *counts the abstract operations* each
//! logical thread of a benchmark performs — integer ops, floating-point
//! ops, loads, stores, synchronization operations, thread spawns — and
//! feeds those counts through calibrated machine models (`eval-core`).
//!
//! The counting backend executes the benchmark's logical thread structure
//! *sequentially* (one logical thread at a time), so instrumented code needs
//! no atomics and counting is deterministic. What matters for the models is
//! the per-logical-thread distribution of work: the makespan and imbalance
//! of the real parallel execution are derived from it.

/// Abstract operation counts for one logical thread (or one whole program).
///
/// Memory operations are split by *locality class*, because that is what
/// separates compute-bound from memory-bound programs on cache-based
/// machines: `loads`/`stores` touch small, reused working sets (they hit in
/// cache on the conventional platforms), while `stream_loads`/
/// `stream_stores` sweep large arrays with little reuse (they miss at a
/// line-size-determined rate). The Tera MTA has no caches, so its model
/// charges both classes identically — which is precisely the architectural
/// contrast the paper studies.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OpCounts {
    /// Integer ALU operations (adds, compares, index arithmetic, branches).
    pub int_ops: u64,
    /// Memory loads of cache-resident data (words read).
    pub loads: u64,
    /// Floating-point operations.
    pub fp_ops: u64,
    /// Memory stores to cache-resident data (words written).
    pub stores: u64,
    /// Loads streaming over large, low-reuse arrays.
    pub stream_loads: u64,
    /// Stores streaming over large, low-reuse arrays.
    pub stream_stores: u64,
    /// Synchronization operations: full/empty loads/stores, fetch-adds,
    /// lock acquire/release pairs count as one each.
    pub sync_ops: u64,
    /// Logical threads spawned by this thread.
    pub spawns: u64,
}

impl OpCounts {
    /// Total instructions issued (every abstract op is one instruction in
    /// the machine models).
    pub fn instructions(&self) -> u64 {
        self.int_ops
            + self.fp_ops
            + self.loads
            + self.stores
            + self.stream_loads
            + self.stream_stores
            + self.sync_ops
            + self.spawns
    }

    /// Total memory operations (all loads and stores plus sync ops, which
    /// all touch memory on every platform in the study).
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores + self.stream_loads + self.stream_stores + self.sync_ops
    }

    /// Memory operations in the streaming (low-reuse) class.
    pub fn stream_ops(&self) -> u64 {
        self.stream_loads + self.stream_stores
    }

    /// Fraction of instructions that stream over large arrays — the
    /// signature of a memory-bound program on a cache-based machine.
    pub fn stream_fraction(&self) -> f64 {
        let total = self.instructions();
        if total == 0 {
            0.0
        } else {
            self.stream_ops() as f64 / total as f64
        }
    }

    /// Total compute (non-memory) operations.
    pub fn compute_ops(&self) -> u64 {
        self.int_ops + self.fp_ops
    }

    /// Fraction of instructions that touch memory; 0 for an empty count.
    pub fn mem_fraction(&self) -> f64 {
        let total = self.instructions();
        if total == 0 {
            0.0
        } else {
            self.mem_ops() as f64 / total as f64
        }
    }

    /// Element-wise accumulate.
    pub fn add(&mut self, other: &OpCounts) {
        self.int_ops += other.int_ops;
        self.fp_ops += other.fp_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.stream_loads += other.stream_loads;
        self.stream_stores += other.stream_stores;
        self.sync_ops += other.sync_ops;
        self.spawns += other.spawns;
    }

    /// Element-wise sum of two counts.
    pub fn merged(mut self, other: &OpCounts) -> OpCounts {
        self.add(other);
        self
    }
}

impl std::iter::Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> Self {
        iter.fold(OpCounts::default(), |acc, c| acc.merged(&c))
    }
}

/// Recorder handed to instrumented benchmark code. One per logical thread.
///
/// The methods are deliberately tiny so instrumentation reads like
/// annotations on the computation:
///
/// ```
/// use sthreads::OpRecorder;
/// let mut r = OpRecorder::new();
/// r.load(2);       // read threat position, weapon position
/// r.fp(5);         // distance computation
/// r.int(1);        // loop counter
/// r.store(1);      // write interval
/// assert_eq!(r.counts().instructions(), 9);
/// ```
#[derive(Debug, Default, Clone)]
pub struct OpRecorder {
    counts: OpCounts,
}

impl OpRecorder {
    /// A fresh, all-zero recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` integer ALU operations.
    #[inline]
    pub fn int(&mut self, n: u64) {
        self.counts.int_ops += n;
    }

    /// Record `n` floating-point operations.
    #[inline]
    pub fn fp(&mut self, n: u64) {
        self.counts.fp_ops += n;
    }

    /// Record `n` loads.
    #[inline]
    pub fn load(&mut self, n: u64) {
        self.counts.loads += n;
    }

    /// Record `n` stores.
    #[inline]
    pub fn store(&mut self, n: u64) {
        self.counts.stores += n;
    }

    /// Record `n` streaming loads (large-array, low-reuse).
    #[inline]
    pub fn sload(&mut self, n: u64) {
        self.counts.stream_loads += n;
    }

    /// Record `n` streaming stores (large-array, low-reuse).
    #[inline]
    pub fn sstore(&mut self, n: u64) {
        self.counts.stream_stores += n;
    }

    /// Record `n` synchronization operations.
    #[inline]
    pub fn sync(&mut self, n: u64) {
        self.counts.sync_ops += n;
    }

    /// Record `n` thread spawns.
    #[inline]
    pub fn spawn(&mut self, n: u64) {
        self.counts.spawns += n;
    }

    /// The counts accumulated so far.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }
}

/// Per-logical-thread counts for one parallel region, in thread order.
#[derive(Debug, Default, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ThreadCounts {
    threads: Vec<OpCounts>,
}

impl ThreadCounts {
    /// Wrap per-thread counts (index = logical thread id).
    pub fn new(threads: Vec<OpCounts>) -> Self {
        Self { threads }
    }

    /// Run `body(thread_id, recorder)` for every logical thread id in
    /// `0..n_threads`, sequentially, and collect the per-thread counts.
    /// This is the counting backend's `multithreaded_for`-over-chunks.
    pub fn record(n_threads: usize, mut body: impl FnMut(usize, &mut OpRecorder)) -> Self {
        let threads = (0..n_threads)
            .map(|t| {
                let mut r = OpRecorder::new();
                body(t, &mut r);
                r.counts()
            })
            .collect();
        Self { threads }
    }

    /// Number of logical threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Per-thread counts, thread id order.
    pub fn per_thread(&self) -> &[OpCounts] {
        &self.threads
    }

    /// Sum over all threads.
    pub fn total(&self) -> OpCounts {
        self.threads.iter().copied().sum()
    }

    /// Instruction count of the most-loaded thread — the critical path of a
    /// barrier-terminated parallel region.
    pub fn max_thread_instructions(&self) -> u64 {
        self.threads
            .iter()
            .map(OpCounts::instructions)
            .max()
            .unwrap_or(0)
    }

    /// Makespan imbalance: `n_threads * max_thread / total`, i.e. how much
    /// slower than a perfectly balanced decomposition this one is. 1.0 for
    /// perfect balance or an empty region.
    pub fn imbalance(&self) -> f64 {
        let total = self.total().instructions();
        if total == 0 || self.threads.is_empty() {
            return 1.0;
        }
        self.n_threads() as f64 * self.max_thread_instructions() as f64 / total as f64
    }

    /// Group logical threads onto `n_workers` workers round-robin (the
    /// host runtime's chunk-to-worker assignment) and return per-worker
    /// instruction totals. Used to compute makespans when there are more
    /// logical threads than processors (Tera chunk sweeps).
    pub fn worker_instructions(&self, n_workers: usize) -> Vec<u64> {
        assert!(n_workers > 0);
        let mut w = vec![0u64; n_workers];
        for (i, c) in self.threads.iter().enumerate() {
            w[i % n_workers] += c.instructions();
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(int_ops: u64, loads: u64) -> OpCounts {
        OpCounts {
            int_ops,
            loads,
            ..OpCounts::default()
        }
    }

    #[test]
    fn instruction_and_mem_totals() {
        let ops = OpCounts {
            int_ops: 10,
            fp_ops: 5,
            loads: 3,
            stores: 2,
            stream_loads: 6,
            stream_stores: 4,
            sync_ops: 1,
            spawns: 4,
        };
        assert_eq!(ops.instructions(), 35);
        assert_eq!(ops.mem_ops(), 16);
        assert_eq!(ops.stream_ops(), 10);
        assert_eq!(ops.compute_ops(), 15);
        assert!((ops.mem_fraction() - 16.0 / 35.0).abs() < 1e-12);
        assert!((ops.stream_fraction() - 10.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_have_zero_mem_fraction() {
        assert_eq!(OpCounts::default().mem_fraction(), 0.0);
    }

    #[test]
    fn add_and_sum_accumulate() {
        let total: OpCounts = [c(1, 2), c(3, 4), c(5, 6)].into_iter().sum();
        assert_eq!(total, c(9, 12));
    }

    #[test]
    fn recorder_accumulates_each_category() {
        let mut r = OpRecorder::new();
        r.int(1);
        r.fp(2);
        r.load(3);
        r.store(4);
        r.sload(7);
        r.sstore(8);
        r.sync(5);
        r.spawn(6);
        assert_eq!(
            r.counts(),
            OpCounts {
                int_ops: 1,
                fp_ops: 2,
                loads: 3,
                stores: 4,
                stream_loads: 7,
                stream_stores: 8,
                sync_ops: 5,
                spawns: 6,
            }
        );
    }

    #[test]
    fn record_collects_per_thread() {
        let tc = ThreadCounts::record(4, |t, r| r.int((t as u64 + 1) * 10));
        assert_eq!(tc.n_threads(), 4);
        assert_eq!(tc.total().int_ops, 100);
        assert_eq!(tc.max_thread_instructions(), 40);
    }

    #[test]
    fn imbalance_of_balanced_region_is_one() {
        let tc = ThreadCounts::new(vec![c(10, 0); 8]);
        assert!((tc.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_straggler() {
        let mut threads = vec![c(10, 0); 3];
        threads.push(c(40, 0)); // straggler: 4 threads, total 70, max 40
        let tc = ThreadCounts::new(threads);
        assert!((tc.imbalance() - 4.0 * 40.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn empty_region_has_unit_imbalance() {
        assert_eq!(ThreadCounts::new(vec![]).imbalance(), 1.0);
        assert_eq!(ThreadCounts::new(vec![]).max_thread_instructions(), 0);
    }

    #[test]
    fn worker_instructions_round_robin() {
        let tc = ThreadCounts::new(vec![c(1, 0), c(2, 0), c(3, 0), c(4, 0), c(5, 0)]);
        // workers: 0 gets threads 0,2,4 => 1+3+5 = 9; 1 gets 1,3 => 6
        assert_eq!(tc.worker_instructions(2), vec![9, 6]);
    }
}
