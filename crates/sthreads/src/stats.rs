//! Always-on runtime observability for the parallel execution layer.
//!
//! The paper's §7 diagnosis of the Pentium Pro results ("tens of thousands
//! of cycles" per `CreateThread`) was only possible because the authors
//! could *measure* where region time went. This module gives the host
//! runtime the same visibility: every parallel region accumulates counters
//! into a process-wide set of relaxed atomics, and callers diff
//! [`snapshot`]s around a phase to attribute its wall-clock between
//! dispatch overhead, load imbalance, and useful work.
//!
//! # The full stats schema
//!
//! [`StatsSnapshot`] carries three tiers, from cheapest to most detailed:
//!
//! 1. **Counter tier** (always on) — relaxed `fetch_add`s, a handful per
//!    *region* or per *scheduling event*, never per iteration:
//!    * `regions`, `nested_regions`, `serial_cutoff_regions` — how often
//!      the pool ran a region, fell back to scoped threads, or kept a
//!      region inline because the work could not pay the dispatch floor;
//!    * `tasks`, `batches`, `batch_items` — loop iterations entering
//!      `ParFor`, and how coarsely the dynamic/stealing schedules claimed
//!      them ([`StatsSnapshot::mean_batch_items`]);
//!    * `parks`, `wakes` — worker condvar traffic between regions.
//! 2. **Steal tier** (always on; only moves when
//!    [`Schedule::Stealing`](crate::Schedule::Stealing) runs) — one
//!    relaxed add per steal *attempt*, which is orders of magnitude rarer
//!    than claims:
//!    * `steals` / `stolen_items` — successful steals and the iterations
//!      they moved between workers;
//!    * `steal_fails` — CAS races lost to the owner or another thief
//!      (contention signal);
//!    * `victim_misses` — sweep visits that found a victim's deque empty
//!      (termination/imbalance signal: a storm of misses means workers
//!      are starving, not racing).
//! 3. **Nano-timing tier** (opt-in via [`set_timing`]) — reads the clock
//!    several times per worker per region:
//!    * `dispatch_ns` — Σ publish-to-pickup latency across workers;
//!    * `busy_ns` / `idle_ns` — body execution vs parked time;
//!    * `imbalance_ns` — Σ over regions of (slowest thread − mean), the
//!      critical-path cost of load imbalance; the *per-worker* busy split
//!      of the most recent region is kept in
//!      [`last_region_worker_busy`].
//! 4. **Service-latency percentile tier** (always on; only moves when a
//!    caller records into it) — a log₂-bucketed histogram of per-request
//!    wall-clock latency for request-serving layers built on the pool
//!    (the `eval-core` evaluation service records one sample per served
//!    request). One relaxed add per *request*, so the cost is invisible
//!    next to the work a request represents. Read it with
//!    [`service_latency`]; diff two [`LatencySnapshot`]s to scope a
//!    phase, and ask the snapshot for [`LatencySnapshot::quantile_ns`]
//!    (p50/p90/p99) or [`LatencySnapshot::count`].
//!
//! The module also owns the *measured dispatch floor* ([`dispatch_floor_ns`])
//! that [`ParFor`](crate::ParFor)'s small-region sequential cutoff compares
//! against: the cost of waking the pool is measured on this host at first
//! use, never hard-coded, so the cutoff adapts to the machine it runs on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Instant;

/// Monotonic process epoch; all `*_ns` values are nanoseconds since it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch (monotonic, wrap-free for ~584 y).
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static TIMING: AtomicBool = AtomicBool::new(false);

/// Enable or disable the nano-timing tier (dispatch latency, busy/idle
/// nanos, imbalance). Counters are unaffected — they are always on.
pub fn set_timing(on: bool) {
    // Materialize the epoch before any worker reads the clock, so
    // concurrent first uses cannot observe different epochs.
    let _ = epoch();
    TIMING.store(on, Relaxed);
}

/// Whether the nano-timing tier is currently enabled.
pub fn timing_enabled() -> bool {
    TIMING.load(Relaxed)
}

// Process-wide accumulators. Relaxed is sufficient everywhere: each value
// is a statistic, and the region-exit handshake (a mutex) orders the
// interesting cross-thread flushes anyway.
static REGIONS: AtomicU64 = AtomicU64::new(0);
static NESTED_REGIONS: AtomicU64 = AtomicU64::new(0);
static SERIAL_CUTOFF_REGIONS: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static BATCHES: AtomicU64 = AtomicU64::new(0);
static BATCH_ITEMS: AtomicU64 = AtomicU64::new(0);
static PARKS: AtomicU64 = AtomicU64::new(0);
static WAKES: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static STOLEN_ITEMS: AtomicU64 = AtomicU64::new(0);
static STEAL_FAILS: AtomicU64 = AtomicU64::new(0);
static VICTIM_MISSES: AtomicU64 = AtomicU64::new(0);
static DISPATCH_NS: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);
static IDLE_NS: AtomicU64 = AtomicU64::new(0);
static IMBALANCE_NS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of every accumulator. Subtract two snapshots
/// (`after - before`) to get the activity of the phase between them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Parallel regions opened (pooled, nested-fallback, and cutoff).
    pub regions: u64,
    /// Regions that took the nested scoped-thread fallback.
    pub nested_regions: u64,
    /// Regions the measured sequential cutoff ran inline instead of
    /// dispatching (see [`dispatch_floor_ns`]).
    pub serial_cutoff_regions: u64,
    /// Loop iterations dispatched through `ParFor`/`par_map`.
    pub tasks: u64,
    /// Non-empty batches drawn from `WorkQueue::next_batch`.
    pub batches: u64,
    /// Iterations claimed across those batches.
    pub batch_items: u64,
    /// Worker park events (condvar waits between regions), inferred at
    /// region exit as `width - 1` per pooled region.
    pub parks: u64,
    /// Worker wake events (a parked worker picked up a region body).
    pub wakes: u64,
    /// Successful steals under [`Schedule::Stealing`](crate::Schedule::Stealing):
    /// one worker split off half of another's unclaimed span.
    pub steals: u64,
    /// Iterations moved between workers by those steals.
    pub stolen_items: u64,
    /// Steal attempts that lost the CAS race to the owner or another
    /// thief (the victim may still hold work).
    pub steal_fails: u64,
    /// Steal-sweep visits that found the victim's deque empty.
    pub victim_misses: u64,
    /// Σ over workers of (body start − region publish). Timing tier only.
    pub dispatch_ns: u64,
    /// Σ body execution nanos across all logical threads. Timing tier only.
    pub busy_ns: u64,
    /// Σ nanos workers spent parked between regions. Timing tier only.
    pub idle_ns: u64,
    /// Σ over regions of (slowest logical thread − mean): the wall-clock
    /// cost of load imbalance on the critical path. Timing tier only.
    pub imbalance_ns: u64,
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;
    /// Saturating per-field difference: `after - before` across a phase.
    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            regions: self.regions.saturating_sub(rhs.regions),
            nested_regions: self.nested_regions.saturating_sub(rhs.nested_regions),
            serial_cutoff_regions: self
                .serial_cutoff_regions
                .saturating_sub(rhs.serial_cutoff_regions),
            tasks: self.tasks.saturating_sub(rhs.tasks),
            batches: self.batches.saturating_sub(rhs.batches),
            batch_items: self.batch_items.saturating_sub(rhs.batch_items),
            parks: self.parks.saturating_sub(rhs.parks),
            wakes: self.wakes.saturating_sub(rhs.wakes),
            steals: self.steals.saturating_sub(rhs.steals),
            stolen_items: self.stolen_items.saturating_sub(rhs.stolen_items),
            steal_fails: self.steal_fails.saturating_sub(rhs.steal_fails),
            victim_misses: self.victim_misses.saturating_sub(rhs.victim_misses),
            dispatch_ns: self.dispatch_ns.saturating_sub(rhs.dispatch_ns),
            busy_ns: self.busy_ns.saturating_sub(rhs.busy_ns),
            idle_ns: self.idle_ns.saturating_sub(rhs.idle_ns),
            imbalance_ns: self.imbalance_ns.saturating_sub(rhs.imbalance_ns),
        }
    }
}

impl StatsSnapshot {
    /// Mean items per drawn batch (0 when no batches were drawn).
    pub fn mean_batch_items(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_items as f64 / self.batches as f64
        }
    }

    /// Mean iterations moved per successful steal (0 when none occurred).
    pub fn mean_stolen_items(&self) -> f64 {
        if self.steals == 0 {
            0.0
        } else {
            self.stolen_items as f64 / self.steals as f64
        }
    }

    /// Fraction of steal attempts that lost a CAS race — the stealing
    /// schedule's contention signal (0 when no attempts were made).
    pub fn steal_contention(&self) -> f64 {
        let attempts = self.steals + self.steal_fails + self.victim_misses;
        if attempts == 0 {
            0.0
        } else {
            self.steal_fails as f64 / attempts as f64
        }
    }
}

/// Read every accumulator. Cheap (a dozen relaxed loads); values from
/// concurrently running regions may be mid-flush, which for statistics is
/// acceptable by construction.
pub fn snapshot() -> StatsSnapshot {
    StatsSnapshot {
        regions: REGIONS.load(Relaxed),
        nested_regions: NESTED_REGIONS.load(Relaxed),
        serial_cutoff_regions: SERIAL_CUTOFF_REGIONS.load(Relaxed),
        tasks: TASKS.load(Relaxed),
        batches: BATCHES.load(Relaxed),
        batch_items: BATCH_ITEMS.load(Relaxed),
        parks: PARKS.load(Relaxed),
        wakes: WAKES.load(Relaxed),
        steals: STEALS.load(Relaxed),
        stolen_items: STOLEN_ITEMS.load(Relaxed),
        steal_fails: STEAL_FAILS.load(Relaxed),
        victim_misses: VICTIM_MISSES.load(Relaxed),
        dispatch_ns: DISPATCH_NS.load(Relaxed),
        busy_ns: BUSY_NS.load(Relaxed),
        idle_ns: IDLE_NS.load(Relaxed),
        imbalance_ns: IMBALANCE_NS.load(Relaxed),
    }
}

/// One pooled region of `width` logical threads ran to completion. The
/// caller flushes the whole region in one call (three relaxed adds) so
/// workers pay nothing on the always-on tier.
pub(crate) fn record_pooled_region(width: usize) {
    REGIONS.fetch_add(1, Relaxed);
    WAKES.fetch_add(width as u64 - 1, Relaxed);
    PARKS.fetch_add(width as u64 - 1, Relaxed);
}

/// A region took the nested scoped-thread fallback.
pub(crate) fn record_nested_region() {
    REGIONS.fetch_add(1, Relaxed);
    NESTED_REGIONS.fetch_add(1, Relaxed);
}

/// The sequential cutoff ran a would-be region inline.
pub(crate) fn record_serial_cutoff() {
    REGIONS.fetch_add(1, Relaxed);
    SERIAL_CUTOFF_REGIONS.fetch_add(1, Relaxed);
}

/// `n` loop iterations entered a `ParFor` dispatch.
pub(crate) fn record_tasks(n: usize) {
    TASKS.fetch_add(n as u64, Relaxed);
}

/// A `WorkQueue::next_batch` call claimed `items` iterations.
pub(crate) fn record_batch(items: usize) {
    BATCHES.fetch_add(1, Relaxed);
    BATCH_ITEMS.fetch_add(items as u64, Relaxed);
}

/// A worker stole `items` iterations from a victim's deque.
pub(crate) fn record_steal(items: usize) {
    STEALS.fetch_add(1, Relaxed);
    STOLEN_ITEMS.fetch_add(items as u64, Relaxed);
}

/// A steal attempt lost its CAS race.
pub(crate) fn record_steal_fail() {
    STEAL_FAILS.fetch_add(1, Relaxed);
}

/// A steal sweep visited an empty victim deque.
pub(crate) fn record_victim_miss() {
    VICTIM_MISSES.fetch_add(1, Relaxed);
}

// ── service-latency percentile tier ──────────────────────────────────────

/// Number of log₂ latency buckets: bucket `b` counts requests whose
/// latency landed in `[2^b, 2^(b+1))` nanoseconds (bucket 0 also absorbs
/// sub-nanosecond samples, the last bucket is open-ended). 40 buckets
/// cover 1 ns up to ~18 minutes — far beyond any sane request.
pub const LATENCY_BUCKETS: usize = 40;

static SERVICE_LATENCY: [AtomicU64; LATENCY_BUCKETS] =
    [const { AtomicU64::new(0) }; LATENCY_BUCKETS];

/// Record one served request's wall-clock latency (submission to
/// response) into the percentile tier. One relaxed add; always on.
pub fn record_service_latency_ns(ns: u64) {
    let bucket = (ns.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1);
    SERVICE_LATENCY[bucket].fetch_add(1, Relaxed);
}

/// A point-in-time copy of the service-latency histogram. Subtract two
/// snapshots (`after - before`) to scope the requests served between
/// them, exactly like [`StatsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Request counts per log₂ bucket (see [`LATENCY_BUCKETS`]).
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencySnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl std::ops::Sub for LatencySnapshot {
    type Output = LatencySnapshot;
    /// Saturating per-bucket difference: `after - before` across a phase.
    fn sub(self, rhs: LatencySnapshot) -> LatencySnapshot {
        let mut out = LatencySnapshot::default();
        for (o, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(rhs.buckets.iter()))
        {
            *o = a.saturating_sub(*b);
        }
        out
    }
}

impl LatencySnapshot {
    /// Total requests recorded in this snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper-bound estimate of the `q`-quantile latency in nanoseconds
    /// (`q` in `[0, 1]`; e.g. `0.5` for p50, `0.99` for p99): the upper
    /// edge of the histogram bucket containing the `⌈q·count⌉`-th sample.
    /// Conservative by construction — the true quantile is never above
    /// the returned value's bucket. Returns 0 when no samples exist.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (b + 1);
            }
        }
        1u64 << LATENCY_BUCKETS // unreachable: seen == count >= rank
    }
}

/// Read the service-latency histogram (one relaxed load per bucket).
pub fn service_latency() -> LatencySnapshot {
    let mut snap = LatencySnapshot::default();
    for (out, bucket) in snap.buckets.iter_mut().zip(SERVICE_LATENCY.iter()) {
        *out = bucket.load(Relaxed);
    }
    snap
}

/// Per-worker busy nanos of the most recent timed region (see
/// [`last_region_worker_busy`]).
fn last_region_busy_slot() -> &'static parking_lot::Mutex<Vec<u64>> {
    static SLOT: OnceLock<parking_lot::Mutex<Vec<u64>>> = OnceLock::new();
    SLOT.get_or_init(|| parking_lot::Mutex::new(Vec::new()))
}

/// The pool flushes one timed region's per-logical-thread busy nanos
/// (caller first, then workers in completion order).
pub(crate) fn record_region_worker_busy(busy: Vec<u64>) {
    *last_region_busy_slot().lock() = busy;
}

/// Per-logical-thread busy nanoseconds of the most recent pooled region
/// that ran with the nano-timing tier enabled: index 0 is the region
/// caller, the rest are pool workers in completion order. Empty if no
/// timed region has run. This is the per-worker imbalance breakdown
/// behind the aggregate `imbalance_ns` — a wide min/max spread here names
/// the straggler that `imbalance_ns` only sums.
pub fn last_region_worker_busy() -> Vec<u64> {
    last_region_busy_slot().lock().clone()
}

/// Flush one region's timing aggregate (timing tier).
pub(crate) fn record_region_timing(dispatch_ns: u64, busy_ns: u64, imbalance_ns: u64) {
    DISPATCH_NS.fetch_add(dispatch_ns, Relaxed);
    BUSY_NS.fetch_add(busy_ns, Relaxed);
    IMBALANCE_NS.fetch_add(imbalance_ns, Relaxed);
}

/// A worker finished a parked interval of `ns` nanoseconds (timing tier).
pub(crate) fn record_idle_ns(ns: u64) {
    IDLE_NS.fetch_add(ns, Relaxed);
}

/// Busy nanos recorded outside the pooled path (cutoff inline runs).
pub(crate) fn record_busy_ns(ns: u64) {
    BUSY_NS.fetch_add(ns, Relaxed);
}

/// Cached `available_parallelism` — the most threads that can make
/// wall-clock progress simultaneously on this host.
pub(crate) fn host_parallelism() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The measured cost of opening and closing an empty region on the warm
/// global pool, in nanoseconds — the "dispatch floor" a parallel region
/// must amortize before it can pay for itself. Measured once per process
/// (minimum of several empty regions, so scheduler noise inflates rather
/// than deflates the saving estimate it feeds) and cached.
pub fn dispatch_floor_ns() -> u64 {
    static FLOOR: OnceLock<u64> = OnceLock::new();
    *FLOOR.get_or_init(|| {
        let pool = crate::ThreadPool::global();
        let width = pool.n_threads().clamp(2, 4);
        pool.warm(width);
        let mut best = u64::MAX;
        for _ in 0..16 {
            let t0 = Instant::now();
            pool.run_width(width, |_| {});
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best.max(1)
    })
}

/// Safety margin over the raw empty-region floor: real regions also pay
/// per-task dispatch, cache migration, and (on loaded hosts) scheduling
/// churn that the empty-region measurement cannot see. Dimensionless.
const CUTOFF_MARGIN: u64 = 4;

/// Decide whether a region whose probed per-task cost is `per_task_ns`
/// over `n_rest` further iterations should run inline on the caller.
///
/// Parallel execution is worth opening a region only when the best-case
/// wall-clock saving — `total × (1 − 1/w)` with `w` capped by the host's
/// real parallelism — exceeds the measured dispatch floor with margin. On
/// a single-core host `w == 1`: no saving is possible and every region
/// serializes, which is exactly the honest answer (the table-generation
/// "0.63x speedup" regression was this case paying dispatch for nothing).
pub(crate) fn should_serialize(per_task_ns: u64, n_rest: usize, n_threads: usize) -> bool {
    let w = n_threads.min(host_parallelism()) as u64;
    if w <= 1 {
        return true;
    }
    let total = per_task_ns.saturating_mul(n_rest as u64);
    let saving = total - total / w;
    saving < CUTOFF_MARGIN * dispatch_floor_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_is_per_field_and_saturating() {
        let a = StatsSnapshot {
            regions: 5,
            tasks: 100,
            ..Default::default()
        };
        let b = StatsSnapshot {
            regions: 7,
            tasks: 90, // "before" larger than "after" must not wrap
            busy_ns: 42,
            ..Default::default()
        };
        let d = b - a;
        assert_eq!(d.regions, 2);
        assert_eq!(d.tasks, 0);
        assert_eq!(d.busy_ns, 42);
    }

    #[test]
    fn counters_are_monotonic_across_a_region() {
        let before = snapshot();
        crate::scope_threads(2, |_| {});
        let after = snapshot();
        let d = after - before;
        assert!(d.regions >= 1, "a region must be counted");
        assert!(d.wakes >= 1, "a width-2 pooled region wakes one worker");
    }

    #[test]
    fn dispatch_floor_is_positive_and_stable() {
        let a = dispatch_floor_ns();
        let b = dispatch_floor_ns();
        assert!(a > 0);
        assert_eq!(a, b, "the floor is measured once and cached");
    }

    #[test]
    fn single_core_equivalent_width_always_serializes() {
        // w == 1 (explicitly single-threaded) can never save wall-clock.
        assert!(should_serialize(1_000_000, 1000, 1));
    }

    #[test]
    fn large_work_parallelizes_when_width_allows() {
        if host_parallelism() < 2 {
            return; // on a 1-CPU host every region honestly serializes
        }
        // 1 ms × 1000 tasks dwarfs any plausible dispatch floor.
        assert!(!should_serialize(1_000_000, 1000, 4));
    }

    #[test]
    fn tiny_work_serializes_even_on_wide_hosts() {
        // 10 ns × 8 tasks is far below any measurable region cost.
        assert!(should_serialize(10, 8, 4));
    }

    #[test]
    fn mean_batch_items_handles_zero_batches() {
        assert_eq!(StatsSnapshot::default().mean_batch_items(), 0.0);
        let s = StatsSnapshot {
            batches: 4,
            batch_items: 10,
            ..Default::default()
        };
        assert_eq!(s.mean_batch_items(), 2.5);
    }

    /// One test (not three) because the histogram is process-global:
    /// concurrent test threads recording samples would pollute each
    /// other's snapshot deltas.
    #[test]
    fn latency_tier_records_quantiles_and_extremes() {
        // Empty delta first.
        let d = service_latency() - service_latency();
        assert_eq!(d.count(), 0);
        assert_eq!(d.quantile_ns(0.5), 0);

        // Quantiles over a known distribution, scoped via deltas like a
        // real caller would.
        let before = service_latency();
        for _ in 0..98 {
            record_service_latency_ns(1_000); // bucket 9: [512, 1024)
        }
        record_service_latency_ns(1 << 20); // ~1 ms
        record_service_latency_ns(1 << 30); // ~1 s
        let d = service_latency() - before;
        assert_eq!(d.count(), 100);
        // p50 lands in the 1 µs bucket; its upper edge is 1024 ns.
        assert_eq!(d.quantile_ns(0.5), 1024);
        // p99 must reach the ~1 ms sample's bucket but not the ~1 s one.
        assert_eq!(d.quantile_ns(0.99), 1 << 21);
        assert_eq!(d.quantile_ns(1.0), 1 << 31);

        // Extremes clamp into the first and last buckets.
        let before = service_latency();
        record_service_latency_ns(0);
        record_service_latency_ns(u64::MAX);
        let d = service_latency() - before;
        assert_eq!(d.buckets[0], 1);
        assert_eq!(d.buckets[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn timing_toggle_round_trips() {
        let prev = timing_enabled();
        set_timing(true);
        assert!(timing_enabled());
        set_timing(prev);
        assert_eq!(timing_enabled(), prev);
    }
}
