//! The `#pragma multithreaded` loop.
//!
//! Both manually parallelized benchmark programs in the paper are built on a
//! multithreaded for-loop:
//!
//! * **Program 2** (Threat Analysis) statically splits the iteration space
//!   into `num_chunks` contiguous chunks, one logical thread per chunk;
//! * **Program 4** (Terrain Masking) runs `num_threads` threads that
//!   *dynamically* claim iterations ("`threat = next unprocessed threat`")
//!   until the work runs out.
//!
//! [`multithreaded_for`] provides these schedules over a half-open index
//! range. The body receives the iteration index; with [`Schedule::Static`]
//! each worker walks its own contiguous chunk (good cache behaviour, the
//! conventional-SMP choice), with [`Schedule::Dynamic`] workers pull indices
//! from a shared atomic counter (good load balance for irregular work such
//! as variable-size threat regions), and with [`Schedule::Stealing`] each
//! worker owns a per-worker deque of iterations and raids its neighbours
//! when dry — static locality *and* dynamic balance, without the shared
//! counter that serializes sub-microsecond tasks.

use crate::deque::{Steal, StealDeque, MAX_INDEX};
use crate::pool::scope_threads;
use crate::queue::WorkQueue;
use crate::stats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Process-global perturbation mixed into every stealing worker's victim
/// RNG. Zero (the default) reproduces the historical victim order.
static STEAL_SEED: AtomicU64 = AtomicU64::new(0);

/// Set the seed perturbing victim selection in [`Schedule::Stealing`]
/// regions — the deterministic-replay knob for differential fuzzing.
///
/// Victim order never affects *which* iterations run (each index is
/// dispensed exactly once), only the interleaving; re-running a failing
/// fuzz case under the seed it was found with reproduces the same victim
/// sweeps, and varying the seed exercises fresh interleavings of the same
/// scenario. Affects regions started after the call; process-global.
pub fn set_steal_seed(seed: u64) {
    STEAL_SEED.store(seed, Ordering::Relaxed);
}

/// The current steal-seed perturbation (see [`set_steal_seed`]).
pub fn steal_seed() -> u64 {
    STEAL_SEED.load(Ordering::Relaxed)
}

/// Iteration-to-thread assignment policy for [`multithreaded_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous chunks, one per worker, computed with the paper's
    /// `(chunk*n)/num_chunks` blocking expression.
    Static,
    /// Workers repeatedly claim the next unprocessed index from a shared
    /// counter (self-scheduling), as in Program 4.
    Dynamic,
    /// Work stealing: the range is seeded as one contiguous block per
    /// worker ([`StealDeque`]); workers claim batches from their own
    /// block lock-free and steal half a victim's remainder when dry.
    /// This is the schedule for *fine-grained* loops (the paper's §6
    /// inner-loop parallelism): it keeps static scheduling's contiguous
    /// per-worker index runs while rebalancing irregular work, and no
    /// shared cache line is touched on the claim fast path.
    Stealing,
}

impl std::fmt::Display for Schedule {
    /// Lowercase schedule name (`static` / `dynamic` / `stealing`), the
    /// spelling used in pragma-style annotations and report tables.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Schedule::Static => "static",
            Schedule::Dynamic => "dynamic",
            Schedule::Stealing => "stealing",
        })
    }
}

/// Bounds of one static chunk, as produced by [`ParFor::chunks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkBounds {
    /// Chunk index in `0..n_chunks`.
    pub chunk: usize,
    /// First iteration index owned by the chunk.
    pub first: usize,
    /// One past the last iteration index owned by the chunk.
    pub end: usize,
}

/// Execute `body(i)` for every `i` in `range`, using `n_threads` workers
/// under the given `schedule`. Blocks until every iteration has completed.
///
/// The body must be safe to run concurrently for distinct indices; this is
/// precisely the property the paper's manual transformations establish
/// before inserting the pragma (privatized counters in Program 2, block
/// locks in Program 4).
pub fn multithreaded_for<F>(
    range: std::ops::Range<usize>,
    n_threads: usize,
    schedule: Schedule,
    body: F,
) where
    F: Fn(usize) + Sync,
{
    ParFor::new(range)
        .threads(n_threads)
        .schedule(schedule)
        .run(body);
}

/// Builder form of [`multithreaded_for`], for callers that also need the
/// chunk decomposition (e.g. per-chunk output arrays as in Program 2).
#[derive(Debug, Clone)]
pub struct ParFor {
    range: std::ops::Range<usize>,
    n_threads: usize,
    n_chunks: Option<usize>,
    schedule: Schedule,
    serial_cutoff: bool,
}

impl ParFor {
    /// A parallel loop over `range` with one thread and static scheduling;
    /// configure with the builder methods.
    pub fn new(range: std::ops::Range<usize>) -> Self {
        Self {
            range,
            n_threads: 1,
            n_chunks: None,
            schedule: Schedule::Static,
            serial_cutoff: false,
        }
    }

    /// Set the number of worker threads (default 1).
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n > 0, "ParFor: need at least one thread");
        self.n_threads = n;
        self
    }

    /// Set the number of static chunks independently of the thread count.
    ///
    /// On the Tera MTA the paper runs 8–256 chunks on 2 processors
    /// (Table 6): the chunk count controls how many logical threads exist,
    /// the machine decides how they map to hardware streams. Each worker
    /// executes a contiguous block of chunks, so its iterations form one
    /// contiguous index run regardless of the chunk count.
    pub fn chunk_count(mut self, n: usize) -> Self {
        assert!(n > 0, "ParFor: need at least one chunk");
        self.n_chunks = Some(n);
        self
    }

    /// Set the schedule (default [`Schedule::Static`]).
    pub fn schedule(mut self, s: Schedule) -> Self {
        self.schedule = s;
        self
    }

    /// Enable the measured small-region sequential cutoff (default off;
    /// [`par_map`] turns it on).
    ///
    /// With the cutoff enabled, [`ParFor::run`] executes the first
    /// iteration on the caller and times it. If the estimated wall-clock
    /// saving from parallelizing the remainder — best case
    /// `total × (1 − 1/w)`, with `w` capped by the host's real
    /// parallelism — cannot amortize the *measured* cost of waking the
    /// pool ([`stats::dispatch_floor_ns`]), the rest runs inline too.
    /// This is the §7 `CreateThread` lesson applied to wakeups: a region
    /// whose per-task work sits below the dispatch floor is pure
    /// overhead, so the scheduler must refuse to open it. Iterations are
    /// visited exactly once either way, in an order both schedules
    /// already permit, so observable results are unchanged.
    pub fn serial_cutoff(mut self, on: bool) -> Self {
        self.serial_cutoff = on;
        self
    }

    /// Number of static chunks this loop decomposes into.
    pub fn n_chunks(&self) -> usize {
        self.n_chunks.unwrap_or(self.n_threads)
    }

    /// The static chunk decomposition of the iteration space.
    pub fn chunks(&self) -> Vec<ChunkBounds> {
        let n_items = self.range.len();
        let n_chunks = self.n_chunks();
        (0..n_chunks)
            .map(|c| {
                let r = crate::chunk_range(c, n_items, n_chunks);
                ChunkBounds {
                    chunk: c,
                    first: self.range.start + r.start,
                    end: self.range.start + r.end,
                }
            })
            .collect()
    }

    /// Run `body(i)` for every index in the range.
    pub fn run<F>(&self, body: F)
    where
        F: Fn(usize) + Sync,
    {
        stats::record_tasks(self.range.len());
        if self.serial_cutoff {
            let n = self.range.len();
            if self.n_threads <= 1 || n <= 1 {
                for i in self.range.clone() {
                    body(i);
                }
                return;
            }
            // Probe: run the first iteration inline and time it. The
            // probe is work that had to happen anyway, so a wrong
            // decision costs only the dispatch floor, never lost work.
            let probe_start = Instant::now();
            body(self.range.start);
            let per_task_ns = probe_start.elapsed().as_nanos() as u64;
            let rest = self.range.start + 1..self.range.end;
            if stats::should_serialize(per_task_ns, rest.len(), self.n_threads) {
                stats::record_serial_cutoff();
                let timing = stats::timing_enabled();
                let inline_start = if timing { stats::now_ns() } else { 0 };
                for i in rest {
                    body(i);
                }
                if timing {
                    stats::record_busy_ns(per_task_ns + (stats::now_ns() - inline_start));
                }
                return;
            }
            let remainder = Self {
                range: rest,
                serial_cutoff: false,
                ..self.clone()
            };
            remainder.dispatch(&body);
            return;
        }
        self.dispatch(&body);
    }

    fn dispatch<F>(&self, body: &F)
    where
        F: Fn(usize) + Sync,
    {
        match self.schedule {
            Schedule::Static => self.run_static(body),
            Schedule::Dynamic => self.run_dynamic(body),
            Schedule::Stealing => self.run_stealing(body),
        }
    }

    /// Run `body(chunk_bounds)` once per static chunk, each worker owning
    /// a **contiguous block** of chunks. This is the exact shape of
    /// Program 2: because chunks partition the index range in order, a
    /// contiguous block of chunks is a contiguous run of iterations — the
    /// cache-locality rationale for static scheduling on the conventional
    /// SMPs. (Round-robin chunk assignment would stride each worker across
    /// the whole range and defeat it.)
    pub fn run_chunked<F>(&self, body: F)
    where
        F: Fn(ChunkBounds) + Sync,
    {
        let chunks = self.chunks();
        let n_threads = self.n_threads.min(chunks.len().max(1));
        scope_threads(n_threads, |t| {
            for c in &chunks[crate::chunk_range(t, chunks.len(), n_threads)] {
                body(*c);
            }
        });
    }

    fn run_static<F>(&self, body: &F)
    where
        F: Fn(usize) + Sync,
    {
        self.run_chunked(|c| {
            for i in c.first..c.end {
                body(i);
            }
        });
    }

    fn run_dynamic<F>(&self, body: &F)
    where
        F: Fn(usize) + Sync,
    {
        let queue = WorkQueue::new(self.range.clone());
        let n_threads = self.n_threads;
        scope_threads(n_threads, |_| {
            while let Some(batch) = queue.next_batch(dynamic_grain(queue.remaining(), n_threads)) {
                for i in batch {
                    body(i);
                }
            }
        });
    }

    fn run_stealing<F>(&self, body: &F)
    where
        F: Fn(usize) + Sync,
    {
        // The packed deque holds 32-bit indices; astronomically long loops
        // (> 4G iterations) fall back to the shared queue rather than
        // truncate. Real workloads never get near this.
        if self.range.end > MAX_INDEX {
            return self.run_dynamic(body);
        }
        let n_items = self.range.len();
        let n_threads = self.n_threads.min(n_items.max(1));
        let start = self.range.start;
        // Seed one deque per worker with a contiguous block, exactly the
        // static decomposition — stealing only redistributes the imbalance.
        let deques: Vec<StealDeque> = (0..n_threads)
            .map(|t| {
                let r = crate::chunk_range(t, n_items, n_threads);
                StealDeque::new(start + r.start..start + r.end)
            })
            .collect();
        let seed = steal_seed();
        scope_threads(n_threads, |t| {
            let own = &deques[t];
            // Cheap xorshift PRNG for victim order; seeded per worker so
            // sweeps are decorrelated without any shared RNG state, and
            // perturbed by the process-global replay seed.
            let mut rng = ((t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed) | 1;
            loop {
                // Fast path: drain the local deque in owner batches.
                while let Some(batch) = own.pop(local_grain(own.remaining())) {
                    stats::record_batch(batch.len());
                    for i in batch {
                        body(i);
                    }
                }
                // Dry: one randomized sweep over every other worker. A
                // successful steal re-publishes the run locally (so it is
                // itself stealable) and restarts the fast path.
                let mut contended = false;
                let mut stole = false;
                for k in 1..n_threads {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let victim = (t + 1 + (rng as usize + k) % (n_threads - 1)) % n_threads;
                    match deques[victim].steal() {
                        Steal::Stolen(run) => {
                            stats::record_steal(run.len());
                            own.publish(run);
                            stole = true;
                            break;
                        }
                        Steal::Retry => {
                            stats::record_steal_fail();
                            contended = true;
                        }
                        Steal::Empty => stats::record_victim_miss(),
                    }
                }
                if stole {
                    continue;
                }
                if !contended {
                    // Every victim reported Empty with no lost race: all
                    // remaining work is owned by whoever claimed it, so
                    // this worker is done. It returns into the pool's
                    // normal region exit and parks on the epoch condvar —
                    // the "bounded steal-spin, then park" fallback.
                    return;
                }
                // A lost CAS race means a victim may still hold work;
                // breathe and sweep again.
                std::hint::spin_loop();
            }
        });
    }
}

/// Batch size for dynamic self-scheduling: claim ~1/8 of a fair share per
/// `fetch_add` while work is plentiful, decaying to single-index claims
/// near the end so load balance stays as good as the paper's "next
/// unprocessed threat" loop. Clamped to at least 1 — in the
/// `n_tasks < n_threads` regime the fair share rounds to zero, and a
/// zero-size batch would assert in `WorkQueue::next_batch`.
pub(crate) fn dynamic_grain(remaining: usize, n_threads: usize) -> usize {
    (remaining / (8 * n_threads)).max(1)
}

/// Owner batch size for the stealing schedule: claim ~1/8 of the *local*
/// deque per pop. Unlike [`dynamic_grain`] there is no thread-count
/// divisor — the deque is already this worker's fair share — so batches
/// start large (few CASes) and decay geometrically, leaving a stealable
/// tail until the very end.
pub(crate) fn local_grain(remaining: usize) -> usize {
    (remaining / 8).max(1)
}

/// A vector of write-once result slots shared across a parallel region.
///
/// Each slot is written exactly once (by whichever worker claims that
/// index) and read only after the region has completed, so no per-slot
/// lock is needed; the pool's region-exit handshake provides the
/// release/acquire ordering that makes the writes visible to the caller.
struct ResultSlots<T> {
    slots: Vec<std::cell::UnsafeCell<std::mem::MaybeUninit<T>>>,
}

// SAFETY: distinct indices are written by distinct workers with no
// aliasing (the loop schedules dispense each index exactly once), and the
// caller only reads after the region's completion handshake.
unsafe impl<T: Send> Sync for ResultSlots<T> {}

impl<T> ResultSlots<T> {
    fn new(n: usize) -> Self {
        Self {
            slots: (0..n)
                .map(|_| std::cell::UnsafeCell::new(std::mem::MaybeUninit::uninit()))
                .collect(),
        }
    }

    /// Write slot `i`.
    ///
    /// SAFETY (caller): index `i` must be written at most once across the
    /// whole region, with no concurrent access to the same slot.
    unsafe fn write(&self, i: usize, value: T) {
        (*self.slots[i].get()).write(value);
    }

    /// Consume the slots into a plain vector.
    ///
    /// SAFETY (caller): every slot must have been initialized. If a region
    /// panics mid-flight the slots are instead dropped as `MaybeUninit`,
    /// which leaks any written values but is never undefined behaviour.
    unsafe fn into_vec(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|c| c.into_inner().assume_init())
            .collect()
    }
}

/// Map `f` over `0..n_tasks` with `n_threads` workers and collect the
/// results **in index order**, exactly as a sequential `map` would.
///
/// Each task writes into its own pre-allocated slot, so the output is
/// bit-identical to the sequential path for every schedule and thread
/// count — the property the experiment harness's oracle cross-checks
/// rely on. [`Schedule::Dynamic`] suits variable-size tasks (benchmark
/// scenarios, simulator sweeps); [`Schedule::Static`] suits uniform ones
/// (table rows).
///
/// `par_map` enables [`ParFor::serial_cutoff`]: a region whose measured
/// per-task work cannot amortize the pool's measured dispatch floor runs
/// inline on the caller instead, with identical output.
pub fn par_map<T, F>(n_tasks: usize, n_threads: usize, schedule: Schedule, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_threads <= 1 || n_tasks <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let slots = ResultSlots::new(n_tasks);
    ParFor::new(0..n_tasks)
        .threads(n_threads)
        .schedule(schedule)
        .serial_cutoff(true)
        // SAFETY: both schedules (and the cutoff's inline path) dispense
        // each index exactly once, so slot `i` has exactly one writer and
        // no reader until the region completes.
        .run(|i| unsafe { slots.write(i, f(i)) });
    // SAFETY: the loop above visited every index in 0..n_tasks exactly
    // once (the invariant the schedule tests and the parallel oracle
    // enforce), so every slot is initialized.
    unsafe { slots.into_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn check_each_index_once(schedule: Schedule, n: usize, threads: usize) {
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        multithreaded_for(0..n, threads, schedule, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn static_schedule_visits_each_index_once() {
        check_each_index_once(Schedule::Static, 1000, 7);
    }

    #[test]
    fn dynamic_schedule_visits_each_index_once() {
        check_each_index_once(Schedule::Dynamic, 1000, 7);
    }

    #[test]
    fn stealing_schedule_visits_each_index_once() {
        check_each_index_once(Schedule::Stealing, 1000, 7);
    }

    #[test]
    fn empty_range_is_a_noop() {
        check_each_index_once(Schedule::Static, 0, 4);
        check_each_index_once(Schedule::Dynamic, 0, 4);
        check_each_index_once(Schedule::Stealing, 0, 4);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        check_each_index_once(Schedule::Static, 3, 16);
        check_each_index_once(Schedule::Dynamic, 3, 16);
        check_each_index_once(Schedule::Stealing, 3, 16);
    }

    #[test]
    fn stealing_terminates_under_repeated_skew() {
        // Skewed per-index work concentrates the remaining span in one
        // victim; thieves must drain it and the all-Empty sweep must
        // terminate every worker. Repeated because the failure mode is a
        // race between the last pop and the terminal sweep.
        for _ in 0..50 {
            check_each_index_once(Schedule::Stealing, 64, 8);
        }
    }

    #[test]
    fn steal_seed_perturbs_victim_order_without_changing_coverage() {
        let old = steal_seed();
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            set_steal_seed(seed);
            assert_eq!(steal_seed(), seed);
            check_each_index_once(Schedule::Stealing, 512, 8);
        }
        set_steal_seed(old);
    }

    #[test]
    fn stealing_records_steal_activity_into_stats() {
        // With enough skew some steal attempt must land (or at least a
        // victim miss must be recorded by the terminal sweep). Counters
        // are process-global, so assert on the delta.
        let before = crate::stats::snapshot();
        multithreaded_for(0..512, 4, Schedule::Stealing, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        });
        let delta = crate::stats::snapshot() - before;
        assert!(
            delta.steals + delta.victim_misses > 0,
            "a stealing region must record sweep activity"
        );
    }

    #[test]
    fn local_grain_is_at_least_one_and_scales_with_the_deque() {
        assert_eq!(local_grain(0), 1);
        assert_eq!(local_grain(1), 1);
        assert_eq!(local_grain(7), 1);
        assert_eq!(local_grain(80), 10);
        assert_eq!(local_grain(10_000), 1250);
    }

    #[test]
    fn dynamic_grain_is_at_least_one_in_every_regime() {
        // n_tasks < n_threads: the fair share rounds to zero and must be
        // clamped, or WorkQueue::next_batch would assert on k == 0.
        assert_eq!(dynamic_grain(3, 16), 1);
        assert_eq!(dynamic_grain(1, 128), 1);
        assert_eq!(dynamic_grain(0, 4), 1);
        // Plentiful work: ~1/8 of a fair share per claim.
        assert_eq!(dynamic_grain(1000, 4), 31);
        assert_eq!(dynamic_grain(10_000, 8), 156);
    }

    #[test]
    fn dynamic_schedule_with_fewer_tasks_than_threads_terminates_cleanly() {
        // Regression shape for the n_tasks < n_threads regime: most
        // workers find the queue already exhausted and must fall out of
        // their claim loop on the first None — a worker spinning on an
        // empty queue would hang this test (the harness timeout catches
        // it), and a zero grain would panic. Repeated because the failure
        // mode is a race between the claiming minority and the idle
        // majority.
        for _ in 0..50 {
            check_each_index_once(Schedule::Dynamic, 3, 16);
        }
        // The queue itself hands an exhausted range straight to None.
        let q = WorkQueue::new(0..3);
        while q.next_batch(dynamic_grain(q.remaining(), 16)).is_some() {}
        assert!(q.is_exhausted());
        assert_eq!(q.next_batch(1), None, "exhausted queue must stay None");
    }

    #[test]
    fn nonzero_range_start_respected() {
        let sum = AtomicU32::new(0);
        multithreaded_for(10..20, 3, Schedule::Static, |i| {
            assert!((10..20).contains(&i));
            sum.fetch_add(i as u32, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), (10..20).sum::<usize>() as u32);
    }

    #[test]
    fn chunk_decomposition_partitions_range() {
        let pf = ParFor::new(5..105).threads(2).chunk_count(16);
        let chunks = pf.chunks();
        assert_eq!(chunks.len(), 16);
        assert_eq!(chunks[0].first, 5);
        assert_eq!(chunks.last().unwrap().end, 105);
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].first, "chunks must be contiguous");
        }
    }

    #[test]
    fn run_chunked_runs_every_chunk_once_with_many_chunks_few_threads() {
        let seen: Vec<AtomicU32> = (0..256).map(|_| AtomicU32::new(0)).collect();
        ParFor::new(0..1000)
            .threads(2)
            .chunk_count(256)
            .run_chunked(|c| {
                seen[c.chunk].fetch_add(1, Ordering::SeqCst);
            });
        assert!(seen.iter().all(|s| s.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn par_map_matches_sequential_map_for_every_schedule_and_thread_count() {
        let expected: Vec<u64> = (0..97).map(|i| (i as u64) * 3 + 1).collect();
        for schedule in [Schedule::Static, Schedule::Dynamic, Schedule::Stealing] {
            for threads in [1, 2, 8] {
                let got = par_map(97, threads, schedule, |i| (i as u64) * 3 + 1);
                assert_eq!(got, expected, "{schedule:?} with {threads} threads");
            }
        }
    }

    #[test]
    fn par_map_of_empty_task_list_is_empty() {
        assert!(par_map(0, 4, Schedule::Dynamic, |i| i).is_empty());
    }

    #[test]
    fn serial_cutoff_visits_each_index_exactly_once() {
        // Whichever way the measured cutoff decides (probe-then-inline or
        // probe-then-parallel-remainder), every index runs exactly once —
        // the invariant par_map's write-once slots depend on.
        for schedule in [Schedule::Static, Schedule::Dynamic, Schedule::Stealing] {
            let hits: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
            ParFor::new(0..64)
                .threads(4)
                .schedule(schedule)
                .serial_cutoff(true)
                .run(|i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                });
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn trivial_tasks_take_the_sequential_cutoff() {
        // ~ns-scale tasks sit far below the measured dispatch floor on
        // any host, so the cutoff must refuse to open a region. Counters
        // are process-global and tests run concurrently, so assert on the
        // delta being at least our own contribution.
        let before = crate::stats::snapshot();
        let got = par_map(64, 4, Schedule::Static, |i| i as u64 * 3 + 1);
        let delta = crate::stats::snapshot() - before;
        assert_eq!(got, (0..64).map(|i| i * 3 + 1).collect::<Vec<u64>>());
        assert!(
            delta.serial_cutoff_regions >= 1,
            "64 trivial tasks must run inline, not pay the dispatch floor"
        );
    }

    #[test]
    fn static_chunks_are_contiguous_per_worker() {
        // Each worker's iterations must form one contiguous run of the
        // index space — the cache-locality contract of static scheduling.
        // Record which OS thread executed every index and count ownership
        // runs; round-robin chunk assignment would produce `n_chunks`
        // runs, contiguous block assignment exactly `n_threads`.
        for (n_threads, n_chunks) in [(4, 4), (4, 16), (3, 7), (2, 256)] {
            let owner = parking_lot::Mutex::new(vec![None; 1000]);
            ParFor::new(0..1000)
                .threads(n_threads)
                .chunk_count(n_chunks)
                .run_chunked(|c| {
                    let me = std::thread::current().id();
                    let mut owner = owner.lock();
                    for slot in &mut owner[c.first..c.end] {
                        assert!(slot.is_none(), "index written twice");
                        *slot = Some(me);
                    }
                });
            let owners = owner.into_inner();
            assert!(owners.iter().all(|o| o.is_some()));
            let mut runs = 1;
            for w in owners.windows(2) {
                if w[0] != w[1] {
                    runs += 1;
                }
            }
            assert_eq!(
                runs, n_threads,
                "{n_threads} threads x {n_chunks} chunks: each worker must \
                 own one contiguous block"
            );
        }
    }
}
