//! Tera-style futures.
//!
//! The Tera programming system exposes `future` as its explicit
//! thread-creation construct: a future expression starts executing on a new
//! (hardware or software) stream, and touching the future's value blocks —
//! via the full/empty bit of the result word — until it is ready. The paper
//! uses futures in the fine-grained Terrain Masking variant.
//!
//! [`Future`] reproduces the construct on host threads; the result slot is a
//! [`SyncVar`], so forcing a future is exactly a synchronized load of its
//! result word.

use crate::syncvar::SyncVar;
use std::sync::Arc;

/// A value being computed on another thread; `force()` blocks until ready.
///
/// ```
/// use sthreads::Future;
/// let f = Future::spawn(|| (1..=10).product::<u64>());
/// assert_eq!(f.force(), 3_628_800);
/// ```
pub struct Future<T> {
    slot: Arc<SyncVar<T>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl<T: Send + 'static> Future<T> {
    /// Start `f` on a fresh thread and return a handle to its eventual
    /// result. This is the software-thread flavour (50–100 cycles on the
    /// MTA, tens of thousands on the conventional platforms — costs
    /// modelled in `eval-core`).
    pub fn spawn<F>(f: F) -> Self
    where
        F: FnOnce() -> T + Send + 'static,
    {
        let slot = Arc::new(SyncVar::new_empty());
        let writer = Arc::clone(&slot);
        let handle = std::thread::spawn(move || {
            writer.put(f());
        });
        Self {
            slot,
            handle: Some(handle),
        }
    }

    /// An already-resolved future. Useful for the sequential fallbacks the
    /// paper uses when a loop nest is below its parallelization threshold.
    pub fn ready(value: T) -> Self {
        Self {
            slot: Arc::new(SyncVar::new_full(value)),
            handle: None,
        }
    }

    /// Block until the computation finishes and return its value.
    pub fn force(mut self) -> T {
        let v = self.slot.take();
        if let Some(h) = self.handle.take() {
            // The value is already published; join only to release the
            // thread and propagate panics that happened *after* publishing
            // (there are none in practice, but don't leak the thread).
            h.join().expect("future thread panicked");
        }
        v
    }

    /// Whether the result is available without blocking.
    pub fn is_ready(&self) -> bool {
        self.slot.is_full()
    }
}

impl<T> Drop for Future<T> {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            // A dropped future still represents spawned work; wait for it so
            // scoped borrows in the caller remain sound by construction.
            let _ = h.join();
        }
    }
}

/// Fork `n` futures with [`Future::spawn`] and force them all, returning the
/// results in index order. The parallel-divide step of fine-grained
/// algorithms.
pub fn fork_join<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + Clone + 'static,
{
    let futures: Vec<Future<T>> = (0..n)
        .map(|i| {
            let f = f.clone();
            Future::spawn(move || f(i))
        })
        .collect();
    futures.into_iter().map(Future::force).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn force_returns_computed_value() {
        let f = Future::spawn(|| 2 + 2);
        assert_eq!(f.force(), 4);
    }

    #[test]
    fn ready_future_is_immediately_forced() {
        let f = Future::ready("hello");
        assert!(f.is_ready());
        assert_eq!(f.force(), "hello");
    }

    #[test]
    fn force_blocks_until_value_is_published() {
        static DONE: AtomicBool = AtomicBool::new(false);
        let f = Future::spawn(|| {
            std::thread::sleep(Duration::from_millis(30));
            DONE.store(true, Ordering::SeqCst);
            7
        });
        assert_eq!(f.force(), 7);
        assert!(
            DONE.load(Ordering::SeqCst),
            "force returned before the computation finished"
        );
    }

    #[test]
    fn fork_join_preserves_index_order() {
        let out = fork_join(16, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn dropped_future_does_not_leak_unjoined_work() {
        let flag = Arc::new(AtomicBool::new(false));
        {
            let flag = Arc::clone(&flag);
            let _f = Future::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                flag.store(true, Ordering::SeqCst);
            });
            // dropped here without force()
        }
        assert!(
            flag.load(Ordering::SeqCst),
            "drop must join the spawned thread"
        );
    }

    #[test]
    fn futures_of_futures_compose() {
        let f = Future::spawn(|| Future::spawn(|| 21).force() * 2);
        assert_eq!(f.force(), 42);
    }
}
