//! # sthreads — structured multithreaded programming runtime
//!
//! A Rust analog of the programming systems used in the SC'98 evaluation of
//! the Tera MTA with the C3I Parallel Benchmark Suite:
//!
//! * the **Caltech Sthreads library** (structured multithreading on Windows
//!   NT, used for the Pentium Pro runs),
//! * the **HP Exemplar shared-memory pragmas** (used for the Exemplar runs),
//! * the **Tera parallelization pragmas, futures and synchronization
//!   variables** (used for the Tera MTA runs).
//!
//! The crate provides the three parallel structures those systems share and
//! that the paper's manual parallelizations are built from:
//!
//! * [`multithreaded_for`] / [`ParFor`] — the `#pragma multithreaded` loop,
//!   with static chunking (Program 2), dynamic self-scheduling (Program 4),
//!   or per-worker work stealing ([`Schedule::Stealing`]) for fine-grained
//!   loops whose tasks are too short for a shared claim counter,
//! * [`Future`] — Tera-style futures (spawn a computation, `force` its
//!   value),
//! * [`SyncVar`] — a full/empty synchronization variable modelling the Tera
//!   MTA's per-word full/empty bits (`write` waits for empty and sets full,
//!   `take` waits for full and sets empty).
//!
//! Two "backends" exist:
//!
//! * the **host backend** (this module's default entry points) runs the
//!   structures on real OS threads — parallel regions execute on a
//!   persistent, process-wide worker pool ([`ThreadPool::global`]) whose
//!   workers are parked between regions, so a region costs condvar
//!   wakeups rather than thread spawns — letting benchmark
//!   parallelizations be checked for correctness and measured with
//!   Criterion on the host, and
//! * the **counting backend** ([`counting`]) runs the same logical thread
//!   structure while recording abstract operation counts per logical
//!   thread; those counts feed the calibrated machine models in
//!   `eval-core` that regenerate the paper's tables.
//!
//! # Quick examples
//!
//! A parallel loop over an index range:
//!
//! ```
//! use sthreads::{multithreaded_for, Schedule};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let sum = AtomicU64::new(0);
//! multithreaded_for(0..1000, 4, Schedule::Static, |i| {
//!     sum.fetch_add(i as u64, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
//! ```
//!
//! A parallel map whose output is bit-identical to the sequential map for
//! every schedule and thread count — the property the experiment
//! harness's oracles rely on:
//!
//! ```
//! use sthreads::{par_map, Schedule};
//!
//! let squares = par_map(8, 4, Schedule::Stealing, |i| (i * i) as u64);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```
//!
//! Parallel regions run on a persistent process-wide pool; inspecting it
//! and the runtime counters:
//!
//! ```
//! use sthreads::{multithreaded_for, Schedule, ThreadPool};
//!
//! let pool = ThreadPool::global();
//! assert!(pool.n_threads() >= 1);
//!
//! let before = sthreads::stats::snapshot();
//! multithreaded_for(0..100, 2, Schedule::Dynamic, |_| {});
//! let delta = sthreads::stats::snapshot() - before;
//! assert!(delta.tasks >= 100);
//! ```

#![warn(missing_docs)]

pub mod barrier;
pub mod counting;
pub mod deque;
pub mod future;
pub mod par_for;
pub mod pool;
pub mod queue;
pub mod stats;
pub mod syncvar;

pub use barrier::{reduce, Barrier, SpinBarrier};
pub use counting::{OpCounts, OpRecorder, ThreadCounts};
pub use deque::{Steal, StealDeque};
pub use future::Future;
pub use par_for::{
    multithreaded_for, par_map, set_steal_seed, steal_seed, ChunkBounds, ParFor, Schedule,
};
pub use pool::{scope_threads, ThreadPool};
pub use queue::WorkQueue;
pub use stats::{LatencySnapshot, StatsSnapshot};
pub use syncvar::{SyncCounter, SyncVar};

/// Compute the half-open index range owned by `chunk` when `n_items` items
/// are divided as evenly as possible among `n_chunks` chunks.
///
/// This is exactly the blocking expression used by the paper's multithreaded
/// Threat Analysis (Program 2):
///
/// ```text
/// first_threat = (chunk*num_threats)/num_chunks;
/// last_threat  = ((chunk+1)*num_threats)/num_chunks - 1;
/// ```
///
/// Every item belongs to exactly one chunk and chunk sizes differ by at most
/// one.
///
/// ```
/// use sthreads::chunk_range;
/// assert_eq!(chunk_range(0, 10, 3), 0..3);
/// assert_eq!(chunk_range(1, 10, 3), 3..6);
/// assert_eq!(chunk_range(2, 10, 3), 6..10);
/// ```
pub fn chunk_range(chunk: usize, n_items: usize, n_chunks: usize) -> std::ops::Range<usize> {
    assert!(n_chunks > 0, "chunk_range: n_chunks must be positive");
    assert!(
        chunk < n_chunks,
        "chunk_range: chunk {chunk} out of {n_chunks}"
    );
    let first = chunk * n_items / n_chunks;
    let last = (chunk + 1) * n_items / n_chunks;
    first..last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_range_covers_all_items_exactly_once() {
        for n_items in [0usize, 1, 7, 100, 1000] {
            for n_chunks in [1usize, 2, 3, 7, 16, 256] {
                let mut seen = vec![0u32; n_items];
                for c in 0..n_chunks {
                    for i in chunk_range(c, n_items, n_chunks) {
                        seen[i] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&s| s == 1),
                    "items={n_items} chunks={n_chunks}"
                );
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        for n_items in [5usize, 100, 999] {
            for n_chunks in [2usize, 3, 13, 64] {
                let sizes: Vec<usize> = (0..n_chunks)
                    .map(|c| chunk_range(c, n_items, n_chunks).len())
                    .collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn chunk_range_rejects_out_of_range_chunk() {
        chunk_range(3, 10, 3);
    }
}
