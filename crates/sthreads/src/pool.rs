//! Persistent worker-pool execution.
//!
//! The Sthreads library of the paper creates one OS thread per loop chunk
//! on Windows NT, at a cost of "tens of thousands of cycles" per
//! `CreateThread` (§7) — the overhead that erased most of the Pentium Pro
//! speedups. This module deliberately does **not** re-teach that lesson on
//! the host: workers are spawned once, parked on a condition variable
//! between parallel regions, and woken with a single epoch-bump handshake,
//! so opening a region costs wakeups instead of thread spawns. The
//! OS-thread cost model of the paper (per-spawn cycle charges on NT and
//! the Exemplar) now lives only in the machine simulators and calibrated
//! models (`eval-core::models`, `smp-sim`), not in the host runtime.
//!
//! Semantics are unchanged from the scoped-thread implementation this
//! replaces: a region of width `n` runs `body(0)` on the caller and
//! `body(1..n)` on pool workers, all concurrently, and returns when every
//! logical thread has finished. Bodies may share borrowed (non-`'static`)
//! data and may synchronize with each other (barriers, full/empty
//! variables), because every logical thread of a region is a real,
//! simultaneously-running OS thread.
//!
//! A panic in any body is caught, the region is drained (parked workers
//! are *not* left deadlocked), and the panic is re-raised on the caller.
//! Nested or concurrent regions fall back to plain scoped threads, so
//! re-entrancy can never deadlock the pool.

use std::any::Any;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};

use crate::stats;

thread_local! {
    /// Set while the current thread is executing a parallel-region body
    /// (as pool worker, region caller, or fallback scoped thread). A
    /// nested `scope_threads` from such a thread must not wait on the
    /// pool's region lock — the outer region holds it — so it falls back
    /// to scoped OS threads instead.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// RAII flag for [`IN_PARALLEL_REGION`]; restores the previous value on
/// drop so it unwinds correctly through panicking bodies.
struct RegionGuard {
    prev: bool,
}

impl RegionGuard {
    fn enter() -> Self {
        let prev = IN_PARALLEL_REGION.with(|f| f.replace(true));
        Self { prev }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PARALLEL_REGION.with(|f| f.set(prev));
    }
}

/// A published parallel region: a type- and lifetime-erased pointer to the
/// caller's body plus the region width.
///
/// The `'static` lifetime is a lie told to the type system; see the SAFETY
/// argument in [`ThreadPool::run_width`] for why the pointer never
/// outlives the borrow it erases.
#[derive(Clone, Copy)]
struct Job {
    body: &'static (dyn Fn(usize) + Sync),
    width: usize,
}

struct PoolState {
    /// Region counter; bumped once per published region. Workers compare
    /// it against the last epoch they observed to detect new work.
    epoch: u64,
    /// The currently (or most recently) published region.
    job: Option<Job>,
    /// Workers still executing the current region's body.
    active: usize,
    /// First panic payload captured from a worker body this region.
    panic: Option<Box<dyn Any + Send>>,
    /// Set once, on drop of the owning pool; workers exit their loop.
    shutdown: bool,
    /// Number of worker threads spawned so far (workers are lazy).
    n_workers: usize,
    /// Publish time of the current region (`stats::now_ns`), or 0 when the
    /// timing tier is off. Workers diff against it for dispatch latency.
    publish_ns: u64,
    /// Σ over this region's workers of (body start − publish).
    region_dispatch_ns: u64,
    /// Per-worker body nanos for this region; the caller aggregates them
    /// at region exit. Written only under the state lock the workers
    /// already take to decrement `active`, so the timing tier adds no
    /// synchronization — only clock reads.
    region_busy: Vec<u64>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between regions.
    work_cv: Condvar,
    /// The region caller parks here until `active == 0`.
    done_cv: Condvar,
}

/// Private core of [`ThreadPool`]; shared via `Arc` so `ThreadPool` stays
/// cheaply cloneable (clones share the same workers).
struct Inner {
    shared: Arc<PoolShared>,
    /// Serializes regions on this pool. Held for the whole region, so a
    /// region's logical threads are exactly caller + dedicated workers —
    /// never interleaved with another region's bodies.
    region: Mutex<()>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// A persistent, reusable worker pool.
///
/// Workers are spawned lazily on first use (a pool that is only asked for
/// its [`n_threads`](ThreadPool::n_threads) costs nothing) and parked
/// between regions; back-to-back regions pay a condvar wakeup, not an OS
/// thread spawn. [`ThreadPool::global`] is the process-wide pool every
/// [`scope_threads`] region runs on; explicit pools (`ThreadPool::new`)
/// own their workers and shut them down on drop, which keeps tests
/// hermetic.
#[derive(Clone)]
pub struct ThreadPool {
    n_threads: NonZeroUsize,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("n_threads", &self.n_threads.get())
            .field("spawned_workers", &self.inner.shared.state.lock().n_workers)
            .finish()
    }
}

impl ThreadPool {
    /// Create a pool of `n_threads` workers. Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> Self {
        Self {
            n_threads: NonZeroUsize::new(n_threads).expect("ThreadPool: n_threads must be > 0"),
            inner: Arc::new(Inner {
                shared: Arc::new(PoolShared {
                    state: Mutex::new(PoolState {
                        epoch: 0,
                        job: None,
                        active: 0,
                        panic: None,
                        shutdown: false,
                        n_workers: 0,
                        publish_ns: 0,
                        region_dispatch_ns: 0,
                        region_busy: Vec::new(),
                    }),
                    work_cv: Condvar::new(),
                    done_cv: Condvar::new(),
                }),
                region: Mutex::new(()),
                handles: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn host() -> Self {
        let n = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(n)
    }

    /// The process-wide pool, sized to the host on first use. All
    /// [`scope_threads`] regions run here; its workers grow on demand when
    /// a region is wider than the host (oracle tests run 8 logical threads
    /// on small containers) and are never torn down.
    pub fn global() -> &'static ThreadPool {
        static POOL: OnceLock<ThreadPool> = OnceLock::new();
        POOL.get_or_init(ThreadPool::host)
    }

    /// Number of worker threads in the pool.
    pub fn n_threads(&self) -> usize {
        self.n_threads.get()
    }

    /// Pre-spawn the workers a region of `width` logical threads needs, so
    /// the first timed region does not pay thread-creation cost.
    pub fn warm(&self, width: usize) {
        let mut st = self.inner.shared.state.lock();
        self.ensure_workers_locked(&mut st, width.saturating_sub(1));
    }

    /// Run `body(thread_index)` on every worker and wait; region width is
    /// the pool's `n_threads`.
    pub fn run<F>(&self, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.run_width(self.n_threads.get(), body);
    }

    /// Run a region of `width` logical threads: `body(0)` on the caller,
    /// `body(1..width)` on pool workers, all concurrent. Returns when every
    /// body has finished; re-raises the first panic any body produced.
    ///
    /// Called from inside another region (nested parallelism) this falls
    /// back to scoped OS threads — the pool's workers are busy with the
    /// outer region, and blocking on them would deadlock.
    pub fn run_width<F>(&self, width: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        assert!(width > 0, "ThreadPool: region width must be > 0");
        if width == 1 {
            // The paper's measurement convention: the 1-thread parallel run
            // is the parallel program on the calling thread.
            body(0);
            return;
        }
        if IN_PARALLEL_REGION.with(Cell::get) {
            stats::record_nested_region();
            spawn_region(width, &body);
            return;
        }
        let _region = self.inner.region.lock();
        let shared = &self.inner.shared;
        let timing = stats::timing_enabled();

        // SAFETY: the job pointer is dereferenced only by workers between
        // the publish below and their `active` decrement, and this frame
        // does not return (keeping `body` alive) until `active == 0` and
        // the decrementing workers have released the state lock. The
        // region lock guarantees no other caller overwrites the job while
        // this region runs.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(&body)
        };
        {
            let mut st = shared.state.lock();
            self.ensure_workers_locked(&mut st, width - 1);
            st.epoch += 1;
            st.job = Some(Job {
                body: erased,
                width,
            });
            st.active = width - 1;
            st.panic = None;
            st.publish_ns = if timing { stats::now_ns() } else { 0 };
            st.region_dispatch_ns = 0;
            st.region_busy.clear();
        }
        shared.work_cv.notify_all();

        // Run our own share as logical thread 0. A panic here must not
        // skip the completion wait: workers still hold the job pointer
        // into this frame.
        let caller_start = if timing { stats::now_ns() } else { 0 };
        let caller_result = catch_unwind(AssertUnwindSafe(|| {
            let _in_region = RegionGuard::enter();
            body(0);
        }));
        let caller_busy = if timing {
            stats::now_ns() - caller_start
        } else {
            0
        };

        let worker_panic = {
            let mut st = shared.state.lock();
            while st.active > 0 {
                shared.done_cv.wait(&mut st);
            }
            if timing {
                // Snapshot the region's timing into the process-wide
                // accumulators: total busy, critical-path imbalance
                // (slowest logical thread vs perfect balance), and the
                // summed worker dispatch latencies.
                let mut sum = caller_busy;
                let mut max = caller_busy;
                for &b in &st.region_busy {
                    sum += b;
                    max = max.max(b);
                }
                let mean = sum / width as u64;
                stats::record_region_timing(st.region_dispatch_ns, sum, max - mean);
                let mut per_worker = Vec::with_capacity(st.region_busy.len() + 1);
                per_worker.push(caller_busy);
                per_worker.extend_from_slice(&st.region_busy);
                stats::record_region_worker_busy(per_worker);
            }
            st.job = None;
            st.panic.take()
        };
        stats::record_pooled_region(width);

        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Grow the worker set to at least `min_workers` threads. Must be
    /// called with the state lock held; new workers observe the current
    /// epoch as already-seen, so only a region published *after* this call
    /// reaches them.
    fn ensure_workers_locked(
        &self,
        st: &mut parking_lot::MutexGuard<'_, PoolState>,
        min_workers: usize,
    ) {
        while st.n_workers < min_workers {
            let index = st.n_workers;
            let seen_epoch = st.epoch;
            let shared = Arc::clone(&self.inner.shared);
            let handle = std::thread::Builder::new()
                .name(format!("sthreads-worker-{index}"))
                .spawn(move || worker_loop(&shared, index, seen_epoch))
                .expect("ThreadPool: failed to spawn worker thread");
            self.inner.handles.lock().push(handle);
            st.n_workers += 1;
        }
    }
}

/// The parked-worker loop: wait for a new epoch, run our logical thread of
/// the region if the width covers us, signal completion, park again.
fn worker_loop(shared: &PoolShared, index: usize, mut seen_epoch: u64) {
    // Worker threads only ever execute region bodies, so a nested
    // scope_threads from one must always take the scoped fallback.
    IN_PARALLEL_REGION.with(|f| f.set(true));
    let mut st = shared.state.lock();
    loop {
        if st.shutdown {
            return;
        }
        if st.epoch != seen_epoch {
            seen_epoch = st.epoch;
            // Worker `index` is logical thread `index + 1` (the caller is
            // thread 0); a region narrower than that skips this worker.
            let job = st.job.filter(|j| index + 1 < j.width);
            if let Some(job) = job {
                // Timing tier: publish_ns != 0 iff the caller sampled the
                // clock for this region, so a mid-region toggle of the
                // flag can only skip a region, never corrupt it.
                let timing = st.publish_ns != 0;
                let start = if timing { stats::now_ns() } else { 0 };
                let dispatch = start.saturating_sub(st.publish_ns);
                drop(st);
                let result = catch_unwind(AssertUnwindSafe(|| (job.body)(index + 1)));
                let busy = if timing { stats::now_ns() - start } else { 0 };
                st = shared.state.lock();
                if timing {
                    st.region_dispatch_ns += dispatch;
                    st.region_busy.push(busy);
                }
                if let Err(payload) = result {
                    if st.panic.is_none() {
                        st.panic = Some(payload);
                    }
                }
                st.active -= 1;
                if st.active == 0 {
                    shared.done_cv.notify_all();
                }
            }
            continue;
        }
        let timing = stats::timing_enabled();
        let parked_at = if timing { stats::now_ns() } else { 0 };
        shared.work_cv.wait(&mut st);
        if timing {
            stats::record_idle_ns(stats::now_ns() - parked_at);
        }
    }
}

/// Fallback for nested regions: fresh scoped OS threads, exactly the
/// pre-pool implementation. Spawned threads are flagged as in-region so
/// arbitrarily deep nesting keeps taking this path.
///
/// Panic semantics match the pooled path exactly: every body is joined,
/// the caller's own panic takes precedence, and otherwise the first
/// worker payload is re-raised verbatim. (Letting `std::thread::scope`
/// auto-join panicked threads would instead abort the scope with a
/// generic "a scoped thread panicked" payload, so a nested region would
/// surface a different panic than the same body on the pool.)
fn spawn_region<F>(width: usize, body: &F)
where
    F: Fn(usize) + Sync,
{
    let mut worker_panic: Option<Box<dyn Any + Send>> = None;
    let caller_result = std::thread::scope(|s| {
        let handles: Vec<_> = (1..width)
            .map(|t| {
                s.spawn(move || {
                    let _in_region = RegionGuard::enter();
                    body(t);
                })
            })
            .collect();
        // The caller is already flagged (we only get here nested).
        let r = catch_unwind(AssertUnwindSafe(|| body(0)));
        for h in handles {
            if let Err(payload) = h.join() {
                worker_panic.get_or_insert(payload);
            }
        }
        r
    });
    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Run `n_threads` copies of `body` concurrently on the process-wide
/// persistent pool ([`ThreadPool::global`]) and wait for all of them.
/// `body` receives the thread index `0..n_threads`.
///
/// With `n_threads == 1` the body runs on the calling thread — this mirrors
/// the paper's measurement convention where the 1-processor parallel run is
/// the parallel program on one thread, not the sequential program.
pub fn scope_threads<F>(n_threads: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    assert!(n_threads > 0, "scope_threads: need at least one thread");
    ThreadPool::global().run_width(n_threads, body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_threads_runs_every_index_once() {
        let hits = [const { AtomicUsize::new(0) }; 8];
        scope_threads(8, |t| {
            hits[t].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn scope_threads_single_thread_runs_inline() {
        let tid = std::thread::current().id();
        // body is Fn + Sync, so record through a mutex-guarded slot.
        let slot = parking_lot::Mutex::new(None);
        scope_threads(1, |t| {
            assert_eq!(t, 0);
            *slot.lock() = Some(std::thread::current().id());
        });
        assert_eq!(
            *slot.lock(),
            Some(tid),
            "width-1 region must run on the caller"
        );
    }

    #[test]
    fn scope_threads_shares_borrowed_data() {
        let data = vec![1u64; 1000];
        let sum = AtomicUsize::new(0);
        scope_threads(4, |t| {
            let part: u64 = data[t * 250..(t + 1) * 250].iter().sum();
            sum.fetch_add(part as usize, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn pool_reports_size_and_runs() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.n_threads(), 3);
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    #[should_panic(expected = "n_threads must be > 0")]
    fn pool_rejects_zero_threads() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn host_pool_has_at_least_one_thread() {
        assert!(ThreadPool::host().n_threads() >= 1);
    }

    #[test]
    fn pool_workers_persist_across_regions() {
        let pool = ThreadPool::new(4);
        pool.warm(4);
        let worker_ids = || {
            let ids = parking_lot::Mutex::new(BTreeSet::new());
            let caller = std::thread::current().id();
            pool.run(|_| {
                let id = std::thread::current().id();
                if id != caller {
                    ids.lock().insert(format!("{id:?}"));
                }
            });
            ids.into_inner()
        };
        let first = worker_ids();
        assert_eq!(first.len(), 3, "width-4 region uses 3 dedicated workers");
        for _ in 0..5 {
            assert_eq!(worker_ids(), first, "regions must reuse the same workers");
        }
    }

    #[test]
    fn explicit_pool_grows_beyond_its_default_width() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        pool.run_width(6, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn nested_regions_fall_back_and_complete() {
        let count = AtomicUsize::new(0);
        scope_threads(2, |_| {
            scope_threads(3, |_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn concurrent_regions_from_independent_threads_serialize_safely() {
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..20 {
                        scope_threads(4, |_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 3 * 20 * 4);
    }

    #[test]
    #[should_panic(expected = "worker body panicked")]
    fn worker_panic_propagates_to_caller() {
        scope_threads(4, |t| {
            if t == 3 {
                panic!("worker body panicked");
            }
        });
    }

    #[test]
    #[should_panic(expected = "caller body panicked")]
    fn caller_panic_propagates_after_draining_workers() {
        scope_threads(4, |t| {
            if t == 0 {
                panic!("caller body panicked");
            }
        });
    }

    /// Render a panic payload the way `panic!` produced it (`&str` for
    /// literals, `String` for formatted messages).
    fn payload_text(p: &(dyn Any + Send)) -> String {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            panic!("panic payload is neither &str nor String");
        }
    }

    #[test]
    fn nested_region_panic_payload_matches_pooled_path() {
        // The same formatted panic, raised by a worker body on the pooled
        // path and inside a nested (scoped-fallback) region. Both must
        // surface the original payload — not thread::scope's generic
        // "a scoped thread panicked" replacement.
        let pooled = catch_unwind(AssertUnwindSafe(|| {
            scope_threads(2, |t| {
                if t == 1 {
                    panic!("nested payload {}", 6 * 7);
                }
            });
        }))
        .unwrap_err();
        let nested = catch_unwind(AssertUnwindSafe(|| {
            scope_threads(2, |t| {
                if t == 0 {
                    scope_threads(2, |u| {
                        if u == 1 {
                            panic!("nested payload {}", 6 * 7);
                        }
                    });
                }
            });
        }))
        .unwrap_err();
        assert_eq!(payload_text(&*pooled), "nested payload 42");
        assert_eq!(
            payload_text(&*nested),
            payload_text(&*pooled),
            "nested fallback must re-raise the identical panic payload"
        );
    }

    #[test]
    fn nested_region_caller_panic_takes_precedence() {
        // Caller-body panic precedence is part of "identical to the pooled
        // path": when both the nested caller and a nested worker panic,
        // the caller's payload wins, as in run_width.
        let got = catch_unwind(AssertUnwindSafe(|| {
            scope_threads(2, |t| {
                if t == 0 {
                    scope_threads(2, |u| match u {
                        0 => panic!("nested caller payload"),
                        _ => panic!("nested worker payload"),
                    });
                }
            });
        }))
        .unwrap_err();
        assert_eq!(payload_text(&*got), "nested caller payload");
    }

    #[test]
    fn pool_survives_a_panicking_region() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|t| {
                if t == 2 {
                    panic!("one bad body");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        // Parked workers must still answer the next region.
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn pool_survives_many_back_to_back_regions() {
        let pool = ThreadPool::new(4);
        let count = AtomicUsize::new(0);
        for _ in 0..10_000 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 40_000);
    }

    #[test]
    fn dropping_a_pool_shuts_workers_down() {
        let pool = ThreadPool::new(3);
        pool.run(|_| {});
        // Drop joins the workers; if shutdown were broken this would hang
        // (and the harness timeout would catch it).
        drop(pool);
    }
}
