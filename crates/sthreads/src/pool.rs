//! Scoped worker-thread execution.
//!
//! The Sthreads library of the paper creates one OS thread per loop chunk on
//! Windows NT; on the Exemplar the pragmas bind one thread per processor.
//! Here a parallel region is realized with scoped threads so borrowed data
//! can be shared without `'static` bounds, matching the shared-memory model
//! of all four platforms in the study.

use std::num::NonZeroUsize;

/// Run `n_threads` copies of `body` on scoped OS threads and wait for all of
/// them. `body` receives the thread index `0..n_threads`.
///
/// With `n_threads == 1` the body runs on the calling thread — this mirrors
/// the paper's measurement convention where the 1-processor parallel run is
/// the parallel program on one thread, not the sequential program.
pub fn scope_threads<F>(n_threads: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    assert!(n_threads > 0, "scope_threads: need at least one thread");
    if n_threads == 1 {
        body(0);
        return;
    }
    std::thread::scope(|s| {
        // Spawn threads 1..n and run thread 0 on the caller, so a parallel
        // region of width n costs n-1 spawns (as Sthreads did).
        let body = &body;
        for t in 1..n_threads {
            s.spawn(move || body(t));
        }
        body(0);
    });
}

/// A reusable pool abstraction for callers that want an explicit object.
///
/// The pool is deliberately simple: it remembers a thread-count and hands the
/// actual execution to [`scope_threads`]. Sthreads' own pool on NT was
/// likewise a thin veneer over `CreateThread`; the cost model for OS-thread
/// creation (tens of thousands of cycles, §7 of the paper) lives in the
/// machine models, not here.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    n_threads: NonZeroUsize,
}

impl ThreadPool {
    /// Create a pool of `n_threads` workers. Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> Self {
        Self {
            n_threads: NonZeroUsize::new(n_threads).expect("ThreadPool: n_threads must be > 0"),
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn host() -> Self {
        let n = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads in the pool.
    pub fn n_threads(&self) -> usize {
        self.n_threads.get()
    }

    /// Run `body(thread_index)` on every worker and wait.
    pub fn run<F>(&self, body: F)
    where
        F: Fn(usize) + Sync,
    {
        scope_threads(self.n_threads.get(), body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_threads_runs_every_index_once() {
        let hits = [const { AtomicUsize::new(0) }; 8];
        scope_threads(8, |t| {
            hits[t].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn scope_threads_single_thread_runs_inline() {
        let tid = std::thread::current().id();
        // body is Fn + Sync, so record through a mutex-guarded slot.
        let slot = parking_lot::Mutex::new(None);
        scope_threads(1, |t| {
            assert_eq!(t, 0);
            *slot.lock() = Some(std::thread::current().id());
        });
        assert_eq!(
            *slot.lock(),
            Some(tid),
            "width-1 region must run on the caller"
        );
    }

    #[test]
    fn scope_threads_shares_borrowed_data() {
        let data = vec![1u64; 1000];
        let sum = AtomicUsize::new(0);
        scope_threads(4, |t| {
            let part: u64 = data[t * 250..(t + 1) * 250].iter().sum();
            sum.fetch_add(part as usize, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn pool_reports_size_and_runs() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.n_threads(), 3);
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    #[should_panic(expected = "n_threads must be > 0")]
    fn pool_rejects_zero_threads() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn host_pool_has_at_least_one_thread() {
        assert!(ThreadPool::host().n_threads() >= 1);
    }
}
