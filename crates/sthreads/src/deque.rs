//! Per-worker iteration deques for the work-stealing schedule.
//!
//! The shared [`WorkQueue`](crate::WorkQueue) self-schedules every claim
//! through one atomic counter — the right model for the paper's Program 4
//! ("threat = next unprocessed threat", a one-cycle `int_fetch_add` on the
//! Tera), but a contention wall on the host the moment tasks drop below a
//! few microseconds: every claim by every worker bounces the same cache
//! line. [`Schedule::Stealing`](crate::Schedule::Stealing) replaces that
//! central counter with one [`StealDeque`] per worker. Each deque holds a
//! contiguous, still-unclaimed run of loop iterations packed into a single
//! atomic word:
//!
//! * the **owner** pops batches from the *head* (low indices, so its
//!   iterations stay a contiguous ascending run — the same cache-locality
//!   argument as static chunking) with one CAS per batch on a line no
//!   other worker touches in the common case;
//! * **thieves** split off half the remaining span from the *tail* with
//!   one CAS, so stolen work is itself a contiguous block that the thief
//!   re-publishes as its own deque (and can be stolen from again).
//!
//! The deque is bounded by construction — it is a span, not a buffer — and
//! lock-free: every operation is a single `compare_exchange` loop on one
//! `AtomicU64`, and a failed CAS always means another worker made
//! progress.
//!
//! # Why the packed span cannot ABA
//!
//! Both halves of the word are *global iteration indices*. A stale CAS
//! could only succeed if the packed value recurred, i.e. if the exact span
//! `start..end` were ever re-published to the same deque. Spans only ever
//! shrink (pops advance `start`, steals retreat `end`) and a popped batch
//! is executed, never re-circulated — so for `start..end` to recur, its
//! head indices would have to re-enter circulation after being claimed,
//! which never happens. The recurrence is impossible, so no version tag is
//! needed.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Largest iteration index (exclusive) a [`StealDeque`] can hold: spans
/// pack `start` and `end` into one `AtomicU64` as two 32-bit halves.
/// Loops beyond this bound fall back to the shared-queue schedule (see
/// [`ParFor`](crate::ParFor)).
pub const MAX_INDEX: usize = u32::MAX as usize;

#[inline]
const fn pack(start: u32, end: u32) -> u64 {
    ((end as u64) << 32) | start as u64
}

#[inline]
const fn unpack(v: u64) -> (u32, u32) {
    (v as u32, (v >> 32) as u32)
}

/// Outcome of a [`StealDeque::steal`] attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Steal {
    /// The thief now exclusively owns this run of iterations.
    Stolen(Range<usize>),
    /// The victim's deque held no unclaimed iterations.
    Empty,
    /// The CAS lost a race with the owner or another thief; the victim
    /// may still hold work, so the sweep should try again.
    Retry,
}

/// A single-owner, multi-thief deque over a contiguous iteration span.
///
/// All operations use relaxed atomics: like [`WorkQueue`](crate::WorkQueue),
/// the deque only decides *which* caller runs each index — any data
/// ordering the loop bodies need is their own concern, and the enclosing
/// pool region's lock handshake orders final result visibility.
#[derive(Debug)]
pub struct StealDeque {
    span: AtomicU64,
}

impl StealDeque {
    /// A deque initially owning `range`. Panics if `range.end` exceeds
    /// [`MAX_INDEX`].
    pub fn new(range: Range<usize>) -> Self {
        assert!(
            range.end <= MAX_INDEX,
            "StealDeque: index range exceeds the packed 32-bit bound"
        );
        let start = range.start.min(range.end);
        Self {
            span: AtomicU64::new(pack(start as u32, range.end as u32)),
        }
    }

    /// How many iterations are still unclaimed in this deque.
    pub fn remaining(&self) -> usize {
        let (start, end) = unpack(self.span.load(Ordering::Relaxed));
        (end - start) as usize
    }

    /// Owner claim: take up to `max` iterations from the head of the
    /// span, or `None` when the deque is empty. Panics if `max == 0`.
    pub fn pop(&self, max: usize) -> Option<Range<usize>> {
        assert!(max > 0, "StealDeque::pop: batch size must be > 0");
        let mut cur = self.span.load(Ordering::Relaxed);
        loop {
            let (start, end) = unpack(cur);
            if start >= end {
                return None;
            }
            let k = ((end - start) as usize).min(max) as u32;
            match self.span.compare_exchange_weak(
                cur,
                pack(start + k, end),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(start as usize..(start + k) as usize),
                // A thief moved the tail (or the CAS failed spuriously);
                // the head is still ours to claim — retry on the new span.
                Err(now) => cur = now,
            }
        }
    }

    /// Thief claim: split off the tail half of the victim's remaining
    /// span in one CAS. Unlike [`StealDeque::pop`] this never loops — a
    /// lost race reports [`Steal::Retry`] so the caller's sweep can count
    /// contention and move to the next victim.
    pub fn steal(&self) -> Steal {
        let cur = self.span.load(Ordering::Relaxed);
        let (start, end) = unpack(cur);
        if start >= end {
            return Steal::Empty;
        }
        let k = (end - start).div_ceil(2);
        match self.span.compare_exchange(
            cur,
            pack(start, end - k),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => Steal::Stolen((end - k) as usize..end as usize),
            Err(_) => Steal::Retry,
        }
    }

    /// Re-publish a stolen run as this deque's span, making it claimable
    /// by this worker's [`StealDeque::pop`] and stealable by others.
    ///
    /// Only the deque's owner may call this, and only while the deque is
    /// empty (the owner just drained it; thieves never grow a span), so a
    /// plain store cannot overwrite unclaimed work.
    pub fn publish(&self, range: Range<usize>) {
        debug_assert_eq!(self.remaining(), 0, "publish over unclaimed work");
        assert!(
            range.end <= MAX_INDEX,
            "StealDeque: index range exceeds the packed 32-bit bound"
        );
        let start = range.start.min(range.end);
        self.span
            .store(pack(start as u32, range.end as u32), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn pop_drains_the_span_in_order() {
        let d = StealDeque::new(3..11);
        assert_eq!(d.remaining(), 8);
        assert_eq!(d.pop(3), Some(3..6));
        assert_eq!(d.pop(3), Some(6..9));
        assert_eq!(d.pop(3), Some(9..11), "final batch truncates");
        assert_eq!(d.pop(3), None);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn steal_takes_the_tail_half() {
        let d = StealDeque::new(0..10);
        assert_eq!(d.steal(), Steal::Stolen(5..10));
        assert_eq!(d.steal(), Steal::Stolen(2..5), "half of 5, rounded up");
        assert_eq!(d.remaining(), 2);
        assert_eq!(d.pop(10), Some(0..2), "owner keeps the head");
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn steal_of_one_item_empties_the_deque() {
        let d = StealDeque::new(7..8);
        assert_eq!(d.steal(), Steal::Stolen(7..8));
        assert_eq!(d.steal(), Steal::Empty);
        assert_eq!(d.pop(1), None);
    }

    #[test]
    fn empty_range_is_empty() {
        let d = StealDeque::new(5..5);
        assert_eq!(d.remaining(), 0);
        assert_eq!(d.pop(4), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn publish_after_drain_makes_the_span_claimable_again() {
        let d = StealDeque::new(0..4);
        while d.pop(2).is_some() {}
        d.publish(100..108);
        assert_eq!(d.remaining(), 8);
        assert_eq!(d.pop(8), Some(100..108));
    }

    #[test]
    #[should_panic(expected = "packed 32-bit bound")]
    fn ranges_beyond_u32_are_rejected() {
        let _ = StealDeque::new(0..MAX_INDEX + 1);
    }

    #[test]
    fn concurrent_pops_and_steals_partition_the_span() {
        // One owner popping small batches races 7 thieves; every index
        // must be claimed exactly once across all of them.
        const N: usize = 40_000;
        let d = StealDeque::new(0..N);
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            let (d, seen) = (&d, &seen);
            s.spawn(move || {
                let mut local = Vec::new();
                while let Some(r) = d.pop(7) {
                    local.extend(r);
                }
                let mut set = seen.lock().unwrap();
                for i in local {
                    assert!(set.insert(i), "index {i} claimed twice");
                }
            });
            for _ in 0..7 {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match d.steal() {
                            Steal::Stolen(r) => local.extend(r),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => break,
                        }
                    }
                    let mut set = seen.lock().unwrap();
                    for i in local {
                        assert!(set.insert(i), "index {i} claimed twice");
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), N);
    }
}
