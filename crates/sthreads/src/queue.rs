//! Self-scheduling work queue ("next unprocessed threat").
//!
//! Program 4 of the paper balances irregular per-threat work by having each
//! thread repeatedly claim the next unprocessed threat. On the Tera MTA this
//! is a one-cycle `int_fetch_add` on a synchronization variable; on the
//! conventional platforms it is an atomic increment. [`WorkQueue`] is that
//! counter.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An atomic index dispenser over a half-open range.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    end: usize,
}

impl WorkQueue {
    /// Create a queue dispensing each index of `range` exactly once.
    pub fn new(range: Range<usize>) -> Self {
        Self {
            next: AtomicUsize::new(range.start),
            end: range.end,
        }
    }

    /// Claim the next unprocessed index, or `None` when the range is
    /// exhausted. Each index is returned to exactly one caller.
    /// Equivalent to [`WorkQueue::next_batch`] with `k == 1`.
    pub fn next(&self) -> Option<usize> {
        self.next_batch(1).map(|r| r.start)
    }

    /// Claim the next up-to-`k` unprocessed indices in one atomic
    /// operation, returning the claimed sub-range, or `None` when the
    /// range is exhausted. Every index is dispensed to exactly one caller
    /// across any mix of batch sizes; the final batch is truncated at the
    /// range end.
    ///
    /// Batching is the self-scheduling overhead lever: one `fetch_add`
    /// claims `k` iterations, so the shared counter's cache line is
    /// touched once per batch instead of once per iteration. Panics if
    /// `k == 0`.
    pub fn next_batch(&self, k: usize) -> Option<std::ops::Range<usize>> {
        assert!(k > 0, "WorkQueue::next_batch: batch size must be > 0");
        // fetch_add then range-check: overshoot past `end` is harmless
        // because overshooting claims map to None and each caller stops
        // after its first None. Relaxed suffices — the queue only hands
        // out indices; the caller's own work provides any data ordering
        // it needs.
        let i = self.next.fetch_add(k, Ordering::Relaxed);
        let batch = (i < self.end).then(|| i..self.end.min(i.saturating_add(k)));
        if let Some(b) = &batch {
            crate::stats::record_batch(b.len());
        }
        batch
    }

    /// How many indices are still unclaimed (saturating at zero once
    /// claimants have overshot the end).
    pub fn remaining(&self) -> usize {
        self.end.saturating_sub(self.next.load(Ordering::Relaxed))
    }

    /// How many indices have been claimed so far (saturating at range len).
    pub fn claimed(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.end)
    }

    /// Whether every index has been claimed.
    pub fn is_exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn dispenses_each_index_exactly_once_sequentially() {
        let q = WorkQueue::new(3..8);
        let got: Vec<usize> = std::iter::from_fn(|| q.next()).collect();
        assert_eq!(got, vec![3, 4, 5, 6, 7]);
        assert!(q.next().is_none());
        assert!(q.is_exhausted());
    }

    #[test]
    fn empty_range_dispenses_nothing() {
        let q = WorkQueue::new(5..5);
        assert!(q.next().is_none());
        assert_eq!(q.claimed(), 5);
        assert!(q.is_exhausted());
    }

    #[test]
    fn concurrent_claims_are_disjoint_and_complete() {
        let q = WorkQueue::new(0..10_000);
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(i) = q.next() {
                        local.push(i);
                    }
                    let mut set = seen.lock().unwrap();
                    for i in local {
                        assert!(set.insert(i), "index {i} claimed twice");
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 10_000);
    }

    #[test]
    fn next_batch_partitions_the_range() {
        let q = WorkQueue::new(2..12);
        assert_eq!(q.next_batch(4), Some(2..6));
        assert_eq!(q.remaining(), 6);
        assert_eq!(q.next_batch(4), Some(6..10));
        // Final batch truncates at the range end.
        assert_eq!(q.next_batch(4), Some(10..12));
        assert_eq!(q.next_batch(4), None);
        assert_eq!(q.remaining(), 0);
        assert!(q.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "batch size must be > 0")]
    fn next_batch_rejects_zero() {
        WorkQueue::new(0..4).next_batch(0);
    }

    #[test]
    fn concurrent_mixed_batches_are_disjoint_and_complete() {
        let q = WorkQueue::new(0..10_000);
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            let (q, seen) = (&q, &seen);
            for w in 0..8usize {
                let k = [1, 3, 7, 16][w % 4];
                s.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(r) = q.next_batch(k) {
                        local.extend(r);
                    }
                    let mut set = seen.lock().unwrap();
                    for i in local {
                        assert!(set.insert(i), "index {i} claimed twice");
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 10_000);
    }

    #[test]
    fn claimed_counts_progress() {
        let q = WorkQueue::new(0..3);
        assert_eq!(q.claimed(), 0);
        q.next();
        assert_eq!(q.claimed(), 1);
        q.next();
        q.next();
        q.next(); // overshoot
        assert_eq!(q.claimed(), 3, "claimed saturates at range length");
    }
}
