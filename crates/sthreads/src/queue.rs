//! Self-scheduling work queue ("next unprocessed threat").
//!
//! Program 4 of the paper balances irregular per-threat work by having each
//! thread repeatedly claim the next unprocessed threat. On the Tera MTA this
//! is a one-cycle `int_fetch_add` on a synchronization variable; on the
//! conventional platforms it is an atomic increment. [`WorkQueue`] is that
//! counter.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An atomic index dispenser over a half-open range.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    end: usize,
}

impl WorkQueue {
    /// Create a queue dispensing each index of `range` exactly once.
    pub fn new(range: Range<usize>) -> Self {
        Self {
            next: AtomicUsize::new(range.start),
            end: range.end,
        }
    }

    /// Claim the next unprocessed index, or `None` when the range is
    /// exhausted. Each index is returned to exactly one caller.
    pub fn next(&self) -> Option<usize> {
        // fetch_add then range-check: overshoot past `end` is harmless
        // because overshooting claims map to None. Relaxed suffices — the
        // queue only hands out indices; the caller's own work provides any
        // data ordering it needs.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.end).then_some(i)
    }

    /// How many indices have been claimed so far (saturating at range len).
    pub fn claimed(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.end)
    }

    /// Whether every index has been claimed.
    pub fn is_exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn dispenses_each_index_exactly_once_sequentially() {
        let q = WorkQueue::new(3..8);
        let got: Vec<usize> = std::iter::from_fn(|| q.next()).collect();
        assert_eq!(got, vec![3, 4, 5, 6, 7]);
        assert!(q.next().is_none());
        assert!(q.is_exhausted());
    }

    #[test]
    fn empty_range_dispenses_nothing() {
        let q = WorkQueue::new(5..5);
        assert!(q.next().is_none());
        assert_eq!(q.claimed(), 5);
        assert!(q.is_exhausted());
    }

    #[test]
    fn concurrent_claims_are_disjoint_and_complete() {
        let q = WorkQueue::new(0..10_000);
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(i) = q.next() {
                        local.push(i);
                    }
                    let mut set = seen.lock().unwrap();
                    for i in local {
                        assert!(set.insert(i), "index {i} claimed twice");
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 10_000);
    }

    #[test]
    fn claimed_counts_progress() {
        let q = WorkQueue::new(0..3);
        assert_eq!(q.claimed(), 0);
        q.next();
        assert_eq!(q.claimed(), 1);
        q.next();
        q.next();
        q.next(); // overshoot
        assert_eq!(q.claimed(), 3, "claimed saturates at range length");
    }
}
