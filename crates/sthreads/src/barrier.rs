//! Barrier synchronization and parallel reduction.
//!
//! The fine-grained Terrain Masking program is a sequence of parallel
//! phases separated by barriers (ring `k` may not start until ring
//! `k − 1` completes). On the Tera MTA a barrier is a fetch-add counter
//! plus a full/empty broadcast word; [`Barrier`] is the host equivalent,
//! reusable across phases. [`reduce`] is the standard structured
//! tree-free reduction built on [`crate::multithreaded_for`].

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};

struct BarrierState {
    /// Threads still to arrive in the current phase.
    waiting: usize,
    /// Phase counter (distinguishes consecutive barrier uses).
    phase: u64,
}

/// A reusable N-party barrier.
///
/// ```
/// use sthreads::{scope_threads, Barrier};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let barrier = Barrier::new(4);
/// let before = AtomicUsize::new(0);
/// scope_threads(4, |_| {
///     before.fetch_add(1, Ordering::SeqCst);
///     barrier.wait();
///     // Every thread sees all four arrivals after the barrier.
///     assert_eq!(before.load(Ordering::SeqCst), 4);
/// });
/// ```
pub struct Barrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

impl Barrier {
    /// A barrier for `parties` threads. Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "Barrier: need at least one party");
        Self {
            parties,
            state: Mutex::new(BarrierState {
                waiting: parties,
                phase: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block until all parties have called `wait` for this phase. Returns
    /// `true` for exactly one caller per phase (the "leader", which
    /// arrived last) — useful for phase-sequential work.
    pub fn wait(&self) -> bool {
        let mut st = self.state.lock();
        let phase = st.phase;
        st.waiting -= 1;
        if st.waiting == 0 {
            // Last arrival: open the next phase and release everyone.
            st.waiting = self.parties;
            st.phase += 1;
            self.cv.notify_all();
            return true;
        }
        while st.phase == phase {
            self.cv.wait(&mut st);
        }
        false
    }
}

/// A reusable N-party barrier that spins (then yields) instead of parking.
///
/// [`Barrier`] costs a mutex acquisition plus a condvar round-trip per
/// phase — fine when phases are milliseconds, ruinous when they are
/// microseconds. The parallel tick of the `mta-sim` machine crosses a
/// barrier every simulated event window (often only a couple of simulated
/// cycles of work per processor), so it needs arrival/release in the
/// ~100 ns range. `SpinBarrier` is the standard sense-reversing
/// counter/generation barrier: arrivals `fetch_add` a counter; the last
/// arrival resets the counter and bumps the generation, releasing the
/// spinners. Waiters spin briefly on the generation word and fall back to
/// `yield_now` so an oversubscribed host (more parties than cores) still
/// makes progress.
///
/// ```
/// use sthreads::{scope_threads, SpinBarrier};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let barrier = SpinBarrier::new(4);
/// let before = AtomicUsize::new(0);
/// scope_threads(4, |_| {
///     before.fetch_add(1, Ordering::SeqCst);
///     barrier.wait();
///     // Every thread sees all four arrivals after the barrier.
///     assert_eq!(before.load(Ordering::SeqCst), 4);
/// });
/// ```
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Spins on the generation word before each `yield_now` call.
    const SPINS_BEFORE_YIELD: u32 = 64;

    /// A barrier for `parties` threads. Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "SpinBarrier: need at least one party");
        Self {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block (spinning) until all parties have called `wait` for this
    /// phase. Returns `true` for exactly one caller per phase — the last
    /// arrival, which released the others.
    pub fn wait(&self) -> bool {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the counter for the next phase *before*
            // publishing the new generation — a released thread may call
            // `wait` again immediately, and must find the counter at 0.
            self.arrived.store(0, Ordering::Release);
            self.generation.store(generation + 1, Ordering::Release);
            return true;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            spins += 1;
            if spins < Self::SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        false
    }
}

/// Parallel reduction: split `0..n` over `n_threads` workers, map each
/// index with `map`, combine within a worker with `combine`, then fold
/// the per-worker results (in worker order, so the result is
/// deterministic for non-commutative `combine`).
pub fn reduce<T, M, C>(n: usize, n_threads: usize, identity: T, map: M, combine: C) -> T
where
    T: Send + Sync + Clone,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    assert!(n_threads > 0);
    let partials: Vec<Mutex<T>> = (0..n_threads)
        .map(|_| Mutex::new(identity.clone()))
        .collect();
    crate::pool::scope_threads(n_threads, |t| {
        let range = crate::chunk_range(t, n, n_threads);
        let mut acc = identity.clone();
        for i in range {
            acc = combine(acc, map(i));
        }
        *partials[t].lock() = acc;
    });
    partials
        .into_iter()
        .map(Mutex::into_inner)
        .fold(identity, &combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::scope_threads;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn barrier_separates_phases() {
        // Each thread increments a counter per phase; after each barrier
        // everyone must observe exactly (phase * parties) increments.
        let parties = 4;
        let barrier = Barrier::new(parties);
        let count = AtomicUsize::new(0);
        scope_threads(parties, |_| {
            for phase in 1..=5usize {
                count.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                assert_eq!(
                    count.load(Ordering::SeqCst),
                    phase * parties,
                    "phase {phase}"
                );
                barrier.wait(); // second barrier so nobody races ahead
            }
        });
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        let parties = 6;
        let barrier = Barrier::new(parties);
        let leaders = AtomicUsize::new(0);
        scope_threads(parties, |_| {
            for _ in 0..10 {
                if barrier.wait() {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = Barrier::new(1);
        for _ in 0..3 {
            assert!(b.wait());
        }
    }

    #[test]
    fn spin_barrier_separates_phases() {
        let parties = 4;
        let barrier = SpinBarrier::new(parties);
        let count = AtomicUsize::new(0);
        scope_threads(parties, |_| {
            for phase in 1..=50usize {
                count.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                assert_eq!(
                    count.load(Ordering::SeqCst),
                    phase * parties,
                    "phase {phase}"
                );
                barrier.wait(); // second barrier so nobody races ahead
            }
        });
    }

    #[test]
    fn spin_barrier_elects_one_leader_per_phase() {
        let parties = 6;
        let barrier = SpinBarrier::new(parties);
        let leaders = AtomicUsize::new(0);
        scope_threads(parties, |_| {
            for _ in 0..25 {
                if barrier.wait() {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn single_party_spin_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..3 {
            assert!(b.wait());
        }
    }

    #[test]
    fn reduce_sums_correctly() {
        let total = reduce(10_000, 7, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 9999 * 10_000 / 2);
    }

    #[test]
    fn reduce_is_deterministic_for_float_sums() {
        // Same thread count => identical partial grouping => identical
        // floating-point result.
        let run = || reduce(5000, 4, 0.0f64, |i| (i as f64).sqrt(), |a, b| a + b);
        assert_eq!(run(), run());
    }

    #[test]
    fn reduce_handles_empty_and_tiny_ranges() {
        assert_eq!(reduce(0, 4, 0u32, |_| 1, |a, b| a + b), 0);
        assert_eq!(reduce(2, 8, 0u32, |_| 1, |a, b| a + b), 2);
    }

    #[test]
    fn reduce_max_finds_the_maximum() {
        let m = reduce(1000, 3, i64::MIN, |i| ((i * 37) % 251) as i64, i64::max);
        assert_eq!(m, 250);
    }
}
