//! Full/empty synchronization variables.
//!
//! Every word of Tera MTA memory carries a full/empty bit; a synchronized
//! load waits until the word is full and (optionally) sets it empty, a
//! synchronized store waits until the word is empty and sets it full. The
//! paper uses these for the fine-grained Threat Analysis variant (a shared
//! interval counter updated with `int_fetch_add`) and notes that
//! "synchronization on every element of a large data structure is
//! practical" on the MTA.
//!
//! [`SyncVar<T>`] reproduces those semantics on the host with a mutex and
//! condition variables. The *cost* difference (1 cycle on the MTA versus
//! hundreds–thousands of cycles on conventional machines) is modelled in
//! `eval-core`, not here; this type provides the behaviour so the
//! fine-grained algorithm variants can be executed and verified.

use parking_lot::{Condvar, Mutex};

struct State<T> {
    /// `Some` when the variable is full.
    value: Option<T>,
}

/// A variable with Tera-style full/empty semantics.
///
/// ```
/// use sthreads::SyncVar;
/// let v = SyncVar::new_full(41);
/// assert_eq!(v.take(), 41);       // leaves it empty
/// v.write(7);                     // fills it
/// assert_eq!(v.read(), 7);        // non-consuming read
/// assert_eq!(v.take(), 7);
/// ```
pub struct SyncVar<T> {
    state: Mutex<State<T>>,
    /// Signalled when the variable becomes full.
    filled: Condvar,
    /// Signalled when the variable becomes empty.
    emptied: Condvar,
}

impl<T> SyncVar<T> {
    /// Create an empty variable (full/empty bit = empty).
    pub fn new_empty() -> Self {
        Self {
            state: Mutex::new(State { value: None }),
            filled: Condvar::new(),
            emptied: Condvar::new(),
        }
    }

    /// Create a full variable holding `value`.
    pub fn new_full(value: T) -> Self {
        Self {
            state: Mutex::new(State { value: Some(value) }),
            filled: Condvar::new(),
            emptied: Condvar::new(),
        }
    }

    /// Synchronized store: wait until empty, store `value`, set full.
    pub fn write(&self, value: T) {
        let mut st = self.state.lock();
        while st.value.is_some() {
            self.emptied.wait(&mut st);
        }
        st.value = Some(value);
        self.filled.notify_one();
    }

    /// Synchronized consuming load: wait until full, set empty, return the
    /// value (the MTA's ordinary synchronized read).
    pub fn take(&self) -> T {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.value.take() {
                self.emptied.notify_one();
                return v;
            }
            self.filled.wait(&mut st);
        }
    }

    /// Unsynchronized store: overwrite regardless of state and set full
    /// (the MTA's `$` "store and set full" without waiting).
    pub fn put(&self, value: T) {
        let mut st = self.state.lock();
        st.value = Some(value);
        self.filled.notify_one();
    }

    /// Try a synchronized store without blocking. Returns `Err(value)` if
    /// the variable was full.
    pub fn try_write(&self, value: T) -> Result<(), T> {
        let mut st = self.state.lock();
        if st.value.is_some() {
            return Err(value);
        }
        st.value = Some(value);
        self.filled.notify_one();
        Ok(())
    }

    /// Try a synchronized consuming load without blocking.
    pub fn try_take(&self) -> Option<T> {
        let mut st = self.state.lock();
        let v = st.value.take();
        if v.is_some() {
            self.emptied.notify_one();
        }
        v
    }

    /// Whether the variable is currently full. Momentary — useful only for
    /// tests and diagnostics.
    pub fn is_full(&self) -> bool {
        self.state.lock().value.is_some()
    }

    /// Wait until full, then apply `f` to the value in place, leaving the
    /// variable full. This is the "lock a word, mutate, unlock" idiom the
    /// fine-grained Threat Analysis variant uses on `num_intervals`.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.value.as_mut() {
                let r = f(v);
                // Still full; wake a reader in case it raced us.
                self.filled.notify_one();
                return r;
            }
            self.filled.wait(&mut st);
        }
    }
}

impl<T: Clone> SyncVar<T> {
    /// Synchronized non-consuming load: wait until full, return a clone,
    /// leave the variable full (the MTA's "read and leave full" mode).
    pub fn read(&self) -> T {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.value.as_ref() {
                return v.clone();
            }
            self.filled.wait(&mut st);
        }
    }
}

impl<T> Default for SyncVar<T> {
    fn default() -> Self {
        Self::new_empty()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SyncVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        match st.value.as_ref() {
            Some(v) => write!(f, "SyncVar(full: {v:?})"),
            None => write!(f, "SyncVar(empty)"),
        }
    }
}

/// An always-full integer cell supporting the MTA's one-cycle
/// `int_fetch_add`, used to allocate slots in a shared output array.
///
/// On the host this is an atomic; on the MTA model it costs one cycle and
/// never serializes (the fetch-add happens in the memory unit).
#[derive(Debug, Default)]
pub struct SyncCounter {
    value: std::sync::atomic::AtomicU64,
}

impl SyncCounter {
    /// A counter starting at `v`.
    pub fn new(v: u64) -> Self {
        Self {
            value: std::sync::atomic::AtomicU64::new(v),
        }
    }

    /// Atomically add `delta` and return the *previous* value.
    pub fn fetch_add(&self, delta: u64) -> u64 {
        self.value
            .fetch_add(delta, std::sync::atomic::Ordering::Relaxed)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn new_empty_then_write_then_take() {
        let v = SyncVar::new_empty();
        assert!(!v.is_full());
        v.write(5);
        assert!(v.is_full());
        assert_eq!(v.take(), 5);
        assert!(!v.is_full());
    }

    #[test]
    fn try_write_fails_when_full_and_try_take_when_empty() {
        let v = SyncVar::new_full(1);
        assert_eq!(v.try_write(2), Err(2));
        assert_eq!(v.try_take(), Some(1));
        assert_eq!(v.try_take(), None);
        assert_eq!(v.try_write(3), Ok(()));
        assert_eq!(v.read(), 3);
        assert!(v.is_full(), "read must leave the variable full");
    }

    #[test]
    fn put_overwrites_without_waiting() {
        let v = SyncVar::new_full(1);
        v.put(9);
        assert_eq!(v.take(), 9);
    }

    #[test]
    fn producer_consumer_handoff() {
        let v = Arc::new(SyncVar::new_empty());
        let p = Arc::clone(&v);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                p.write(i); // blocks until consumer empties it
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(v.take());
        }
        producer.join().unwrap();
        assert_eq!(
            got,
            (0..100).collect::<Vec<_>>(),
            "handoff must preserve order and lose nothing"
        );
    }

    #[test]
    fn update_mutates_in_place_and_leaves_full() {
        let v = SyncVar::new_full(10);
        let old = v.update(|x| {
            let o = *x;
            *x += 5;
            o
        });
        assert_eq!(old, 10);
        assert_eq!(v.read(), 15);
    }

    #[test]
    fn concurrent_updates_are_atomic() {
        let v = Arc::new(SyncVar::new_full(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let v = Arc::clone(&v);
                s.spawn(move || {
                    for _ in 0..1000 {
                        v.update(|x| *x += 1);
                    }
                });
            }
        });
        assert_eq!(v.read(), 8000);
    }

    #[test]
    fn sync_counter_fetch_add_returns_previous() {
        let c = SyncCounter::new(10);
        assert_eq!(c.fetch_add(3), 10);
        assert_eq!(c.fetch_add(1), 13);
        assert_eq!(c.get(), 14);
    }

    #[test]
    fn sync_counter_concurrent_slot_allocation_is_dense() {
        let c = SyncCounter::new(0);
        let slots = std::sync::Mutex::new(vec![false; 4000]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        let slot = c.fetch_add(1) as usize;
                        let mut v = slots.lock().unwrap();
                        assert!(!v[slot], "slot {slot} allocated twice");
                        v[slot] = true;
                    }
                });
            }
        });
        assert!(slots.lock().unwrap().iter().all(|&b| b));
    }

    #[test]
    fn debug_formats_show_state() {
        let v: SyncVar<i32> = SyncVar::new_empty();
        assert_eq!(format!("{v:?}"), "SyncVar(empty)");
        v.put(3);
        assert_eq!(format!("{v:?}"), "SyncVar(full: 3)");
    }
}
