//! Execution soundness of the dataflow pass: every loop it newly marks
//! parallel must produce BIT-IDENTICAL output when executed under the
//! emitted plan — reductions privatized and combined from partials,
//! privatized scalars given fresh per-iteration copies (last value out),
//! compaction sections concatenated in iteration order — versus the
//! sequential encoding.
//!
//! We generate random loops in a small *executable* subset (stores,
//! loads, reductions, compaction, a deliberately-carried scalar),
//! lower them to the IR, analyze, and for every PARALLEL verdict run both
//! executions over wrapping i64 arithmetic (where sum/min/max are exactly
//! associative and commutative, so the comparison is exact, not
//! approximate). Privatized copies start from a sentinel value: if the
//! analysis ever privatized a scalar that actually carries a value, the
//! sentinel leaks into the output and the comparison fails.

use autopar::reduction::{analyze_loop_dataflow, DataflowOptions};
use autopar::{analyze_loop, emit_plan, Expr, LoopNest, ReduceOp, Stmt};
use proptest::prelude::*;
use std::collections::BTreeMap;

const TRIP: i64 = 12;
const ARRAY_LEN: usize = 128;
const BASE: i64 = 64; // address bias keeping all subscripts in range
const SENTINEL: i64 = 0x5EAD_BEEF;

/// One executable operation of the loop body.
#[derive(Debug, Clone)]
enum Op {
    /// `arr[scale*i + offset] = (i+1).wrapping_mul(salt)`
    Store {
        array: usize,
        scale: i64,
        offset: i64,
        salt: i64,
    },
    /// `t<tmp> = arr[scale*i + offset]`
    Load {
        tmp: usize,
        array: usize,
        scale: i64,
        offset: i64,
    },
    /// `arr[scale*i + offset] = t<tmp>`
    StoreTmp {
        tmp: usize,
        array: usize,
        scale: i64,
        offset: i64,
    },
    /// `red<slot> op= value(i, tmp0)`
    Reduce {
        slot: usize,
        op: ReduceOp,
        salt: i64,
    },
    /// `out[n] = value; n++` — but only when `i % keep == 0`, so section
    /// lengths vary per iteration (the data-dependent part of the idiom
    /// is modeled by the *encoding* being data-dependent; execution here
    /// varies the count per iteration).
    Compact { salt: i64, keep: i64 },
    /// `carried = carried.wrapping_add(i)` — a genuine loop-carried
    /// scalar, NOT annotated as a reduction: must always be rejected.
    Carried,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..2, -2i64..3, -8i64..8, 1i64..100).prop_map(|(array, scale, offset, salt)| {
            Op::Store {
                array,
                scale,
                offset,
                salt,
            }
        }),
        (0usize..2, 0usize..2, -2i64..3, -8i64..8).prop_map(|(tmp, array, scale, offset)| {
            Op::Load {
                tmp,
                array,
                scale,
                offset,
            }
        }),
        (0usize..2, 0usize..2, -2i64..3, -8i64..8).prop_map(|(tmp, array, scale, offset)| {
            Op::StoreTmp {
                tmp,
                array,
                scale,
                offset,
            }
        }),
        (
            0usize..2,
            prop_oneof![
                Just(ReduceOp::Sum),
                Just(ReduceOp::Min),
                Just(ReduceOp::Max)
            ],
            1i64..100
        )
            .prop_map(|(slot, op, salt)| Op::Reduce { slot, op, salt }),
        (1i64..100, 1i64..4).prop_map(|(salt, keep)| Op::Compact { salt, keep }),
        Just(Op::Carried),
    ]
}

fn tmp_name(t: usize) -> String {
    format!("t{t}")
}
fn red_name(s: usize) -> String {
    format!("red{s}")
}
fn array_name(a: usize) -> String {
    format!("arr{a}")
}

fn subscript(scale: i64, offset: i64) -> Expr {
    Expr::Affine {
        var: "i".into(),
        scale,
        offset,
    }
}

/// Lower the ops to the analyzer's IR, one statement per op. The
/// reduction operator recorded for a slot is the *first* op seen for it;
/// later mixed-operator ops keep their own annotation, which the
/// analyzer must then reject as inconsistent.
fn lower(ops: &[Op]) -> LoopNest {
    let mut l = LoopNest::new("for i (generated)", "i");
    for (k, op) in ops.iter().enumerate() {
        let label = format!("op{k}");
        let s = match op {
            Op::Store {
                array,
                scale,
                offset,
                ..
            } => {
                Stmt::new(&label).array(&array_name(*array), vec![subscript(*scale, *offset)], true)
            }
            Op::Load {
                tmp,
                array,
                scale,
                offset,
            } => Stmt::new(&label).writes(&[&tmp_name(*tmp)]).array(
                &array_name(*array),
                vec![subscript(*scale, *offset)],
                false,
            ),
            Op::StoreTmp {
                tmp,
                array,
                scale,
                offset,
            } => Stmt::new(&label).reads(&[&tmp_name(*tmp)]).array(
                &array_name(*array),
                vec![subscript(*scale, *offset)],
                true,
            ),
            Op::Reduce { slot, op, .. } => {
                let name = red_name(*slot);
                Stmt::new(&label)
                    .reads(&[&name])
                    .writes(&[&name])
                    .reduces_op(&name, *op)
            }
            Op::Compact { .. } => Stmt::new(&label)
                .reads(&["n"])
                .writes(&["n"])
                .reduces_op("n", ReduceOp::Count)
                .array("out", vec![Expr::Opaque("n".into())], true),
            Op::Carried => Stmt::new(&label).reads(&["carried"]).writes(&["carried"]),
        };
        l = l.stmt(s);
    }
    l
}

/// Machine state after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Memory {
    arrays: BTreeMap<String, Vec<i64>>,
    scalars: BTreeMap<String, i64>,
    out: Vec<i64>,
}

fn fresh_memory() -> Memory {
    let mut arrays = BTreeMap::new();
    for a in 0..2 {
        arrays.insert(array_name(a), vec![0i64; ARRAY_LEN]);
    }
    Memory {
        arrays,
        scalars: BTreeMap::new(),
        out: Vec::new(),
    }
}

fn addr(scale: i64, offset: i64, i: i64) -> usize {
    usize::try_from(scale * i + offset + BASE).expect("address in range")
}

fn value(i: i64, salt: i64) -> i64 {
    (i + 1).wrapping_mul(salt)
}

fn reduce_identity(op: ReduceOp) -> i64 {
    match op {
        ReduceOp::Sum | ReduceOp::Count => 0,
        ReduceOp::Min => i64::MAX,
        ReduceOp::Max => i64::MIN,
    }
}

fn combine(op: ReduceOp, a: i64, b: i64) -> i64 {
    match op {
        ReduceOp::Sum | ReduceOp::Count => a.wrapping_add(b),
        ReduceOp::Min => a.min(b),
        ReduceOp::Max => a.max(b),
    }
}

/// The sequential (reference) execution: natural order, shared scalars.
fn run_sequential(ops: &[Op]) -> Memory {
    let mut m = fresh_memory();
    let mut tmps = [0i64; 2];
    let mut reds: BTreeMap<usize, i64> = BTreeMap::new();
    let mut carried = 0i64;
    for i in 0..TRIP {
        for op in ops {
            match op {
                Op::Store {
                    array,
                    scale,
                    offset,
                    salt,
                } => {
                    m.arrays.get_mut(&array_name(*array)).unwrap()[addr(*scale, *offset, i)] =
                        value(i, *salt)
                }
                Op::Load {
                    tmp,
                    array,
                    scale,
                    offset,
                } => tmps[*tmp] = m.arrays[&array_name(*array)][addr(*scale, *offset, i)],
                Op::StoreTmp {
                    tmp,
                    array,
                    scale,
                    offset,
                } => {
                    m.arrays.get_mut(&array_name(*array)).unwrap()[addr(*scale, *offset, i)] =
                        tmps[*tmp]
                }
                Op::Reduce { slot, op, salt } => {
                    let cur = reds.entry(*slot).or_insert_with(|| reduce_identity(*op));
                    *cur = combine(*op, *cur, value(i, *salt));
                }
                Op::Compact { salt, keep } => {
                    if i % keep == 0 {
                        m.out.push(value(i, *salt));
                    }
                }
                Op::Carried => carried = carried.wrapping_add(i),
            }
        }
    }
    for (t, &v) in tmps.iter().enumerate() {
        m.scalars.insert(tmp_name(t), v);
    }
    for (slot, v) in reds {
        m.scalars.insert(red_name(slot), v);
    }
    m.scalars.insert("carried".into(), carried);
    m.scalars.insert("n".into(), m.out.len() as i64);
    m
}

/// The plan-honoring "parallel" execution: iterations visited in an
/// adversarial order, privatized scalars starting from SENTINEL each
/// iteration, reductions accumulated as per-chunk partials combined
/// afterward, compaction buffered per iteration and concatenated in
/// iteration order. Panics if a written scalar is neither privatized nor
/// a reduction — a parallel verdict must account for every scalar.
fn run_parallel(ops: &[Op], order: &[i64]) -> Memory {
    let l = lower(ops);
    let dv = analyze_loop_dataflow(&l, &DataflowOptions::new(1));
    assert!(dv.verdict.parallel, "caller checks");
    let plan = emit_plan(&l, &dv).expect("parallel loops emit a plan");

    let is_privatized = |name: &str| plan.privatized.iter().any(|p| p == name);
    let is_reduction = |name: &str| plan.reductions.iter().any(|r| r.name == name);
    for op in ops {
        let written: Option<String> = match op {
            Op::Load { tmp, .. } => Some(tmp_name(*tmp)),
            Op::Reduce { slot, .. } => Some(red_name(*slot)),
            Op::Compact { .. } => Some("n".into()),
            Op::Carried => Some("carried".into()),
            _ => None,
        };
        if let Some(w) = written {
            assert!(
                is_privatized(&w) || is_reduction(&w),
                "parallel verdict left scalar `{w}` unaccounted for"
            );
        }
    }

    let mut m = fresh_memory();
    // Privatized temps get fresh poisoned copies each iteration; temps
    // the loop never writes are read-only and copy in their initial
    // value (firstprivate), exactly as sequential execution sees them.
    let tmp_init: [i64; 2] = [0, 1].map(|t| {
        if is_privatized(&tmp_name(t)) {
            SENTINEL
        } else {
            0
        }
    });
    // Three uneven "workers", each owning a slice of the adversarial
    // order, each with its own reduction partials.
    let chunk_bounds = [0, order.len() / 3, order.len() / 2, order.len()];
    let mut red_partials: Vec<BTreeMap<usize, i64>> = vec![BTreeMap::new(); 3];
    let mut carried_partials = [0i64; 3];
    let mut sections: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
    let mut last_tmps: BTreeMap<i64, [i64; 2]> = BTreeMap::new();
    for w in 0..3 {
        for &i in &order[chunk_bounds[w]..chunk_bounds[w + 1]] {
            let mut tmps = tmp_init;
            let section = sections.entry(i).or_default();
            for op in ops {
                match op {
                    Op::Store {
                        array,
                        scale,
                        offset,
                        salt,
                    } => {
                        m.arrays.get_mut(&array_name(*array)).unwrap()[addr(*scale, *offset, i)] =
                            value(i, *salt)
                    }
                    Op::Load {
                        tmp,
                        array,
                        scale,
                        offset,
                    } => tmps[*tmp] = m.arrays[&array_name(*array)][addr(*scale, *offset, i)],
                    Op::StoreTmp {
                        tmp,
                        array,
                        scale,
                        offset,
                    } => {
                        m.arrays.get_mut(&array_name(*array)).unwrap()[addr(*scale, *offset, i)] =
                            tmps[*tmp]
                    }
                    Op::Reduce { slot, op, salt } => {
                        let cur = red_partials[w]
                            .entry(*slot)
                            .or_insert_with(|| reduce_identity(*op));
                        *cur = combine(*op, *cur, value(i, *salt));
                    }
                    Op::Compact { salt, keep } => {
                        if i % keep == 0 {
                            section.push(value(i, *salt));
                        }
                    }
                    Op::Carried => carried_partials[w] = carried_partials[w].wrapping_add(i),
                }
            }
            last_tmps.insert(i, tmps);
        }
    }
    // Combine partials in deterministic worker order.
    let red_ops: BTreeMap<usize, ReduceOp> = ops
        .iter()
        .filter_map(|op| match op {
            Op::Reduce { slot, op, .. } => Some((*slot, *op)),
            _ => None,
        })
        .collect();
    for (&slot, &rop) in &red_ops {
        let mut acc = reduce_identity(rop);
        for p in &red_partials {
            if let Some(&v) = p.get(&slot) {
                acc = combine(rop, acc, v);
            }
        }
        m.scalars.insert(red_name(slot), acc);
    }
    if ops.iter().any(|o| matches!(o, Op::Carried)) {
        // Only reachable if `carried` was (wrongly) treated as a
        // reduction; combine so the mismatch surfaces in the comparison
        // rather than by panic.
        m.scalars.insert(
            "carried".into(),
            carried_partials
                .iter()
                .fold(0i64, |a, &b| a.wrapping_add(b)),
        );
    }
    // Compaction: concatenate sections in iteration order (BTreeMap walks
    // keys ascending).
    for (_, sec) in sections {
        m.out.extend(sec);
    }
    m.scalars.insert("n".into(), m.out.len() as i64);
    // Lastprivate: the sequential final value of a privatized tmp is the
    // last iteration's copy.
    let final_tmps = last_tmps.get(&(TRIP - 1)).copied().unwrap_or(tmp_init);
    for (t, &v) in final_tmps.iter().enumerate() {
        m.scalars.insert(tmp_name(t), v);
    }
    m
}

/// Normalize: sequential runs always record every scalar; parallel runs
/// only record scalars the ops actually touch. Compare on the touched
/// set.
fn compare(ops: &[Op], seq: &Memory, par: &Memory) {
    assert_eq!(seq.arrays, par.arrays, "array state diverged");
    assert_eq!(seq.out, par.out, "compaction output diverged");
    for (name, v) in &par.scalars {
        // Only compare temps some op actually writes; untouched temps
        // are implementation detail of the harness.
        let tmp_written = ops
            .iter()
            .any(|o| matches!(o, Op::Load { tmp, .. } if tmp_name(*tmp) == *name));
        if name.starts_with('t') && !tmp_written {
            continue;
        }
        assert_eq!(seq.scalars.get(name), Some(v), "scalar `{name}` diverged");
    }
}

/// Adversarial iteration orders: reversed, odds-then-evens, and a
/// middle-out interleave.
fn orders() -> Vec<Vec<i64>> {
    let natural: Vec<i64> = (0..TRIP).collect();
    let reversed: Vec<i64> = natural.iter().rev().copied().collect();
    let odds_evens: Vec<i64> = natural
        .iter()
        .filter(|i| *i % 2 == 1)
        .chain(natural.iter().filter(|i| *i % 2 == 0))
        .copied()
        .collect();
    let mut middle_out: Vec<i64> = Vec::new();
    let (mut lo, mut hi) = (0i64, TRIP - 1);
    while lo <= hi {
        middle_out.push(hi);
        if lo != hi {
            middle_out.push(lo);
        }
        lo += 1;
        hi -= 1;
    }
    vec![reversed, odds_evens, middle_out]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// EXEC SOUNDNESS: every parallel verdict executes bit-identically
    /// under the emitted plan, in every adversarial order.
    #[test]
    fn parallel_verdicts_execute_bit_identically(
        ops in proptest::collection::vec(arb_op(), 1..6)
    ) {
        let l = lower(&ops);
        let dv = analyze_loop_dataflow(&l, &DataflowOptions::new(1));
        if dv.verdict.parallel {
            let seq = run_sequential(&ops);
            for order in orders() {
                let par = run_parallel(&ops, &order);
                compare(&ops, &seq, &par);
            }
        }
    }

    /// MONOTONICITY: the dataflow pass never loses a loop the
    /// conservative pass already proved parallel.
    #[test]
    fn dataflow_pass_subsumes_conservative(
        ops in proptest::collection::vec(arb_op(), 1..6)
    ) {
        let l = lower(&ops);
        if analyze_loop(&l).parallel {
            let dv = analyze_loop_dataflow(&l, &DataflowOptions::new(1));
            prop_assert!(dv.verdict.parallel, "dataflow pass regressed: {dv:?}");
        }
    }

    /// HONESTY: a genuinely carried scalar is always rejected, and the
    /// residual reason is anchored at the carrying statement.
    #[test]
    fn carried_scalars_are_always_rejected(
        base in proptest::collection::vec(arb_op(), 0..4)
    ) {
        let mut ops = base;
        ops.push(Op::Carried);
        let l = lower(&ops);
        let dv = analyze_loop_dataflow(&l, &DataflowOptions::new(1));
        prop_assert!(!dv.verdict.parallel);
        prop_assert!(
            dv.verdict.reasons.iter().any(|r| r.to_string().contains("carried")),
            "{:?}", dv.verdict.reasons
        );
    }
}

/// The benchmark-shaped idioms, pinned (not property-generated): the
/// exact Program 1 shape — compaction over a count reduction — executes
/// bit-identically.
#[test]
fn program1_shaped_compaction_executes_bit_identically() {
    let ops = vec![
        Op::Compact { salt: 17, keep: 2 },
        Op::Reduce {
            slot: 0,
            op: ReduceOp::Sum,
            salt: 5,
        },
    ];
    let l = lower(&ops);
    let dv = analyze_loop_dataflow(&l, &DataflowOptions::new(1));
    assert!(dv.verdict.parallel, "{dv:?}");
    assert_eq!(dv.compactions, vec![("out".to_string(), "n".to_string())]);
    let seq = run_sequential(&ops);
    for order in orders() {
        compare(&ops, &seq, &run_parallel(&ops, &order));
    }
}

/// Privatized-temporary shape (Program 3's cleared obstacle, scalar
/// form): load-then-store through a temp.
#[test]
fn privatized_temp_executes_bit_identically() {
    let ops = vec![
        Op::Store {
            array: 0,
            scale: 1,
            offset: 0,
            salt: 31,
        },
        Op::Load {
            tmp: 0,
            array: 0,
            scale: 1,
            offset: 0,
        },
        Op::StoreTmp {
            tmp: 0,
            array: 1,
            scale: 1,
            offset: 0,
        },
    ];
    let l = lower(&ops);
    let dv = analyze_loop_dataflow(&l, &DataflowOptions::new(1));
    assert!(dv.verdict.parallel, "{dv:?}");
    assert!(dv.privatized_scalars.contains(&"t0".to_string()));
    let seq = run_sequential(&ops);
    for order in orders() {
        compare(&ops, &seq, &run_parallel(&ops, &order));
    }
}
