//! Soundness of the dependence analyzer, checked by brute force.
//!
//! The one property an auto-parallelizing compiler must never violate:
//! if it declares a loop parallel, no two distinct iterations may touch
//! the same array element with at least one write. For affine programs
//! over a small iteration domain this is decidable by enumeration, so we
//! generate random affine loops and verify every "parallel" verdict
//! against the enumerated ground truth.
//!
//! (The converse — rejecting loops that are actually independent — is
//! allowed: the analyzer is conservative, exactly like the compilers in
//! the paper.)

use autopar::reduction::{analyze_loop_dataflow, DataflowOptions};
use autopar::{analyze_loop, ArrayRef, Expr, LoopNest, Stmt};
use proptest::prelude::*;
use std::collections::HashMap;

const TRIP: i64 = 12; // iteration domain 0..TRIP

#[derive(Debug, Clone)]
struct GenAccess {
    array: usize,
    scale: i64,
    offset: i64,
    write: bool,
}

fn arb_access() -> impl Strategy<Value = GenAccess> {
    (0usize..2, -3i64..4, -10i64..10, any::<bool>()).prop_map(|(array, scale, offset, write)| {
        GenAccess {
            array,
            scale,
            offset,
            write,
        }
    })
}

fn build_loop(accesses: &[GenAccess]) -> LoopNest {
    let mut stmt = Stmt::new("generated");
    for a in accesses {
        stmt.arrays.push(ArrayRef {
            array: format!("arr{}", a.array),
            indices: vec![Expr::Affine {
                var: "i".into(),
                scale: a.scale,
                offset: a.offset,
            }],
            write: a.write,
        });
    }
    LoopNest::new("for i (generated)", "i").stmt(stmt)
}

/// Ground truth: does any pair of accesses conflict across distinct
/// iterations of `0..TRIP`?
fn has_cross_iteration_conflict(accesses: &[GenAccess]) -> bool {
    // address map: (array, element) -> iterations that write / touch it
    let mut writes: HashMap<(usize, i64), Vec<i64>> = HashMap::new();
    let mut touches: HashMap<(usize, i64), Vec<i64>> = HashMap::new();
    for i in 0..TRIP {
        for a in accesses {
            let addr = (a.array, a.scale * i + a.offset);
            touches.entry(addr).or_default().push(i);
            if a.write {
                writes.entry(addr).or_default().push(i);
            }
        }
    }
    for (addr, ws) in &writes {
        for &w in ws {
            if touches[addr].iter().any(|&t| t != w) {
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// SOUNDNESS: a "parallel" verdict implies no enumerated conflict.
    #[test]
    fn parallel_verdicts_are_sound(accesses in proptest::collection::vec(arb_access(), 1..5)) {
        let verdict = analyze_loop(&build_loop(&accesses));
        if verdict.parallel {
            prop_assert!(
                !has_cross_iteration_conflict(&accesses),
                "analyzer declared parallel but iterations conflict: {accesses:?}"
            );
        }
    }

    /// COMPLETENESS on the easy fragment: identity subscripts with all
    /// distinct arrays must always parallelize (this is what the era's
    /// compilers handled — the paper's Fortran-matrix caveat).
    #[test]
    fn simple_disjoint_identity_loops_parallelize(n_arrays in 1usize..4) {
        let accesses: Vec<GenAccess> = (0..n_arrays)
            .map(|k| GenAccess { array: k, scale: 1, offset: 0, write: k == 0 })
            .collect();
        let mut stmt = Stmt::new("ident");
        for a in &accesses {
            stmt.arrays.push(ArrayRef {
                array: format!("uniq{}", a.array),
                indices: vec![Expr::var("i")],
                write: a.write,
            });
        }
        let verdict = analyze_loop(&LoopNest::new("for i", "i").stmt(stmt));
        prop_assert!(verdict.parallel, "{verdict:?}");
    }

    /// Pragmas always win, whatever the body (the paper's escape hatch).
    #[test]
    fn pragma_always_parallelizes(accesses in proptest::collection::vec(arb_access(), 1..5)) {
        let mut l = build_loop(&accesses);
        l.pragma_parallel = true;
        let verdict = analyze_loop(&l);
        prop_assert!(verdict.parallel && verdict.by_pragma);
    }

    /// SOUNDNESS of the dataflow pass on the same fragment: the stronger
    /// analyzer clears more obstacles, but on plain affine loops it must
    /// still never declare a conflicting loop parallel.
    #[test]
    fn dataflow_parallel_verdicts_are_sound(accesses in proptest::collection::vec(arb_access(), 1..5)) {
        let dv = analyze_loop_dataflow(&build_loop(&accesses), &DataflowOptions::new(1));
        if dv.verdict.parallel {
            prop_assert!(
                !has_cross_iteration_conflict(&accesses),
                "dataflow pass declared parallel but iterations conflict: {accesses:?}"
            );
        }
    }

    /// MONOTONICITY: the dataflow pass accepts everything the
    /// conservative pass accepts.
    #[test]
    fn dataflow_subsumes_conservative(accesses in proptest::collection::vec(arb_access(), 1..5)) {
        let l = build_loop(&accesses);
        if analyze_loop(&l).parallel {
            prop_assert!(
                analyze_loop_dataflow(&l, &DataflowOptions::new(1)).verdict.parallel
            );
        }
    }
}
