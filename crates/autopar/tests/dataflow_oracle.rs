//! The parallel SCC-DAG dataflow solve is BIT-IDENTICAL to the sequential
//! worklist solver — the oracle property (ISSUE 10).
//!
//! The least fixpoint of a union/monotone dataflow problem is unique, and
//! the bitset representation is canonical, so any sound schedule must
//! land on exactly the same bits. We check it two ways: on random raw
//! graphs with random gen/kill sets (driving `solve_union_dataflow`
//! directly), and on random loop nests end-to-end through `solve` (both
//! analyses, CFG construction included), at 1 / 2 / 8 workers.

use autopar::dataflow::{solve, solve_sequential, solve_union_dataflow, BitSet};
use autopar::{LoopNest, Stmt};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

#[derive(Debug, Clone)]
struct RawProblem {
    n: usize,
    nbits: usize,
    edges: Vec<(usize, usize)>,
    gen_bits: Vec<Vec<usize>>,
    kill_bits: Vec<Vec<usize>>,
}

fn arb_raw_problem() -> impl Strategy<Value = RawProblem> {
    (1usize..16, 1usize..80).prop_flat_map(|(n, nbits)| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 3);
        let gen_bits =
            proptest::collection::vec(proptest::collection::vec(0..nbits, 0..5.min(nbits)), n..=n);
        let kill_bits =
            proptest::collection::vec(proptest::collection::vec(0..nbits, 0..5.min(nbits)), n..=n);
        (edges, gen_bits, kill_bits).prop_map(move |(edges, gen_bits, kill_bits)| RawProblem {
            n,
            nbits,
            edges,
            gen_bits,
            kill_bits,
        })
    })
}

fn solve_raw(p: &RawProblem, workers: usize) -> (Vec<BitSet>, Vec<BitSet>) {
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); p.n];
    for &(a, b) in &p.edges {
        if !succs[a].contains(&b) {
            succs[a].push(b);
        }
    }
    let mk = |bits: &[Vec<usize>]| -> Vec<BitSet> {
        bits.iter()
            .map(|is| {
                let mut s = BitSet::new(p.nbits);
                for &i in is {
                    s.insert(i);
                }
                s
            })
            .collect()
    };
    solve_union_dataflow(
        &succs,
        &mk(&p.gen_bits),
        &mk(&p.kill_bits),
        p.nbits,
        workers,
    )
}

/// A small random loop nest: statements with reads/writes over a fixed
/// scalar pool, at up to three nesting levels.
fn arb_loop() -> impl Strategy<Value = LoopNest> {
    const POOL: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
    let stmt = (
        proptest::collection::vec(0usize..POOL.len(), 0..3),
        proptest::collection::vec(0usize..POOL.len(), 0..3),
    )
        .prop_map(|(reads, writes)| {
            let mut s = Stmt::new("gen");
            s.reads = reads.iter().map(|&i| POOL[i].to_string()).collect();
            s.writes = writes.iter().map(|&i| POOL[i].to_string()).collect();
            s
        });
    proptest::collection::vec((stmt, 0usize..3), 1..8).prop_map(|items| {
        // depth 0 statements go in the outer loop, 1 in a middle nest,
        // 2 in an inner nest — enough shape variety to exercise multiple
        // back edges.
        let mut outer = LoopNest::new("outer", "i");
        let mut mid = LoopNest::new("mid", "j");
        let mut inner = LoopNest::new("inner", "k");
        for (s, depth) in items {
            match depth {
                0 => outer = outer.stmt(s),
                1 => mid = mid.stmt(s),
                _ => inner = inner.stmt(s),
            }
        }
        if !inner.body.is_empty() {
            mid = mid.nest(inner);
        }
        if !mid.body.is_empty() {
            outer = outer.nest(mid);
        }
        outer
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw graphs: every worker count lands on the same bits.
    #[test]
    fn parallel_raw_solve_matches_sequential(p in arb_raw_problem()) {
        let oracle = solve_raw(&p, 1);
        for &w in &WORKER_COUNTS[1..] {
            prop_assert_eq!(&solve_raw(&p, w), &oracle, "{} workers", w);
        }
    }

    /// End-to-end on loop nests: CFG + both analyses, all worker counts.
    #[test]
    fn parallel_loop_facts_match_sequential(l in arb_loop()) {
        let oracle = solve_sequential(&l);
        for &w in &WORKER_COUNTS {
            prop_assert_eq!(&solve(&l, w), &oracle, "{} workers", w);
        }
    }
}

/// The benchmark encodings themselves, as a fixed regression.
#[test]
fn benchmark_loops_solve_identically_at_all_worker_counts() {
    for l in autopar::programs::benchmark_loops() {
        let oracle = solve_sequential(&l);
        for &w in &WORKER_COUNTS {
            assert_eq!(solve(&l, w), oracle, "{w} workers on {}", l.label);
        }
    }
}
