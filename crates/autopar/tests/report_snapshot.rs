//! Snapshot of the canal-style report text for Program 2 (ISSUE 10
//! satellite): the verdicts must carry statement/line provenance of the
//! blocking dependence, and the exact wording is part of the crate's
//! contract with `docs/AUTOPAR.md` (whose rows cite these statements).

use autopar::analyze_loop;
use autopar::programs;
use autopar::reduction::{analyze_loop_dataflow, DataflowOptions};

const P2_STMT: &str = "intervals[chunk][num_intervals[chunk]] = ...; num_intervals[chunk]++";

/// The conservative (1998) pass on Program 2: rejected, and the report
/// names the exact statement whose call chain blocks analysis.
#[test]
fn program2_conservative_report_text_is_pinned() {
    let verdict = analyze_loop(&programs::program2_threat_chunked(false));
    let expected = format!(
        "for chunk (Program 2, multithreaded Threat Analysis): NOT parallelized\n\
         \x20   - call to `first_intercept_time` cannot be analyzed (separate compilation / pointers) [line 14: `{P2_STMT}`]\n\
         \x20   - call to `last_intercept_time` cannot be analyzed (separate compilation / pointers) [line 14: `{P2_STMT}`]\n"
    );
    assert_eq!(verdict.to_string(), expected);
}

/// The dataflow pass on the same loop: parallel without a pragma, with
/// both calls cleared by purity summaries — the living table's headline
/// improvement over the paper.
#[test]
fn program2_dataflow_report_text_is_pinned() {
    let v = analyze_loop_dataflow(
        &programs::program2_threat_chunked(false),
        &DataflowOptions::benchmark(1),
    );
    let text = v.to_string();
    assert!(
        text.starts_with(
            "for chunk (Program 2, multithreaded Threat Analysis): PARALLEL (proved independent)\n"
        ),
        "{text}"
    );
    assert!(
        text.contains("call to `first_intercept_time` cleared by purity summary"),
        "{text}"
    );
    assert!(
        text.contains("call to `last_intercept_time` cleared by purity summary"),
        "{text}"
    );
    assert!(text.contains(&format!("[line 14: `{P2_STMT}`]")), "{text}");
}

/// Program 4's residual rejection names `next_threat` and its statement —
/// honesty with provenance.
#[test]
fn program4_residual_reason_carries_provenance() {
    let v = analyze_loop_dataflow(
        &programs::program4_terrain_coarse(false),
        &DataflowOptions::benchmark(1),
    );
    let text = v.verdict.to_string();
    assert!(
        text.contains(
            "scalar `next_threat` is written by every iteration (carried dependence) \
             [line 4: `threat = next unprocessed threat`]"
        ),
        "{text}"
    );
}
