//! Tarjan strongly-connected-component decomposition and the condensation
//! DAG used to schedule the dataflow solve.
//!
//! The worklist solver in [`crate::dataflow`] iterates equations to a
//! fixpoint; every cycle of the graph lives inside one SCC, so the
//! condensation (one node per SCC) is acyclic and can be *scheduled*: once
//! every predecessor SCC has reached its final values, an SCC's own local
//! fixpoint equals the restriction of the global fixpoint to its nodes.
//! That is the invariant the parallel solver exploits — SCCs are grouped
//! into topological levels, each level solved concurrently over
//! `sthreads::par_map`, with a barrier between levels so a component never
//! reads a predecessor that is still iterating.

/// Strongly connected components of a directed graph given as adjacency
/// lists, in **reverse topological order** of the condensation (Tarjan's
/// natural emission order: every edge between distinct components goes
/// from a later-emitted component to an earlier-emitted one). Node order
/// inside each component follows stack pop order and is deterministic for
/// a given graph.
pub fn tarjan(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    // Iterative DFS: each frame is (node, next child position) so deep
    // graphs cannot overflow the call stack.
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < succs[v].len() {
                let w = succs[v][*child];
                *child += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// The condensation of a graph: its SCCs plus the acyclic edges between
/// them, with a topological level assignment.
#[derive(Debug, Clone)]
pub struct SccDag {
    /// Component index of every node.
    pub comp_of: Vec<usize>,
    /// Node lists per component (reverse topological component order, as
    /// emitted by [`tarjan`]).
    pub comps: Vec<Vec<usize>>,
    /// Condensation edges: distinct successor components of each
    /// component, deduplicated, in first-encounter order.
    pub succs: Vec<Vec<usize>>,
}

impl SccDag {
    /// Decompose `succs` into its condensation.
    pub fn build(succs: &[Vec<usize>]) -> Self {
        let comps = tarjan(succs);
        let mut comp_of = vec![0usize; succs.len()];
        for (c, nodes) in comps.iter().enumerate() {
            for &v in nodes {
                comp_of[v] = c;
            }
        }
        let mut dag_succs: Vec<Vec<usize>> = vec![Vec::new(); comps.len()];
        for (v, outs) in succs.iter().enumerate() {
            let cv = comp_of[v];
            for &w in outs {
                let cw = comp_of[w];
                if cw != cv && !dag_succs[cv].contains(&cw) {
                    dag_succs[cv].push(cw);
                }
            }
        }
        SccDag {
            comp_of,
            comps,
            succs: dag_succs,
        }
    }

    /// Topological levels of the condensation: level 0 holds components
    /// with no condensation predecessors; every edge goes from a lower
    /// level to a strictly higher one. Components within a level are
    /// mutually unreachable, which is what makes a level-parallel solve
    /// with a barrier between levels race-free *and* deterministic.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let n = self.comps.len();
        let mut level = vec![0usize; n];
        // tarjan emits reverse topological order, so iterating components
        // from last to first visits every predecessor before its
        // successors.
        for c in (0..n).rev() {
            for &s in &self.succs[c] {
                level[s] = level[s].max(level[c] + 1);
            }
        }
        let max_level = level.iter().copied().max().map_or(0, |m| m + 1);
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); max_level];
        // Deterministic within-level order: descending component index,
        // i.e. condensation-topological order as emitted by tarjan.
        for c in (0..n).rev() {
            out[level[c]].push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_component() {
        // 0 -> 1 -> 2 -> 0
        let g = vec![vec![1], vec![2], vec![0]];
        let comps = tarjan(&g);
        assert_eq!(comps.len(), 1);
        let mut nodes = comps[0].clone();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2]);
    }

    #[test]
    fn dag_yields_singletons_in_reverse_topo_order() {
        // 0 -> 1 -> 2
        let g = vec![vec![1], vec![2], vec![]];
        let comps = tarjan(&g);
        assert_eq!(comps, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn condensation_levels_respect_edges() {
        // Two 2-cycles joined by an edge plus an isolated node:
        // {0,1} -> {2,3},  4 isolated.
        let g = vec![vec![1], vec![0, 2], vec![3], vec![2], vec![]];
        let dag = SccDag::build(&g);
        assert_eq!(dag.comps.len(), 3);
        let levels = dag.levels();
        let level_of = |node: usize| {
            let c = dag.comp_of[node];
            levels.iter().position(|l| l.contains(&c)).unwrap()
        };
        assert!(level_of(0) < level_of(2), "edge must cross levels upward");
        assert_eq!(level_of(0), level_of(1), "cycle stays in one component");
        assert_eq!(level_of(4), 0, "isolated node has no predecessors");
    }

    #[test]
    fn every_edge_goes_to_a_strictly_higher_level() {
        // A denser random-ish fixed graph.
        let g = vec![
            vec![1, 4],
            vec![2],
            vec![0, 3],
            vec![5],
            vec![5, 3],
            vec![6],
            vec![5], // 5 <-> 6 cycle
            vec![],
        ];
        let dag = SccDag::build(&g);
        let levels = dag.levels();
        let mut level_of_comp = vec![0usize; dag.comps.len()];
        for (i, l) in levels.iter().enumerate() {
            for &c in l {
                level_of_comp[c] = i;
            }
        }
        for (c, outs) in dag.succs.iter().enumerate() {
            for &s in outs {
                assert!(level_of_comp[s] > level_of_comp[c], "{c} -> {s}");
            }
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        assert!(tarjan(&[]).is_empty());
        assert!(SccDag::build(&[]).levels().is_empty());
    }
}
