//! The dataflow-based analyzer: what a stronger-than-1998 compiler proves
//! on top of the conservative dependence test.
//!
//! Where [`crate::deps::analyze_loop`] reproduces the paper's compilers —
//! every obstacle is a rejection — this pass consumes the solved
//! [`crate::dataflow::Facts`] and *clears* the obstacles that modern
//! analysis handles, recording each clearing with statement provenance:
//!
//! * **reductions** — a shared scalar touched only by consistent
//!   associative updates (`x = x op e`) parallelizes by privatizing per
//!   worker and combining partials; [`crate::ir::ReduceOp::Count`]
//!   counters additionally may appear as store subscripts, feeding the
//!   compaction recognizer;
//! * **scalar privatization** — a written scalar that liveness proves
//!   defined-before-used in every iteration (not live at loop entry, so
//!   nothing flows around the back edge) gets a per-iteration copy, with
//!   the last iteration's value copied out;
//! * **array privatization** — a declared-scratch array whose every read
//!   is covered by an earlier same-iteration write with identical
//!   subscripts;
//! * **compaction** — the `out[count++] = v` idiom: a write-only array
//!   subscripted by a recognized count reduction in the same statement
//!   that bumps it fills disjoint slots, and per-worker sections
//!   concatenated in iteration order reproduce the sequential output
//!   exactly;
//! * **pure calls** — an interprocedural [`Summaries`] table clears calls
//!   the loop-local analysis must otherwise treat as opaque.
//!
//! Everything the pass cannot clear stays a [`Reason`] with the exact
//! blocking statement — the honesty requirement: Programs 3 and 4 keep
//! their genuinely carried dependences.

use crate::dataflow::{self, Facts};
use crate::deps;
use crate::ir::{ArrayRef, Expr, LoopNest, ReduceOp, Reduction, Stmt};
use crate::report::{ClearedKind, Clearing, LoopVerdict, Reason, ReasonKind, Report};
use std::collections::{BTreeMap, BTreeSet};

/// Interprocedural purity summaries: callee name → why the call is safe
/// inside a parallel loop (no writes to shared state, result depends only
/// on arguments and read-only globals).
///
/// Loop-local analysis cannot see across separate compilation — the
/// paper's compilers rejected every call-containing loop for exactly that
/// reason. A summary table is the minimal interprocedural fact base that
/// fixes it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summaries {
    entries: BTreeMap<String, String>,
}

impl Summaries {
    /// No summaries: every call stays opaque (the 1998 stance).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Summaries for the benchmark kernels' callees, derived from the
    /// actual Rust implementations in `crates/c3i` (which read scenario
    /// state and return values without touching shared mutables).
    pub fn benchmark() -> Self {
        let mut s = Self::empty();
        s.add(
            "first_intercept_time",
            "reads threat/weapon state only, returns a time",
        );
        s.add(
            "last_intercept_time",
            "reads threat/weapon state only, returns a time",
        );
        s.add(
            "max_safe_altitude",
            "pure function of threat position and the read-only terrain grid",
        );
        s
    }

    /// Record that `name` is safe to call from a parallel loop.
    pub fn add(&mut self, name: &str, why: &str) {
        self.entries.insert(name.to_string(), why.to_string());
    }

    /// Why `name` is pure, if summarized.
    pub fn why(&self, name: &str) -> Option<&str> {
        self.entries.get(name).map(String::as_str)
    }
}

/// Capabilities and resources of the dataflow pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowOptions {
    /// Interprocedural purity summaries.
    pub summaries: Summaries,
    /// Workers for the SCC-DAG parallel solve (`<= 1` = sequential
    /// worklist oracle; results are bit-identical either way).
    pub n_workers: usize,
}

impl DataflowOptions {
    /// No summaries (calls stay opaque), solved with `n_workers`.
    pub fn new(n_workers: usize) -> Self {
        DataflowOptions {
            summaries: Summaries::empty(),
            n_workers,
        }
    }

    /// Benchmark-callee summaries, solved with `n_workers`.
    pub fn benchmark(n_workers: usize) -> Self {
        DataflowOptions {
            summaries: Summaries::benchmark(),
            n_workers,
        }
    }
}

/// The dataflow pass's verdict on one loop: the base verdict plus every
/// obstacle the analysis cleared and the facts the emission pass needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowVerdict {
    /// Parallel / rejected, with residual reasons (statement-anchored).
    pub verdict: LoopVerdict,
    /// Obstacles cleared, in discovery order, with statement provenance.
    pub clearings: Vec<Clearing>,
    /// Recognized reductions (privatize + combine partials).
    pub reductions: Vec<Reduction>,
    /// Scalars proved privatizable (defined before used each iteration).
    pub privatized_scalars: Vec<String>,
    /// Scratch arrays proved privatizable.
    pub privatized_arrays: Vec<String>,
    /// Recognized compactions as `(array, counter)` pairs.
    pub compactions: Vec<(String, String)>,
    /// Calls cleared by purity summaries.
    pub cleared_calls: Vec<String>,
}

impl std::fmt::Display for DataflowVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.verdict)?;
        for c in &self.clearings {
            writeln!(f, "    + {c}")?;
        }
        Ok(())
    }
}

/// The dataflow pass over a set of loops, mirroring [`Report`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataflowReport {
    /// Verdicts, program order.
    pub verdicts: Vec<DataflowVerdict>,
}

impl DataflowReport {
    /// Loops parallelized without a pragma.
    pub fn auto_parallel_count(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| v.verdict.parallel && !v.verdict.by_pragma)
            .count()
    }

    /// Whether this pass parallelizes a strict superset of the loops the
    /// conservative pass did (same loop order assumed): nothing lost, at
    /// least one gained.
    pub fn strictly_improves(&self, conservative: &Report) -> bool {
        if self.verdicts.len() != conservative.verdicts.len() {
            return false;
        }
        let no_regression = self
            .verdicts
            .iter()
            .zip(&conservative.verdicts)
            .all(|(d, c)| d.verdict.parallel || !c.parallel);
        let gained = self
            .verdicts
            .iter()
            .zip(&conservative.verdicts)
            .any(|(d, c)| d.verdict.parallel && !c.parallel);
        no_regression && gained
    }
}

impl std::fmt::Display for DataflowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "dataflow parallelization report ({} loops analyzed)",
            self.verdicts.len()
        )?;
        for v in &self.verdicts {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Is `w`, across the whole loop body, a well-formed reduction? Returns
/// the operator and the statement anchoring the clearing.
///
/// Requirements: every statement writing or reading `w` carries a
/// matching reduction annotation with one consistent operator (the
/// self-read of `x = x op e` is the only permitted read); `w` never
/// appears as a subscript — except a [`ReduceOp::Count`] counter, whose
/// intermediate values may appear, but only as *store* subscripts in the
/// same statement that bumps the counter (the `out[count++] = v` idiom
/// the compaction recognizer then validates on the array side).
fn recognized_reduction<'a>(w: &str, stmts: &'a [Stmt]) -> Option<(ReduceOp, &'a Stmt)> {
    let mut op: Option<ReduceOp> = None;
    let mut anchor: Option<&Stmt> = None;
    // First pass: operator consistency and no stray touches.
    for s in stmts {
        match s.reductions.iter().find(|r| r.name == w) {
            Some(r) => {
                if op.is_some_and(|o| o != r.op) {
                    return None; // mixed operators do not combine
                }
                op = Some(r.op);
                anchor.get_or_insert(s);
                if !s.writes.iter().any(|x| x == w) {
                    return None; // malformed annotation: reduction without write
                }
            }
            None => {
                if s.writes.iter().any(|x| x == w) || s.reads.iter().any(|x| x == w) {
                    return None; // touched outside the reduction idiom
                }
            }
        }
    }
    let op = op?;
    // Second pass: subscript appearances of the scalar.
    for s in stmts {
        for a in &s.arrays {
            if a.indices.iter().any(|e| e.opaque_scalar() == Some(w)) {
                let is_count_store =
                    op == ReduceOp::Count && a.write && s.writes.iter().any(|x| x == w);
                if !is_count_store {
                    return None; // an intermediate value escapes
                }
            }
        }
    }
    Some((op, anchor?))
}

/// Is scratch array `name` privatizable: every read covered by an earlier
/// same-iteration write with identical subscript expressions?
fn array_privatizable(name: &str, stmts: &[Stmt]) -> bool {
    let mut written: Vec<&Vec<Expr>> = Vec::new();
    let mut any = false;
    for s in stmts {
        // Reads happen before this statement's writes.
        for a in s.arrays.iter().filter(|a| a.array == name && !a.write) {
            if !written.iter().any(|w| **w == a.indices) {
                return false;
            }
        }
        for a in s.arrays.iter().filter(|a| a.array == name && a.write) {
            written.push(&a.indices);
            any = true;
        }
    }
    any
}

/// The counter subscripting `a`, if any dimension is a bare identifier in
/// `counters`.
fn compaction_counter(a: &ArrayRef, counters: &BTreeSet<String>) -> Option<String> {
    a.indices.iter().find_map(|e| {
        e.opaque_scalar()
            .filter(|n| counters.contains(*n))
            .map(str::to_string)
    })
}

/// Analyze one loop with the dataflow pass. See the module docs for what
/// gets cleared; residual obstacles keep statement-level provenance.
pub fn analyze_loop_dataflow(l: &LoopNest, opts: &DataflowOptions) -> DataflowVerdict {
    if l.pragma_parallel {
        return DataflowVerdict {
            verdict: LoopVerdict {
                loop_label: l.label.clone(),
                parallel: true,
                by_pragma: true,
                reasons: Vec::new(),
            },
            clearings: Vec::new(),
            reductions: Vec::new(),
            privatized_scalars: Vec::new(),
            privatized_arrays: Vec::new(),
            compactions: Vec::new(),
            cleared_calls: Vec::new(),
        };
    }

    let facts: Facts = dataflow::solve(l, opts.n_workers);
    let stmts = &facts.cfg.stmts;
    let private: BTreeSet<String> = l.all_private().into_iter().collect();
    let scratch: BTreeSet<String> = l.all_scratch().into_iter().collect();

    let mut clearings: Vec<Clearing> = Vec::new();
    let mut reasons: Vec<Reason> = Vec::new();
    let mut reductions: Vec<Reduction> = Vec::new();
    let mut privatized_scalars: Vec<String> = Vec::new();
    let mut counters: BTreeSet<String> = BTreeSet::new();

    // --- scalars, in order of first write ---
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for s in stmts {
        for w in &s.writes {
            if w == &l.var || private.contains(w) || !seen.insert(w) {
                continue;
            }
            if let Some((op, anchor)) = recognized_reduction(w, stmts) {
                clearings.push(Clearing::at(
                    ClearedKind::Reduction {
                        name: w.clone(),
                        op,
                    },
                    anchor,
                ));
                reductions.push(Reduction {
                    name: w.clone(),
                    op,
                });
                if op == ReduceOp::Count {
                    counters.insert(w.clone());
                }
            } else if !facts.live_at_entry(w) {
                clearings.push(Clearing::at(
                    ClearedKind::PrivatizedScalar { name: w.clone() },
                    s,
                ));
                privatized_scalars.push(w.clone());
            } else {
                reasons.push(Reason::at(
                    ReasonKind::ScalarDependence { name: w.clone() },
                    s,
                ));
            }
        }
    }

    // --- calls ---
    let mut cleared_calls: Vec<String> = Vec::new();
    let mut called: BTreeSet<&str> = BTreeSet::new();
    for s in stmts {
        for c in &s.calls {
            if !called.insert(c) {
                continue;
            }
            match opts.summaries.why(c) {
                Some(why) => {
                    clearings.push(Clearing::at(
                        ClearedKind::PureCall {
                            name: c.clone(),
                            why: why.to_string(),
                        },
                        s,
                    ));
                    cleared_calls.push(c.clone());
                }
                None => reasons.push(Reason::at(ReasonKind::OpaqueCall { name: c.clone() }, s)),
            }
        }
    }

    // --- arrays ---
    // Privatizable scratch arrays first: their references then take no
    // part in conflict testing.
    let mut privatized_arrays: Vec<String> = Vec::new();
    for name in &scratch {
        if array_privatizable(name, stmts) {
            let anchor = stmts
                .iter()
                .find(|s| s.arrays.iter().any(|a| a.array == *name && a.write))
                .expect("privatizable array has a write");
            clearings.push(Clearing::at(
                ClearedKind::PrivatizedArray {
                    array: name.clone(),
                },
                anchor,
            ));
            privatized_arrays.push(name.clone());
        }
    }
    let privatized: BTreeSet<&str> = privatized_arrays.iter().map(String::as_str).collect();

    let mut compactions: Vec<(String, String)> = Vec::new();
    let mut seen_pairs: BTreeSet<(String, String)> = BTreeSet::new();
    for s1 in stmts {
        for a in s1.arrays.iter().filter(|a| a.write) {
            if privatized.contains(a.array.as_str()) {
                continue;
            }
            // Compaction: write-only array, counter-subscripted, bumped in
            // the same statement.
            let write_only = stmts
                .iter()
                .all(|s| s.arrays.iter().all(|r| r.array != a.array || r.write));
            if let Some(counter) = compaction_counter(a, &counters) {
                if write_only && s1.writes.contains(&counter) {
                    if !compactions.contains(&(a.array.clone(), counter.clone())) {
                        clearings.push(Clearing::at(
                            ClearedKind::Compaction {
                                array: a.array.clone(),
                                counter: counter.clone(),
                            },
                            s1,
                        ));
                        compactions.push((a.array.clone(), counter));
                    }
                    continue;
                }
            }
            for s2 in stmts {
                for b in &s2.arrays {
                    if privatized.contains(b.array.as_str()) {
                        continue;
                    }
                    if deps::refs_may_conflict(a, b, &l.var) {
                        let key = (a.array.clone(), format!("{}/{}", s1.label, s2.label));
                        if seen_pairs.insert(key) {
                            let opaque = a.indices.iter().chain(&b.indices).any(|e| {
                                !matches!(e, Expr::Const(_))
                                    && !matches!(e, Expr::Affine { var, .. } if var == &l.var)
                            });
                            reasons.push(if opaque {
                                Reason::at(
                                    ReasonKind::DataDependentSubscript {
                                        array: a.array.clone(),
                                    },
                                    s1,
                                )
                            } else {
                                Reason::at(
                                    ReasonKind::ArrayConflict {
                                        array: a.array.clone(),
                                        with: s2.label.clone(),
                                    },
                                    s1,
                                )
                            });
                        }
                    }
                }
            }
        }
    }

    let mut dedup: Vec<Reason> = Vec::new();
    for r in reasons {
        if !dedup.contains(&r) {
            dedup.push(r);
        }
    }

    DataflowVerdict {
        verdict: LoopVerdict {
            loop_label: l.label.clone(),
            parallel: dedup.is_empty(),
            by_pragma: false,
            reasons: dedup,
        },
        clearings,
        reductions,
        privatized_scalars,
        privatized_arrays,
        compactions,
        cleared_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, LoopNest, Stmt};

    fn df(l: &LoopNest) -> DataflowVerdict {
        analyze_loop_dataflow(l, &DataflowOptions::new(1))
    }

    #[test]
    fn sum_reduction_is_cleared() {
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("sum += a[i]")
                .at(2)
                .reads(&["sum"])
                .writes(&["sum"])
                .reduces(&["sum"])
                .array("a", vec![Expr::var("i")], false),
        );
        let v = df(&l);
        assert!(v.verdict.parallel, "{v}");
        assert_eq!(v.reductions.len(), 1);
        assert!(v.to_string().contains("sum reduction"));
    }

    #[test]
    fn mixed_operator_reduction_is_rejected() {
        let l = LoopNest::new("for i", "i")
            .stmt(
                Stmt::new("x += a[i]")
                    .reads(&["x"])
                    .writes(&["x"])
                    .reduces(&["x"]),
            )
            .stmt(
                Stmt::new("x = min(x, b[i])")
                    .reads(&["x"])
                    .writes(&["x"])
                    .reduces_op("x", ReduceOp::Min),
            );
        let v = df(&l);
        assert!(!v.verdict.parallel, "mixed sum/min cannot combine: {v}");
    }

    #[test]
    fn reduction_read_elsewhere_is_rejected() {
        // sum is read by a non-reduction statement: intermediate observed.
        let l = LoopNest::new("for i", "i")
            .stmt(
                Stmt::new("sum += a[i]")
                    .reads(&["sum"])
                    .writes(&["sum"])
                    .reduces(&["sum"]),
            )
            .stmt(
                Stmt::new("b[i] = sum")
                    .reads(&["sum"])
                    .array("b", vec![Expr::var("i")], true),
            );
        let v = df(&l);
        assert!(!v.verdict.parallel, "{v}");
        assert!(v
            .verdict
            .reasons
            .iter()
            .any(|r| matches!(&r.kind, ReasonKind::ScalarDependence { name } if name == "sum")));
    }

    #[test]
    fn defined_before_used_scalar_is_privatized() {
        let l = LoopNest::new("for i", "i")
            .stmt(
                Stmt::new("t = a[i]")
                    .writes(&["t"])
                    .array("a", vec![Expr::var("i")], false),
            )
            .stmt(
                Stmt::new("b[i] = t")
                    .reads(&["t"])
                    .array("b", vec![Expr::var("i")], true),
            );
        let v = df(&l);
        assert!(v.verdict.parallel, "{v}");
        assert_eq!(v.privatized_scalars, vec!["t".to_string()]);
    }

    #[test]
    fn carried_scalar_stays_rejected_with_provenance() {
        // x read at top, written at bottom: flows around the back edge.
        let l = LoopNest::new("for i", "i")
            .stmt(
                Stmt::new("b[i] = x")
                    .at(4)
                    .reads(&["x"])
                    .array("b", vec![Expr::var("i")], true),
            )
            .stmt(Stmt::new("x = a[i]").at(5).writes(&["x"]).array(
                "a",
                vec![Expr::var("i")],
                false,
            ));
        let v = df(&l);
        assert!(!v.verdict.parallel);
        let text = v.verdict.to_string();
        assert!(text.contains("scalar `x`"), "{text}");
        assert!(text.contains("line 5"), "anchored at the write: {text}");
    }

    #[test]
    fn compaction_idiom_is_cleared() {
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("out[n] = a[i]; n++")
                .reads(&["n"])
                .writes(&["n"])
                .reduces_op("n", ReduceOp::Count)
                .array("out", vec![Expr::Opaque("n".into())], true)
                .array("a", vec![Expr::var("i")], false),
        );
        let v = df(&l);
        assert!(v.verdict.parallel, "{v}");
        assert_eq!(v.compactions, vec![("out".to_string(), "n".to_string())]);
    }

    #[test]
    fn compaction_requires_write_only_array() {
        // Reading back out[] defeats the idiom.
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("out[n] = out[0] + a[i]; n++")
                .reads(&["n"])
                .writes(&["n"])
                .reduces_op("n", ReduceOp::Count)
                .array("out", vec![Expr::Opaque("n".into())], true)
                .array("out", vec![Expr::Const(0)], false),
        );
        let v = df(&l);
        assert!(!v.verdict.parallel, "{v}");
    }

    #[test]
    fn count_counter_as_read_subscript_is_rejected() {
        // Reading in[n] observes the counter's intermediate values.
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("b[i] = in[n]; n++")
                .reads(&["n"])
                .writes(&["n"])
                .reduces_op("n", ReduceOp::Count)
                .array("in", vec![Expr::Opaque("n".into())], false)
                .array("b", vec![Expr::var("i")], true),
        );
        let v = df(&l);
        assert!(!v.verdict.parallel, "{v}");
    }

    #[test]
    fn scratch_array_with_covering_writes_is_privatized() {
        let l = LoopNest::new("for t", "t")
            .scratch(&["tmp"])
            .stmt(Stmt::new("tmp[x][y] = f(t)").array(
                "tmp",
                vec![Expr::Opaque("x".into()), Expr::Opaque("y".into())],
                true,
            ))
            .stmt(
                Stmt::new("out[t] = g(tmp)")
                    .array(
                        "tmp",
                        vec![Expr::Opaque("x".into()), Expr::Opaque("y".into())],
                        false,
                    )
                    .array("out", vec![Expr::var("t")], true),
            );
        let v = df(&l);
        assert!(v.verdict.parallel, "{v}");
        assert_eq!(v.privatized_arrays, vec!["tmp".to_string()]);
    }

    #[test]
    fn scratch_read_before_write_is_not_privatized() {
        // The read precedes any write: last iteration's data flows in.
        let l = LoopNest::new("for t", "t")
            .scratch(&["tmp"])
            .stmt(Stmt::new("out[t] = g(tmp)").array("tmp", vec![Expr::Opaque("x".into())], false))
            .stmt(Stmt::new("tmp[x] = f(t)").array("tmp", vec![Expr::Opaque("x".into())], true));
        let v = df(&l);
        assert!(!v.verdict.parallel, "{v}");
    }

    #[test]
    fn undeclared_scratch_is_never_privatized() {
        // Same shape as the privatizable case but without the scratch
        // declaration: deadness-after-loop is not ours to assume.
        let l = LoopNest::new("for t", "t")
            .stmt(Stmt::new("tmp[x] = f(t)").array("tmp", vec![Expr::Opaque("x".into())], true))
            .stmt(
                Stmt::new("out[t] = g(tmp)")
                    .array("tmp", vec![Expr::Opaque("x".into())], false)
                    .array("out", vec![Expr::var("t")], true),
            );
        assert!(!df(&l).verdict.parallel);
    }

    #[test]
    fn summarized_calls_clear_and_unsummarized_block() {
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("a[i] = f(i) + g(i)").call("f").call("g").array(
                "a",
                vec![Expr::var("i")],
                true,
            ),
        );
        let mut opts = DataflowOptions::new(1);
        opts.summaries.add("f", "pure");
        let v = analyze_loop_dataflow(&l, &opts);
        assert!(!v.verdict.parallel);
        assert_eq!(v.cleared_calls, vec!["f".to_string()]);
        assert!(v
            .verdict
            .reasons
            .iter()
            .any(|r| matches!(&r.kind, ReasonKind::OpaqueCall { name } if name == "g")));

        opts.summaries.add("g", "pure");
        assert!(analyze_loop_dataflow(&l, &opts).verdict.parallel);
    }

    #[test]
    fn pragma_still_overrides() {
        let l = LoopNest::new("for i", "i")
            .pragma()
            .stmt(Stmt::new("anything").writes(&["x"]).call("f"));
        let v = df(&l);
        assert!(v.verdict.parallel && v.verdict.by_pragma);
        assert!(v.clearings.is_empty());
    }

    #[test]
    fn worker_count_does_not_change_the_verdict() {
        let l = crate::programs::program1_threat_sequential();
        let v1 = analyze_loop_dataflow(&l, &DataflowOptions::benchmark(1));
        for w in [2, 8] {
            let vw = analyze_loop_dataflow(&l, &DataflowOptions::benchmark(w));
            assert_eq!(v1, vw, "{w} workers");
        }
    }
}
