//! The bitset dataflow engine: reaching definitions and liveness over the
//! loop-nest IR, solved by a worklist algorithm — sequentially, or in
//! parallel over the SCC DAG of the control-flow graph.
//!
//! # The lattice
//!
//! Both analyses run over a powerset lattice: reaching definitions over
//! the set of *definitions* (one per `(statement, written scalar)` pair),
//! liveness over the set of *scalars*. Sets are [`BitSet`]s, the join is
//! union, and the per-node transfer function is the classic
//! `out = gen ∪ (in − kill)`. Transfer functions are monotone and the
//! lattice has finite height (one bit per definition or scalar), so the
//! worklist iteration terminates at the unique **least fixpoint**.
//! Because the least fixpoint is unique and bitsets are canonical
//! (trailing bits always zero), *any* sound evaluation order produces
//! bit-identical results — the property the SCC-parallel solver's oracle
//! tests pin down.
//!
//! # SCC scheduling invariants
//!
//! The parallel solver decomposes the CFG with [`crate::scc::tarjan`] and
//! schedules the condensation by topological level
//! ([`crate::scc::SccDag::levels`]):
//!
//! 1. every cycle is inside one SCC, so the condensation is acyclic;
//! 2. levels are processed in ascending order with a barrier between
//!    levels, so when an SCC solves, every predecessor SCC's `out` sets
//!    are final;
//! 3. within a level, SCCs are mutually unreachable, so solving them
//!    concurrently (via [`sthreads::par_map`]) is race-free: each task
//!    reads only frozen predecessor state and writes only its own nodes;
//! 4. an SCC iterated to its local fixpoint with final predecessor inputs
//!    equals the restriction of the global least fixpoint to its nodes.
//!
//! Together these make the parallel solve **deterministic and
//! bit-identical** to the sequential worklist at any worker count — the
//! sequential solver is kept as the oracle (`tests/dataflow_oracle.rs`).
//!
//! # The control-flow graph
//!
//! A [`LoopNest`] flattens to one CFG node per statement in program
//! order, with fall-through edges between consecutive statements, a back
//! edge for the outer loop, and one back edge per nested loop span. The
//! back edges are what make iteration-carried facts visible: a scalar
//! read at the top of the body and written at the bottom is live around
//! the back edge, which is exactly the "carried dependence" the
//! conservative pass reports — and the privatization analysis clears when
//! the back edge carries nothing.

use crate::ir::{LoopNest, Node, Stmt};
use std::collections::BTreeMap;

/// A fixed-width bitset over `u64` words. Canonical representation:
/// word count fixed at construction, unused high bits always zero, so
/// `==` is exact set equality and the solver's results are comparable
/// bit-for-bit across evaluation orders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// The empty set over a universe of `nbits` elements.
    pub fn new(nbits: usize) -> Self {
        BitSet {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Number of elements the universe holds.
    pub fn universe(&self) -> usize {
        self.nbits
    }

    /// Insert `i`; returns whether the set changed.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let changed = self.words[w] & b == 0;
        self.words[w] |= b;
        changed
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self ∪= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Whether no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of set elements, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }

    /// `dst = gen ∪ (src − kill)`, the dataflow transfer function;
    /// returns whether `dst` changed.
    pub fn transfer_into(dst: &mut BitSet, src: &BitSet, gen: &BitSet, kill: &BitSet) -> bool {
        let mut changed = false;
        for i in 0..dst.words.len() {
            let next = gen.words[i] | (src.words[i] & !kill.words[i]);
            changed |= next != dst.words[i];
            dst.words[i] = next;
        }
        changed
    }
}

/// One definition: statement `node` writes scalar `scalar`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Def {
    /// CFG node (flattened statement index) of the write.
    pub node: usize,
    /// Scalar id (index into [`Cfg::scalars`]).
    pub scalar: usize,
}

/// The flattened control-flow graph of one loop nest, with the gen/kill
/// sets both analyses consume.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Flattened statements, program order.
    pub stmts: Vec<Stmt>,
    /// Successor lists (fall-through plus loop back edges).
    pub succs: Vec<Vec<usize>>,
    /// Predecessor lists (derived from [`Cfg::succs`]).
    pub preds: Vec<Vec<usize>>,
    /// Scalar universe: every name read, written, or used as an
    /// identifier-shaped opaque subscript, sorted.
    pub scalars: Vec<String>,
    /// Definition universe, in (node, scalar) order.
    pub defs: Vec<Def>,
    /// Per-node reaching-defs gen sets (over defs).
    pub gen_rd: Vec<BitSet>,
    /// Per-node reaching-defs kill sets (over defs).
    pub kill_rd: Vec<BitSet>,
    /// Per-node liveness use sets (over scalars). Reads are taken to
    /// happen before writes within a statement, so `x = x + 1` uses `x`.
    pub use_lv: Vec<BitSet>,
    /// Per-node liveness def sets (over scalars).
    pub def_lv: Vec<BitSet>,
}

impl Cfg {
    /// Flatten a loop nest into its CFG.
    pub fn from_loop(l: &LoopNest) -> Cfg {
        // Flatten statements and record (first, last) node spans for the
        // outer loop and every nested loop, to place back edges.
        let mut stmts: Vec<Stmt> = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new();
        fn walk(nodes: &[Node], stmts: &mut Vec<Stmt>, spans: &mut Vec<(usize, usize)>) {
            for n in nodes {
                match n {
                    Node::Stmt(s) => stmts.push(s.clone()),
                    Node::Loop(inner) => {
                        let first = stmts.len();
                        walk(&inner.body, stmts, spans);
                        if stmts.len() > first {
                            spans.push((first, stmts.len() - 1));
                        }
                    }
                }
            }
        }
        let first = 0usize;
        walk(&l.body, &mut stmts, &mut spans);
        if !stmts.is_empty() {
            spans.push((first, stmts.len() - 1)); // the analyzed loop itself
        }
        let n = stmts.len();

        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, outs) in succs.iter_mut().enumerate().take(n.saturating_sub(1)) {
            outs.push(i + 1);
        }
        for &(lo, hi) in &spans {
            if !succs[hi].contains(&lo) {
                succs[hi].push(lo);
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (v, outs) in succs.iter().enumerate() {
            for &w in outs {
                preds[w].push(v);
            }
        }

        // Scalar universe.
        let mut scalar_id: BTreeMap<String, usize> = BTreeMap::new();
        for s in &stmts {
            for name in s.reads.iter().chain(&s.writes) {
                let next = scalar_id.len();
                scalar_id.entry(name.clone()).or_insert(next);
            }
            for a in &s.arrays {
                for e in &a.indices {
                    if let Some(name) = e.opaque_scalar() {
                        let next = scalar_id.len();
                        scalar_id.entry(name.to_string()).or_insert(next);
                    }
                }
            }
        }
        // BTreeMap iteration is sorted; re-number densely in sorted order
        // so scalar ids are independent of statement order.
        let scalars: Vec<String> = scalar_id.keys().cloned().collect();
        let scalar_id: BTreeMap<&str, usize> = scalars
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i))
            .collect();

        // Definition universe.
        let mut defs: Vec<Def> = Vec::new();
        for (node, s) in stmts.iter().enumerate() {
            for w in &s.writes {
                defs.push(Def {
                    node,
                    scalar: scalar_id[w.as_str()],
                });
            }
        }

        // Gen/kill.
        let nd = defs.len();
        let ns = scalars.len();
        let mut gen_rd = vec![BitSet::new(nd); n];
        let mut kill_rd = vec![BitSet::new(nd); n];
        let mut use_lv = vec![BitSet::new(ns); n];
        let mut def_lv = vec![BitSet::new(ns); n];
        for (node, s) in stmts.iter().enumerate() {
            for (d, def) in defs.iter().enumerate() {
                let here = def.node == node;
                if here {
                    gen_rd[node].insert(d);
                }
                // A write to the same scalar elsewhere is killed here.
                if !here && s.writes.iter().any(|w| scalar_id[w.as_str()] == def.scalar) {
                    kill_rd[node].insert(d);
                }
            }
            for r in &s.reads {
                use_lv[node].insert(scalar_id[r.as_str()]);
            }
            for a in &s.arrays {
                for e in &a.indices {
                    if let Some(name) = e.opaque_scalar() {
                        use_lv[node].insert(scalar_id[name]);
                    }
                }
            }
            for w in &s.writes {
                def_lv[node].insert(scalar_id[w.as_str()]);
            }
        }

        Cfg {
            stmts,
            succs,
            preds,
            scalars,
            defs,
            gen_rd,
            kill_rd,
            use_lv,
            def_lv,
        }
    }

    /// Id of a scalar name, if it appears in the loop at all.
    pub fn scalar_id(&self, name: &str) -> Option<usize> {
        self.scalars.binary_search_by(|s| s.as_str().cmp(name)).ok()
    }

    /// Definition indices writing `scalar`.
    pub fn defs_of(&self, scalar: usize) -> impl Iterator<Item = usize> + '_ {
        self.defs
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.scalar == scalar)
            .map(|(i, _)| i)
    }
}

/// Solve a union/monotone dataflow problem `out = gen ∪ (in − kill)` with
/// `in = ∪ preds' out` over an arbitrary graph. Returns `(in, out)` per
/// node. With `n_workers <= 1` this is the sequential worklist oracle;
/// otherwise the SCC-DAG schedule described in the module docs runs the
/// solve level-parallel over [`sthreads::par_map`]. Both paths compute
/// the same unique least fixpoint, bit for bit.
pub fn solve_union_dataflow(
    succs: &[Vec<usize>],
    gen: &[BitSet],
    kill: &[BitSet],
    nbits: usize,
    n_workers: usize,
) -> (Vec<BitSet>, Vec<BitSet>) {
    let n = succs.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, outs) in succs.iter().enumerate() {
        for &w in outs {
            preds[w].push(v);
        }
    }
    let mut in_sets = vec![BitSet::new(nbits); n];
    let mut out_sets = vec![BitSet::new(nbits); n];

    // Local fixpoint over `nodes`, reading frozen `out` values for
    // predecessors outside the set. `nodes` must be closed under cycles
    // (an SCC, or the whole graph).
    let solve_nodes = |nodes: &[usize], in_sets: &mut [BitSet], out_sets: &mut [BitSet]| {
        let mut queue: std::collections::VecDeque<usize> = nodes.iter().copied().collect();
        let mut queued = vec![false; n];
        for &v in nodes {
            queued[v] = true;
        }
        while let Some(v) = queue.pop_front() {
            queued[v] = false;
            let mut new_in = std::mem::replace(&mut in_sets[v], BitSet::new(0));
            for &p in &preds[v] {
                new_in.union_with(&out_sets[p]);
            }
            in_sets[v] = new_in;
            if BitSet::transfer_into(&mut out_sets[v], &in_sets[v], &gen[v], &kill[v]) {
                for &s in &succs[v] {
                    // Only re-queue nodes we own; out-of-set successors
                    // belong to later levels and have not started.
                    if nodes.contains(&s) && !queued[s] {
                        queued[s] = true;
                        queue.push_back(s);
                    }
                }
            }
        }
    };

    if n_workers <= 1 {
        let all: Vec<usize> = (0..n).collect();
        solve_nodes(&all, &mut in_sets, &mut out_sets);
        return (in_sets, out_sets);
    }

    let dag = crate::scc::SccDag::build(succs);
    for level in dag.levels() {
        // Each task solves one SCC against the frozen global state and
        // returns its nodes' new sets; the merge after the barrier is the
        // only writer of the shared vectors.
        let solved: Vec<Vec<(usize, BitSet, BitSet)>> =
            sthreads::par_map(level.len(), n_workers, sthreads::Schedule::Dynamic, |k| {
                let nodes = &dag.comps[level[k]];
                let mut local_in: Vec<BitSet> = nodes.iter().map(|&v| in_sets[v].clone()).collect();
                let mut local_out: Vec<BitSet> =
                    nodes.iter().map(|&v| out_sets[v].clone()).collect();
                // Local fixpoint restricted to the SCC's nodes.
                let index_of = |v: usize| nodes.iter().position(|&x| x == v);
                let mut changed = true;
                while changed {
                    changed = false;
                    for (li, &v) in nodes.iter().enumerate() {
                        let mut new_in = BitSet::new(nbits);
                        for &p in &preds[v] {
                            match index_of(p) {
                                Some(lp) => new_in.union_with(&local_out[lp]),
                                None => new_in.union_with(&out_sets[p]),
                            };
                        }
                        local_in[li] = new_in;
                        changed |= BitSet::transfer_into(
                            &mut local_out[li],
                            &local_in[li],
                            &gen[v],
                            &kill[v],
                        );
                    }
                }
                nodes
                    .iter()
                    .enumerate()
                    .map(|(li, &v)| (v, local_in[li].clone(), local_out[li].clone()))
                    .collect()
            });
        for comp in solved {
            for (v, i, o) in comp {
                in_sets[v] = i;
                out_sets[v] = o;
            }
        }
    }
    (in_sets, out_sets)
}

/// The solved dataflow facts for one loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct Facts {
    /// The flattened CFG the facts are over.
    pub cfg: Cfg,
    /// Reaching definitions at node entry (over [`Cfg::defs`]).
    pub reach_in: Vec<BitSet>,
    /// Reaching definitions at node exit.
    pub reach_out: Vec<BitSet>,
    /// Live scalars at node entry (over [`Cfg::scalars`]).
    pub live_in: Vec<BitSet>,
    /// Live scalars at node exit.
    pub live_out: Vec<BitSet>,
}

impl Facts {
    /// Whether scalar `name` is live at the loop-body entry — i.e. some
    /// path (necessarily around the back edge, for body-defined scalars)
    /// reads it before any write. A written scalar that is *not* live at
    /// entry is defined before used in every iteration: privatizable.
    pub fn live_at_entry(&self, name: &str) -> bool {
        match (self.cfg.scalar_id(name), self.live_in.first()) {
            (Some(id), Some(set)) => set.contains(id),
            _ => false,
        }
    }
}

impl PartialEq for Cfg {
    fn eq(&self, other: &Self) -> bool {
        // Facts comparison only needs the graphs and universes to agree;
        // statements are compared structurally.
        self.stmts == other.stmts
            && self.succs == other.succs
            && self.scalars == other.scalars
            && self.defs == other.defs
    }
}

/// Solve both analyses for a loop nest. `n_workers <= 1` runs the
/// sequential worklist; more workers run the SCC-DAG parallel schedule.
/// The results are bit-identical either way (see the module docs).
pub fn solve(l: &LoopNest, n_workers: usize) -> Facts {
    let cfg = Cfg::from_loop(l);
    let nd = cfg.defs.len();
    let ns = cfg.scalars.len();
    let (reach_in, reach_out) =
        solve_union_dataflow(&cfg.succs, &cfg.gen_rd, &cfg.kill_rd, nd, n_workers);
    // Liveness is the same union problem on the reversed graph with
    // use/def as gen/kill: live_out[v] = ∪ succ live_in, and
    // live_in = use ∪ (live_out − def). On the reversed graph the
    // engine's `in` is live_out and its `out` is live_in.
    let (live_out, live_in) =
        solve_union_dataflow(&cfg.preds, &cfg.use_lv, &cfg.def_lv, ns, n_workers);
    Facts {
        cfg,
        reach_in,
        reach_out,
        live_in,
        live_out,
    }
}

/// [`solve`] with the sequential worklist only — the oracle the parallel
/// schedule is tested against.
pub fn solve_sequential(l: &LoopNest) -> Facts {
    solve(l, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, LoopNest, Stmt};

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::new(130);
        assert!(a.insert(0));
        assert!(a.insert(129));
        assert!(!a.insert(0));
        assert!(a.contains(129));
        assert!(!a.contains(64));
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 129]);

        let mut b = BitSet::new(130);
        b.insert(64);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 3);
    }

    fn carried_loop() -> LoopNest {
        // for i { y = y + x; x = a[i] } — y's use sees last iteration's
        // def of x around the back edge.
        LoopNest::new("for i", "i")
            .stmt(Stmt::new("y = y + x").reads(&["y", "x"]).writes(&["y"]))
            .stmt(
                Stmt::new("x = a[i]")
                    .writes(&["x"])
                    .array("a", vec![Expr::var("i")], false),
            )
    }

    #[test]
    fn back_edge_carries_defs_and_liveness() {
        let facts = solve_sequential(&carried_loop());
        // x is live at entry (read in node 0, written only in node 1).
        assert!(facts.live_at_entry("x"));
        assert!(facts.live_at_entry("y"));
        // The def of x in node 1 reaches node 0 around the back edge.
        let x = facts.cfg.scalar_id("x").unwrap();
        let def_x: Vec<usize> = facts.cfg.defs_of(x).collect();
        assert_eq!(def_x.len(), 1);
        assert!(facts.reach_in[0].contains(def_x[0]));
    }

    #[test]
    fn def_before_use_is_not_live_at_entry() {
        // for i { t = a[i]; b[i] = t } — t defined before every use.
        let l = LoopNest::new("for i", "i")
            .stmt(
                Stmt::new("t = a[i]")
                    .writes(&["t"])
                    .array("a", vec![Expr::var("i")], false),
            )
            .stmt(
                Stmt::new("b[i] = t")
                    .reads(&["t"])
                    .array("b", vec![Expr::var("i")], true),
            );
        let facts = solve_sequential(&l);
        assert!(!facts.live_at_entry("t"));
    }

    #[test]
    fn opaque_subscripts_are_uses() {
        // for i: out[k] = i — the subscript reads k.
        let l = LoopNest::new("for i", "i").stmt(Stmt::new("out[k] = i").array(
            "out",
            vec![Expr::Opaque("k".into())],
            true,
        ));
        let facts = solve_sequential(&l);
        assert!(facts.cfg.scalar_id("k").is_some());
        assert!(facts.live_at_entry("k"));
    }

    #[test]
    fn non_identifier_opaques_are_not_scalars() {
        let l = LoopNest::new("for t", "t").stmt(Stmt::new("m[region] = ...").array(
            "m",
            vec![Expr::Opaque("x in region".into())],
            true,
        ));
        let facts = solve_sequential(&l);
        assert!(facts.cfg.scalar_id("x in region").is_none());
    }

    #[test]
    fn parallel_solve_matches_sequential_on_nested_loops() {
        let l = LoopNest::new("outer", "i")
            .stmt(Stmt::new("s0").writes(&["a"]).reads(&["c"]))
            .nest(
                LoopNest::new("mid", "j")
                    .stmt(Stmt::new("s1").writes(&["b"]).reads(&["a"]))
                    .nest(
                        LoopNest::new("inner", "k")
                            .stmt(Stmt::new("s2").writes(&["c"]).reads(&["b", "c"])),
                    ),
            )
            .stmt(Stmt::new("s3").writes(&["d"]).reads(&["c", "d"]));
        let seq = solve_sequential(&l);
        for workers in [2, 4, 8] {
            let par = solve(&l, workers);
            assert_eq!(seq, par, "{workers} workers");
        }
    }

    #[test]
    fn empty_loop_solves() {
        let facts = solve_sequential(&LoopNest::new("empty", "i"));
        assert!(facts.cfg.stmts.is_empty());
        assert!(!facts.live_at_entry("anything"));
    }
}
