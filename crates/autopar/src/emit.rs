//! The emission pass: turn a "parallelizable" verdict into an executable
//! plan — an [`sthreads`] schedule choice plus the privatization /
//! reduction / compaction clauses the runtime must honor — rendered as a
//! pragma-style annotation.
//!
//! The schedule heuristic mirrors how the paper's manual transformations
//! were scheduled:
//!
//! * loops whose iterations have *data-dependent* cost — a compaction
//!   store (output size varies per iteration) or cleared calls (work
//!   depends on the data) — self-schedule ([`Schedule::Dynamic`]), like
//!   Program 4's next-unprocessed-threat counter;
//! * otherwise, loops with opaque subscripts (irregular access, uniform
//!   cost) use [`Schedule::Stealing`] to keep contiguous per-worker runs
//!   while rebalancing;
//! * dense affine loops block statically ([`Schedule::Static`]), the
//!   paper's `(chunk*n)/num_chunks` expression.

use crate::ir::{Expr, LoopNest, Node, Reduction};
use crate::reduction::DataflowVerdict;
use sthreads::Schedule;

/// An executable parallelization plan for one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelPlan {
    /// The loop the plan is for.
    pub loop_label: String,
    /// Chosen iteration-to-worker schedule.
    pub schedule: Schedule,
    /// Reductions to privatize and combine after the loop.
    pub reductions: Vec<Reduction>,
    /// Scalars and arrays given per-iteration copies (last value out).
    pub privatized: Vec<String>,
    /// Compacted `(array, counter)` outputs: workers fill private
    /// sections, concatenated in iteration order after the loop.
    pub compactions: Vec<(String, String)>,
}

impl ParallelPlan {
    /// Render the plan as a pragma-style annotation, e.g.
    /// `#pragma sthreads parallel schedule(dynamic) reduction(count:num_intervals) compaction(intervals[num_intervals])`.
    pub fn annotation(&self) -> String {
        let mut out = format!("#pragma sthreads parallel schedule({})", self.schedule);
        for r in &self.reductions {
            out.push_str(&format!(" reduction({}:{})", r.op, r.name));
        }
        if !self.privatized.is_empty() {
            out.push_str(&format!(" lastprivate({})", self.privatized.join(",")));
        }
        for (array, counter) in &self.compactions {
            out.push_str(&format!(" compaction({array}[{counter}])"));
        }
        out
    }
}

/// Does any subscript in the nest fall outside affine-in-some-variable
/// analysis (the irregular-access signal for the schedule heuristic)?
fn any_opaque_subscript(l: &LoopNest) -> bool {
    fn walk(nodes: &[Node]) -> bool {
        nodes.iter().any(|n| match n {
            Node::Stmt(s) => s
                .arrays
                .iter()
                .any(|a| a.indices.iter().any(|e| matches!(e, Expr::Opaque(_)))),
            Node::Loop(l) => walk(&l.body),
        })
    }
    walk(&l.body)
}

/// Emit the plan for a loop the dataflow pass (or the programmer's
/// pragma) declared parallel; `None` for rejected loops.
pub fn emit_plan(l: &LoopNest, v: &DataflowVerdict) -> Option<ParallelPlan> {
    if !v.verdict.parallel {
        return None;
    }
    let data_dependent_cost = !v.compactions.is_empty() || !v.cleared_calls.is_empty();
    let schedule = if data_dependent_cost {
        Schedule::Dynamic
    } else if any_opaque_subscript(l) {
        Schedule::Stealing
    } else {
        Schedule::Static
    };
    let mut privatized = v.privatized_scalars.clone();
    privatized.extend(v.privatized_arrays.iter().cloned());
    Some(ParallelPlan {
        loop_label: l.label.clone(),
        schedule,
        reductions: v.reductions.clone(),
        privatized,
        compactions: v.compactions.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{LoopNest, Stmt};
    use crate::reduction::{analyze_loop_dataflow, DataflowOptions};

    fn plan(l: &LoopNest, opts: &DataflowOptions) -> Option<ParallelPlan> {
        emit_plan(l, &analyze_loop_dataflow(l, opts))
    }

    #[test]
    fn rejected_loops_emit_no_plan() {
        let l = LoopNest::new("for i", "i").stmt(Stmt::new("x = f(i)").writes(&["x"]).call("f"));
        assert_eq!(plan(&l, &DataflowOptions::new(1)), None);
    }

    #[test]
    fn dense_affine_loops_schedule_statically() {
        let l = crate::programs::affine_vector_loop();
        let p = plan(&l, &DataflowOptions::new(1)).expect("parallel");
        assert_eq!(p.schedule, Schedule::Static);
        assert_eq!(p.annotation(), "#pragma sthreads parallel schedule(static)");
    }

    #[test]
    fn compaction_loops_self_schedule() {
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("out[n] = a[i]; n++")
                .reads(&["n"])
                .writes(&["n"])
                .reduces_op("n", crate::ir::ReduceOp::Count)
                .array("out", vec![Expr::Opaque("n".into())], true)
                .array("a", vec![Expr::var("i")], false),
        );
        let p = plan(&l, &DataflowOptions::new(1)).expect("parallel");
        assert_eq!(p.schedule, Schedule::Dynamic);
        let text = p.annotation();
        assert!(text.contains("reduction(count:n)"), "{text}");
        assert!(text.contains("compaction(out[n])"), "{text}");
    }

    #[test]
    fn irregular_but_uniform_loops_steal() {
        // Opaque read subscript, no calls, no compaction.
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("a[i] = b[idx]")
                .array("a", vec![Expr::var("i")], true)
                .array("b", vec![Expr::Opaque("idx".into())], false),
        );
        let p = plan(&l, &DataflowOptions::new(1)).expect("parallel");
        assert_eq!(p.schedule, Schedule::Stealing);
    }

    #[test]
    fn pragma_loops_still_get_a_plan() {
        let l = crate::programs::program2_threat_chunked(true);
        let p = plan(&l, &DataflowOptions::benchmark(1)).expect("pragma loops run parallel");
        assert_eq!(p.loop_label, l.label);
    }
}
