//! Loop-nest IR: the program representation the modeled compiler analyzes.
//!
//! The IR captures exactly what loop-level dependence analysis consumes:
//! which scalars a statement reads and writes, which array elements it
//! touches (with symbolic subscripts), and which calls it makes. Subscript
//! expressions distinguish the analyzable case (affine in the loop
//! variable) from the unanalyzable ones (other variables, data-dependent
//! values) — the distinction the paper's compilers founder on.

/// A subscript expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A compile-time constant.
    Const(i64),
    /// `scale * var + offset`, affine in the named variable.
    Affine {
        /// The variable (usually a loop variable).
        var: String,
        /// Multiplier.
        scale: i64,
        /// Additive constant.
        offset: i64,
    },
    /// A value the compiler cannot analyze (data-dependent subscript,
    /// pointer arithmetic, value returned from a call).
    Opaque(String),
}

impl Expr {
    /// Shorthand for the loop variable itself.
    pub fn var(name: &str) -> Self {
        Expr::Affine {
            var: name.to_string(),
            scale: 1,
            offset: 0,
        }
    }

    /// If this is an [`Expr::Opaque`] holding a bare identifier (a scalar
    /// name such as `num_intervals`, as opposed to free-form text like
    /// `"x in region"`), return that identifier.
    ///
    /// This is the hook the dataflow pass uses to connect data-dependent
    /// subscripts back to the scalars they read: `intervals[num_intervals]`
    /// is a *use* of `num_intervals`, which is what lets the compaction
    /// recognizer prove distinct iterations write distinct slots once the
    /// counter is known to be a monotone count reduction.
    pub fn opaque_scalar(&self) -> Option<&str> {
        match self {
            Expr::Opaque(s)
                if !s.is_empty()
                    && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && !s.starts_with(|c: char| c.is_ascii_digit()) =>
            {
                Some(s)
            }
            _ => None,
        }
    }
}

/// The combining operator of a recognized associative reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `x = x + expr` (also covers `-` rewritten as adding a negation).
    Sum,
    /// `x = min(x, expr)`.
    Min,
    /// `x = max(x, expr)`.
    Max,
    /// `x = x + k` with `k >= 1` per execution: a monotone counter whose
    /// intermediate values index a compaction store (`out[x++] = ...`).
    /// Unlike the other operators the *intermediate* values of a count may
    /// be observed — but only as store subscripts, which the compaction
    /// analysis checks separately.
    Count,
}

impl std::fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
            ReduceOp::Count => "count",
        })
    }
}

/// An associative-update annotation on a statement: `name = name op ...`.
///
/// The annotation records only the *shape* the frontend saw; whether the
/// scalar really is parallelizable as a reduction (no other reads, no
/// non-reduction writes anywhere in the loop) is decided by the dataflow
/// pass (`reduction::recognize`), not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduction {
    /// The updated scalar.
    pub name: String,
    /// The combining operator.
    pub op: ReduceOp,
}

/// One array access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Array name.
    pub array: String,
    /// Subscripts, outermost dimension first.
    pub indices: Vec<Expr>,
    /// Whether this access writes.
    pub write: bool,
}

/// A straight-line statement, summarized by its effects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stmt {
    /// Human-readable label for reports.
    pub label: String,
    /// Source line of the statement in the program listing it was lifted
    /// from (0 when unknown). Reports cite this line, so a verdict names
    /// the exact statement carrying the blocking dependence.
    pub line: u32,
    /// Scalars read.
    pub reads: Vec<String>,
    /// Scalars written.
    pub writes: Vec<String>,
    /// Scalars updated by an associative reduction (`x = x op expr`).
    /// A *modern* parallelizer can privatize these; the 1998 compilers the
    /// paper tested could not (see `deps::analyze_loop_with`).
    pub reductions: Vec<Reduction>,
    /// Array accesses.
    pub arrays: Vec<ArrayRef>,
    /// Names of opaque (separately compiled / pointer-manipulating)
    /// functions called.
    pub calls: Vec<String>,
}

impl Stmt {
    /// An empty statement with a label.
    pub fn new(label: &str) -> Self {
        Stmt {
            label: label.to_string(),
            ..Stmt::default()
        }
    }

    /// Builder: add scalar reads.
    pub fn reads(mut self, names: &[&str]) -> Self {
        self.reads.extend(names.iter().map(|s| s.to_string()));
        self
    }

    /// Builder: add scalar writes.
    pub fn writes(mut self, names: &[&str]) -> Self {
        self.writes.extend(names.iter().map(|s| s.to_string()));
        self
    }

    /// Builder: set the source line for report provenance.
    pub fn at(mut self, line: u32) -> Self {
        self.line = line;
        self
    }

    /// Builder: mark scalars as associative sum reductions (they must
    /// also be listed as writes). Use [`Stmt::reduces_op`] for min/max
    /// combining or monotone counters.
    pub fn reduces(mut self, names: &[&str]) -> Self {
        self.reductions.extend(names.iter().map(|s| Reduction {
            name: s.to_string(),
            op: ReduceOp::Sum,
        }));
        self
    }

    /// Builder: mark one scalar as an associative reduction with an
    /// explicit combining operator.
    pub fn reduces_op(mut self, name: &str, op: ReduceOp) -> Self {
        self.reductions.push(Reduction {
            name: name.to_string(),
            op,
        });
        self
    }

    /// Builder: add an array access.
    pub fn array(mut self, array: &str, indices: Vec<Expr>, write: bool) -> Self {
        self.arrays.push(ArrayRef {
            array: array.to_string(),
            indices,
            write,
        });
        self
    }

    /// Builder: add an opaque call.
    pub fn call(mut self, name: &str) -> Self {
        self.calls.push(name.to_string());
        self
    }
}

/// A node of a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A statement.
    Stmt(Stmt),
    /// A nested loop.
    Loop(LoopNest),
}

/// A counted loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Label for reports (e.g. `"for threat"`).
    pub label: String,
    /// The loop variable.
    pub var: String,
    /// Variables declared inside the body (privatizable by definition).
    pub private: Vec<String>,
    /// Arrays known to be dead after the loop (scratch storage the source
    /// re-initializes every iteration, like Terrain Masking's `temp`
    /// grid). Deadness-after-loop is a whole-program fact this loop-level
    /// IR cannot derive, so the frontend declares it; whether the array
    /// is *safe* to privatize per iteration (every read covered by an
    /// earlier same-iteration write to the same subscripts) is still
    /// proved by the dataflow pass, never assumed.
    pub scratch: Vec<String>,
    /// Whether the programmer marked the loop with an explicit parallel
    /// pragma (`#pragma multithreaded` / Tera `assert parallel`).
    pub pragma_parallel: bool,
    /// Body nodes in order.
    pub body: Vec<Node>,
}

impl LoopNest {
    /// An empty loop over `var`.
    pub fn new(label: &str, var: &str) -> Self {
        Self {
            label: label.to_string(),
            var: var.to_string(),
            private: Vec::new(),
            scratch: Vec::new(),
            pragma_parallel: false,
            body: Vec::new(),
        }
    }

    /// Builder: declare body-local (private) variables.
    pub fn private(mut self, names: &[&str]) -> Self {
        self.private.extend(names.iter().map(|s| s.to_string()));
        self
    }

    /// Builder: declare arrays dead after the loop (see
    /// [`LoopNest::scratch`]).
    pub fn scratch(mut self, names: &[&str]) -> Self {
        self.scratch.extend(names.iter().map(|s| s.to_string()));
        self
    }

    /// Builder: mark with an explicit parallel pragma.
    pub fn pragma(mut self) -> Self {
        self.pragma_parallel = true;
        self
    }

    /// Builder: append a statement.
    pub fn stmt(mut self, s: Stmt) -> Self {
        self.body.push(Node::Stmt(s));
        self
    }

    /// Builder: append a nested loop.
    pub fn nest(mut self, l: LoopNest) -> Self {
        self.body.push(Node::Loop(l));
        self
    }

    /// All statements in the body, including nested loops' bodies.
    pub fn all_stmts(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        fn walk<'a>(nodes: &'a [Node], out: &mut Vec<&'a Stmt>) {
            for n in nodes {
                match n {
                    Node::Stmt(s) => out.push(s),
                    Node::Loop(l) => walk(&l.body, out),
                }
            }
        }
        walk(&self.body, &mut out);
        out
    }

    /// Variables private to the body at any nesting level (inner loop
    /// variables are private by construction).
    pub fn all_private(&self) -> Vec<String> {
        let mut out = self.private.clone();
        fn walk(nodes: &[Node], out: &mut Vec<String>) {
            for n in nodes {
                if let Node::Loop(l) = n {
                    out.push(l.var.clone());
                    out.extend(l.private.iter().cloned());
                    walk(&l.body, out);
                }
            }
        }
        walk(&self.body, &mut out);
        out
    }

    /// Arrays declared scratch at any nesting level.
    pub fn all_scratch(&self) -> Vec<String> {
        let mut out = self.scratch.clone();
        fn walk(nodes: &[Node], out: &mut Vec<String>) {
            for n in nodes {
                if let Node::Loop(l) = n {
                    out.extend(l.scratch.iter().cloned());
                    walk(&l.body, out);
                }
            }
        }
        walk(&self.body, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let l = LoopNest::new("for i", "i")
            .private(&["t"])
            .stmt(
                Stmt::new("a[i] = b[i]")
                    .array("a", vec![Expr::var("i")], true)
                    .array("b", vec![Expr::var("i")], false),
            )
            .nest(LoopNest::new("for j", "j").stmt(Stmt::new("x").writes(&["t"])));
        assert_eq!(l.all_stmts().len(), 2);
        let private = l.all_private();
        assert!(private.contains(&"t".to_string()));
        assert!(
            private.contains(&"j".to_string()),
            "inner loop var is private"
        );
    }

    #[test]
    fn expr_var_is_identity_affine() {
        assert_eq!(
            Expr::var("i"),
            Expr::Affine {
                var: "i".into(),
                scale: 1,
                offset: 0
            }
        );
    }

    #[test]
    fn all_stmts_walks_nesting_depth() {
        let l = LoopNest::new("outer", "i").nest(
            LoopNest::new("mid", "j").nest(LoopNest::new("inner", "k").stmt(Stmt::new("deep"))),
        );
        let labels: Vec<&str> = l.all_stmts().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["deep"]);
    }
}
