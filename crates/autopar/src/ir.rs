//! Loop-nest IR: the program representation the modeled compiler analyzes.
//!
//! The IR captures exactly what loop-level dependence analysis consumes:
//! which scalars a statement reads and writes, which array elements it
//! touches (with symbolic subscripts), and which calls it makes. Subscript
//! expressions distinguish the analyzable case (affine in the loop
//! variable) from the unanalyzable ones (other variables, data-dependent
//! values) — the distinction the paper's compilers founder on.

/// A subscript expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A compile-time constant.
    Const(i64),
    /// `scale * var + offset`, affine in the named variable.
    Affine {
        /// The variable (usually a loop variable).
        var: String,
        /// Multiplier.
        scale: i64,
        /// Additive constant.
        offset: i64,
    },
    /// A value the compiler cannot analyze (data-dependent subscript,
    /// pointer arithmetic, value returned from a call).
    Opaque(String),
}

impl Expr {
    /// Shorthand for the loop variable itself.
    pub fn var(name: &str) -> Self {
        Expr::Affine {
            var: name.to_string(),
            scale: 1,
            offset: 0,
        }
    }
}

/// One array access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Array name.
    pub array: String,
    /// Subscripts, outermost dimension first.
    pub indices: Vec<Expr>,
    /// Whether this access writes.
    pub write: bool,
}

/// A straight-line statement, summarized by its effects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stmt {
    /// Human-readable label for reports.
    pub label: String,
    /// Scalars read.
    pub reads: Vec<String>,
    /// Scalars written.
    pub writes: Vec<String>,
    /// Scalars updated by an associative reduction (`x = x op expr`).
    /// A *modern* parallelizer can privatize these; the 1998 compilers the
    /// paper tested could not (see `deps::analyze_loop_with`).
    pub reductions: Vec<String>,
    /// Array accesses.
    pub arrays: Vec<ArrayRef>,
    /// Names of opaque (separately compiled / pointer-manipulating)
    /// functions called.
    pub calls: Vec<String>,
}

impl Stmt {
    /// An empty statement with a label.
    pub fn new(label: &str) -> Self {
        Stmt {
            label: label.to_string(),
            ..Stmt::default()
        }
    }

    /// Builder: add scalar reads.
    pub fn reads(mut self, names: &[&str]) -> Self {
        self.reads.extend(names.iter().map(|s| s.to_string()));
        self
    }

    /// Builder: add scalar writes.
    pub fn writes(mut self, names: &[&str]) -> Self {
        self.writes.extend(names.iter().map(|s| s.to_string()));
        self
    }

    /// Builder: mark scalars as associative reductions (they must also be
    /// listed as writes).
    pub fn reduces(mut self, names: &[&str]) -> Self {
        self.reductions.extend(names.iter().map(|s| s.to_string()));
        self
    }

    /// Builder: add an array access.
    pub fn array(mut self, array: &str, indices: Vec<Expr>, write: bool) -> Self {
        self.arrays.push(ArrayRef {
            array: array.to_string(),
            indices,
            write,
        });
        self
    }

    /// Builder: add an opaque call.
    pub fn call(mut self, name: &str) -> Self {
        self.calls.push(name.to_string());
        self
    }
}

/// A node of a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A statement.
    Stmt(Stmt),
    /// A nested loop.
    Loop(LoopNest),
}

/// A counted loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Label for reports (e.g. `"for threat"`).
    pub label: String,
    /// The loop variable.
    pub var: String,
    /// Variables declared inside the body (privatizable by definition).
    pub private: Vec<String>,
    /// Whether the programmer marked the loop with an explicit parallel
    /// pragma (`#pragma multithreaded` / Tera `assert parallel`).
    pub pragma_parallel: bool,
    /// Body nodes in order.
    pub body: Vec<Node>,
}

impl LoopNest {
    /// An empty loop over `var`.
    pub fn new(label: &str, var: &str) -> Self {
        Self {
            label: label.to_string(),
            var: var.to_string(),
            private: Vec::new(),
            pragma_parallel: false,
            body: Vec::new(),
        }
    }

    /// Builder: declare body-local (private) variables.
    pub fn private(mut self, names: &[&str]) -> Self {
        self.private.extend(names.iter().map(|s| s.to_string()));
        self
    }

    /// Builder: mark with an explicit parallel pragma.
    pub fn pragma(mut self) -> Self {
        self.pragma_parallel = true;
        self
    }

    /// Builder: append a statement.
    pub fn stmt(mut self, s: Stmt) -> Self {
        self.body.push(Node::Stmt(s));
        self
    }

    /// Builder: append a nested loop.
    pub fn nest(mut self, l: LoopNest) -> Self {
        self.body.push(Node::Loop(l));
        self
    }

    /// All statements in the body, including nested loops' bodies.
    pub fn all_stmts(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        fn walk<'a>(nodes: &'a [Node], out: &mut Vec<&'a Stmt>) {
            for n in nodes {
                match n {
                    Node::Stmt(s) => out.push(s),
                    Node::Loop(l) => walk(&l.body, out),
                }
            }
        }
        walk(&self.body, &mut out);
        out
    }

    /// Variables private to the body at any nesting level (inner loop
    /// variables are private by construction).
    pub fn all_private(&self) -> Vec<String> {
        let mut out = self.private.clone();
        fn walk(nodes: &[Node], out: &mut Vec<String>) {
            for n in nodes {
                if let Node::Loop(l) = n {
                    out.push(l.var.clone());
                    out.extend(l.private.iter().cloned());
                    walk(&l.body, out);
                }
            }
        }
        walk(&self.body, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let l = LoopNest::new("for i", "i")
            .private(&["t"])
            .stmt(
                Stmt::new("a[i] = b[i]")
                    .array("a", vec![Expr::var("i")], true)
                    .array("b", vec![Expr::var("i")], false),
            )
            .nest(LoopNest::new("for j", "j").stmt(Stmt::new("x").writes(&["t"])));
        assert_eq!(l.all_stmts().len(), 2);
        let private = l.all_private();
        assert!(private.contains(&"t".to_string()));
        assert!(
            private.contains(&"j".to_string()),
            "inner loop var is private"
        );
    }

    #[test]
    fn expr_var_is_identity_affine() {
        assert_eq!(
            Expr::var("i"),
            Expr::Affine {
                var: "i".into(),
                scale: 1,
                offset: 0
            }
        );
    }

    #[test]
    fn all_stmts_walks_nesting_depth() {
        let l = LoopNest::new("outer", "i").nest(
            LoopNest::new("mid", "j").nest(LoopNest::new("inner", "k").stmt(Stmt::new("deep"))),
        );
        let labels: Vec<&str> = l.all_stmts().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["deep"]);
    }
}
