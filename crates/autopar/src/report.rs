//! Compiler feedback, in the spirit of Tera's `canal` (compiler analysis)
//! tool: per-loop verdicts with the specific reason each loop was not
//! parallelized — the paper notes the real compilers could not even
//! *suggest* what to change, so the reasons here are the analyzer's
//! blocking dependences, stated plainly.

/// Why a loop could not be auto-parallelized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reason {
    /// A scalar visible across iterations is written (e.g.
    /// `num_intervals`).
    ScalarDependence {
        /// The scalar's name.
        name: String,
    },
    /// A store whose subscript the compiler cannot analyze (e.g.
    /// `intervals[num_intervals]`, region-of-influence bounds).
    DataDependentSubscript {
        /// The array written.
        array: String,
    },
    /// Two analyzable references may touch the same element in different
    /// iterations (e.g. `a[i]` vs `a[i-1]`).
    ArrayConflict {
        /// The array written.
        array: String,
        /// Label of the statement it conflicts with.
        with: String,
    },
    /// A call to a separately compiled / pointer-manipulating function.
    OpaqueCall {
        /// The callee.
        name: String,
    },
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reason::ScalarDependence { name } => {
                write!(
                    f,
                    "scalar `{name}` is written by every iteration (carried dependence)"
                )
            }
            Reason::DataDependentSubscript { array } => {
                write!(
                    f,
                    "store to `{array}` has a data-dependent subscript; iterations may collide"
                )
            }
            Reason::ArrayConflict { array, with } => {
                write!(f, "references to `{array}` may touch the same element across iterations (vs {with})")
            }
            Reason::OpaqueCall { name } => {
                write!(
                    f,
                    "call to `{name}` cannot be analyzed (separate compilation / pointers)"
                )
            }
        }
    }
}

/// The analyzer's verdict on one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopVerdict {
    /// The loop's label.
    pub loop_label: String,
    /// Whether the loop may run multithreaded.
    pub parallel: bool,
    /// Whether parallelization came from an explicit pragma rather than
    /// analysis.
    pub by_pragma: bool,
    /// Blocking reasons when not parallel.
    pub reasons: Vec<Reason>,
}

impl std::fmt::Display for LoopVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.parallel && self.by_pragma {
            writeln!(
                f,
                "{}: PARALLEL (by explicit pragma — independence asserted by programmer)",
                self.loop_label
            )
        } else if self.parallel {
            writeln!(f, "{}: PARALLEL (proved independent)", self.loop_label)
        } else {
            writeln!(f, "{}: NOT parallelized", self.loop_label)?;
            for r in &self.reasons {
                writeln!(f, "    - {r}")?;
            }
            Ok(())
        }
    }
}

/// A whole-program report: one verdict per analyzed loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Verdicts, program order.
    pub verdicts: Vec<LoopVerdict>,
}

impl Report {
    /// Whether the compiler found any loop it could parallelize *without*
    /// a pragma.
    pub fn any_auto_parallel(&self) -> bool {
        self.verdicts.iter().any(|v| v.parallel && !v.by_pragma)
    }

    /// Whether every analyzed loop was rejected (the paper's outcome for
    /// the unmodified benchmark programs).
    pub fn all_rejected(&self) -> bool {
        self.verdicts.iter().all(|v| !v.parallel)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "automatic parallelization report ({} loops analyzed)",
            self.verdicts.len()
        )?;
        for v in &self.verdicts {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_render_readably() {
        let r = Reason::ScalarDependence {
            name: "num_intervals".into(),
        };
        assert!(r.to_string().contains("num_intervals"));
        let r = Reason::OpaqueCall {
            name: "can_intercept".into(),
        };
        assert!(r.to_string().contains("can_intercept"));
    }

    #[test]
    fn verdict_display_lists_reasons() {
        let v = LoopVerdict {
            loop_label: "for threat".into(),
            parallel: false,
            by_pragma: false,
            reasons: vec![Reason::ScalarDependence { name: "n".into() }],
        };
        let s = v.to_string();
        assert!(s.contains("NOT parallelized"));
        assert!(s.contains("scalar `n`"));
    }

    #[test]
    fn report_aggregates() {
        let report = Report {
            verdicts: vec![
                LoopVerdict {
                    loop_label: "a".into(),
                    parallel: false,
                    by_pragma: false,
                    reasons: vec![],
                },
                LoopVerdict {
                    loop_label: "b".into(),
                    parallel: true,
                    by_pragma: true,
                    reasons: vec![],
                },
            ],
        };
        assert!(!report.any_auto_parallel());
        assert!(!report.all_rejected(), "the pragma loop counts as parallel");
    }
}
