//! Compiler feedback, in the spirit of Tera's `canal` (compiler analysis)
//! tool: per-loop verdicts with the specific reason each loop was not
//! parallelized — the paper notes the real compilers could not even
//! *suggest* what to change, so the reasons here are the analyzer's
//! blocking dependences, stated plainly and pinned to the exact statement
//! (and source line) that carries each dependence.

use crate::ir::{ReduceOp, Stmt};

/// What kind of dependence blocked parallelization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReasonKind {
    /// A scalar visible across iterations is written (e.g.
    /// `num_intervals`).
    ScalarDependence {
        /// The scalar's name.
        name: String,
    },
    /// A store whose subscript the compiler cannot analyze (e.g.
    /// `intervals[num_intervals]`, region-of-influence bounds).
    DataDependentSubscript {
        /// The array written.
        array: String,
    },
    /// Two analyzable references may touch the same element in different
    /// iterations (e.g. `a[i]` vs `a[i-1]`).
    ArrayConflict {
        /// The array written.
        array: String,
        /// Label of the statement it conflicts with.
        with: String,
    },
    /// A call to a separately compiled / pointer-manipulating function.
    OpaqueCall {
        /// The callee.
        name: String,
    },
}

impl std::fmt::Display for ReasonKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReasonKind::ScalarDependence { name } => {
                write!(
                    f,
                    "scalar `{name}` is written by every iteration (carried dependence)"
                )
            }
            ReasonKind::DataDependentSubscript { array } => {
                write!(
                    f,
                    "store to `{array}` has a data-dependent subscript; iterations may collide"
                )
            }
            ReasonKind::ArrayConflict { array, with } => {
                write!(f, "references to `{array}` may touch the same element across iterations (vs {with})")
            }
            ReasonKind::OpaqueCall { name } => {
                write!(
                    f,
                    "call to `{name}` cannot be analyzed (separate compilation / pointers)"
                )
            }
        }
    }
}

/// Why a loop could not be auto-parallelized: the dependence kind plus the
/// statement (and source line) it was found at. The paper's compilers
/// named only the loop; carrying the blocking statement is what lets the
/// living auto-vs-manual table (`docs/AUTOPAR.md`) cite exact statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reason {
    /// The dependence kind.
    pub kind: ReasonKind,
    /// Label of the statement carrying the dependence.
    pub stmt: String,
    /// Source line of that statement (0 when unknown).
    pub line: u32,
}

impl Reason {
    /// A reason anchored at a statement.
    pub fn at(kind: ReasonKind, stmt: &Stmt) -> Self {
        Reason {
            kind,
            stmt: stmt.label.clone(),
            line: stmt.line,
        }
    }

    /// Render just the provenance suffix (`at line 7: \`...\``).
    fn provenance(&self) -> String {
        if self.line > 0 {
            format!(" [line {}: `{}`]", self.line, self.stmt)
        } else {
            format!(" [`{}`]", self.stmt)
        }
    }
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.kind, self.provenance())
    }
}

/// A paper obstacle the dataflow pass proved harmless, with the analysis
/// that cleared it and the statement it applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClearedKind {
    /// A shared scalar recognized as an associative reduction: each
    /// worker accumulates privately and partials combine after the loop.
    Reduction {
        /// The reduced scalar.
        name: String,
        /// Its combining operator.
        op: ReduceOp,
    },
    /// A scalar proved defined-before-used in every iteration: each
    /// iteration gets its own copy.
    PrivatizedScalar {
        /// The scalar.
        name: String,
    },
    /// A scratch array whose every read is covered by an earlier
    /// same-iteration write to the same subscripts.
    PrivatizedArray {
        /// The array.
        array: String,
    },
    /// A data-dependent store recognized as the compaction idiom
    /// `out[count++] = ...`: iterations fill disjoint slots, and
    /// per-worker sections concatenated in iteration order reproduce the
    /// sequential output exactly.
    Compaction {
        /// The compacted array.
        array: String,
        /// The monotone counter indexing it.
        counter: String,
    },
    /// A call cleared by an interprocedural purity summary.
    PureCall {
        /// The callee.
        name: String,
        /// Why the summary holds (recorded in [`crate::reduction::Summaries`]).
        why: String,
    },
}

impl std::fmt::Display for ClearedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClearedKind::Reduction { name, op } => {
                write!(f, "`{name}` recognized as a {op} reduction")
            }
            ClearedKind::PrivatizedScalar { name } => {
                write!(
                    f,
                    "`{name}` privatized (defined before used every iteration)"
                )
            }
            ClearedKind::PrivatizedArray { array } => {
                write!(
                    f,
                    "scratch array `{array}` privatized (writes cover every read)"
                )
            }
            ClearedKind::Compaction { array, counter } => {
                write!(
                    f,
                    "store to `{array}` recognized as compaction over counter `{counter}`"
                )
            }
            ClearedKind::PureCall { name, why } => {
                write!(f, "call to `{name}` cleared by purity summary ({why})")
            }
        }
    }
}

/// One cleared obstacle, with statement provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clearing {
    /// What was cleared and how.
    pub kind: ClearedKind,
    /// Label of the statement the clearing applies to.
    pub stmt: String,
    /// Source line of that statement (0 when unknown).
    pub line: u32,
}

impl Clearing {
    /// A clearing anchored at a statement.
    pub fn at(kind: ClearedKind, stmt: &Stmt) -> Self {
        Clearing {
            kind,
            stmt: stmt.label.clone(),
            line: stmt.line,
        }
    }
}

impl std::fmt::Display for Clearing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{} [line {}: `{}`]", self.kind, self.line, self.stmt)
        } else {
            write!(f, "{} [`{}`]", self.kind, self.stmt)
        }
    }
}

/// The analyzer's verdict on one loop.
///
/// ```
/// use autopar::{analyze_loop, Expr, LoopNest, Stmt};
///
/// // for i: sum += a[i] — rejected, and the verdict names the statement.
/// let l = LoopNest::new("for i", "i").stmt(
///     Stmt::new("sum += a[i]")
///         .at(3)
///         .reads(&["sum"])
///         .writes(&["sum"])
///         .array("a", vec![Expr::var("i")], false),
/// );
/// let verdict = analyze_loop(&l);
/// assert!(!verdict.parallel);
/// let text = verdict.to_string();
/// assert!(text.contains("scalar `sum`"));
/// assert!(text.contains("line 3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopVerdict {
    /// The loop's label.
    pub loop_label: String,
    /// Whether the loop may run multithreaded.
    pub parallel: bool,
    /// Whether parallelization came from an explicit pragma rather than
    /// analysis.
    pub by_pragma: bool,
    /// Blocking reasons when not parallel.
    pub reasons: Vec<Reason>,
}

impl std::fmt::Display for LoopVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.parallel && self.by_pragma {
            writeln!(
                f,
                "{}: PARALLEL (by explicit pragma — independence asserted by programmer)",
                self.loop_label
            )
        } else if self.parallel {
            writeln!(f, "{}: PARALLEL (proved independent)", self.loop_label)
        } else {
            writeln!(f, "{}: NOT parallelized", self.loop_label)?;
            for r in &self.reasons {
                writeln!(f, "    - {r}")?;
            }
            Ok(())
        }
    }
}

/// A whole-program report: one verdict per analyzed loop.
///
/// ```
/// use autopar::{analyze_loop, Expr, LoopNest, Report, Stmt};
///
/// let dense = LoopNest::new("for i", "i").stmt(
///     Stmt::new("a[i] = b[i]")
///         .array("a", vec![Expr::var("i")], true)
///         .array("b", vec![Expr::var("i")], false),
/// );
/// let report = Report {
///     verdicts: vec![analyze_loop(&dense)],
/// };
/// assert!(report.any_auto_parallel());
/// assert!(!report.all_rejected());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Verdicts, program order.
    pub verdicts: Vec<LoopVerdict>,
}

impl Report {
    /// Whether the compiler found any loop it could parallelize *without*
    /// a pragma.
    pub fn any_auto_parallel(&self) -> bool {
        self.verdicts.iter().any(|v| v.parallel && !v.by_pragma)
    }

    /// Whether every analyzed loop was rejected (the paper's outcome for
    /// the unmodified benchmark programs).
    pub fn all_rejected(&self) -> bool {
        self.verdicts.iter().all(|v| !v.parallel)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "automatic parallelization report ({} loops analyzed)",
            self.verdicts.len()
        )?;
        for v in &self.verdicts {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt() -> Stmt {
        Stmt::new("intervals[num_intervals] = ...").at(9)
    }

    #[test]
    fn reasons_render_readably_with_provenance() {
        let r = Reason::at(
            ReasonKind::ScalarDependence {
                name: "num_intervals".into(),
            },
            &stmt(),
        );
        let text = r.to_string();
        assert!(text.contains("num_intervals"));
        assert!(text.contains("line 9"));
        assert!(text.contains("intervals[num_intervals]"));

        let r = Reason::at(
            ReasonKind::OpaqueCall {
                name: "can_intercept".into(),
            },
            &Stmt::new("call site"),
        );
        let text = r.to_string();
        assert!(text.contains("can_intercept"));
        assert!(!text.contains("line"), "unknown lines are omitted: {text}");
    }

    #[test]
    fn clearings_render_readably() {
        let c = Clearing::at(
            ClearedKind::Compaction {
                array: "intervals".into(),
                counter: "num_intervals".into(),
            },
            &stmt(),
        );
        let text = c.to_string();
        assert!(text.contains("compaction"));
        assert!(text.contains("line 9"));
    }

    #[test]
    fn verdict_display_lists_reasons() {
        let v = LoopVerdict {
            loop_label: "for threat".into(),
            parallel: false,
            by_pragma: false,
            reasons: vec![Reason {
                kind: ReasonKind::ScalarDependence { name: "n".into() },
                stmt: "n++".into(),
                line: 4,
            }],
        };
        let s = v.to_string();
        assert!(s.contains("NOT parallelized"));
        assert!(s.contains("scalar `n`"));
        assert!(s.contains("line 4"));
    }

    #[test]
    fn report_aggregates() {
        let report = Report {
            verdicts: vec![
                LoopVerdict {
                    loop_label: "a".into(),
                    parallel: false,
                    by_pragma: false,
                    reasons: vec![],
                },
                LoopVerdict {
                    loop_label: "b".into(),
                    parallel: true,
                    by_pragma: true,
                    reasons: vec![],
                },
            ],
        };
        assert!(!report.any_auto_parallel());
        assert!(!report.all_rejected(), "the pragma loop counts as parallel");
    }
}
