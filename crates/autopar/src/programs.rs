//! Loop-nest encodings of the paper's Programs 1–4, on which the modeled
//! compiler reproduces the published verdicts:
//!
//! * Programs 1 and 3 (the sequential benchmarks): **rejected** — shared
//!   scalars, data-dependent store subscripts, overlapping regions,
//!   opaque calls;
//! * Programs 2 and 4 (the manual transformations): still rejected by
//!   pure analysis (the function-call chains remain), parallel only with
//!   the explicit pragma — exactly the paper's "the compilers were not
//!   even able to parallelize the manually transformed programs without
//!   the explicit parallel loop pragmas".

use crate::deps::analyze_loop;
use crate::ir::{Expr, LoopNest, Stmt};
use crate::report::Report;

/// Program 1: sequential Threat Analysis — the outer `for threat` loop.
pub fn program1_threat_sequential() -> LoopNest {
    LoopNest::new(
        "for threat (Program 1, sequential Threat Analysis)",
        "threat",
    )
    .private(&["t0", "t1", "t2"])
    .nest(
        LoopNest::new("for weapon", "weapon").stmt(
            Stmt::new("intervals[num_intervals] = (threat, weapon, [t1..t2]); num_intervals++")
                .reads(&["num_intervals"])
                .writes(&["num_intervals"])
                .array(
                    "intervals",
                    vec![Expr::Opaque("num_intervals".into())],
                    true,
                )
                .array("threats", vec![Expr::var("threat")], false)
                .array("weapons", vec![Expr::Opaque("weapon".into())], false)
                .call("first_intercept_time")
                .call("last_intercept_time"),
        ),
    )
}

/// Program 2: chunked Threat Analysis — the `for chunk` loop, with and
/// without the `#pragma multithreaded`.
pub fn program2_threat_chunked(with_pragma: bool) -> LoopNest {
    let l = LoopNest::new(
        "for chunk (Program 2, multithreaded Threat Analysis)",
        "chunk",
    )
    .private(&[
        "first_threat",
        "last_threat",
        "threat",
        "weapon",
        "t0",
        "t1",
        "t2",
    ])
    .stmt(
        Stmt::new("intervals[chunk][num_intervals[chunk]] = ...; num_intervals[chunk]++")
            .array(
                "intervals",
                vec![
                    Expr::var("chunk"),
                    Expr::Opaque("num_intervals[chunk]".into()),
                ],
                true,
            )
            .array("num_intervals", vec![Expr::var("chunk")], true)
            .array("num_intervals", vec![Expr::var("chunk")], false)
            .array("threats", vec![Expr::Opaque("threat".into())], false)
            .call("first_intercept_time")
            .call("last_intercept_time"),
    );
    if with_pragma {
        l.pragma()
    } else {
        l
    }
}

/// Program 3: sequential Terrain Masking — the outer `for threat` loop.
pub fn program3_terrain_sequential() -> LoopNest {
    LoopNest::new(
        "for threat (Program 3, sequential Terrain Masking)",
        "threat",
    )
    .private(&["x", "y"])
    .stmt(
        Stmt::new("masking[region of influence] = ...")
            // The region bounds depend on the threat's data — the
            // compiler sees data-dependent subscripts into a shared
            // array, written by every iteration.
            .array(
                "masking",
                vec![
                    Expr::Opaque("x in region".into()),
                    Expr::Opaque("y in region".into()),
                ],
                true,
            )
            .array(
                "masking",
                vec![
                    Expr::Opaque("x in region".into()),
                    Expr::Opaque("y in region".into()),
                ],
                false,
            )
            .array(
                "temp",
                vec![Expr::Opaque("x".into()), Expr::Opaque("y".into())],
                true,
            )
            .call("max_safe_altitude"),
    )
}

/// Program 4: coarse-grained Terrain Masking — the `for thread` loop,
/// with and without the pragma.
pub fn program4_terrain_coarse(with_pragma: bool) -> LoopNest {
    let l = LoopNest::new(
        "for thread (Program 4, multithreaded Terrain Masking)",
        "thread",
    )
    .private(&["threat", "x", "y", "temp"])
    .stmt(
        Stmt::new("threat = next unprocessed threat")
            .reads(&["next_threat"])
            .writes(&["next_threat"]),
    )
    .stmt(
        Stmt::new("lock(locks[i][j]); masking = Min(masking, temp); unlock")
            .array(
                "masking",
                vec![
                    Expr::Opaque("x in block".into()),
                    Expr::Opaque("y in block".into()),
                ],
                true,
            )
            .array(
                "locks",
                vec![Expr::Opaque("i".into()), Expr::Opaque("j".into())],
                true,
            )
            .call("max_safe_altitude"),
    );
    if with_pragma {
        l.pragma()
    } else {
        l
    }
}

/// A textbook-parallelizable loop the production compilers of the era
/// *did* handle (dense affine Fortran-style) — included so the rejections
/// above are demonstrably not vacuous.
pub fn affine_vector_loop() -> LoopNest {
    LoopNest::new("for i (dense vector update)", "i").stmt(
        Stmt::new("a[i] = b[i]*s + c[i]")
            .reads(&["s"])
            .array("a", vec![Expr::var("i")], true)
            .array("b", vec![Expr::var("i")], false)
            .array("c", vec![Expr::var("i")], false),
    )
}

/// Run the modeled compiler over all four benchmark loop nests (without
/// pragmas) plus the affine control loop — the paper's "automatic
/// parallelization" experiment.
pub fn benchmark_report() -> Report {
    Report {
        verdicts: vec![
            analyze_loop(&program1_threat_sequential()),
            analyze_loop(&program2_threat_chunked(false)),
            analyze_loop(&program3_terrain_sequential()),
            analyze_loop(&program4_terrain_coarse(false)),
            analyze_loop(&affine_vector_loop()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Reason;

    #[test]
    fn program1_is_rejected_for_the_papers_reasons() {
        let v = analyze_loop(&program1_threat_sequential());
        assert!(!v.parallel);
        // The three cited obstacles: shared counter, data-dependent store,
        // opaque calls.
        assert!(v
            .reasons
            .iter()
            .any(|r| matches!(r, Reason::ScalarDependence { name } if name == "num_intervals")));
        assert!(v.reasons.iter().any(
            |r| matches!(r, Reason::DataDependentSubscript { array } if array == "intervals")
        ));
        assert!(v
            .reasons
            .iter()
            .any(|r| matches!(r, Reason::OpaqueCall { .. })));
    }

    #[test]
    fn program2_needs_the_pragma() {
        let without = analyze_loop(&program2_threat_chunked(false));
        assert!(
            !without.parallel,
            "call chains must still block analysis: {without:?}"
        );
        let with = analyze_loop(&program2_threat_chunked(true));
        assert!(with.parallel && with.by_pragma);
    }

    #[test]
    fn program3_is_rejected_for_overlapping_regions() {
        let v = analyze_loop(&program3_terrain_sequential());
        assert!(!v.parallel);
        assert!(v
            .reasons
            .iter()
            .any(|r| matches!(r, Reason::DataDependentSubscript { array } if array == "masking")));
    }

    #[test]
    fn program4_needs_the_pragma() {
        let without = analyze_loop(&program4_terrain_coarse(false));
        assert!(!without.parallel);
        let with = analyze_loop(&program4_terrain_coarse(true));
        assert!(with.parallel && with.by_pragma);
    }

    #[test]
    fn the_affine_control_loop_is_auto_parallelized() {
        let v = analyze_loop(&affine_vector_loop());
        assert!(v.parallel && !v.by_pragma, "{v:?}");
    }

    #[test]
    fn benchmark_report_matches_the_paper() {
        let report = benchmark_report();
        // All four benchmark loops rejected; only the affine control loop
        // parallelizes.
        let benchmark_verdicts = &report.verdicts[..4];
        assert!(benchmark_verdicts.iter().all(|v| !v.parallel));
        assert!(report.verdicts[4].parallel);
        assert!(report.any_auto_parallel());
        let text = report.to_string();
        assert!(text.contains("NOT parallelized"));
        assert!(text.contains("num_intervals"));
    }
}
