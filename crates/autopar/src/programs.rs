//! Loop-nest encodings of the paper's Programs 1–4, on which the modeled
//! compilers reproduce — and then improve on — the published verdicts.
//!
//! The conservative pass ([`benchmark_report`], the paper's 1998
//! compilers):
//!
//! * Programs 1 and 3 (the sequential benchmarks): **rejected** — shared
//!   scalars, data-dependent store subscripts, overlapping regions,
//!   opaque calls;
//! * Programs 2 and 4 (the manual transformations): still rejected by
//!   pure analysis (the function-call chains remain), parallel only with
//!   the explicit pragma — exactly the paper's "the compilers were not
//!   even able to parallelize the manually transformed programs without
//!   the explicit parallel loop pragmas".
//!
//! The dataflow pass ([`dataflow_report`]) clears what modern analysis
//! handles — Program 1's count reduction + compaction store and Program
//! 2's call chain (via purity summaries) parallelize *without* pragmas —
//! while the genuinely carried dependences stay rejected: Program 3's
//! overlapping `masking` regions and Program 4's `next_threat` work
//! counter and lock-guarded merges.
//!
//! Statement `.at(line)` numbers refer to the paper-style listings
//! reproduced in `docs/AUTOPAR.md`, so report provenance can be checked
//! against the listing by eye.

use crate::deps::analyze_loop;
use crate::ir::{Expr, LoopNest, ReduceOp, Stmt};
use crate::reduction::{analyze_loop_dataflow, DataflowOptions, DataflowReport};
use crate::report::Report;

/// Program 1: sequential Threat Analysis — the outer `for threat` loop.
pub fn program1_threat_sequential() -> LoopNest {
    LoopNest::new(
        "for threat (Program 1, sequential Threat Analysis)",
        "threat",
    )
    .private(&["t0", "t1", "t2"])
    .nest(
        LoopNest::new("for weapon", "weapon").stmt(
            Stmt::new("intervals[num_intervals] = (threat, weapon, [t1..t2]); num_intervals++")
                .at(9)
                .reads(&["num_intervals"])
                .writes(&["num_intervals"])
                // `num_intervals++` is a monotone count: the annotation the
                // frontend records, which the dataflow pass must still
                // validate (no other touches, subscript uses only in the
                // compaction store).
                .reduces_op("num_intervals", ReduceOp::Count)
                .array(
                    "intervals",
                    vec![Expr::Opaque("num_intervals".into())],
                    true,
                )
                .array("threats", vec![Expr::var("threat")], false)
                .array("weapons", vec![Expr::Opaque("weapon".into())], false)
                .call("first_intercept_time")
                .call("last_intercept_time"),
        ),
    )
}

/// Program 2: chunked Threat Analysis — the `for chunk` loop, with and
/// without the `#pragma multithreaded`.
pub fn program2_threat_chunked(with_pragma: bool) -> LoopNest {
    let l = LoopNest::new(
        "for chunk (Program 2, multithreaded Threat Analysis)",
        "chunk",
    )
    .private(&[
        "first_threat",
        "last_threat",
        "threat",
        "weapon",
        "t0",
        "t1",
        "t2",
    ])
    .stmt(
        Stmt::new("intervals[chunk][num_intervals[chunk]] = ...; num_intervals[chunk]++")
            .at(14)
            .array(
                "intervals",
                vec![
                    Expr::var("chunk"),
                    Expr::Opaque("num_intervals[chunk]".into()),
                ],
                true,
            )
            .array("num_intervals", vec![Expr::var("chunk")], true)
            .array("num_intervals", vec![Expr::var("chunk")], false)
            .array("threats", vec![Expr::Opaque("threat".into())], false)
            .call("first_intercept_time")
            .call("last_intercept_time"),
    );
    if with_pragma {
        l.pragma()
    } else {
        l
    }
}

/// Program 3: sequential Terrain Masking — the outer `for threat` loop.
///
/// Two statements: filling the per-threat `temp` altitude grid (a scratch
/// array the source re-initializes every iteration), then min-merging it
/// into the shared `masking` map over the threat's region of influence.
/// The dataflow pass privatizes `temp` but the region merge genuinely
/// overlaps across threats, so the loop stays rejected.
pub fn program3_terrain_sequential() -> LoopNest {
    LoopNest::new(
        "for threat (Program 3, sequential Terrain Masking)",
        "threat",
    )
    .private(&["x", "y"])
    .scratch(&["temp"])
    .stmt(
        Stmt::new("temp[x][y] = max_safe_altitude(threat, x, y)")
            .at(7)
            .array(
                "temp",
                vec![Expr::Opaque("x".into()), Expr::Opaque("y".into())],
                true,
            )
            .call("max_safe_altitude"),
    )
    .stmt(
        Stmt::new("masking[region of influence] = Min(masking, temp)")
            .at(9)
            // The region bounds depend on the threat's data — the
            // compiler sees data-dependent subscripts into a shared
            // array, written by every iteration.
            .array(
                "masking",
                vec![
                    Expr::Opaque("x in region".into()),
                    Expr::Opaque("y in region".into()),
                ],
                true,
            )
            .array(
                "masking",
                vec![
                    Expr::Opaque("x in region".into()),
                    Expr::Opaque("y in region".into()),
                ],
                false,
            )
            .array(
                "temp",
                vec![Expr::Opaque("x".into()), Expr::Opaque("y".into())],
                false,
            ),
    )
}

/// Program 4: coarse-grained Terrain Masking — the `for thread` loop,
/// with and without the pragma.
pub fn program4_terrain_coarse(with_pragma: bool) -> LoopNest {
    let l = LoopNest::new(
        "for thread (Program 4, multithreaded Terrain Masking)",
        "thread",
    )
    .private(&["threat", "x", "y", "temp"])
    .stmt(
        Stmt::new("threat = next unprocessed threat")
            .at(4)
            .reads(&["next_threat"])
            .writes(&["next_threat"]),
    )
    .stmt(
        Stmt::new("lock(locks[i][j]); masking = Min(masking, temp); unlock")
            .at(11)
            .array(
                "masking",
                vec![
                    Expr::Opaque("x in block".into()),
                    Expr::Opaque("y in block".into()),
                ],
                true,
            )
            .array(
                "locks",
                vec![Expr::Opaque("i".into()), Expr::Opaque("j".into())],
                true,
            )
            .call("max_safe_altitude"),
    );
    if with_pragma {
        l.pragma()
    } else {
        l
    }
}

/// A textbook-parallelizable loop the production compilers of the era
/// *did* handle (dense affine Fortran-style) — included so the rejections
/// above are demonstrably not vacuous.
pub fn affine_vector_loop() -> LoopNest {
    LoopNest::new("for i (dense vector update)", "i").stmt(
        Stmt::new("a[i] = b[i]*s + c[i]")
            .at(2)
            .reads(&["s"])
            .array("a", vec![Expr::var("i")], true)
            .array("b", vec![Expr::var("i")], false)
            .array("c", vec![Expr::var("i")], false),
    )
}

/// The five analyzed loop nests (Programs 1–4 without pragmas, plus the
/// affine control loop), in report order.
pub fn benchmark_loops() -> Vec<LoopNest> {
    vec![
        program1_threat_sequential(),
        program2_threat_chunked(false),
        program3_terrain_sequential(),
        program4_terrain_coarse(false),
        affine_vector_loop(),
    ]
}

/// Run the modeled 1998 compiler over all four benchmark loop nests
/// (without pragmas) plus the affine control loop — the paper's
/// "automatic parallelization" experiment.
pub fn benchmark_report() -> Report {
    Report {
        verdicts: benchmark_loops().iter().map(analyze_loop).collect(),
    }
}

/// Run the dataflow pass (with benchmark purity summaries) over the same
/// five loops, solving with `n_workers` workers. The verdict set is
/// independent of `n_workers` (the parallel solve is bit-identical to the
/// sequential oracle); only the solve itself fans out.
pub fn dataflow_report(n_workers: usize) -> DataflowReport {
    let opts = DataflowOptions::benchmark(n_workers);
    DataflowReport {
        verdicts: benchmark_loops()
            .iter()
            .map(|l| analyze_loop_dataflow(l, &opts))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ClearedKind, ReasonKind};

    #[test]
    fn program1_is_rejected_for_the_papers_reasons() {
        let v = analyze_loop(&program1_threat_sequential());
        assert!(!v.parallel);
        // The three cited obstacles: shared counter, data-dependent store,
        // opaque calls.
        assert!(v.reasons.iter().any(
            |r| matches!(&r.kind, ReasonKind::ScalarDependence { name } if name == "num_intervals")
        ));
        assert!(v.reasons.iter().any(
            |r| matches!(&r.kind, ReasonKind::DataDependentSubscript { array } if array == "intervals")
        ));
        assert!(v
            .reasons
            .iter()
            .any(|r| matches!(&r.kind, ReasonKind::OpaqueCall { .. })));
        // Every reason is anchored at the paper-listing line.
        assert!(v.reasons.iter().all(|r| r.line > 0), "{v:?}");
    }

    #[test]
    fn program2_needs_the_pragma() {
        let without = analyze_loop(&program2_threat_chunked(false));
        assert!(
            !without.parallel,
            "call chains must still block analysis: {without:?}"
        );
        let with = analyze_loop(&program2_threat_chunked(true));
        assert!(with.parallel && with.by_pragma);
    }

    #[test]
    fn program3_is_rejected_for_overlapping_regions() {
        let v = analyze_loop(&program3_terrain_sequential());
        assert!(!v.parallel);
        assert!(v.reasons.iter().any(
            |r| matches!(&r.kind, ReasonKind::DataDependentSubscript { array } if array == "masking")
        ));
    }

    #[test]
    fn program4_needs_the_pragma() {
        let without = analyze_loop(&program4_terrain_coarse(false));
        assert!(!without.parallel);
        let with = analyze_loop(&program4_terrain_coarse(true));
        assert!(with.parallel && with.by_pragma);
    }

    #[test]
    fn the_affine_control_loop_is_auto_parallelized() {
        let v = analyze_loop(&affine_vector_loop());
        assert!(v.parallel && !v.by_pragma, "{v:?}");
    }

    #[test]
    fn benchmark_report_matches_the_paper() {
        let report = benchmark_report();
        // All four benchmark loops rejected; only the affine control loop
        // parallelizes.
        let benchmark_verdicts = &report.verdicts[..4];
        assert!(benchmark_verdicts.iter().all(|v| !v.parallel));
        assert!(report.verdicts[4].parallel);
        assert!(report.any_auto_parallel());
        let text = report.to_string();
        assert!(text.contains("NOT parallelized"));
        assert!(text.contains("num_intervals"));
    }

    #[test]
    fn dataflow_pass_clears_program1() {
        let report = dataflow_report(1);
        let v = &report.verdicts[0];
        assert!(v.verdict.parallel, "{v}");
        assert!(v
            .clearings
            .iter()
            .any(|c| matches!(&c.kind, ClearedKind::Reduction { name, op }
                if name == "num_intervals" && *op == ReduceOp::Count)));
        assert!(v.clearings.iter().any(
            |c| matches!(&c.kind, ClearedKind::Compaction { array, .. } if array == "intervals")
        ));
        assert!(v
            .clearings
            .iter()
            .any(|c| matches!(&c.kind, ClearedKind::PureCall { .. })));
    }

    #[test]
    fn dataflow_pass_clears_program2_without_pragma() {
        let report = dataflow_report(1);
        let v = &report.verdicts[1];
        assert!(v.verdict.parallel && !v.verdict.by_pragma, "{v}");
    }

    #[test]
    fn dataflow_pass_stays_honest_on_programs_3_and_4() {
        let report = dataflow_report(1);
        let p3 = &report.verdicts[2];
        assert!(!p3.verdict.parallel);
        // temp is privatized — but the masking region overlap remains.
        assert_eq!(p3.privatized_arrays, vec!["temp".to_string()]);
        assert!(p3.verdict.reasons.iter().any(
            |r| matches!(&r.kind, ReasonKind::DataDependentSubscript { array } if array == "masking")
        ));
        let p4 = &report.verdicts[3];
        assert!(!p4.verdict.parallel);
        assert!(p4.verdict.reasons.iter().any(
            |r| matches!(&r.kind, ReasonKind::ScalarDependence { name } if name == "next_threat")
        ));
    }

    #[test]
    fn dataflow_pass_strictly_improves_on_the_conservative_pass() {
        let report = dataflow_report(1);
        assert!(report.strictly_improves(&benchmark_report()));
        assert_eq!(report.auto_parallel_count(), 3, "P1, P2, control loop");
    }
}
