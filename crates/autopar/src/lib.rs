//! # autopar — a model of the automatic parallelizing compilers
//!
//! §5–§7 of the paper report that the manufacturer-supplied automatic
//! parallelizing compilers of both the HP Exemplar and the Tera MTA were
//! "unable to identify any practical opportunities for parallelization" in
//! either benchmark, for identifiable reasons:
//!
//! 1. shared scalar induction variables (`num_intervals`),
//! 2. data-dependent store subscripts (`intervals[num_intervals]`),
//! 3. overlapping writes across iterations (`masking` regions of
//!    influence),
//! 4. chains of function calls and pointer operations that thwart
//!    dependence analysis,
//!
//! and that even the manually transformed programs were only parallelized
//! once explicit parallel-loop pragmas were added.
//!
//! This crate reproduces that compiler behaviour — and then builds the
//! compiler the paper wished for:
//!
//! * a loop-nest IR ([`ir`]);
//! * the conservative dependence analyzer ([`deps`]) with the standard
//!   scalar/affine (GCD) subscript tests — the 1998 stance, on which the
//!   paper's Programs 1–4 ([`programs`]) reach exactly the published
//!   verdicts;
//! * a worklist bitset dataflow engine ([`dataflow`]: reaching
//!   definitions + liveness) scheduled over the Tarjan condensation of
//!   the CFG ([`scc`]), with the parallel SCC-DAG solve dogfooding
//!   [`sthreads::par_map`] and the sequential worklist kept as its
//!   bit-identical oracle;
//! * recognition on top of the solved facts ([`reduction`]): associative
//!   reductions, scalar/array privatization, the `out[count++]`
//!   compaction idiom, and interprocedural purity summaries — each
//!   clearing (and each residual rejection) carrying statement-level
//!   provenance in canal-style reports ([`report`]);
//! * an emission pass ([`emit`]) turning parallel verdicts into
//!   [`sthreads::Schedule`] annotations, executed by the `repro
//!   table-auto` experiment against the manual transformations.
//!
//! The dataflow pass parallelizes Programs 1 and 2 *without* pragmas and
//! still rejects Programs 3 and 4 for their genuinely carried
//! dependences — see `docs/AUTOPAR.md` for the living auto-vs-manual
//! comparison.

#![warn(missing_docs)]

pub mod dataflow;
pub mod deps;
pub mod emit;
pub mod ir;
pub mod programs;
pub mod reduction;
pub mod report;
pub mod scc;

pub use deps::{analyze_loop, analyze_loop_with, AnalysisOptions};
pub use emit::{emit_plan, ParallelPlan};
pub use ir::{ArrayRef, Expr, LoopNest, Node, ReduceOp, Reduction, Stmt};
pub use reduction::{
    analyze_loop_dataflow, DataflowOptions, DataflowReport, DataflowVerdict, Summaries,
};
pub use report::{ClearedKind, Clearing, LoopVerdict, Reason, ReasonKind, Report};
