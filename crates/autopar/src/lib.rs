//! # autopar — a model of the automatic parallelizing compilers
//!
//! §5–§7 of the paper report that the manufacturer-supplied automatic
//! parallelizing compilers of both the HP Exemplar and the Tera MTA were
//! "unable to identify any practical opportunities for parallelization" in
//! either benchmark, for identifiable reasons:
//!
//! 1. shared scalar induction variables (`num_intervals`),
//! 2. data-dependent store subscripts (`intervals[num_intervals]`),
//! 3. overlapping writes across iterations (`masking` regions of
//!    influence),
//! 4. chains of function calls and pointer operations that thwart
//!    dependence analysis,
//!
//! and that even the manually transformed programs were only parallelized
//! once explicit parallel-loop pragmas were added.
//!
//! This crate reproduces that compiler behaviour: a loop-nest IR
//! ([`ir`]), a conservative dependence analyzer ([`deps`]) with the
//! standard scalar/affine (GCD) subscripts tests, canal-style feedback
//! reports ([`report`]), and encodings of the paper's Programs 1–4
//! ([`programs`]) on which the analyzer reaches exactly the published
//! verdicts — while still auto-parallelizing simple affine loops (so the
//! negative results are not vacuous).

pub mod deps;
pub mod ir;
pub mod programs;
pub mod report;

pub use deps::{analyze_loop, analyze_loop_with, AnalysisOptions};
pub use ir::{ArrayRef, Expr, LoopNest, Node, Stmt};
pub use report::{LoopVerdict, Reason, Report};
