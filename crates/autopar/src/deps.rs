//! The dependence analyzer: decides whether a loop's iterations can run
//! concurrently, conservatively — exactly the stance of the production
//! compilers the paper tested.
//!
//! A loop is auto-parallelizable when the analyzer can *prove* that no
//! iteration writes a location another iteration touches:
//!
//! * a scalar written in the body and visible outside an iteration
//!   (not private, not the loop variable) is a carried dependence;
//! * two references to the same array, at least one a write, are
//!   independent across iterations only if some dimension provably
//!   separates iterations: both subscripts affine in the loop variable
//!   with equal nonzero scale and equal offset (same iteration ⇒ same
//!   element), or constants/offsets that fail the GCD feasibility test;
//! * any opaque subscript, any opaque call, forces a conservative "may
//!   conflict";
//! * an explicit parallel pragma overrides the analysis (the programmer
//!   asserts independence) — this is how the paper's transformed programs
//!   were actually compiled.

use crate::ir::{ArrayRef, Expr, LoopNest};
use crate::report::{LoopVerdict, Reason, ReasonKind};
use std::collections::BTreeSet;

/// Greatest common divisor.
fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

/// Can two affine subscripts `s1*i + o1` and `s2*i' + o2` refer to the
/// same element for *different* iterations `i ≠ i'`? (The GCD feasibility
/// test, unbounded iteration space — conservative.)
fn affine_may_conflict_cross_iteration(s1: i64, o1: i64, s2: i64, o2: i64) -> bool {
    // Same-subscript special case: s1*i + o1 == s2*i' + o2 with i != i'.
    if s1 == s2 && o1 == o2 {
        // Equal subscript functions: same element only in the same
        // iteration (when the scale is nonzero).
        return s1 == 0;
    }
    // Solve s1*i - s2*i' = o2 - o1 over the integers.
    if s1 == 0 && s2 == 0 {
        return o1 == o2; // both constant: conflict iff equal
    }
    let g = gcd(s1, s2);
    (o2 - o1) % g == 0
}

/// One dimension of a subscript pair: can the pair conflict across
/// iterations of `loop_var`?
fn dim_may_conflict(a: &Expr, b: &Expr, loop_var: &str) -> bool {
    use Expr::*;
    match (a, b) {
        (Const(x), Const(y)) => x == y,
        (
            Affine {
                var: v1,
                scale: s1,
                offset: o1,
            },
            Affine {
                var: v2,
                scale: s2,
                offset: o2,
            },
        ) if v1 == loop_var && v2 == loop_var => {
            affine_may_conflict_cross_iteration(*s1, *o1, *s2, *o2)
        }
        (Affine { var, scale, offset }, Const(c)) | (Const(c), Affine { var, scale, offset })
            if var == loop_var =>
        {
            // scale*i + offset == c solvable?
            *scale == 0 && offset == c || *scale != 0 && (c - offset) % scale == 0
        }
        // Subscripts in variables other than the loop variable, or opaque:
        // the compiler cannot reason — assume conflict.
        _ => true,
    }
}

/// Can the reference pair conflict across iterations? Independent if ANY
/// dimension provably separates them. Shared with the dataflow pass
/// ([`crate::reduction`]), which runs the same test after clearing
/// privatized and compacted references.
pub(crate) fn refs_may_conflict(a: &ArrayRef, b: &ArrayRef, loop_var: &str) -> bool {
    if a.array != b.array {
        return false;
    }
    if a.indices.len() != b.indices.len() {
        return true; // ill-typed aliasing — be conservative
    }
    a.indices
        .iter()
        .zip(&b.indices)
        .all(|(x, y)| dim_may_conflict(x, y, loop_var))
}

/// Analyze one loop (not descending into nested loops' own verdicts — call
/// per loop of interest). Returns the verdict with every blocking reason.
/// This is the 1998-compiler behaviour the paper measured: reductions are
/// NOT recognized.
pub fn analyze_loop(l: &LoopNest) -> LoopVerdict {
    analyze_loop_with(l, &AnalysisOptions::era1998())
}

/// Analyzer capabilities. The paper's compilers are [`AnalysisOptions::era1998`];
/// [`AnalysisOptions::modern`] adds reduction recognition (the kind of
/// improvement the paper's Section 7 hints at for "more specialized
/// domains").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisOptions {
    /// Recognize `x = x op expr` associative updates and privatize them.
    pub recognize_reductions: bool,
}

impl AnalysisOptions {
    /// The capabilities of the compilers the paper evaluated.
    pub fn era1998() -> Self {
        Self {
            recognize_reductions: false,
        }
    }

    /// A present-day auto-parallelizer.
    pub fn modern() -> Self {
        Self {
            recognize_reductions: true,
        }
    }
}

/// [`analyze_loop`] with explicit analyzer capabilities.
pub fn analyze_loop_with(l: &LoopNest, opts: &AnalysisOptions) -> LoopVerdict {
    let mut reasons: Vec<Reason> = Vec::new();

    if l.pragma_parallel {
        return LoopVerdict {
            loop_label: l.label.clone(),
            parallel: true,
            by_pragma: true,
            reasons: Vec::new(),
        };
    }

    let private: BTreeSet<String> = l.all_private().into_iter().collect();
    let stmts = l.all_stmts();

    // Scalar dependences: a written scalar that is not private and not the
    // loop variable is carried (ordering matters across iterations) —
    // unless it is a recognized reduction and the analyzer is modern.
    let mut flagged: BTreeSet<&str> = BTreeSet::new();
    for s in &stmts {
        for w in &s.writes {
            let reducible = opts.recognize_reductions && s.reductions.iter().any(|r| r.name == *w);
            if w != &l.var && !private.contains(w) && !reducible && flagged.insert(w) {
                reasons.push(Reason::at(
                    ReasonKind::ScalarDependence { name: w.clone() },
                    s,
                ));
            }
        }
    }

    // Opaque calls thwart everything.
    let mut called: BTreeSet<&str> = BTreeSet::new();
    for s in &stmts {
        for c in &s.calls {
            if called.insert(c) {
                reasons.push(Reason::at(ReasonKind::OpaqueCall { name: c.clone() }, s));
            }
        }
    }

    // Array dependences: every (write, any) pair across iterations —
    // including the write against *itself* in another iteration, which is
    // how `intervals[num_intervals]`-style stores and overlapping-region
    // stores are caught.
    let mut seen_pairs: BTreeSet<(String, String)> = BTreeSet::new();
    for s1 in &stmts {
        for a in &s1.arrays {
            if !a.write {
                continue;
            }
            for s2 in &stmts {
                for b in &s2.arrays {
                    if refs_may_conflict(a, b, &l.var) {
                        let key = (a.array.clone(), format!("{}/{}", s1.label, s2.label));
                        if seen_pairs.insert(key) {
                            let opaque = a.indices.iter().chain(&b.indices).any(|e| {
                                !matches!(e, Expr::Const(_))
                                    && !matches!(e, Expr::Affine { var, .. } if var == &l.var)
                            });
                            reasons.push(if opaque {
                                Reason::at(
                                    ReasonKind::DataDependentSubscript {
                                        array: a.array.clone(),
                                    },
                                    s1,
                                )
                            } else {
                                Reason::at(
                                    ReasonKind::ArrayConflict {
                                        array: a.array.clone(),
                                        with: s2.label.clone(),
                                    },
                                    s1,
                                )
                            });
                        }
                    }
                }
            }
        }
    }

    // Deduplicate identical reasons while preserving order.
    let mut dedup: Vec<Reason> = Vec::new();
    for r in reasons {
        if !dedup.contains(&r) {
            dedup.push(r);
        }
    }

    LoopVerdict {
        loop_label: l.label.clone(),
        parallel: dedup.is_empty(),
        by_pragma: false,
        reasons: dedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Stmt;

    fn v(l: &LoopNest) -> LoopVerdict {
        analyze_loop(l)
    }

    #[test]
    fn simple_affine_loop_is_parallelizable() {
        // for i: a[i] = b[i] + c[i]
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("a[i]=b[i]+c[i]")
                .array("a", vec![Expr::var("i")], true)
                .array("b", vec![Expr::var("i")], false)
                .array("c", vec![Expr::var("i")], false),
        );
        let verdict = v(&l);
        assert!(verdict.parallel, "{verdict:?}");
    }

    #[test]
    fn loop_carried_affine_dependence_is_rejected() {
        // for i: a[i] = a[i-1]
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("a[i]=a[i-1]")
                .array("a", vec![Expr::var("i")], true)
                .array(
                    "a",
                    vec![Expr::Affine {
                        var: "i".into(),
                        scale: 1,
                        offset: -1,
                    }],
                    false,
                ),
        );
        let verdict = v(&l);
        assert!(!verdict.parallel);
        assert!(matches!(
            verdict.reasons[0].kind,
            ReasonKind::ArrayConflict { .. }
        ));
    }

    #[test]
    fn gcd_test_separates_odd_and_even() {
        // for i: a[2i] = a[2i+1] — writes even, reads odd: independent.
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("a[2i]=a[2i+1]")
                .array(
                    "a",
                    vec![Expr::Affine {
                        var: "i".into(),
                        scale: 2,
                        offset: 0,
                    }],
                    true,
                )
                .array(
                    "a",
                    vec![Expr::Affine {
                        var: "i".into(),
                        scale: 2,
                        offset: 1,
                    }],
                    false,
                ),
        );
        assert!(v(&l).parallel, "{:?}", v(&l));
    }

    #[test]
    fn shared_scalar_accumulator_is_rejected() {
        // for i: sum = sum + a[i]
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("sum+=a[i]")
                .reads(&["sum"])
                .writes(&["sum"])
                .array("a", vec![Expr::var("i")], false),
        );
        let verdict = v(&l);
        assert!(!verdict.parallel);
        assert_eq!(verdict.reasons.len(), 1);
        assert_eq!(
            verdict.reasons[0].kind,
            ReasonKind::ScalarDependence { name: "sum".into() }
        );
        assert_eq!(verdict.reasons[0].stmt, "sum+=a[i]");
    }

    #[test]
    fn private_scalars_do_not_block() {
        // for i: { t = a[i]; b[i] = t }  with t declared in the body
        let l = LoopNest::new("for i", "i").private(&["t"]).stmt(
            Stmt::new("t=a[i];b[i]=t")
                .writes(&["t"])
                .reads(&["t"])
                .array("a", vec![Expr::var("i")], false)
                .array("b", vec![Expr::var("i")], true),
        );
        assert!(v(&l).parallel, "{:?}", v(&l));
    }

    #[test]
    fn opaque_call_blocks() {
        let l = LoopNest::new("for i", "i").stmt(Stmt::new("f(i)").call("f").array(
            "a",
            vec![Expr::var("i")],
            true,
        ));
        let verdict = v(&l);
        assert!(!verdict.parallel);
        assert!(verdict
            .reasons
            .iter()
            .any(|r| r.kind == ReasonKind::OpaqueCall { name: "f".into() }));
    }

    #[test]
    fn data_dependent_subscript_blocks() {
        // for i: out[count] = i  — the Threat Analysis pattern.
        let l = LoopNest::new("for i", "i").stmt(Stmt::new("out[count]=...").array(
            "out",
            vec![Expr::Opaque("count".into())],
            true,
        ));
        let verdict = v(&l);
        assert!(!verdict.parallel);
        assert!(verdict.reasons.iter().any(|r| r.kind
            == ReasonKind::DataDependentSubscript {
                array: "out".into()
            }));
    }

    #[test]
    fn leading_loop_dimension_separates_rows() {
        // for c: out[c][anything] = ... — per-iteration rows are disjoint.
        let l = LoopNest::new("for c", "c").stmt(
            Stmt::new("out[c][k]=...")
                .array("out", vec![Expr::var("c"), Expr::Opaque("k".into())], true)
                .array(
                    "out",
                    vec![Expr::var("c"), Expr::Opaque("k2".into())],
                    false,
                ),
        );
        assert!(v(&l).parallel, "{:?}", v(&l));
    }

    #[test]
    fn reductions_block_the_1998_analyzer_but_not_the_modern_one() {
        // for i: sum += a[i], with sum marked as an associative reduction.
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("sum+=a[i]")
                .reads(&["sum"])
                .writes(&["sum"])
                .reduces(&["sum"])
                .array("a", vec![Expr::var("i")], false),
        );
        let era = analyze_loop_with(&l, &AnalysisOptions::era1998());
        assert!(!era.parallel, "{era:?}");
        let modern = analyze_loop_with(&l, &AnalysisOptions::modern());
        assert!(modern.parallel, "{modern:?}");
    }

    #[test]
    fn modern_analyzer_still_rejects_non_reduction_scalars() {
        // A scalar written but NOT marked associative stays a dependence.
        let l = LoopNest::new("for i", "i").stmt(Stmt::new("last=a[i]").writes(&["last"]).array(
            "a",
            vec![Expr::var("i")],
            false,
        ));
        assert!(!analyze_loop_with(&l, &AnalysisOptions::modern()).parallel);
    }

    #[test]
    fn modern_analyzer_does_not_rescue_the_benchmarks() {
        // Even with reduction recognition, the benchmark loops stay
        // rejected: their obstacles are calls and data-dependent stores.
        use crate::programs;
        for l in [
            programs::program1_threat_sequential(),
            programs::program3_terrain_sequential(),
        ] {
            assert!(!analyze_loop_with(&l, &AnalysisOptions::modern()).parallel);
        }
    }

    #[test]
    fn pragma_overrides_analysis() {
        let l = LoopNest::new("for i", "i")
            .pragma()
            .stmt(Stmt::new("sum+=a[i]").writes(&["sum"]).call("f"));
        let verdict = v(&l);
        assert!(verdict.parallel);
        assert!(verdict.by_pragma);
    }

    #[test]
    fn distinct_arrays_never_conflict() {
        let l = LoopNest::new("for i", "i").stmt(
            Stmt::new("a[i]=b[j]")
                .array("a", vec![Expr::var("i")], true)
                .array("b", vec![Expr::Opaque("j".into())], false),
        );
        assert!(v(&l).parallel, "{:?}", v(&l));
    }

    #[test]
    fn inner_loop_variable_subscript_is_conservative() {
        // for i { for j: a[j] = ... } — parallelizing *i* would have all
        // iterations write the same a[j] range.
        let outer = LoopNest::new("for i", "i").nest(
            LoopNest::new("for j", "j").stmt(Stmt::new("a[j]=...").array(
                "a",
                vec![Expr::var("j")],
                true,
            )),
        );
        let verdict = v(&outer);
        assert!(!verdict.parallel, "{verdict:?}");
    }
}
