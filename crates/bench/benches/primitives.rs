//! Microbenchmarks of the sthreads runtime primitives: the host-side
//! costs of the structures whose Tera/SMP costs the machine models charge
//! (spawn, barrier, full/empty handoff, fetch-add claims).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sthreads::{multithreaded_for, reduce, Barrier, Schedule, SyncCounter, SyncVar, WorkQueue};

fn bench_syncvar(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives_syncvar");
    g.bench_function("uncontended_write_take", |b| {
        let v = SyncVar::new_empty();
        b.iter(|| {
            v.write(black_box(42u64));
            black_box(v.take())
        })
    });
    g.bench_function("producer_consumer_handoff_x100", |b| {
        b.iter(|| {
            let v = SyncVar::new_empty();
            std::thread::scope(|s| {
                s.spawn(|| {
                    for i in 0..100u64 {
                        v.write(i);
                    }
                });
                for _ in 0..100 {
                    black_box(v.take());
                }
            });
        })
    });
    g.finish();
}

fn bench_counters_and_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives_counters");
    g.bench_function("fetch_add", |b| {
        let ctr = SyncCounter::new(0);
        b.iter(|| black_box(ctr.fetch_add(1)))
    });
    g.bench_function("work_queue_drain_1000", |b| {
        b.iter(|| {
            let q = WorkQueue::new(0..1000);
            let mut n = 0usize;
            while q.next().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_parallel_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives_parallel");
    g.sample_size(20);
    g.bench_function("spawn_region_4threads", |b| {
        // The cost the models charge at 50k cycles/thread on 1998 SMPs.
        b.iter(|| {
            multithreaded_for(0..4, 4, Schedule::Static, |i| {
                black_box(i);
            })
        })
    });
    g.bench_function("barrier_x10_4threads", |b| {
        b.iter(|| {
            let bar = Barrier::new(4);
            sthreads::scope_threads(4, |_| {
                for _ in 0..10 {
                    bar.wait();
                }
            });
        })
    });
    g.bench_function("reduce_100k_4threads", |b| {
        b.iter(|| black_box(reduce(100_000, 4, 0u64, |i| i as u64, |a, x| a + x)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_syncvar,
    bench_counters_and_queues,
    bench_parallel_structures
);
criterion_main!(benches);
