//! One Criterion group per paper table: each benchmark regenerates that
//! table's full row set (profiles → calibrated models → seconds) and
//! prints it once so `cargo bench` output doubles as the reproduction
//! report.

use bench::experiments;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let e = experiments();
    let mut g = c.benchmark_group("tables");
    g.sample_size(20);

    macro_rules! table_bench {
        ($name:literal, $method:ident) => {
            // Print the reproduced table once, then measure regeneration.
            println!("{}", e.$method().render());
            g.bench_function($name, |b| b.iter(|| black_box(e.$method())));
        };
    }

    table_bench!("t02_threat_seq", table2);
    table_bench!("t03_threat_ppro", table3);
    table_bench!("t04_threat_exemplar", table4);
    table_bench!("t05_threat_tera", table5);
    table_bench!("t06_chunk_sweep", table6);
    table_bench!("t07_threat_summary", table7);
    table_bench!("t08_terrain_seq", table8);
    table_bench!("t09_terrain_ppro", table9);
    table_bench!("t10_terrain_exemplar", table10);
    table_bench!("t11_terrain_tera", table11);
    table_bench!("t12_terrain_summary", table12);
    g.finish();

    // The expensive part the tables amortize: assembling sweep profiles.
    let mut g = c.benchmark_group("workload");
    g.sample_size(10);
    g.bench_function("ta_chunk_profile_256", |b| {
        b.iter(|| black_box(e.workload.ta_chunked(256)))
    });
    g.bench_function("tm_greedy_bins_16", |b| {
        b.iter(|| black_box(e.workload.tm_coarse(16)))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
