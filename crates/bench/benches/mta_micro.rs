//! Cycle-level MTA simulator microbenchmarks: the utilization-vs-streams
//! experiment of §5/§7, synchronization primitives, bank behaviour, and
//! raw simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mta_sim::kernels::{
    alu_kernel, measure_utilization, mem_kernel, pipeline_kernel, reduce_kernel, run_kernel,
    vector_add_kernel,
};
use mta_sim::{Machine, MtaConfig};
use std::hint::black_box;

fn cfg1() -> MtaConfig {
    MtaConfig {
        mem_words: 1 << 20,
        ..MtaConfig::tera(1)
    }
}

fn bench_utilization(c: &mut Criterion) {
    // Print the curve once — this is the §7 "80 streams" experiment.
    println!("utilization vs streams (mta-sim, 25% memory mix):");
    for s in [1usize, 8, 21, 40, 64, 80, 128] {
        println!(
            "  {s:>3} streams: {:.3}",
            measure_utilization(cfg1(), s, 400, 3)
        );
    }
    let mut g = c.benchmark_group("mta_utilization");
    g.sample_size(10);
    for s in [1usize, 21, 80] {
        g.bench_function(format!("simulate_{s}streams"), |b| {
            b.iter(|| black_box(measure_utilization(cfg1(), s, 200, 3)))
        });
    }
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("mta_kernels");
    g.sample_size(10);
    g.bench_function("vector_add_64streams", |b| {
        b.iter(|| {
            let (program, layout) = vector_add_kernel(512, 64);
            let mut m = Machine::new(cfg1(), program).unwrap();
            for i in 0..layout.n {
                m.memory_mut().store_f64(layout.a_base + i, 1.0);
                m.memory_mut().store_f64(layout.b_base + i, 2.0);
            }
            m.spawn(0, 0).unwrap();
            black_box(m.run(100_000_000))
        })
    });
    g.bench_function("fetch_add_reduce_32streams", |b| {
        b.iter(|| {
            let (program, _) = reduce_kernel(400, 32);
            black_box(run_kernel(cfg1(), program, &[]).1)
        })
    });
    g.bench_function("pipeline_8stages", |b| {
        b.iter(|| {
            let (program, layout) = pipeline_kernel(8, 40);
            let empties: Vec<usize> = (0..=8).map(|k| layout.chan_base + k).collect();
            black_box(run_kernel(cfg1(), program, &empties).1)
        })
    });
    g.finish();
}

fn bench_banks(c: &mut Criterion) {
    let big = || MtaConfig {
        mem_words: 1 << 23,
        ..MtaConfig::tera(1)
    };
    // Report the hot-bank effect once.
    let (_, cold) = run_kernel(big(), mem_kernel(64, 100, 1, 4096), &[]);
    let (_, hot) = run_kernel(big(), mem_kernel(64, 100, 64, 4096), &[]);
    println!(
        "bank interleave: stride-1 {} cycles, stride-64 (hot bank) {} cycles ({:.2}x)",
        cold.cycles,
        hot.cycles,
        hot.cycles as f64 / cold.cycles as f64
    );
    let mut g = c.benchmark_group("mta_banks");
    g.sample_size(10);
    g.bench_function("stride1", |b| {
        b.iter(|| black_box(run_kernel(big(), mem_kernel(64, 100, 1, 4096), &[]).1))
    });
    g.bench_function("stride64_hot", |b| {
        b.iter(|| black_box(run_kernel(big(), mem_kernel(64, 100, 64, 4096), &[]).1))
    });
    g.finish();
}

fn bench_sim_throughput(c: &mut Criterion) {
    // How many simulated instructions per host-second the simulator
    // achieves on a saturated machine.
    let mut g = c.benchmark_group("mta_sim_throughput");
    g.sample_size(10);
    g.bench_function("alu_128streams_200iters", |b| {
        b.iter(|| black_box(run_kernel(cfg1(), alu_kernel(128, 200), &[]).1))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_utilization,
    bench_kernels,
    bench_banks,
    bench_sim_throughput
);
criterion_main!(benches);
