//! Figures 1–4 (speedup-curve generation) plus host executions of the
//! benchmark programs themselves: scenario generation, the sequential
//! baselines, and every manual parallelization, measured as real wall
//! clock on this machine.

use bench::experiments;
use c3i::terrain::{self, TerrainScenarioParams};
use c3i::threat::{self, ThreatScenarioParams};
use criterion::{criterion_group, criterion_main, Criterion};
use eval_core::Figure;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let e = experiments();
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);
    for (name, f) in [
        ("fig1_threat_ppro", Figure::ThreatPPro),
        ("fig2_threat_exemplar", Figure::ThreatExemplar),
        ("fig3_terrain_ppro", Figure::TerrainPPro),
        ("fig4_terrain_exemplar", Figure::TerrainExemplar),
    ] {
        println!("{}", e.figure(f));
        g.bench_function(name, |b| b.iter(|| black_box(e.figure_series(f))));
    }
    g.finish();
}

fn bench_host_threat(c: &mut Criterion) {
    let scenario = threat::generate(ThreatScenarioParams {
        n_threats: 300,
        n_weapons: 10,
        seed: 1,
        ..Default::default()
    });
    let mut g = c.benchmark_group("host_threat_analysis");
    g.sample_size(20);
    g.bench_function("generate_scenario", |b| {
        b.iter(|| {
            black_box(threat::generate(ThreatScenarioParams {
                n_threats: 300,
                n_weapons: 10,
                seed: 1,
                ..Default::default()
            }))
        })
    });
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(threat::threat_analysis_host(&scenario)))
    });
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("chunked_{threads}threads"), |b| {
            b.iter(|| {
                black_box(threat::threat_analysis_chunked_host(
                    &scenario, threads, threads,
                ))
            })
        });
    }
    g.bench_function("chunked_256chunks", |b| {
        b.iter(|| black_box(threat::threat_analysis_chunked_host(&scenario, 256, 4)))
    });
    g.bench_function("fine_grained_4threads", |b| {
        b.iter(|| black_box(threat::threat_analysis_fine_host(&scenario, 4)))
    });
    g.finish();
}

fn bench_host_terrain(c: &mut Criterion) {
    let scenario = terrain::generate(TerrainScenarioParams {
        grid_size: 256,
        n_threats: 15,
        seed: 1,
        ..Default::default()
    });
    let mut g = c.benchmark_group("host_terrain_masking");
    g.sample_size(20);
    g.bench_function("generate_scenario", |b| {
        b.iter(|| {
            black_box(terrain::generate(TerrainScenarioParams {
                grid_size: 256,
                n_threats: 15,
                seed: 1,
                ..Default::default()
            }))
        })
    });
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(terrain::terrain_masking_host(&scenario)))
    });
    for threads in [1usize, 2, 4] {
        g.bench_function(format!("coarse_{threads}threads"), |b| {
            b.iter(|| black_box(terrain::terrain_masking_coarse_host(&scenario, threads, 10)))
        });
    }
    g.bench_function("fine_4threads", |b| {
        b.iter(|| black_box(terrain::terrain_masking_fine_host(&scenario, 4)))
    });
    g.bench_function("verify", |b| {
        let masking = terrain::terrain_masking_host(&scenario);
        b.iter(|| terrain::verify_masking(&scenario, black_box(&masking)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_figures,
    bench_host_threat,
    bench_host_terrain
);
criterion_main!(benches);
