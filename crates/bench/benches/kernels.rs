//! Per-kernel benchmarks of the c3i hot paths, each paired with its
//! pinned baseline so the `kernels` harness phase's speedup claim can be
//! reproduced (and bisected) kernel by kernel:
//!
//! * `los_recurrence` — the XDraw ring recurrence over one paper-scale
//!   region: historical cell-at-a-time `reference` kernel vs the
//!   run-based row-sweep kernels.
//! * `ring_iteration` — `Region::ring` (a fresh `Vec` of cells per ring)
//!   vs `Region::ring_runs` (≤4 clipped edge runs, no allocation).
//! * `engagement_scan` — the stepwise pair scan of Programs 1/2 vs the
//!   structure-of-arrays batch scan.

use c3i::terrain::{self, KernelArena, Region, TerrainScenarioParams};
use c3i::threat::{self, intervals_for_pair, intervals_for_pair_stepwise, ThreatScenarioParams};
use c3i::NoRec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// `KERNELS_BENCH_QUICK=1` shrinks every scenario for the ci smoke run;
/// the default is paper scale (the vendored criterion stand-in has no
/// CLI filtering, so the knob is an environment variable).
fn quick() -> bool {
    std::env::var_os("KERNELS_BENCH_QUICK").is_some()
}

/// One paper-scale terrain scenario (1024² grid; regions up to 5% of the
/// terrain) — the geometry the harness's `kernels` phase times.
fn terrain_scenario() -> terrain::TerrainScenario {
    terrain::generate(TerrainScenarioParams {
        grid_size: if quick() { 192 } else { 1024 },
        n_threats: if quick() { 10 } else { 60 },
        seed: 1,
        ..TerrainScenarioParams::default()
    })
}

fn bench_los_recurrence(c: &mut Criterion) {
    let scenario = terrain_scenario();
    let mut g = c.benchmark_group("kernels_los_recurrence");
    g.sample_size(10);
    g.bench_function("baseline_scalar", |b| {
        b.iter(|| black_box(terrain::terrain_masking_reference(black_box(&scenario))))
    });
    g.bench_function("run_sweeps", |b| {
        let mut out = c3i::Grid::new(0, 0, f64::INFINITY);
        b.iter(|| {
            terrain::terrain_masking_into(black_box(&scenario), &mut out, &mut NoRec);
            black_box(out.as_slice().len())
        })
    });
    g.finish();
}

fn bench_ring_iteration(c: &mut Criterion) {
    let scenario = terrain_scenario();
    // Clipped and unclipped regions alike, as the pipeline sees them.
    let regions: Vec<Region> = scenario
        .threats
        .iter()
        .map(|t| Region::of_checked(t, scenario.terrain.x_size(), scenario.terrain.y_size()))
        .collect();
    let mut g = c.benchmark_group("kernels_ring_iteration");
    g.bench_function("ring_vec", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for region in &regions {
                for k in 0..=region.radius {
                    acc += region.ring(k).len();
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("ring_runs", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for region in &regions {
                for k in 0..=region.radius {
                    acc += region.ring_runs(k).len();
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_engagement_scan(c: &mut Criterion) {
    // Paper-scale pair population: 1000 threats scanned against weapons.
    let scenario = threat::generate(ThreatScenarioParams {
        n_threats: if quick() { 100 } else { 1000 },
        seed: 1,
        ..ThreatScenarioParams::default()
    });
    fn stepwise(s: &threat::ThreatScenario) -> usize {
        let mut n = 0usize;
        for (ti, th) in s.threats.iter().enumerate() {
            for (wi, w) in s.weapons.iter().enumerate() {
                intervals_for_pair_stepwise(ti as u32, wi as u32, th, w, &mut NoRec, |_| n += 1);
            }
        }
        n
    }
    fn soa_batch(s: &threat::ThreatScenario) -> usize {
        let mut n = 0usize;
        for (ti, th) in s.threats.iter().enumerate() {
            for (wi, w) in s.weapons.iter().enumerate() {
                // NoRec dispatches the public entry to the batch scan.
                intervals_for_pair(ti as u32, wi as u32, th, w, &mut NoRec, |_| n += 1);
            }
        }
        n
    }
    let mut g = c.benchmark_group("kernels_engagement_scan");
    g.bench_function("stepwise", |b| {
        b.iter(|| black_box(stepwise(black_box(&scenario))))
    });
    g.bench_function("soa_batch", |b| {
        b.iter(|| black_box(soa_batch(black_box(&scenario))))
    });
    g.finish();
}

/// Keep the arena referenced so the benches exercise the same per-thread
/// reuse path the pipeline uses (and the symbol is not dead-stripped).
fn warm_arena() {
    KernelArena::with(|a| {
        let _ = a.split();
    });
}

fn benches(c: &mut Criterion) {
    warm_arena();
    bench_los_recurrence(c);
    bench_ring_iteration(c);
    bench_engagement_scan(c);
}

criterion_group!(kernels, benches);
criterion_main!(kernels);
