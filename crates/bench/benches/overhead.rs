//! Parallel-region dispatch overhead: the host-side analog of the paper's
//! §7 finding that Sthreads' per-chunk `CreateThread` (tens of thousands
//! of cycles) erased the Pentium Pro speedups.
//!
//! * `spawn_overhead` — an empty-body region opened on fresh scoped OS
//!   threads (the pre-pool implementation, and what Sthreads did on NT)
//!   vs the persistent pool's parked workers. Any regression in the
//!   pool's wakeup handshake shows up here first.
//! * `dispatch_overhead` — `par_map` of trivial (~ns) vs substantial
//!   (~100 µs) tasks, so both the per-task cost floor and the amortized
//!   steady state stay visible in the perf trajectory. `par_map` now
//!   takes the measured sequential cutoff for sub-floor work, so the
//!   `raw_dispatch` variants pin `serial_cutoff(false)` to keep the real
//!   pool dispatch path on the record, and the `timing_on` variant bounds
//!   the cost of the `sthreads::stats` nano-timing tier (the always-on
//!   counter tier is exercised by every other entry here — its budget is
//!   the ≤2% drift acceptance on this group).
//! * `fine_grain` — the 10k×~1µs task storm dispatched through the shared
//!   claim counter (`Schedule::Dynamic`) vs per-worker deques with
//!   stealing (`Schedule::Stealing`), cutoff pinned off so the dispatch
//!   mechanisms themselves are on the record. This is the contention wall
//!   the stealing schedule exists to remove; the same comparison is
//!   recorded as the `fine_grain` phase of `BENCH_harness.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sthreads::{par_map, scope_threads, stats, ParFor, Schedule, ThreadPool};

const REGION_WIDTH: usize = 4;

/// Deterministic busy work sized around ~100 µs of host compute.
fn busy_task(seed: usize) -> u64 {
    let mut x = seed as u64 | 1;
    for _ in 0..50_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

fn bench_spawn_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("spawn_overhead");
    g.sample_size(10);
    g.bench_function("scoped_os_threads_empty_region_4", |b| {
        // The old execution layer: n-1 fresh OS threads per region.
        b.iter(|| {
            std::thread::scope(|s| {
                for t in 1..REGION_WIDTH {
                    s.spawn(move || black_box(t));
                }
                black_box(0usize);
            })
        })
    });
    g.bench_function("persistent_pool_empty_region_4", |b| {
        // The new execution layer: parked workers, condvar handshake.
        let pool = ThreadPool::new(REGION_WIDTH);
        pool.warm(REGION_WIDTH);
        b.iter(|| {
            pool.run(|t| {
                black_box(t);
            })
        })
    });
    g.bench_function("global_pool_empty_region_4", |b| {
        // What multithreaded_for/par_map callers actually pay.
        ThreadPool::global().warm(REGION_WIDTH);
        b.iter(|| {
            scope_threads(REGION_WIDTH, |t| {
                black_box(t);
            })
        })
    });
    g.finish();
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch_overhead");
    g.sample_size(10);
    ThreadPool::global().warm(REGION_WIDTH);
    for schedule in [Schedule::Static, Schedule::Dynamic] {
        g.bench_function(format!("par_map_trivial_256_tasks_{schedule:?}"), |b| {
            b.iter(|| par_map(256, REGION_WIDTH, schedule, |i| black_box(i as u64 * 3 + 1)))
        });
        g.bench_function(format!("par_map_100us_16_tasks_{schedule:?}"), |b| {
            b.iter(|| par_map(16, REGION_WIDTH, schedule, busy_task))
        });
        // The pool's dispatch path with the cutoff pinned off: what a
        // trivial-task region costs when it really goes parallel. This is
        // the number the cutoff's measured floor protects callers from.
        g.bench_function(
            format!("raw_dispatch_trivial_256_tasks_{schedule:?}"),
            |b| {
                b.iter(|| {
                    ParFor::new(0..256)
                        .threads(REGION_WIDTH)
                        .schedule(schedule)
                        .serial_cutoff(false)
                        .run(|i| {
                            black_box(i as u64 * 3 + 1);
                        })
                })
            },
        );
    }
    // The nano-timing tier (clock reads around every job + region
    // aggregation) on the substantial-task shape; compare against
    // par_map_100us_16_tasks_Static to see its cost.
    g.bench_function("par_map_100us_16_tasks_Static_timing_on", |b| {
        stats::set_timing(true);
        b.iter(|| par_map(16, REGION_WIDTH, Schedule::Static, busy_task));
        stats::set_timing(false);
    });
    g.finish();
}

/// Deterministic busy work sized around ~1 µs of host compute: the §6
/// fine-grained regime, far below the per-claim cost a shared counter can
/// amortize.
fn micro_task(seed: usize) -> u64 {
    let mut x = seed as u64 | 1;
    for _ in 0..500 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

fn bench_fine_grain(c: &mut Criterion) {
    let mut g = c.benchmark_group("fine_grain");
    g.sample_size(10);
    ThreadPool::global().warm(REGION_WIDTH);
    for (name, schedule) in [
        ("shared_queue", Schedule::Dynamic),
        ("work_stealing", Schedule::Stealing),
    ] {
        g.bench_function(format!("storm_10k_1us_tasks_{name}"), |b| {
            b.iter(|| {
                let acc = std::sync::atomic::AtomicU64::new(0);
                ParFor::new(0..10_000)
                    .threads(REGION_WIDTH)
                    .schedule(schedule)
                    .serial_cutoff(false)
                    .run(|i| {
                        acc.fetch_add(
                            black_box(micro_task(i)),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    });
                acc.into_inner()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_spawn_overhead,
    bench_dispatch_overhead,
    bench_fine_grain
);
criterion_main!(benches);
