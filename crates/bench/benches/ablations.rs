//! Ablation studies of the design choices the paper discusses:
//!
//! * block-lock granularity for coarse Terrain Masking (the paper fixes
//!   "ten-by-ten blocking" — what if it hadn't?);
//! * static vs dynamic scheduling of the irregular threat workload;
//! * chunk-count sensitivity on conventional SMPs (the paper only sweeps
//!   chunks on the Tera);
//! * MTA model parameter sensitivity (pipeline depth, memory latency) —
//!   which architectural numbers actually drive the headline results.

use bench::experiments;
use c3i::terrain::{self, TerrainScenarioParams};
use c3i::threat::{self, ThreatScenarioParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sthreads::ThreadCounts;

fn bench_block_granularity(c: &mut Criterion) {
    let scenario = terrain::generate(TerrainScenarioParams {
        grid_size: 256,
        n_threats: 15,
        seed: 2,
        ..Default::default()
    });
    // Report lock traffic per granularity once (the modeled cost trade).
    println!("block-lock granularity (coarse Terrain Masking, 4 threads):");
    for blocks in [1usize, 4, 10, 20, 40] {
        let (_, profile) = terrain::terrain_masking_coarse(&scenario, 4, blocks);
        println!(
            "  {blocks:>2}x{blocks:<2} blocks: {} lock ops",
            profile.parallel.total().sync_ops
        );
    }
    let mut g = c.benchmark_group("ablation_block_granularity");
    g.sample_size(10);
    for blocks in [1usize, 10, 40] {
        g.bench_function(format!("{blocks}x{blocks}"), |b| {
            b.iter(|| black_box(terrain::terrain_masking_coarse_host(&scenario, 4, blocks)))
        });
    }
    g.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    // Static chunking vs dynamic self-scheduling on the irregular threat
    // mix: compare modeled makespan imbalance.
    let e = experiments();
    let per_threat = &e.workload.tm_per_threat[0];
    let n_threads = 8;
    let dynamic = terrain::greedy_bins(per_threat, n_threads);
    let static_bins: Vec<sthreads::OpCounts> = (0..n_threads)
        .map(|t| {
            let r = sthreads::chunk_range(t, per_threat.len(), n_threads);
            per_threat[r].iter().copied().sum()
        })
        .collect();
    let static_tc = ThreadCounts::new(static_bins);
    println!(
        "scheduling imbalance over {} irregular threats on {n_threads} threads: static {:.3}, dynamic {:.3}",
        per_threat.len(),
        static_tc.imbalance(),
        dynamic.imbalance()
    );
    assert!(dynamic.imbalance() <= static_tc.imbalance() + 1e-9);

    let scenario = threat::generate(ThreatScenarioParams {
        n_threats: 400,
        n_weapons: 8,
        seed: 3,
        ..Default::default()
    });
    let mut g = c.benchmark_group("ablation_scheduling");
    g.sample_size(10);
    g.bench_function("static_chunks", |b| {
        b.iter(|| black_box(threat::threat_analysis_chunked_host(&scenario, 4, 4)))
    });
    g.bench_function("dynamic_fine", |b| {
        b.iter(|| black_box(threat::threat_analysis_fine_host(&scenario, 4)))
    });
    g.finish();
}

fn bench_chunk_count_model(c: &mut Criterion) {
    // Chunk-count sensitivity across platforms (Table 6 is Tera-only in
    // the paper; the model extends it).
    let e = experiments();
    println!("chunk-count sweep, modeled seconds (Threat Analysis):");
    println!("  chunks   Tera(2p)   Exemplar(16p)");
    for chunks in [8usize, 16, 32, 64, 128, 256] {
        let tera = e.ta_tera(chunks, 2);
        let exemplar: f64 = e
            .workload
            .ta_chunked(chunks)
            .iter()
            .map(|p| e.cal.exemplar.parallel_seconds(p, 16, e.cal.s_ta))
            .sum();
        println!("  {chunks:>6}   {tera:>8.1}   {exemplar:>8.1}");
    }
    let mut g = c.benchmark_group("ablation_chunk_count");
    g.sample_size(20);
    for chunks in [8usize, 256] {
        g.bench_function(format!("model_tera_{chunks}chunks"), |b| {
            b.iter(|| black_box(e.ta_tera(chunks, 2)))
        });
    }
    g.finish();
}

fn bench_mta_parameter_sensitivity(c: &mut Criterion) {
    // Which MTA parameters drive the sequential-slowness headline?
    let e = experiments();
    let base = e.cal.tera.clone();
    println!("MTA parameter sensitivity (sequential Threat Analysis, modeled):");
    for (label, issue, mem) in [
        ("paper (21-cycle pipe, 70-cycle mem)", 21.0, 70.0),
        ("shallow pipe (7-cycle)", 7.0, 70.0),
        ("fast memory (35-cycle)", 21.0, 35.0),
        ("both halved", 10.5, 35.0),
    ] {
        let mut m = base.clone();
        m.issue_latency = issue;
        m.mem_latency = mem;
        let secs: f64 = e
            .workload
            .ta_seq
            .iter()
            .map(|p| m.seq_seconds(p, e.cal.s_ta))
            .sum();
        println!("  {label:<38} {secs:>8.1} s");
    }
    let mut g = c.benchmark_group("ablation_mta_params");
    g.sample_size(20);
    g.bench_function("seq_model_eval", |b| {
        b.iter(|| {
            let s: f64 = e
                .workload
                .ta_seq
                .iter()
                .map(|p| e.cal.tera.seq_seconds(p, e.cal.s_ta))
                .sum();
            black_box(s)
        })
    });
    g.finish();
}

fn bench_lookahead(c: &mut Criterion) {
    // The MTA's explicit-dependence lookahead, simulated: how much
    // single-stream memory latency can the compiler hide? (The paper's
    // measured codes behave like lookahead 1; the hardware supported 8.)
    use mta_sim::kernels::{mem_kernel, run_kernel};
    use mta_sim::MtaConfig;
    let cfg = |lookahead: u64| MtaConfig {
        mem_words: 1 << 23,
        lookahead,
        ..MtaConfig::tera(1)
    };
    println!("lookahead ablation (single stream, unit-stride loads):");
    for la in [1u64, 2, 4, 8] {
        let (_, r) = run_kernel(cfg(la), mem_kernel(1, 400, 1, 4096), &[]);
        let cpi = r.cycles as f64 / r.stats.instructions() as f64;
        println!("  lookahead {la}: {cpi:.1} cycles/instruction");
    }
    let mut g = c.benchmark_group("ablation_lookahead");
    g.sample_size(10);
    for la in [1u64, 8] {
        g.bench_function(format!("lookahead{la}"), |b| {
            b.iter(|| black_box(run_kernel(cfg(la), mem_kernel(1, 200, 1, 4096), &[]).1))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_block_granularity,
    bench_scheduling,
    bench_chunk_count_model,
    bench_mta_parameter_sensitivity,
    bench_lookahead
);
criterion_main!(benches);
