//! Shared helpers for the Criterion benchmark harness.
//!
//! Each bench target covers part of the paper's evaluation:
//!
//! * `tables` — one group per table (2–12): regenerates the paper row set
//!   from measured profiles through the calibrated models and reports how
//!   long the full experiment takes.
//! * `figures` — the four speedup figures, plus *host* executions of the
//!   benchmark programs themselves (workload generation, sequential
//!   baseline, every parallel variant).
//! * `mta_micro` — cycle-level simulator benchmarks (utilization curve,
//!   kernels, bank behaviour).
//! * `ablations` — design-choice studies the paper discusses: block-lock
//!   granularity, static vs dynamic scheduling, chunk count, and MTA
//!   latency-parameter sensitivity.

use eval_core::{Experiments, WorkloadScale};
use std::sync::OnceLock;

/// The shared reduced-scale experiment harness. Loaded from the on-disk
/// snapshot cache when one is fresh (`eval_core::cache`), so repeated
/// bench runs skip workload measurement and calibration entirely.
pub fn experiments() -> &'static Experiments {
    static E: OnceLock<Experiments> = OnceLock::new();
    E.get_or_init(|| Experiments::load_or_measure(WorkloadScale::Reduced).0)
}
