//! `repro` — regenerate every table and figure of the SC'98 paper.
//!
//! ```text
//! repro [--reduced] [--csv DIR] [--out FILE] [SECTION...]
//!
//! SECTIONs: tables (default), figures, utilization, autopar, scalability,
//!           sensitivity, all
//! ```
//!
//! With no arguments the binary measures the paper-scale workload,
//! calibrates the machine models, and prints Tables 1–12 with the paper's
//! published value next to every modeled value, followed by ASCII
//! renditions of Figures 1–4. `--reduced` uses the smaller test workload
//! (same structure, faster). `--csv DIR` additionally writes one CSV per
//! table.

use eval_core::experiments::{Experiments, Figure};
use eval_core::workload::{Workload, WorkloadScale};
use mta_sim::kernels::measure_utilization;
use mta_sim::MtaConfig;
use std::io::Write;

struct Options {
    scale: WorkloadScale,
    csv_dir: Option<String>,
    json_file: Option<String>,
    out_file: Option<String>,
    sections: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: WorkloadScale::Paper,
        csv_dir: None,
        json_file: None,
        out_file: None,
        sections: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => opts.scale = WorkloadScale::Reduced,
            "--csv" => opts.csv_dir = args.next(),
            "--json" => opts.json_file = args.next(),
            "--out" => opts.out_file = args.next(),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--reduced] [--csv DIR] [--json FILE] [--out FILE] \
                     [tables|figures|utilization|autopar|scalability|all]..."
                );
                std::process::exit(0);
            }
            s => opts.sections.push(s.to_string()),
        }
    }
    if opts.sections.is_empty() {
        opts.sections.push("all".to_string());
    }
    opts
}

fn want(opts: &Options, section: &str) -> bool {
    opts.sections.iter().any(|s| s == section || s == "all")
}

fn utilization_report() -> String {
    let mut out = String::new();
    out.push_str("Processor utilization vs hardware streams (mta-sim, 20% memory mix)\n");
    out.push_str("  paper Section 5/7: single stream ~5%; ~80 streams for full utilization\n");
    out.push_str("  streams  measured   model min(1, s/L)\n");
    let cfg = || MtaConfig { mem_words: 1 << 20, ..MtaConfig::tera(1) };
    // mixed_kernel with alu_per_iter = 3: 5 instructions per iteration,
    // 1 load => L = (4*21 + 70)/5 = 30.8 cycles.
    let l = (4.0 * 21.0 + 70.0) / 5.0;
    for &s in &[1usize, 2, 4, 8, 16, 32, 48, 64, 80, 100, 128] {
        let u = measure_utilization(cfg(), s, 400, 3);
        let model = (s as f64 / l).min(1.0);
        out.push_str(&format!("  {s:>7}  {u:>8.3}   {model:>8.3}\n"));
    }
    out
}

fn main() {
    let opts = parse_args();
    let mut out = String::new();

    eprintln!(
        "measuring workload ({:?} scale) and calibrating models...",
        opts.scale
    );
    let exps = Experiments::new(Workload::build(opts.scale));
    out.push_str(&format!(
        "Reproduction of \"An Initial Evaluation of the Tera Multithreaded Architecture\n\
         and Programming System Using the C3I Parallel Benchmark Suite\" (SC'98).\n\
         Workload scale: {:?}. Calibration: S_TA={:.1} S_TM={:.1} eta2={:.3} kappa={:.1}\n\n",
        exps.workload.scale,
        exps.cal.s_ta,
        exps.cal.s_tm,
        exps.cal.tera.eta2,
        exps.cal.tera.spawn_cycles_per_task
    ));

    if want(&opts, "tables") {
        if let Some(path) = &opts.json_file {
            let tables = exps.all_tables();
            let json = serde_json::to_string_pretty(&tables).expect("serialize tables");
            std::fs::write(path, json).expect("write json");
            eprintln!("wrote {path}");
        }
        for t in exps.all_tables() {
            out.push_str(&t.render());
            out.push('\n');
            if let Some(dir) = &opts.csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let path = format!("{dir}/{}.csv", t.id.to_lowercase().replace(' ', "_"));
                std::fs::write(&path, t.to_csv()).expect("write csv");
            }
        }
    }

    if want(&opts, "figures") {
        for f in [
            Figure::ThreatPPro,
            Figure::ThreatExemplar,
            Figure::TerrainPPro,
            Figure::TerrainExemplar,
        ] {
            out.push_str(&exps.figure(f));
            out.push('\n');
        }
    }

    if want(&opts, "autopar") {
        out.push_str("Automatic parallelization (modeled Tera/Exemplar compilers):\n");
        out.push_str(&exps.autopar_report().report.to_string());
        out.push('\n');
    }

    if want(&opts, "scalability") {
        out.push_str(
            &exps
                .scalability_projection(&[1, 2, 4, 8, 16, 32, 64, 128, 256])
                .render(),
        );
        out.push('\n');
    }

    if want(&opts, "sensitivity") {
        out.push_str(&exps.sensitivity().render());
        out.push('\n');
    }

    if want(&opts, "utilization") {
        out.push_str(&utilization_report());
        out.push('\n');
    }

    print!("{out}");
    if let Some(path) = &opts.out_file {
        let mut f = std::fs::File::create(path).expect("create out file");
        f.write_all(out.as_bytes()).expect("write out file");
        eprintln!("wrote {path}");
    }
}
