//! `repro` — regenerate every table and figure of the SC'98 paper.
//!
//! ```text
//! repro [--reduced] [--no-cache] [--timing] [--profile] [--gate FILE]
//!       [--csv DIR] [--out FILE] [SECTION...]
//!
//! SECTIONs: tables (default), figures, utilization, autopar, scalability,
//!           sensitivity, all
//! ```
//!
//! With no arguments the binary measures the paper-scale workload,
//! calibrates the machine models, and prints Tables 1–12 with the paper's
//! published value next to every modeled value, followed by ASCII
//! renditions of Figures 1–4. `--reduced` uses the smaller test workload
//! (same structure, faster). `--csv DIR` additionally writes one CSV per
//! table.
//!
//! The expensive workload measurement is memoized on disk (see
//! `eval_core::cache`); `--no-cache` forces a fresh measurement without
//! reading or writing snapshots. `--timing` times the harness's own
//! parallelization (1 host thread vs all of them), verifies the outputs
//! are byte-identical, and writes the report to `BENCH_harness.json`.
//!
//! `--profile` turns on the `sthreads::stats` nano-timing tier for the
//! whole run and appends an observability report: where the pool's time
//! went (dispatch, imbalance, useful work), the work-stealing counters
//! (steals, stolen items, failed steals, victim misses) with the last
//! timed region's per-worker busy breakdown, plus a sample `mta-sim`
//! run's machine counters (issue slots, bank-queue histogram, full/empty
//! retry traffic). `--gate FILE` parses FILE as a `BENCH_harness.json`,
//! checks it against the harness invariants (schema keys present, every
//! phase bit-identical, table-generation and fine_grain speedups at their
//! gates), and exits non-zero on any violation — this is what `ci.sh`
//! runs.

use eval_core::cache;
use eval_core::experiments::{self, Experiments, Figure, HarnessReport};
use eval_core::workload::WorkloadScale;
use mta_sim::kernels::measure_utilization_sweep;
use std::io::Write;
use sthreads::ThreadPool;

struct Options {
    scale: WorkloadScale,
    csv_dir: Option<String>,
    json_file: Option<String>,
    out_file: Option<String>,
    use_cache: bool,
    timing: bool,
    profile: bool,
    gate: Option<String>,
    n_threads: Option<usize>,
    fuzz: Option<usize>,
    fuzz_seed: u64,
    sections: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: WorkloadScale::Paper,
        csv_dir: None,
        json_file: None,
        out_file: None,
        use_cache: true,
        timing: false,
        profile: false,
        gate: None,
        n_threads: None,
        fuzz: None,
        fuzz_seed: 1,
        sections: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reduced" => opts.scale = WorkloadScale::Reduced,
            "--csv" => opts.csv_dir = args.next(),
            "--json" => opts.json_file = args.next(),
            "--out" => opts.out_file = args.next(),
            "--no-cache" => opts.use_cache = false,
            "--timing" => opts.timing = true,
            "--profile" => opts.profile = true,
            "--gate" => {
                opts.gate = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--gate requires a BENCH_harness.json path");
                    std::process::exit(2);
                }))
            }
            "--fuzz" => {
                opts.fuzz = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fuzz requires a case count");
                    std::process::exit(2);
                }))
            }
            "--fuzz-seed" => {
                opts.fuzz_seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fuzz-seed requires a u64 seed");
                    std::process::exit(2);
                })
            }
            "--threads" => {
                opts.n_threads =
                    Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    }))
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--reduced] [--no-cache] [--timing] [--profile] \
                     [--gate FILE] [--fuzz N] [--fuzz-seed S] [--threads N] [--csv DIR] \
                     [--json FILE] [--out FILE] \
                     [tables|figures|utilization|autopar|scalability|all]..."
                );
                std::process::exit(0);
            }
            s => opts.sections.push(s.to_string()),
        }
    }
    if opts.sections.is_empty() {
        opts.sections.push("all".to_string());
    }
    opts
}

fn want(opts: &Options, section: &str) -> bool {
    opts.sections.iter().any(|s| s == section || s == "all")
}

/// `--gate FILE`: validate a harness report and exit. Any problem —
/// unreadable file, schema mismatch, invariant violation — exits 1 with
/// every violation listed, so CI output shows the whole picture at once.
fn run_gate(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let report: HarnessReport = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gate: {path} does not match the BENCH_harness.json schema: {e}");
            std::process::exit(1);
        }
    };
    match report.validate() {
        Ok(()) => {
            let tg = report
                .phases
                .iter()
                .find(|p| p.phase == "table generation")
                .expect("validate() guarantees the phase exists");
            let fg = report
                .phases
                .iter()
                .find(|p| p.phase == "fine_grain")
                .expect("validate() guarantees the phase exists");
            println!(
                "gate: {path} OK — {} phases identical, table generation {:.2}x (gate {}), \
                 fine_grain stealing vs shared queue {:.2}x (gate {}), \
                 kernels vs scalar baseline {:.2}x (gate {})",
                report.phases.len(),
                tg.speedup,
                experiments::TABLE_GEN_SPEEDUP_GATE,
                fg.speedup,
                experiments::FINE_GRAIN_SPEEDUP_GATE,
                report.kernels.speedup,
                experiments::KERNELS_SPEEDUP_GATE,
            );
            std::process::exit(0);
        }
        Err(errs) => {
            for e in &errs {
                eprintln!("gate: FAIL: {e}");
            }
            std::process::exit(1);
        }
    }
}

fn utilization_report(n_threads: usize) -> String {
    let mut out = String::new();
    out.push_str("Processor utilization vs hardware streams (mta-sim, 20% memory mix)\n");
    out.push_str("  paper Section 5/7: single stream ~5%; ~80 streams for full utilization\n");
    out.push_str("  streams  measured   model min(1, s/L)\n");
    // mixed_kernel with alu_per_iter = 3: 5 instructions per iteration,
    // 1 load => L = (4*21 + 70)/5 = 30.8 cycles.
    let l = (4.0 * 21.0 + 70.0) / 5.0;
    let measured = measure_utilization_sweep(
        &experiments::util_cfg(),
        &experiments::UTIL_STREAMS,
        400,
        3,
        n_threads,
    );
    for (&s, u) in experiments::UTIL_STREAMS.iter().zip(measured) {
        let model = (s as f64 / l).min(1.0);
        out.push_str(&format!("  {s:>7}  {u:>8.3}   {model:>8.3}\n"));
    }
    out
}

/// The `--profile` report: process-lifetime pool counters (the always-on
/// tier plus the nano-timing tier enabled at startup) and a sample
/// simulator run's structured machine counters.
fn profile_report() -> String {
    use sthreads::stats;
    let s = stats::snapshot();
    let mut out = String::new();
    out.push_str("Observability profile (sthreads::stats, process lifetime)\n");
    out.push_str(&format!(
        "  pool regions          {:>10}  (nested fallback {}, serial cutoff {})\n",
        s.regions, s.nested_regions, s.serial_cutoff_regions
    ));
    out.push_str(&format!(
        "  tasks / batches       {:>10} / {} (mean batch {:.1} tasks)\n",
        s.tasks,
        s.batches,
        s.mean_batch_items()
    ));
    out.push_str(&format!(
        "  worker parks / wakes  {:>10} / {}\n",
        s.parks, s.wakes
    ));
    out.push_str(&format!(
        "  dispatch / imbalance  {:>10.3} ms / {:.3} ms  (floor {} ns/region)\n",
        s.dispatch_ns as f64 / 1e6,
        s.imbalance_ns as f64 / 1e6,
        stats::dispatch_floor_ns()
    ));
    out.push_str(&format!(
        "  busy / idle           {:>10.3} ms / {:.3} ms\n",
        s.busy_ns as f64 / 1e6,
        s.idle_ns as f64 / 1e6
    ));
    out.push_str(&format!(
        "  steals / items        {:>10} / {} (mean {:.1} items/steal)\n",
        s.steals,
        s.stolen_items,
        s.mean_stolen_items()
    ));
    out.push_str(&format!(
        "  steal fails / misses  {:>10} / {} (contention {:.1}%)\n",
        s.steal_fails,
        s.victim_misses,
        100.0 * s.steal_contention()
    ));
    let busy = stats::last_region_worker_busy();
    if !busy.is_empty() {
        let max = busy.iter().copied().max().unwrap_or(0).max(1) as f64;
        out.push_str("  last timed region, per-worker busy (caller first):\n");
        for (w, &ns) in busy.iter().enumerate() {
            out.push_str(&format!(
                "    worker {w:>2}  {:>10.3} ms  {:.0}%\n",
                ns as f64 / 1e6,
                100.0 * ns as f64 / max
            ));
        }
    }

    // One deterministic simulator run, profiled through SimStats: 32
    // streams of the standard utilization mix plus a fetch-add hot word.
    let (_, r) = mta_sim::kernels::run_kernel(
        experiments::util_cfg(),
        mta_sim::kernels::mixed_kernel(32, 400, 3, 4096),
        &[],
    );
    let st = &r.stats;
    out.push_str("\nSimulator machine counters (mixed kernel, 32 streams, 1 processor)\n");
    out.push_str(&format!(
        "  cycles / instructions {:>10} / {}  (utilization {:.1}%)\n",
        r.cycles,
        st.instructions(),
        100.0 * r.utilization()
    ));
    let active_slots: usize = st
        .streams
        .issued_per_slot
        .iter()
        .map(|p| p.iter().filter(|&&n| n > 0).count())
        .sum();
    out.push_str(&format!(
        "  issue slots used      {:>10}  (peak live {:?})\n",
        active_slots, st.streams.peak_live_per_processor
    ));
    out.push_str(&format!(
        "  threads               {:>10} forks, {} soft spawns\n",
        st.threads.forks, st.threads.soft_spawns
    ));
    out.push_str(&format!(
        "  full/empty sync       {:>10} retries, {} wakes, {} reparks\n",
        st.sync.blocked, st.sync.wakes, st.sync.reparks
    ));
    out.push_str(&format!(
        "  memory accesses       {:>10}  ({:.1}% queued; {} bank-queue cycles)\n",
        st.memory.accesses,
        100.0 * st.memory.queued_fraction(),
        st.memory.bank_queue_cycles
    ));
    out.push_str(&format!(
        "  queue-wait histogram  {:>10?}  (cycles: 0, 1-4, 5-16, 17-64, 65+)\n",
        st.memory.queue_wait_hist
    ));
    out
}

/// `--fuzz N [--fuzz-seed S]`: run the differential fuzzing campaign and
/// exit. Every generated scenario runs through sequential oracle ×
/// {coarse, fine, chunked} × {Static, Dynamic, Stealing} × {1, 2, 8}
/// workers; any failure is ddmin-minimized, written under
/// `target/c3i-fuzz/`, and the process exits 1.
fn run_fuzz(n_cases: usize, seed: u64, reduced: bool) -> ! {
    use c3i_fuzz::CaseOutcome;
    eprintln!(
        "fuzz: {n_cases} cases, seed {seed}{} — oracle x {{coarse, fine, chunked}} x \
         {{Static, Dynamic, Stealing}} x {{1, 2, 8}} workers",
        if reduced { ", reduced sizes" } else { "" }
    );
    let report = c3i_fuzz::run_campaign(
        &c3i_fuzz::CampaignConfig {
            n_cases,
            seed,
            reduced,
        },
        |index, outcome| match outcome {
            CaseOutcome::Passed => {
                if (index + 1) % 25 == 0 {
                    eprintln!("fuzz: {}/{n_cases} cases checked", index + 1);
                }
            }
            CaseOutcome::Rejected(msg) => {
                eprintln!("fuzz: case {index} rejected by validation: {msg}")
            }
            CaseOutcome::Failed(f) => eprintln!("fuzz: case {index} FAILED: {f}"),
        },
    );
    println!(
        "fuzz: {} cases — {} passed, {} rejected, {} failed (seed {seed})",
        report.n_cases,
        report.n_passed,
        report.n_rejected,
        report.failures.len()
    );
    if report.ok() {
        std::process::exit(0);
    }
    let dir = std::path::Path::new("target/c3i-fuzz");
    std::fs::create_dir_all(dir).expect("create target/c3i-fuzz");
    for f in &report.failures {
        let path = dir.join(format!("seed{seed}-case{}.json", f.index));
        c3i_fuzz::save_case(&f.case, &path).expect("write minimized failure");
        println!(
            "fuzz: case {} minimized to {} — {}\n      reproduce: repro --fuzz {} --fuzz-seed {seed}\n      \
             pin it: fix the bug, then copy {} into tests/corpus/",
            f.index,
            path.display(),
            f.failure,
            f.index + 1,
            path.display()
        );
    }
    std::process::exit(1);
}

fn main() {
    let opts = parse_args();
    if let Some(path) = &opts.gate {
        run_gate(path);
    }
    if let Some(n_cases) = opts.fuzz {
        run_fuzz(
            n_cases,
            opts.fuzz_seed,
            opts.scale == WorkloadScale::Reduced,
        );
    }
    if opts.profile {
        // Enable the clock-reading tier up front so every phase below is
        // attributed, not just the --timing section.
        sthreads::stats::set_timing(true);
    }
    let n_threads = opts
        .n_threads
        .unwrap_or_else(|| ThreadPool::global().n_threads());
    let mut out = String::new();

    eprintln!(
        "loading workload ({:?} scale) and calibrating models...",
        opts.scale
    );
    let (workload, cal, status) =
        cache::load_or_measure_in(&cache::cache_dir(), opts.scale, opts.use_cache);
    eprintln!(
        "workload: {status:?} (snapshot dir {})",
        cache::cache_dir().display()
    );
    let exps = Experiments { workload, cal };
    out.push_str(&format!(
        "Reproduction of \"An Initial Evaluation of the Tera Multithreaded Architecture\n\
         and Programming System Using the C3I Parallel Benchmark Suite\" (SC'98).\n\
         Workload scale: {:?}. Calibration: S_TA={:.1} S_TM={:.1} eta2={:.3} kappa={:.1}\n\n",
        exps.workload.scale,
        exps.cal.s_ta,
        exps.cal.s_tm,
        exps.cal.tera.eta2,
        exps.cal.tera.spawn_cycles_per_task
    ));

    if want(&opts, "tables") {
        let tables = exps.all_tables();
        if let Some(path) = &opts.json_file {
            let json = serde_json::to_string_pretty(&tables).expect("serialize tables");
            std::fs::write(path, json).expect("write json");
            eprintln!("wrote {path}");
        }
        for t in &tables {
            out.push_str(&t.render());
            out.push('\n');
            if let Some(dir) = &opts.csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let path = format!("{dir}/{}.csv", t.id.to_lowercase().replace(' ', "_"));
                std::fs::write(&path, t.to_csv()).expect("write csv");
            }
        }
    }

    if want(&opts, "figures") {
        for f in [
            Figure::ThreatPPro,
            Figure::ThreatExemplar,
            Figure::TerrainPPro,
            Figure::TerrainExemplar,
        ] {
            out.push_str(&exps.figure(f));
            out.push('\n');
        }
    }

    if want(&opts, "autopar") {
        out.push_str("Automatic parallelization (modeled Tera/Exemplar compilers):\n");
        out.push_str(&exps.autopar_report().report.to_string());
        out.push('\n');
    }

    if want(&opts, "scalability") {
        out.push_str(
            &exps
                .scalability_projection(&[1, 2, 4, 8, 16, 32, 64, 128, 256])
                .render(),
        );
        out.push('\n');
    }

    if want(&opts, "sensitivity") {
        out.push_str(&exps.sensitivity().render());
        out.push('\n');
    }

    if want(&opts, "utilization") {
        out.push_str(&utilization_report(n_threads));
        out.push('\n');
    }

    if opts.timing {
        let report = experiments::harness_timing(opts.scale, n_threads);
        let json = serde_json::to_string_pretty(&report).expect("serialize timing report");
        std::fs::write("BENCH_harness.json", &json).expect("write BENCH_harness.json");
        eprintln!("wrote BENCH_harness.json");
        out.push_str(&report.render());
        out.push('\n');
    }

    if opts.profile {
        out.push_str(&profile_report());
        out.push('\n');
    }

    print!("{out}");
    if let Some(path) = &opts.out_file {
        let mut f = std::fs::File::create(path).expect("create out file");
        f.write_all(out.as_bytes()).expect("write out file");
        eprintln!("wrote {path}");
    }
}
